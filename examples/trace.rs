//! Tracing a communication: every scheduler, tasklet, protocol and
//! hardware event of one eager send, in virtual-time order.
//!
//! ```sh
//! cargo run --release -p pm2-mpi --example trace
//! ```

use pm2_mpi::{Cluster, ClusterConfig};
use pm2_newmad::{EngineKind, Tag};
use pm2_sim::SimDuration;
use pm2_topo::NodeId;

fn main() {
    let cluster = Cluster::build(ClusterConfig::paper_testbed(EngineKind::Pioman));
    cluster.sim().trace().set_enabled(true);

    {
        let s = cluster.session(0).clone();
        cluster.spawn_on(0, "sender", move |ctx| async move {
            let h = s.isend(&ctx, NodeId(1), Tag(1), vec![0xee; 4096]).await;
            ctx.compute(SimDuration::from_micros(20)).await;
            s.swait_send(&h, &ctx).await;
        });
    }
    {
        let s = cluster.session(1).clone();
        cluster.spawn_on(1, "receiver", move |ctx| async move {
            let _ = s.recv(&ctx, Some(NodeId(0)), Tag(1)).await;
        });
    }
    cluster.run();

    println!("{}", cluster.sim().trace().render());
    println!(
        "{} trace records; enable per-category filtering with records_in()",
        cluster.sim().trace().records().len()
    );
}
