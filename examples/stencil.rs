//! The convolution meta-application (Figure 7/8): a hybrid MPI+threads
//! stencil with intra-node (shared memory) and inter-node (NIC) halo
//! exchanges, run under both engines.
//!
//! ```sh
//! cargo run --release -p pm2-mpi --example stencil
//! ```

use pm2_mpi::workloads::{run_stencil, StencilParams};
use pm2_mpi::ClusterConfig;
use pm2_newmad::EngineKind;

fn main() {
    for (name, params) in [
        ("4 threads (2x2 grid)", StencilParams::four_threads()),
        ("16 threads (4x4 grid)", StencilParams::sixteen_threads()),
    ] {
        let seq = run_stencil(
            ClusterConfig::paper_testbed(EngineKind::Sequential),
            &params,
        );
        let pio = run_stencil(ClusterConfig::paper_testbed(EngineKind::Pioman), &params);
        println!("{name}:");
        println!("  no offloading : {:8.1} µs", seq.total_us);
        println!("  offloading    : {:8.1} µs", pio.total_us);
        println!(
            "  speedup       : {:8.1} %",
            (seq.total_us - pio.total_us) / seq.total_us * 100.0
        );
        let c = &pio.counters[0];
        println!(
            "  node-0 traffic: {} intra-node (shm) msgs, {} inter-node eager msgs, {} unexpected\n",
            c.shm_msgs, c.eager_msgs_tx, c.unexpected
        );
    }
    println!("Idle cores absorb the halo-copy submissions; threads blocked on");
    println!("their neighbours' data leave gaps that PIOMAN fills (§4.3).");
}
