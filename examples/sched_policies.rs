//! Selecting a Marcel scheduling policy on the cluster config, and why it
//! matters: the fig. 4 overlap loop runs on a node whose cores are shared
//! with background compute, so how fast the woken communicating thread
//! gets a core back depends on the policy.
//!
//! ```sh
//! cargo run --release -p pm2-mpi --example sched_policies
//! ```

use pm2_mpi::workloads::{run_overlap, OverlapParams};
use pm2_mpi::{Cluster, ClusterConfig, SchedPolicyKind};
use pm2_newmad::{EngineKind, Tag};
use pm2_sim::stats::OnlineStats;
use pm2_sim::SimDuration;
use pm2_topo::NodeId;
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    println!("Marcel scheduling policies under the fig. 4 overlap loop\n");

    // On an idle testbed every policy overlaps equally well: the
    // communication finishes inside the 20 µs compute window, so the
    // scheduler never has a queue to order.
    let p = OverlapParams::default();
    print!("idle node, 8 kB + 20 µs compute: ");
    let mut idle = Vec::new();
    for kind in SchedPolicyKind::all() {
        let cfg = ClusterConfig::paper_testbed(EngineKind::Pioman).with_sched_policy(kind.name());
        let r = run_overlap(cfg, &p);
        idle.push(format!("{} {:.2}µs", kind.name(), r.half_round_us.mean()));
    }
    println!("{}", idle.join(", "));

    // On a loaded node the policies separate: FIFO parks the freshly
    // woken communicating thread behind the compute queue; the
    // hierarchical and comm-aware policies front-insert it.
    println!("\nloaded node (2 cores, 3 background compute threads), 2 µs slices:");
    println!("{:<10} {:>12}  vs fifo", "policy", "half-round");
    let fifo = loaded_half_round("fifo");
    for kind in SchedPolicyKind::all() {
        let us = loaded_half_round(kind.name());
        let delta = (fifo - us) / fifo * 100.0;
        println!("{:<10} {:>10.3}µs  {:+.1}%", kind.name(), us, delta);
    }
}

/// Fig. 4 loop with a 2 µs compute slice, sharing a 2-core node with
/// three background compute threads (the loaded point of
/// `tests/sched.rs` and `BENCH_sched.json`).
fn loaded_half_round(policy: &str) -> f64 {
    let cfg = ClusterConfig {
        sockets_per_node: 1,
        cores_per_socket: 2,
        ..ClusterConfig::paper_testbed(EngineKind::Pioman).with_sched_policy(policy)
    };
    let len = 8 << 10;
    let compute = SimDuration::from_micros(2);
    let (iters, warmup) = (10usize, 2usize);
    let cluster = Cluster::build(cfg);
    let stats = Rc::new(RefCell::new(OnlineStats::new()));
    for b in 0..3 {
        cluster.spawn_on(0, format!("bg-{b}"), move |ctx| async move {
            for _ in 0..400 {
                ctx.compute(SimDuration::from_micros(2)).await;
                ctx.yield_now().await;
            }
        });
    }
    {
        let s = cluster.session(0).clone();
        let stats = Rc::clone(&stats);
        cluster.spawn_on(0, "overlap-0", move |ctx| async move {
            for i in 0..iters + warmup {
                let t1 = ctx.marcel().sim().now();
                let h = s
                    .isend(&ctx, NodeId(1), Tag(2 * i as u64), vec![0xa5; len])
                    .await;
                ctx.compute(compute).await;
                s.swait_send(&h, &ctx).await;
                let hr = s.irecv(&ctx, Some(NodeId(1)), Tag(2 * i as u64 + 1)).await;
                ctx.compute(compute).await;
                let _ = s.swait_recv(&hr, &ctx).await;
                let t2 = ctx.marcel().sim().now();
                if i >= warmup {
                    stats
                        .borrow_mut()
                        .record(t2.saturating_since(t1).as_micros_f64() / 2.0);
                }
            }
        });
    }
    {
        let s = cluster.session(1).clone();
        cluster.spawn_on(1, "overlap-1", move |ctx| async move {
            for i in 0..iters + warmup {
                let hr = s.irecv(&ctx, Some(NodeId(0)), Tag(2 * i as u64)).await;
                ctx.compute(compute).await;
                let _ = s.swait_recv(&hr, &ctx).await;
                let h = s
                    .isend(&ctx, NodeId(0), Tag(2 * i as u64 + 1), vec![0x5a; len])
                    .await;
                ctx.compute(compute).await;
                s.swait_send(&h, &ctx).await;
            }
        });
    }
    cluster.run();
    Rc::try_unwrap(stats)
        .expect("sole owner")
        .into_inner()
        .mean()
}
