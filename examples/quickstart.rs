//! Quickstart: build a 2-node simulated cluster, send a message, wait.
//!
//! ```sh
//! cargo run --release -p pm2-mpi --example quickstart
//! ```

use pm2_mpi::{Cluster, ClusterConfig};
use pm2_newmad::{EngineKind, Tag};
use pm2_sim::SimDuration;
use pm2_topo::NodeId;
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    // The paper's testbed: 2 nodes × dual quad-core Xeon, MYRI-10G-like
    // fabric, PIOMAN progression engine.
    let cluster = Cluster::build(ClusterConfig::paper_testbed(EngineKind::Pioman));

    let received = Rc::new(RefCell::new(Vec::new()));

    // A sender thread on node 0: asynchronous send, overlapped compute,
    // wait.
    {
        let session = cluster.session(0).clone();
        cluster.spawn_on(0, "sender", move |ctx| async move {
            let payload = b"hello from node 0".to_vec();
            let handle = session.isend(&ctx, NodeId(1), Tag(7), payload).await;
            // 20µs of "application work" — the submission happens on an
            // idle core meanwhile.
            ctx.compute(SimDuration::from_micros(20)).await;
            session.swait_send(&handle, &ctx).await;
            println!("[{}] sender: buffer reusable", ctx.marcel().sim().now());
        });
    }

    // A receiver thread on node 1.
    {
        let session = cluster.session(1).clone();
        let received = Rc::clone(&received);
        cluster.spawn_on(1, "receiver", move |ctx| async move {
            let data = session.recv(&ctx, Some(NodeId(0)), Tag(7)).await;
            println!(
                "[{}] receiver: got {} bytes",
                ctx.marcel().sim().now(),
                data.len()
            );
            *received.borrow_mut() = data;
        });
    }

    let end = cluster.run();
    println!("message: {:?}", String::from_utf8_lossy(&received.borrow()));
    println!("simulation finished at {end}");
    println!(
        "sender-node PIOMAN stats: {:?}",
        cluster.pioman(0).expect("pioman engine").stats()
    );
}
