//! Compute/collective overlap with nonblocking allreduce.
//!
//! Each rank posts a 1 MiB `iallreduce` (ring algorithm, chunk-pipelined
//! through the rendezvous path), computes while the collective
//! progresses from idle cores, then waits. The engine's overlap counter
//! shows how much of the collective ran behind the computation.
//!
//! ```sh
//! cargo run --release -p pm2-mpi --example allreduce
//! ```

use pm2_coll::ReduceOp;
use pm2_mpi::{Cluster, ClusterConfig, Comm};
use pm2_sim::SimDuration;
use std::cell::RefCell;
use std::rc::Rc;

const RANKS: usize = 4;
const LEN: usize = 1 << 20;
const COMPUTE_US: u64 = 300;

fn main() {
    let cluster = Cluster::build(ClusterConfig {
        nodes: RANKS,
        ..ClusterConfig::default()
    });
    let comms = Comm::world(&cluster);
    let done = Rc::new(RefCell::new(Vec::new()));
    for (rank, comm) in comms.iter().cloned().enumerate() {
        let done = Rc::clone(&done);
        cluster.spawn_on(rank, format!("rank{rank}"), move |ctx| async move {
            let data = vec![rank as u8; LEN];
            let posted = ctx.marcel().sim().now();
            let h = comm.iallreduce(&ctx, data, ReduceOp::WrapAdd8);
            // The application computes while the ring runs in background.
            ctx.compute(SimDuration::from_micros(COMPUTE_US)).await;
            let out = h.wait(&ctx).await;
            let total = ctx.marcel().sim().now().saturating_since(posted);
            let expected = (0..RANKS as u8).sum::<u8>();
            assert!(out.iter().all(|&b| b == expected));
            done.borrow_mut().push((rank, total.as_micros_f64()));
        });
    }
    cluster.run();

    println!(
        "{RANKS} ranks, {} allreduce + {COMPUTE_US}µs compute\n",
        fmt(LEN)
    );
    for (rank, us) in done.borrow().iter() {
        let c = comms[*rank].coll_counters();
        println!(
            "rank {rank}: post→result {us:7.1} µs   steps {:3}  chunks {:3}  overlap {:6.1} µs",
            c.steps,
            c.chunks,
            c.overlap_ns as f64 / 1000.0
        );
    }
    let c = comms[0].coll_counters();
    println!(
        "\nrank 0 overlapped {:.0}% of its compute window with the collective",
        (c.overlap_ns as f64 / 1000.0 / COMPUTE_US as f64 * 100.0).min(100.0)
    );
}

fn fmt(n: usize) -> String {
    if n >= 1 << 20 {
        format!("{} MiB", n >> 20)
    } else {
        format!("{} KiB", n >> 10)
    }
}
