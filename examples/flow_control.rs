//! Flow control: what happens when a sender overruns the receiver's
//! unexpected-message pool.
//!
//! ```sh
//! cargo run --release -p pm2-mpi --example flow_control
//! ```

use pm2_mpi::{Cluster, ClusterConfig};
use pm2_newmad::{EngineKind, Tag};
use pm2_sim::SimDuration;
use pm2_topo::NodeId;

fn main() {
    // A deliberately tiny 8 kB pool: a burst of 2 kB messages exhausts it.
    let cluster = Cluster::build(ClusterConfig {
        credit_bytes_per_peer: 8 << 10,
        ..ClusterConfig::paper_testbed(EngineKind::Pioman)
    });
    const N: u64 = 10;
    {
        let s = cluster.session(0).clone();
        cluster.spawn_on(0, "burst-sender", move |ctx| async move {
            let mut hs = Vec::new();
            for i in 0..N {
                hs.push(s.isend(&ctx, NodeId(1), Tag(i), vec![i as u8; 2048]).await);
            }
            for h in &hs {
                s.swait_send(h, &ctx).await;
            }
        });
    }
    {
        let s = cluster.session(1).clone();
        cluster.spawn_on(1, "late-receiver", move |ctx| async move {
            // Receiver is busy first: early messages land unexpected.
            ctx.compute(SimDuration::from_micros(80)).await;
            for i in 0..N {
                let data = s.recv(&ctx, Some(NodeId(0)), Tag(i)).await;
                assert_eq!(data, vec![i as u8; 2048]);
            }
        });
    }
    cluster.run();

    let tx = cluster.session(0).counters();
    let rx = cluster.session(1).counters();
    println!("burst of {N} x 2 kB messages into an 8 kB unexpected pool:");
    println!("  eager sends          : {}", tx.eager_msgs_tx);
    println!(
        "  demoted to rendezvous: {} (no credits -> zero-copy path)",
        tx.credit_fallbacks
    );
    println!("  credit frames back   : {}", rx.credits_returned);
    println!("  unexpected at rx     : {}", rx.unexpected);
    println!();
    println!("Every message still arrives intact: exhausting the pool degrades");
    println!("the transport to the handshake protocol instead of dropping data.");
}
