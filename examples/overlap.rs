//! Overlapping communication and computation: the paper's headline claim
//! at a single message size, for both engines (Figure 4's program).
//!
//! ```sh
//! cargo run --release -p pm2-mpi --example overlap
//! ```

use pm2_mpi::workloads::{run_overlap, OverlapParams};
use pm2_mpi::ClusterConfig;
use pm2_newmad::EngineKind;
use pm2_sim::SimDuration;

fn main() {
    let size = 8 << 10;
    let compute = SimDuration::from_micros(20);
    println!("isend({size}B); compute(20µs); swait()  —  half-round times\n");

    let reference = run_overlap(
        ClusterConfig::paper_testbed(EngineKind::Pioman),
        &OverlapParams {
            msg_len: size,
            compute: SimDuration::ZERO,
            iters: 20,
            warmup: 3,
        },
    );
    let p = OverlapParams {
        msg_len: size,
        compute,
        iters: 20,
        warmup: 3,
    };
    let sequential = run_overlap(ClusterConfig::paper_testbed(EngineKind::Sequential), &p);
    let pioman = run_overlap(ClusterConfig::paper_testbed(EngineKind::Pioman), &p);

    let r = reference.half_round_us.mean();
    let s = sequential.half_round_us.mean();
    let o = pioman.half_round_us.mean();
    println!("communication alone (reference): {r:6.2} µs");
    println!(
        "sequential engine (no overlap):  {s:6.2} µs  ≈ comm + comp = {:.2}",
        r + 20.0
    );
    println!(
        "PIOMAN engine (overlapped):      {o:6.2} µs  ≈ max(comm, comp) = {:.2}",
        r.max(20.0)
    );
    println!();
    println!(
        "overlap recovered {:.0}% of the communication time",
        (s - o) / r * 100.0
    );
}
