//! Multirail distribution: splitting a rendezvous transfer across two
//! network rails (one of NewMadeleine's strategy-layer optimizations).
//!
//! ```sh
//! cargo run --release -p pm2-mpi --example multirail
//! ```

use pm2_mpi::{Cluster, ClusterConfig};
use pm2_newmad::{EngineKind, Tag};
use pm2_topo::NodeId;
use std::cell::Cell;
use std::rc::Rc;

fn transfer(rails: usize, multirail: bool, bytes: usize) -> f64 {
    let cfg = ClusterConfig {
        rails,
        multirail,
        ..ClusterConfig::paper_testbed(EngineKind::Pioman)
    };
    let cluster = Cluster::build(cfg);
    let done = Rc::new(Cell::new(0u64));
    {
        let s = cluster.session(0).clone();
        cluster.spawn_on(0, "tx", move |ctx| async move {
            let h = s.isend(&ctx, NodeId(1), Tag(1), vec![0xcd; bytes]).await;
            s.swait_send(&h, &ctx).await;
        });
    }
    {
        let s = cluster.session(1).clone();
        let done = Rc::clone(&done);
        cluster.spawn_on(1, "rx", move |ctx| async move {
            let data = s.recv(&ctx, Some(NodeId(0)), Tag(1)).await;
            assert!(data.iter().all(|&b| b == 0xcd));
            done.set(ctx.marcel().sim().now().as_nanos());
        });
    }
    cluster.run();
    done.get() as f64 / 1000.0
}

fn main() {
    let bytes = 512 << 10;
    println!("512 kB rendezvous transfer, receive-side completion time:\n");
    let single = transfer(1, false, bytes);
    let dual = transfer(2, true, bytes);
    println!("  1 rail          : {single:8.1} µs");
    println!("  2 rails (split) : {dual:8.1} µs");
    println!(
        "\nThe payload is chunked across the rails; both wires transfer in\n\
         parallel, cutting the bulk time roughly in half ({:.2}x).",
        single / dual
    );
}
