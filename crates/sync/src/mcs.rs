//! MCS queue lock: contention-scalable mutual exclusion.

use crate::primitives::{AtomicBool, AtomicPtr, Ordering, UnsafeCell};
use std::ops::{Deref, DerefMut};
use std::ptr;

/// A Mellor-Crummey–Scott queue lock.
///
/// Under heavy contention, test-and-set locks make every waiter hammer
/// the same cache line. The MCS lock queues waiters in a linked list and
/// each spins on a flag in *its own* node — one remote write per handoff,
/// FIFO fairness for free. This is the textbook scalable lock (Rust
/// Atomics & Locks ch. 10 "Queue-Based Locks"); the engine uses it for
/// the NIC doorbell when many flows submit simultaneously.
///
/// The queue node lives on the waiter's stack; the guard borrows it, so
/// the API differs slightly from `SpinLock`: callers provide a
/// [`McsNode`].
///
/// # Example
/// ```
/// use pm2_sync::{McsLock, McsNode};
///
/// let lock = McsLock::new(0u32);
/// let mut node = McsNode::new();
/// {
///     let mut guard = lock.lock(&mut node);
///     *guard += 1;
/// }
/// assert_eq!(*lock.lock(&mut node), 1);
/// ```
pub struct McsLock<T: ?Sized> {
    tail: AtomicPtr<McsNode>,
    data: UnsafeCell<T>,
}

// SAFETY: mutual exclusion via the MCS queue discipline.
unsafe impl<T: ?Sized + Send> Send for McsLock<T> {}
unsafe impl<T: ?Sized + Send> Sync for McsLock<T> {}

/// A waiter's queue node. Reusable across acquisitions, but never while a
/// guard obtained with it is alive (the borrow checker enforces this).
pub struct McsNode {
    next: AtomicPtr<McsNode>,
    locked: AtomicBool,
}

impl McsNode {
    /// Creates a node.
    pub const fn new() -> Self {
        McsNode {
            next: AtomicPtr::new(ptr::null_mut()),
            locked: AtomicBool::new(false),
        }
    }
}

impl Default for McsNode {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> McsLock<T> {
    /// Creates an unlocked MCS lock.
    pub const fn new(value: T) -> Self {
        McsLock {
            tail: AtomicPtr::new(ptr::null_mut()),
            data: UnsafeCell::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> McsLock<T> {
    /// Acquires the lock, enqueueing `node` and spinning locally.
    pub fn lock<'a>(&'a self, node: &'a mut McsNode) -> McsGuard<'a, T> {
        node.next.store(ptr::null_mut(), Ordering::Relaxed);
        node.locked.store(true, Ordering::Relaxed);
        let node_ptr: *mut McsNode = node;
        let prev = self.tail.swap(node_ptr, Ordering::AcqRel);
        if !prev.is_null() {
            // SAFETY: `prev` is a node owned by a thread still inside
            // lock/unlock (it cannot be reused until it leaves the queue,
            // which requires linking us first).
            unsafe { (*prev).next.store(node_ptr, Ordering::Release) };
            // Local spin on our own flag.
            while node.locked.load(Ordering::Acquire) {
                crate::primitives::spin_loop();
            }
        }
        McsGuard {
            lock: self,
            node: node_ptr,
        }
    }

    /// True if some thread holds or waits for the lock (racy hint).
    pub fn is_contended(&self) -> bool {
        !self.tail.load(Ordering::Relaxed).is_null()
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

/// RAII guard for [`McsLock`].
#[must_use]
pub struct McsGuard<'a, T: ?Sized> {
    lock: &'a McsLock<T>,
    node: *mut McsNode,
}

impl<T: ?Sized> Deref for McsGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: we hold the lock.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for McsGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: we hold the lock.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for McsGuard<'_, T> {
    fn drop(&mut self) {
        let node = self.node;
        // SAFETY: `node` is the node we enqueued and still own.
        unsafe {
            let mut next = (*node).next.load(Ordering::Acquire);
            if next.is_null() {
                // No known successor: try to swing the tail back to empty.
                if self
                    .lock
                    .tail
                    .compare_exchange(node, ptr::null_mut(), Ordering::Release, Ordering::Relaxed)
                    .is_ok()
                {
                    return;
                }
                // A successor is in the middle of enqueueing: wait for the
                // link to appear.
                loop {
                    next = (*node).next.load(Ordering::Acquire);
                    if !next.is_null() {
                        break;
                    }
                    crate::primitives::spin_loop();
                }
            }
            (*next).locked.store(false, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_roundtrip() {
        let lock = McsLock::new(1);
        let mut node = McsNode::new();
        {
            let mut g = lock.lock(&mut node);
            *g += 1;
            assert!(lock.is_contended());
        }
        assert!(!lock.is_contended());
        assert_eq!(*lock.lock(&mut node), 2);
    }

    #[test]
    fn hammer_counter() {
        const THREADS: usize = 4;
        const ITERS: usize = 10_000;
        let lock = Arc::new(McsLock::new(0usize));
        let hs: Vec<_> = (0..THREADS)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    let mut node = McsNode::new();
                    for _ in 0..ITERS {
                        *lock.lock(&mut node) += 1;
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let mut node = McsNode::new();
        assert_eq!(*lock.lock(&mut node), THREADS * ITERS);
    }

    #[test]
    fn node_reuse_across_acquisitions() {
        let lock = McsLock::new(0);
        let mut node = McsNode::new();
        for i in 0..100 {
            let mut g = lock.lock(&mut node);
            assert_eq!(*g, i);
            *g += 1;
        }
    }
}
