//! Fair FIFO ticket spinlock.

use crate::primitives::{AtomicUsize, Ordering, UnsafeCell};
use crate::{Backoff, CachePadded};
use std::fmt;
use std::ops::{Deref, DerefMut};

/// A fair spinlock: threads acquire in strict arrival order.
///
/// A plain test-and-set lock ([`crate::SpinLock`]) lets a core that just
/// released the lock immediately re-acquire it (its cache still owns the
/// line), starving remote waiters. Request-submission serialization in the
/// engine wants fairness between communication flows, so the NIC doorbell
/// path uses a ticket lock: `next_ticket` is fetch-incremented on entry and
/// each waiter spins until `now_serving` equals its ticket.
///
/// The two counters live on separate cache lines ([`CachePadded`]) so that
/// arriving threads (writing `next_ticket`) do not disturb spinning threads
/// (reading `now_serving`).
///
/// # Example
/// ```
/// use pm2_sync::TicketLock;
/// let l = TicketLock::new(String::new());
/// l.lock().push_str("fifo");
/// assert_eq!(&*l.lock(), "fifo");
/// ```
pub struct TicketLock<T: ?Sized> {
    next_ticket: CachePadded<AtomicUsize>,
    now_serving: CachePadded<AtomicUsize>,
    data: UnsafeCell<T>,
}

// SAFETY: mutual exclusion is guaranteed by the ticket discipline.
unsafe impl<T: ?Sized + Send> Sync for TicketLock<T> {}
unsafe impl<T: ?Sized + Send> Send for TicketLock<T> {}

impl<T> TicketLock<T> {
    /// Creates an unlocked ticket lock protecting `value`.
    pub const fn new(value: T) -> Self {
        TicketLock {
            next_ticket: CachePadded::new(AtomicUsize::new(0)),
            now_serving: CachePadded::new(AtomicUsize::new(0)),
            data: UnsafeCell::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> TicketLock<T> {
    /// Acquires the lock, waiting in FIFO order.
    pub fn lock(&self) -> TicketLockGuard<'_, T> {
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        let backoff = Backoff::new();
        while self.now_serving.load(Ordering::Acquire) != ticket {
            backoff.snooze();
        }
        TicketLockGuard { lock: self }
    }

    /// Attempts to acquire the lock only if no one is waiting or holding.
    pub fn try_lock(&self) -> Option<TicketLockGuard<'_, T>> {
        let serving = self.now_serving.load(Ordering::Acquire);
        // Only take a ticket if we'd be served immediately; otherwise we
        // would be *obliged* to wait (tickets cannot be returned).
        if self
            .next_ticket
            .compare_exchange(serving, serving + 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            Some(TicketLockGuard { lock: self })
        } else {
            None
        }
    }

    /// Number of threads waiting or holding the lock (approximate).
    pub fn queue_len(&self) -> usize {
        self.next_ticket
            .load(Ordering::Relaxed)
            .wrapping_sub(self.now_serving.load(Ordering::Relaxed))
    }

    /// Returns a mutable reference to the protected value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: Default> Default for TicketLock<T> {
    fn default() -> Self {
        TicketLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for TicketLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("TicketLock").field("data", &&*g).finish(),
            None => f.write_str("TicketLock(<locked>)"),
        }
    }
}

/// RAII guard for [`TicketLock`]; serves the next ticket on drop.
#[must_use = "if unused the TicketLock will immediately unlock"]
pub struct TicketLockGuard<'a, T: ?Sized> {
    lock: &'a TicketLock<T>,
}

impl<T: ?Sized> Deref for TicketLockGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: holding the guard implies we own the serving ticket.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for TicketLockGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: holding the guard implies we own the serving ticket.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for TicketLockGuard<'_, T> {
    fn drop(&mut self) {
        // Release our critical section to the next ticket holder.
        let serving = self.lock.now_serving.load(Ordering::Relaxed);
        self.lock
            .now_serving
            .store(serving.wrapping_add(1), Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic() {
        let l = TicketLock::new(1);
        {
            let mut g = l.lock();
            *g += 1;
            assert!(l.try_lock().is_none());
        }
        assert_eq!(*l.lock(), 2);
        assert_eq!(l.queue_len(), 0);
    }

    #[test]
    fn hammer() {
        const THREADS: usize = 4;
        const ITERS: usize = 5_000;
        let l = Arc::new(TicketLock::new(0usize));
        let hs: Vec<_> = (0..THREADS)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..ITERS {
                        *l.lock() += 1;
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(*l.lock(), THREADS * ITERS);
    }

    #[test]
    fn try_lock_fails_when_held() {
        let l = TicketLock::new(());
        let g = l.lock();
        assert!(l.try_lock().is_none());
        drop(g);
        assert!(l.try_lock().is_some());
    }
}
