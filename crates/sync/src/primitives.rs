//! Primitive shim: one import path for every atomic/cell/sync type used by
//! this crate.
//!
//! Under the normal build this module re-exports `std::sync::atomic`,
//! `std::sync::{Mutex, Condvar}`, and a thin [`UnsafeCell`] wrapper, so it
//! compiles to exactly the std types with zero overhead. Under
//! `--cfg loom` it resolves to the bounded model checker in [`crate::model`]
//! instead, so the same primitive source code is exhaustively
//! schedule-explored by the loom test suite (`tests/loom.rs`).
//!
//! The rest of the workspace is *forbidden* (by the ci.sh lint gate) from
//! importing `std::sync::atomic` / `std::sync::Mutex` / `UnsafeCell`
//! directly: everything must go through `pm2-sync`, so that the
//! model-checked surface actually covers the workspace.
//!
//! [`UnsafeCell`] is shared by both modes and is **untracked** in the model
//! (its `get()` hands out a raw pointer the model cannot instrument); loom
//! tests check the *data* protected by a primitive with
//! [`crate::model::RaceCell`] instead.

/// Interior-mutability cell with the same API in both build modes.
///
/// A thin wrapper over [`std::cell::UnsafeCell`]; the indirection exists so
/// every primitive names one shim type, keeping the sources identical under
/// `cfg(loom)`.
#[derive(Debug, Default)]
#[repr(transparent)]
pub struct UnsafeCell<T: ?Sized>(std::cell::UnsafeCell<T>);

impl<T> UnsafeCell<T> {
    /// Create a new cell holding `value`.
    #[inline(always)]
    pub const fn new(value: T) -> Self {
        Self(std::cell::UnsafeCell::new(value))
    }

    /// Consume the cell and return the inner value.
    #[inline(always)]
    pub fn into_inner(self) -> T {
        self.0.into_inner()
    }
}

impl<T: ?Sized> UnsafeCell<T> {
    /// Raw pointer to the contents.
    #[inline(always)]
    pub const fn get(&self) -> *mut T {
        self.0.get()
    }

    /// Exclusive reference to the contents (safe: requires `&mut self`).
    #[inline(always)]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut()
    }
}

#[cfg(not(loom))]
pub use self::std_impl::*;

#[cfg(loom)]
pub use self::model_impl::*;

#[cfg(not(loom))]
mod std_impl {
    pub use std::sync::atomic::{
        compiler_fence, fence, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicU8, AtomicUsize,
        Ordering,
    };
    pub use std::sync::{Condvar, Mutex, MutexGuard};

    /// Processor spin hint (`PAUSE` on x86, `YIELD` on aarch64).
    #[inline(always)]
    pub fn spin_loop() {
        std::hint::spin_loop();
    }

    /// Yield the current OS thread to the scheduler.
    #[inline(always)]
    pub fn yield_now() {
        std::thread::yield_now();
    }

    /// Thread spawn/join; std's in the native build.
    pub mod thread {
        pub use std::thread::{spawn, JoinHandle};

        /// Spawn a named thread (name is advisory, used in panics/debuggers).
        pub fn spawn_named<F, T>(name: &str, f: F) -> JoinHandle<T>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            std::thread::Builder::new()
                .name(name.to_string())
                .spawn(f)
                .expect("failed to spawn thread")
        }
    }
}

#[cfg(loom)]
mod model_impl {
    pub use crate::model::atomic::{
        compiler_fence, fence, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicU8, AtomicUsize,
        Ordering,
    };
    pub use crate::model::sync::{Condvar, Mutex, MutexGuard};
    pub use crate::model::{spin_loop, yield_now};

    /// Thread spawn/join; model-aware under `cfg(loom)`.
    pub mod thread {
        pub use crate::model::thread::{spawn, JoinHandle};

        /// Spawn a named thread (the model ignores the name).
        pub fn spawn_named<F, T>(_name: &str, f: F) -> JoinHandle<T>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            spawn(f)
        }
    }
}
