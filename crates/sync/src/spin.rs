//! Test-and-test-and-set spinlock with exponential backoff.

use crate::primitives::{AtomicBool, Ordering, UnsafeCell};
use crate::Backoff;
use std::fmt;
use std::ops::{Deref, DerefMut};

/// A light mutual-exclusion lock that busy-waits.
///
/// This is the "light primitive" the paper proposes for serializing the
/// processing of individual communication events (§2.1): critical sections
/// are a few hundred nanoseconds (enqueue a request, flip a state machine),
/// so parking the thread through the OS would cost more than the wait
/// itself.
///
/// The implementation follows the classic test-and-test-and-set pattern:
/// the fast path is a single `compare_exchange`; under contention waiters
/// spin on a *plain load* (the shared line stays in the S state of the
/// coherence protocol) and only attempt the RMW when the lock looks free,
/// with exponential [`Backoff`] to bound bandwidth waste.
///
/// # Memory ordering
/// `Acquire` on lock, `Release` on unlock — everything written inside the
/// critical section happens-before the next acquisition.
///
/// # When *not* to use it
/// Long critical sections or oversubscribed systems: use a parking mutex.
/// The `abl_lock` benchmark in `pm2-bench` quantifies this trade-off.
///
/// # Example
/// ```
/// use pm2_sync::SpinLock;
/// let counter = SpinLock::new(0);
/// *counter.lock() += 1;
/// assert_eq!(*counter.lock(), 1);
/// assert!(counter.try_lock().is_some());
/// ```
pub struct SpinLock<T: ?Sized> {
    locked: AtomicBool,
    data: UnsafeCell<T>,
}

// SAFETY: SpinLock provides mutual exclusion, so it is Sync as long as the
// protected value can be sent between threads.
unsafe impl<T: ?Sized + Send> Sync for SpinLock<T> {}
unsafe impl<T: ?Sized + Send> Send for SpinLock<T> {}

impl<T> SpinLock<T> {
    /// Creates an unlocked spinlock protecting `value`.
    #[inline]
    pub const fn new(value: T) -> Self {
        SpinLock {
            locked: AtomicBool::new(false),
            data: UnsafeCell::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> SpinLock<T> {
    /// Acquires the lock, spinning until it becomes available.
    #[inline]
    pub fn lock(&self) -> SpinLockGuard<'_, T> {
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            return SpinLockGuard { lock: self };
        }
        self.lock_slow()
    }

    #[cold]
    fn lock_slow(&self) -> SpinLockGuard<'_, T> {
        let backoff = Backoff::new();
        loop {
            // Test: spin on a read-only load while the lock is held.
            while self.locked.load(Ordering::Relaxed) {
                backoff.snooze();
            }
            // Test-and-set: race for it.
            if self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return SpinLockGuard { lock: self };
            }
        }
    }

    /// Attempts to acquire the lock without spinning.
    #[inline]
    pub fn try_lock(&self) -> Option<SpinLockGuard<'_, T>> {
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(SpinLockGuard { lock: self })
        } else {
            None
        }
    }

    /// Returns `true` if the lock is currently held by some thread.
    ///
    /// Only a hint: the answer may be stale by the time it is observed.
    #[inline]
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }

    /// Returns a mutable reference to the protected value.
    ///
    /// No locking is needed: the `&mut self` receiver proves exclusivity.
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for SpinLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("SpinLock").field("data", &&*g).finish(),
            None => f.write_str("SpinLock(<locked>)"),
        }
    }
}

impl<T: Default> Default for SpinLock<T> {
    fn default() -> Self {
        SpinLock::new(T::default())
    }
}

/// RAII guard: the lock is released when the guard is dropped.
#[must_use = "if unused the SpinLock will immediately unlock"]
pub struct SpinLockGuard<'a, T: ?Sized> {
    lock: &'a SpinLock<T>,
}

impl<T: ?Sized> Deref for SpinLockGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: the guard proves exclusive access.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for SpinLockGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard proves exclusive access.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for SpinLockGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for SpinLockGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_mutual_exclusion() {
        let lock = SpinLock::new(0u32);
        {
            let mut g = lock.lock();
            *g += 1;
            assert!(lock.try_lock().is_none());
            assert!(lock.is_locked());
        }
        assert!(!lock.is_locked());
        assert_eq!(*lock.lock(), 1);
    }

    #[test]
    fn get_mut_bypasses_lock() {
        let mut lock = SpinLock::new(5);
        *lock.get_mut() = 7;
        assert_eq!(lock.into_inner(), 7);
    }

    #[test]
    fn hammer_counter() {
        const THREADS: usize = 4;
        const ITERS: usize = 10_000;
        let lock = Arc::new(SpinLock::new(0usize));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..ITERS {
                        *lock.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.lock(), THREADS * ITERS);
    }

    #[test]
    fn debug_formats() {
        let lock = SpinLock::new(3);
        assert!(format!("{lock:?}").contains('3'));
        let _g = lock.lock();
        assert!(format!("{lock:?}").contains("locked"));
    }
}
