//! A native (real OS threads) mini progress engine.
//!
//! The simulated stack reproduces the paper's *measurements*; this module
//! demonstrates the paper's *design* with real concurrency, end to end:
//!
//! * an asynchronous operation only **registers** a work item
//!   ([`NativeEngine::submit`] returns immediately);
//! * idle worker threads (the "idle cores") execute the expensive part in
//!   the background, serialized through the tasklet protocol;
//! * a thread reaching [`NativeEngine::wait`] first **helps** — it drains
//!   pending work items itself, exactly like "the message is sent inside
//!   the wait function" (§3.2) — and only then parks on an [`EventCount`].
//!
//! Used by the `bench_sync` criterion benches and by stress tests; it is
//! also a template for embedding the offload pattern in real Rust
//! services.

use crate::primitives::{AtomicBool, AtomicU64, Ordering};
use crate::{EventCount, MpmcQueue, TaskletExecutor, TaskletHandle};
use std::sync::Arc;

/// Completion handle of a submitted operation.
#[derive(Clone)]
pub struct NativeRequest {
    state: Arc<ReqState>,
}

struct ReqState {
    done: AtomicBool,
    event: EventCount,
}

impl NativeRequest {
    fn new() -> Self {
        NativeRequest {
            state: Arc::new(ReqState {
                done: AtomicBool::new(false),
                event: EventCount::new(),
            }),
        }
    }

    /// True once the operation ran.
    pub fn is_complete(&self) -> bool {
        self.state.done.load(Ordering::Acquire)
    }

    fn complete(&self) {
        self.state.done.store(true, Ordering::Release);
        self.state.event.signal();
    }
}

type WorkFn = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    queue: MpmcQueue<(WorkFn, NativeRequest)>,
    helped: AtomicU64,
    offloaded: AtomicU64,
}

impl Shared {
    /// Runs one pending work item; returns false if none was queued.
    fn run_one(&self, helping: bool) -> bool {
        match self.queue.pop() {
            Some((work, req)) => {
                work();
                req.complete();
                if helping {
                    self.helped.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.offloaded.fetch_add(1, Ordering::Relaxed);
                }
                true
            }
            None => false,
        }
    }
}

/// The engine: a tasklet pool plus a work queue.
///
/// # Example
/// ```
/// use pm2_sync::NativeEngine;
/// let engine = NativeEngine::new(2);
/// let req = engine.submit(|| { /* expensive submission */ });
/// // ... caller computes; an idle worker runs the closure ...
/// engine.wait(&req);
/// assert!(req.is_complete());
/// engine.shutdown();
/// ```
pub struct NativeEngine {
    executor: TaskletExecutor,
    shared: Arc<Shared>,
    progress: TaskletHandle,
}

impl NativeEngine {
    /// Spawns an engine with `workers` background threads.
    pub fn new(workers: usize) -> Self {
        let executor = TaskletExecutor::new(workers);
        let shared = Arc::new(Shared {
            queue: MpmcQueue::with_capacity(4096),
            helped: AtomicU64::new(0),
            offloaded: AtomicU64::new(0),
        });
        let progress = {
            let shared = Arc::clone(&shared);
            executor.register(move || {
                // Drain everything currently visible; schedules coalesce,
                // so a burst of submissions runs in one pass.
                while shared.run_one(false) {}
            })
        };
        NativeEngine {
            executor,
            shared,
            progress,
        }
    }

    /// Registers `work` for background execution; returns its handle.
    ///
    /// This is the `isend` analogue: cheap for the caller, the expensive
    /// part runs on whichever worker gets there first.
    pub fn submit(&self, work: impl FnOnce() + Send + 'static) -> NativeRequest {
        let req = NativeRequest::new();
        let mut item = (Box::new(work) as WorkFn, req.clone());
        loop {
            match self.shared.queue.push(item) {
                Ok(()) => break,
                Err(back) => {
                    item = back;
                    crate::primitives::yield_now();
                }
            }
        }
        self.progress.schedule();
        req
    }

    /// Waits for `req`, helping with pending work meanwhile.
    pub fn wait(&self, req: &NativeRequest) {
        loop {
            if req.is_complete() {
                return;
            }
            // Help: run pending work inline ("submitted during the wait").
            if self.shared.run_one(true) {
                continue;
            }
            if req.is_complete() {
                return;
            }
            // Nothing to help with: park until some completion fires.
            let seen = req.state.event.current();
            if req.is_complete() {
                return;
            }
            req.state.event.wait_past(seen);
        }
    }

    /// (background executions, helped-inline executions).
    pub fn stats(&self) -> (u64, u64) {
        (
            self.shared.offloaded.load(Ordering::Relaxed),
            self.shared.helped.load(Ordering::Relaxed),
        )
    }

    /// Total tasklet body executions (diagnostics).
    pub fn tasklet_runs(&self) -> u64 {
        self.executor.executed()
    }

    /// Stops the workers.
    pub fn shutdown(self) {
        self.executor.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn submitted_work_completes_in_background() {
        let engine = NativeEngine::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        let reqs: Vec<NativeRequest> = (0..16)
            .map(|_| {
                let hits = Arc::clone(&hits);
                engine.submit(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for r in &reqs {
            engine.wait(r);
        }
        assert_eq!(hits.load(Ordering::SeqCst), 16);
        let (off, helped) = engine.stats();
        assert_eq!(off + helped, 16);
        engine.shutdown();
    }

    #[test]
    fn wait_helps_when_workers_are_busy() {
        // One worker, blocked on a long item: the waiting thread must
        // execute its own work inline.
        let engine = NativeEngine::new(1);
        let gate = Arc::new(AtomicBool::new(false));
        let blocker = {
            let gate = Arc::clone(&gate);
            engine.submit(move || {
                while !gate.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            })
        };
        // Give the worker time to start the blocker.
        std::thread::sleep(Duration::from_millis(20));
        let hits = Arc::new(AtomicUsize::new(0));
        let mine = {
            let hits = Arc::clone(&hits);
            engine.submit(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            })
        };
        engine.wait(&mine);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        let (_, helped) = engine.stats();
        assert!(helped >= 1, "the waiter should have helped");
        gate.store(true, Ordering::Release);
        engine.wait(&blocker);
        engine.shutdown();
    }

    #[test]
    fn overlaps_with_caller_computation() {
        // The paper's pattern natively: submit, compute, wait. The work
        // should have completed during the computation.
        let engine = NativeEngine::new(2);
        let req = engine.submit(|| {
            std::thread::sleep(Duration::from_millis(5));
        });
        // "Compute" long enough for the background worker to finish.
        std::thread::sleep(Duration::from_millis(100));
        let t = std::time::Instant::now();
        engine.wait(&req);
        assert!(
            t.elapsed() < Duration::from_millis(50),
            "wait should be (almost) instantaneous after overlap"
        );
        let (off, helped) = engine.stats();
        assert_eq!((off, helped), (1, 0), "must have run in background");
        engine.shutdown();
    }

    #[test]
    fn heavy_mixed_load() {
        let engine = Arc::new(NativeEngine::new(3));
        let counter = Arc::new(AtomicUsize::new(0));
        let submitters: Vec<_> = (0..4)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    let mut reqs = Vec::new();
                    for _ in 0..200 {
                        let counter = Arc::clone(&counter);
                        reqs.push(engine.submit(move || {
                            counter.fetch_add(1, Ordering::SeqCst);
                        }));
                    }
                    for r in &reqs {
                        engine.wait(r);
                    }
                })
            })
            .collect();
        for s in submitters {
            s.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 800);
    }
}
