//! Wait group: block until N parallel activities finish.

use crate::primitives::{AtomicUsize, Ordering};
use crate::EventCount;
use std::sync::Arc;

/// Counts outstanding activities and releases waiters when it reaches zero.
///
/// Used by the benchmark harness to join fleets of communicating threads
/// without collecting join handles, and by tests to fence phases.
///
/// # Example
/// ```
/// use pm2_sync::WaitGroup;
///
/// let wg = WaitGroup::new();
/// for _ in 0..4 {
///     let work = wg.add();
///     std::thread::spawn(move || {
///         // ... do things ...
///         drop(work); // marks completion
///     });
/// }
/// wg.wait();
/// ```
#[derive(Clone, Debug)]
pub struct WaitGroup {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    count: AtomicUsize,
    done: EventCount,
}

/// Token representing one registered activity; completion on drop.
#[derive(Debug)]
pub struct WaitGroupToken {
    inner: Arc<Inner>,
}

impl WaitGroup {
    /// Creates a wait group with zero outstanding activities.
    pub fn new() -> Self {
        WaitGroup {
            inner: Arc::new(Inner {
                count: AtomicUsize::new(0),
                done: EventCount::new(),
            }),
        }
    }

    /// Registers one activity; dropping the token completes it.
    pub fn add(&self) -> WaitGroupToken {
        self.inner.count.fetch_add(1, Ordering::AcqRel);
        WaitGroupToken {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Number of outstanding activities.
    pub fn pending(&self) -> usize {
        self.inner.count.load(Ordering::Acquire)
    }

    /// Blocks until every registered token has been dropped.
    ///
    /// A wait group with no registrations returns immediately.
    pub fn wait(&self) {
        loop {
            let gen = self.inner.done.current();
            if self.inner.count.load(Ordering::Acquire) == 0 {
                return;
            }
            self.inner.done.wait_past(gen);
        }
    }
}

impl Default for WaitGroup {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for WaitGroupToken {
    fn drop(&mut self) {
        if self.inner.count.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.inner.done.signal();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_wait_returns() {
        WaitGroup::new().wait();
    }

    #[test]
    fn joins_spawned_threads() {
        let wg = WaitGroup::new();
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let token = wg.add();
            let hits = Arc::clone(&hits);
            std::thread::spawn(move || {
                hits.fetch_add(1, Ordering::SeqCst);
                drop(token);
            });
        }
        wg.wait();
        assert_eq!(hits.load(Ordering::SeqCst), 8);
        assert_eq!(wg.pending(), 0);
    }

    #[test]
    fn pending_tracks_tokens() {
        let wg = WaitGroup::new();
        let a = wg.add();
        let b = wg.add();
        assert_eq!(wg.pending(), 2);
        drop(a);
        assert_eq!(wg.pending(), 1);
        drop(b);
        assert_eq!(wg.pending(), 0);
    }
}
