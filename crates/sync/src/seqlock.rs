//! Sequence lock for read-mostly shared state.

use crate::primitives::{fence, AtomicUsize, Ordering, UnsafeCell};
use std::fmt;

/// A sequence lock: writers never block readers; readers retry.
///
/// The engine publishes small, frequently-read status words — e.g. the
/// per-core load snapshot PIOMAN consults to decide between polling and a
/// blocking call (§3.2 "MARCEL … provides information on the running
/// threads and the available CPUs"). Readers vastly outnumber writers and
/// must never make the writer (the scheduler tick) wait.
///
/// The sequence counter is even when idle and odd while a write is in
/// progress. A reader snapshots the counter, copies the value, and accepts
/// the copy only if the counter is unchanged and even.
///
/// `T: Copy` is required so that a torn read (which *does* transiently
/// happen) is harmless — the copy is discarded before use.
///
/// # Example
/// ```
/// use pm2_sync::SeqLock;
/// let load = SeqLock::new((0u32, 0u32)); // (running, idle)
/// load.write((7, 1));
/// assert_eq!(load.read(), (7, 1));
/// ```
pub struct SeqLock<T: Copy> {
    seq: AtomicUsize,
    data: UnsafeCell<T>,
}

// SAFETY: readers only ever observe fully-published values (validated by the
// sequence number); writers are exclusive by external discipline (single
// writer) or by the CAS in `write`.
unsafe impl<T: Copy + Send> Sync for SeqLock<T> {}
unsafe impl<T: Copy + Send> Send for SeqLock<T> {}

impl<T: Copy> SeqLock<T> {
    /// Creates a sequence lock holding `value`.
    pub const fn new(value: T) -> Self {
        SeqLock {
            seq: AtomicUsize::new(0),
            data: UnsafeCell::new(value),
        }
    }

    /// Reads the protected value, retrying while a write is in flight.
    pub fn read(&self) -> T {
        loop {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                crate::primitives::spin_loop();
                continue;
            }
            // SAFETY: value may be torn, but we validate with the sequence
            // number before returning it, and T: Copy means the transient
            // copy has no drop glue or invariants to violate.
            // A volatile read would be the letter-of-the-law approach; on
            // all supported platforms an ordinary read of Copy data that is
            // discarded on validation failure is the established pattern.
            let value = unsafe { std::ptr::read_volatile(self.data.get()) };
            fence(Ordering::Acquire);
            let s2 = self.seq.load(Ordering::Relaxed);
            if s1 == s2 {
                return value;
            }
            crate::primitives::spin_loop();
        }
    }

    /// Attempts one optimistic read; returns `None` if a writer interfered.
    pub fn try_read(&self) -> Option<T> {
        let s1 = self.seq.load(Ordering::Acquire);
        if s1 & 1 == 1 {
            return None;
        }
        // SAFETY: see `read`.
        let value = unsafe { std::ptr::read_volatile(self.data.get()) };
        fence(Ordering::Acquire);
        let s2 = self.seq.load(Ordering::Relaxed);
        (s1 == s2).then_some(value)
    }

    /// Publishes a new value.
    ///
    /// Writers are serialized against each other by spinning on the odd
    /// bit; the expected usage is a single writer (the scheduler tick), in
    /// which case the loop never spins.
    pub fn write(&self, value: T) {
        let mut s = self.seq.load(Ordering::Relaxed);
        loop {
            if s & 1 == 0 {
                match self.seq.compare_exchange_weak(
                    s,
                    s.wrapping_add(1),
                    Ordering::Acquire,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(cur) => s = cur,
                }
            } else {
                crate::primitives::spin_loop();
                s = self.seq.load(Ordering::Relaxed);
            }
        }
        // SAFETY: we hold the odd sequence number, excluding other writers;
        // readers validate and retry.
        unsafe { std::ptr::write_volatile(self.data.get(), value) };
        self.seq.store(s.wrapping_add(2), Ordering::Release);
    }

    /// Updates the value through a closure (read-modify-write).
    pub fn update<F: FnOnce(T) -> T>(&self, f: F) {
        // Single-writer usage; for multi-writer this is not atomic as an
        // RMW, but each individual write is still consistent.
        let cur = self.read();
        self.write(f(cur));
    }
}

impl<T: Copy + fmt::Debug> fmt::Debug for SeqLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("SeqLock").field(&self.read()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn read_after_write() {
        let l = SeqLock::new((1u64, 2u64));
        assert_eq!(l.read(), (1, 2));
        l.write((3, 4));
        assert_eq!(l.read(), (3, 4));
        assert_eq!(l.try_read(), Some((3, 4)));
    }

    #[test]
    fn update_applies_closure() {
        let l = SeqLock::new(10u32);
        l.update(|v| v * 2);
        assert_eq!(l.read(), 20);
    }

    /// Readers must never observe a half-written pair.
    #[test]
    fn no_torn_reads_under_concurrency() {
        let l = Arc::new(SeqLock::new((0u64, 0u64)));
        let stop = Arc::new(AtomicBool::new(false));

        let writer = {
            let l = Arc::clone(&l);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    // Invariant: second element is always twice the first.
                    l.write((i, i * 2));
                }
            })
        };

        let readers: Vec<_> = (0..3)
            .map(|_| {
                let l = Arc::clone(&l);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut checks = 0u32;
                    while checks < 20_000 && !stop.load(Ordering::Relaxed) {
                        let (a, b) = l.read();
                        assert_eq!(b, a * 2, "torn read observed");
                        checks += 1;
                    }
                })
            })
            .collect();

        for r in readers {
            r.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }
}
