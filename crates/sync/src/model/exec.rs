//! Execution state and token-passing scheduler for the bounded model
//! checker.
//!
//! One *execution* runs the checked closure once under a fully serialized
//! schedule: every model thread is a real OS thread, but exactly one holds
//! the token at any instant. Each instrumented operation (atomic op, cell
//! access, lock, yield) calls [`Exec::switch`], which consults the forced
//! schedule prefix chosen by the explorer, records the decision, and passes
//! the token if a different thread was chosen.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use super::clock::VectorClock;

/// Maximum model threads per execution (main + spawned).
pub(super) const MAX_THREADS: usize = 8;

/// Per-execution step cap: exceeding it means the schedule livelocked
/// (e.g. an unbounded spin loop that the checked code never exits).
pub(super) const MAX_STEPS: u64 = 100_000;

/// Panic payload used to unwind secondary threads after an abort; the
/// thread wrappers recognize and swallow it so only the first real failure
/// is reported.
pub(super) struct ModelAbort;

/// Why a model thread is not currently runnable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum BlockReason {
    /// Waiting to acquire the model mutex with this id.
    MutexLock(u64),
    /// Waiting for a notification on the model condvar with this id.
    CondvarWait(u64),
    /// Waiting for the model thread with this index to finish.
    Join(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum ThreadStatus {
    Runnable,
    Blocked(BlockReason),
    Finished,
}

/// One branchable scheduling decision (recorded when >1 thread was
/// runnable at a non-yield switch point).
#[derive(Debug, Clone)]
pub(super) struct ChoicePoint {
    /// Threads that were runnable at this point.
    pub runnable: Vec<usize>,
    /// The thread that was chosen to run next.
    pub chosen: usize,
    /// The thread that reached the switch point.
    pub prev: usize,
    /// Whether `prev` was still runnable (false at blocking points).
    pub prev_runnable: bool,
    /// Cumulative preemption count of the schedule before this decision.
    pub cost_before: u32,
}

pub(super) struct MutexState {
    pub locked: bool,
    pub sync: VectorClock,
}

#[derive(Default)]
pub(super) struct CondvarState {
    /// Threads currently blocked in `wait` on this condvar.
    pub waiters: Vec<usize>,
    pub sync: VectorClock,
}

/// Happens-before tracking state for one `RaceCell`.
#[derive(Default)]
pub(super) struct CellState {
    pub write_clock: VectorClock,
    pub read_clock: VectorClock,
    pub written: bool,
}

pub(super) struct ExecInner {
    pub statuses: Vec<ThreadStatus>,
    pub clocks: Vec<VectorClock>,
    pub current: usize,
    /// Forced choices (one per recorded `ChoicePoint`) replayed this run.
    pub prefix: Vec<usize>,
    pub choices: Vec<ChoicePoint>,
    /// Preemptions accumulated so far by the forced/default schedule.
    pub cost: u32,
    pub steps: u64,
    pub abort: bool,
    pub failure: Option<String>,
    /// Per-atomic release-sequence clocks, keyed by lazy id.
    pub atomic_sync: HashMap<u64, VectorClock>,
    pub mutexes: HashMap<u64, MutexState>,
    pub condvars: HashMap<u64, CondvarState>,
    pub cells: HashMap<u64, CellState>,
    pub os_handles: Vec<std::thread::JoinHandle<()>>,
    pub done: bool,
}

/// Shared state of one execution; every model thread holds an `Arc` to it.
pub(super) struct Exec {
    pub inner: Mutex<ExecInner>,
    pub cv: Condvar,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Exec>, usize)>> = const { RefCell::new(None) };
}

/// Run `f` with the current thread's execution context, if this thread is a
/// registered model thread. Returns `None` (and does not call `f`) when the
/// caller runs outside any `model()` execution — model types then degrade
/// to plain single-threaded behaviour.
pub(super) fn with_ctx<R>(f: impl FnOnce(&Arc<Exec>, usize) -> R) -> Option<R> {
    CTX.with(|c| {
        let borrow = c.borrow();
        borrow.as_ref().map(|(exec, tid)| f(exec, *tid))
    })
}

pub(super) fn set_ctx(ctx: Option<(Arc<Exec>, usize)>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

/// Globally unique lazy-id source for model atomics/mutexes/condvars/cells.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// A lazily assigned object identity, `const`-constructible so model types
/// keep the `const fn new` signature of their std counterparts.
pub(super) struct LazyId(AtomicU64);

impl LazyId {
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    pub fn get(&self) -> u64 {
        let id = self.0.load(Ordering::Relaxed);
        if id != 0 {
            return id;
        }
        let fresh = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        match self
            .0
            .compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => fresh,
            Err(existing) => existing,
        }
    }
}

impl Exec {
    pub fn new(prefix: Vec<usize>) -> Self {
        Self {
            inner: Mutex::new(ExecInner {
                statuses: Vec::new(),
                clocks: Vec::new(),
                current: 0,
                prefix,
                choices: Vec::new(),
                cost: 0,
                steps: 0,
                abort: false,
                failure: None,
                atomic_sync: HashMap::new(),
                mutexes: HashMap::new(),
                condvars: HashMap::new(),
                cells: HashMap::new(),
                os_handles: Vec::new(),
                done: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Lock the inner state, shrugging off poisoning (threads unwind through
    /// the guard during aborts by design).
    pub fn lock(&self) -> MutexGuard<'_, ExecInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record a failure (first one wins), abort the execution and wake every
    /// thread so it can unwind.
    pub fn fail(&self, g: &mut ExecInner, msg: String) {
        if g.failure.is_none() {
            g.failure = Some(msg);
        }
        g.abort = true;
        self.cv.notify_all();
    }

    fn runnable(g: &ExecInner) -> Vec<usize> {
        g.statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, ThreadStatus::Runnable))
            .map(|(i, _)| i)
            .collect()
    }

    /// Pick the next thread to run at a decision point and record it when
    /// branchable. `prev` is the thread relinquishing (or keeping) the
    /// token; `default` is the policy choice used beyond the forced prefix.
    fn pick(&self, g: &mut ExecInner, prev: usize, prev_runnable: bool, default: usize) -> usize {
        let runnable = Self::runnable(g);
        debug_assert!(!runnable.is_empty());
        if runnable.len() == 1 {
            return runnable[0];
        }
        let idx = g.choices.len();
        let chosen = if idx < g.prefix.len() {
            let forced = g.prefix[idx];
            if runnable.contains(&forced) {
                forced
            } else {
                // Divergent replay (checked closure was nondeterministic);
                // fall back to the default policy rather than wedge.
                default
            }
        } else {
            default
        };
        let cost_before = g.cost;
        if prev_runnable && chosen != prev {
            g.cost += 1;
        }
        g.choices.push(ChoicePoint {
            runnable,
            chosen,
            prev,
            prev_runnable,
            cost_before,
        });
        chosen
    }

    fn grant(&self, g: &mut ExecInner, next: usize) {
        g.current = next;
        self.cv.notify_all();
    }

    /// Wait until this thread holds the token and is runnable; panics with
    /// [`ModelAbort`] if the execution aborted.
    fn wait_for_token(&self, mut g: MutexGuard<'_, ExecInner>, tid: usize) {
        loop {
            if g.abort {
                drop(g);
                std::panic::panic_any(ModelAbort);
            }
            if g.current == tid && matches!(g.statuses[tid], ThreadStatus::Runnable) {
                return;
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn bump_steps(&self, g: &mut ExecInner) {
        g.steps += 1;
        if g.steps > MAX_STEPS {
            self.fail(
                g,
                format!(
                    "model: execution exceeded {MAX_STEPS} steps — \
                     likely a livelock (unbounded spin) in the checked code"
                ),
            );
            std::panic::panic_any(ModelAbort);
        }
    }

    /// Schedule point. `yielding` marks voluntary yields (spin hints,
    /// `yield_now`): the scheduler then *must* rotate to another runnable
    /// thread (bounding spin loops) and the decision is not branched on by
    /// the explorer, so preemption-bounded search stays finite.
    pub fn switch(self: &Arc<Self>, tid: usize, yielding: bool) {
        let mut g = self.lock();
        if g.abort {
            drop(g);
            std::panic::panic_any(ModelAbort);
        }
        debug_assert_eq!(g.current, tid);
        self.bump_steps(&mut g);
        let next = if yielding {
            // Deterministic fair rotation, never recorded as a choice.
            let runnable = Self::runnable(&g);
            *runnable
                .iter()
                .find(|&&t| t > tid)
                .or_else(|| runnable.first())
                .expect("yielding thread must itself be runnable")
        } else {
            self.pick(&mut g, tid, true, tid)
        };
        if next != tid {
            self.grant(&mut g, next);
            self.wait_for_token(g, tid);
        }
    }

    /// Mark `tid` blocked for `reason`, hand the token to another runnable
    /// thread (deadlock-checking), and return once `tid` has been woken and
    /// granted the token again.
    pub fn block(self: &Arc<Self>, tid: usize, reason: BlockReason) {
        let mut g = self.lock();
        if g.abort {
            drop(g);
            std::panic::panic_any(ModelAbort);
        }
        self.bump_steps(&mut g);
        g.statuses[tid] = ThreadStatus::Blocked(reason);
        if Self::runnable(&g).is_empty() {
            let blocked: Vec<String> = g
                .statuses
                .iter()
                .enumerate()
                .filter_map(|(i, s)| match s {
                    ThreadStatus::Blocked(r) => Some(format!("thread {i} blocked on {r:?}")),
                    _ => None,
                })
                .collect();
            self.fail(&mut g, format!("deadlock: {}", blocked.join(", ")));
            drop(g);
            std::panic::panic_any(ModelAbort);
        }
        let first = Self::runnable(&g)[0];
        let next = self.pick(&mut g, tid, false, first);
        self.grant(&mut g, next);
        self.wait_for_token(g, tid);
    }

    /// Wake every thread blocked for which `pred(reason)` holds.
    pub fn wake_where(g: &mut ExecInner, pred: impl Fn(&BlockReason) -> bool) {
        for s in g.statuses.iter_mut() {
            if let ThreadStatus::Blocked(r) = s {
                if pred(r) {
                    *s = ThreadStatus::Runnable;
                }
            }
        }
    }

    /// Register a new model thread; returns its index. The child's clock
    /// inherits everything the parent has seen (spawn edge).
    pub fn register_thread(&self, parent: Option<usize>) -> usize {
        let mut g = self.lock();
        let tid = g.statuses.len();
        assert!(
            tid < MAX_THREADS,
            "model: more than {MAX_THREADS} threads in one execution"
        );
        g.statuses.push(ThreadStatus::Runnable);
        let mut clock = VectorClock::new();
        if let Some(p) = parent {
            g.clocks[p].bump(p);
            clock.join(&g.clocks[p]);
        }
        clock.bump(tid);
        g.clocks.push(clock);
        tid
    }

    /// Mark `tid` finished, wake its joiners, and pass the token on (or
    /// declare the execution done / deadlocked).
    pub fn finish(self: &Arc<Self>, tid: usize) {
        let mut g = self.lock();
        g.statuses[tid] = ThreadStatus::Finished;
        Self::wake_where(&mut g, |r| matches!(r, BlockReason::Join(t) if *t == tid));
        let runnable = Self::runnable(&g);
        if let Some(&first) = runnable.first() {
            if g.current == tid {
                let next = self.pick(&mut g, tid, false, first);
                self.grant(&mut g, next);
            }
        } else if g
            .statuses
            .iter()
            .all(|s| matches!(s, ThreadStatus::Finished))
        {
            g.done = true;
            self.cv.notify_all();
        } else if !g.abort {
            let blocked: Vec<String> = g
                .statuses
                .iter()
                .enumerate()
                .filter_map(|(i, s)| match s {
                    ThreadStatus::Blocked(r) => Some(format!("thread {i} blocked on {r:?}")),
                    _ => None,
                })
                .collect();
            self.fail(&mut g, format!("deadlock: {}", blocked.join(", ")));
        }
        // Abort path: once every thread has unwound, flag completion so the
        // controller stops waiting.
        if g.abort
            && g.statuses
                .iter()
                .all(|s| matches!(s, ThreadStatus::Finished))
        {
            g.done = true;
            self.cv.notify_all();
        }
    }

    /// Entry gate for a freshly spawned model thread: wait to be scheduled.
    pub fn wait_first_schedule(&self, tid: usize) {
        let g = self.lock();
        self.wait_for_token(g, tid);
    }

    /// Apply happens-before effects of an atomic operation on object `id`.
    pub fn atomic_hb(&self, tid: usize, id: u64, acquire: bool, release: bool) {
        let mut g = self.lock();
        g.clocks[tid].bump(tid);
        if release {
            let clock = g.clocks[tid].clone();
            g.atomic_sync.entry(id).or_default().join(&clock);
        }
        if acquire {
            if let Some(sync) = g.atomic_sync.get(&id) {
                let sync = sync.clone();
                g.clocks[tid].join(&sync);
            }
        }
    }
}
