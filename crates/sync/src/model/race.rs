//! [`RaceCell`]: a test-facing cell that detects happens-before data races.

use super::exec::{with_ctx, LazyId};

/// A plain-data cell whose reads and writes are checked against the vector
/// clocks maintained by the model: a write must happen-after every prior
/// read and write, a read must happen-after every prior write. A violation
/// fails the model check with a diagnostic, exactly like loom's
/// `UnsafeCell` access tracking.
///
/// Loom test suites wrap the data *protected* by a primitive in a
/// `RaceCell`: if the primitive's atomics establish correct release/acquire
/// edges, every access is ordered and the check passes; a missing or
/// too-weak ordering (e.g. `Relaxed` where `Release` is required) shows up
/// as a race even though the explored schedules are serialized.
///
/// Outside a `model()` execution the cell degrades to an unchecked
/// single-threaded cell.
pub struct RaceCell<T> {
    data: std::cell::UnsafeCell<T>,
    id: LazyId,
}

// SAFETY: accesses are serialized by the model's token scheduler; the HB
// check reports (rather than prevents) logically racy accesses, which are
// still physically exclusive. Outside executions the user must keep it
// single-threaded — same contract as loom's cells in practice, enforced by
// usage (tests only access it through the primitive under test).
unsafe impl<T: Send> Send for RaceCell<T> {}
unsafe impl<T: Send> Sync for RaceCell<T> {}

impl<T> RaceCell<T> {
    /// Create a new cell holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            data: std::cell::UnsafeCell::new(value),
            id: LazyId::new(),
        }
    }

    fn check(&self, write: bool) {
        with_ctx(|exec, tid| {
            exec.switch(tid, false);
            let mut g = exec.lock();
            g.clocks[tid].bump(tid);
            let clock = g.clocks[tid].clone();
            let id = self.id.get();
            let st = g.cells.entry(id).or_default();
            let w_ok = !st.written || st.write_clock.le(&clock);
            let r_ok = !write || st.read_clock.le(&clock);
            if write {
                st.write_clock = clock.clone();
                st.read_clock = clock.clone();
                st.written = true;
            } else {
                st.read_clock.join(&clock);
            }
            if !(w_ok && r_ok) {
                let kind = if write { "write" } else { "read" };
                exec.fail(
                    &mut g,
                    format!(
                        "data race: unsynchronized {kind} of RaceCell by thread {tid} \
                         (a concurrent access is not ordered by happens-before)"
                    ),
                );
                drop(g);
                std::panic::panic_any(super::exec::ModelAbort);
            }
        });
    }

    /// Checked shared read of the value.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        self.check(false);
        // SAFETY: model threads are serialized; HB violations were reported
        // above rather than left undefined.
        f(unsafe { &*self.data.get() })
    }

    /// Checked exclusive write access to the value.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        self.check(true);
        // SAFETY: as in `with`.
        f(unsafe { &mut *self.data.get() })
    }

    /// Exclusive access without checking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: Copy> RaceCell<T> {
    /// Checked read of a `Copy` value.
    pub fn get(&self) -> T {
        self.with(|v| *v)
    }

    /// Checked write of a `Copy` value.
    pub fn set(&self, value: T) {
        self.with_mut(|v| *v = value);
    }
}

impl<T: Default> Default for RaceCell<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T> std::fmt::Debug for RaceCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RaceCell").finish_non_exhaustive()
    }
}
