//! Model-aware atomic types with the `std::sync::atomic` API surface.
//!
//! Every operation is a schedule point: the explorer may preempt the calling
//! thread immediately before the operation takes effect. The operation
//! itself executes on a plain std atomic — threads are fully serialized by
//! the token scheduler, so there is never a physical race — while
//! happens-before edges are tracked with vector clocks: `Release`-class
//! stores publish the writer's clock on the atomic, `Acquire`-class loads
//! join it. `Relaxed` operations create **no** edge, which is how
//! relaxed-ordering misuse becomes visible to [`super::RaceCell`] checks
//! even though the explored interleavings are sequentially consistent.

pub use std::sync::atomic::Ordering;

use super::exec::{with_ctx, LazyId};

fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// Schedule point + happens-before bookkeeping for one atomic op.
fn tracked_op(id: &LazyId, acquire: bool, release: bool) {
    with_ctx(|exec, tid| {
        exec.switch(tid, false);
        exec.atomic_hb(tid, id.get(), acquire, release);
    });
}

/// An atomic memory fence.
///
/// Modeled only as a schedule point: the vector-clock machinery tracks
/// per-object release/acquire edges, not fence-to-fence synchronization.
/// Invariants relying on fences (e.g. the SeqLock read path) must therefore
/// be checked through value-level assertions, not `RaceCell` clocks.
pub fn fence(_order: Ordering) {
    with_ctx(|exec, tid| exec.switch(tid, false));
}

/// A compiler-only fence; a no-op for the model (it constrains codegen, not
/// inter-thread visibility).
pub fn compiler_fence(_order: Ordering) {}

macro_rules! model_atomic_common {
    ($name:ident, $std:ident, $raw:ty) => {
        /// Model counterpart of the std atomic of the same name.
        pub struct $name {
            v: std::sync::atomic::$std,
            id: LazyId,
        }

        impl $name {
            /// Create a new atomic with the given initial value.
            pub const fn new(v: $raw) -> Self {
                Self {
                    v: std::sync::atomic::$std::new(v),
                    id: LazyId::new(),
                }
            }

            /// Load the current value.
            pub fn load(&self, order: Ordering) -> $raw {
                tracked_op(&self.id, is_acquire(order), false);
                self.v.load(Ordering::SeqCst)
            }

            /// Store a new value.
            pub fn store(&self, val: $raw, order: Ordering) {
                tracked_op(&self.id, false, is_release(order));
                self.v.store(val, Ordering::SeqCst)
            }

            /// Swap the value, returning the previous one.
            pub fn swap(&self, val: $raw, order: Ordering) -> $raw {
                tracked_op(&self.id, is_acquire(order), is_release(order));
                self.v.swap(val, Ordering::SeqCst)
            }

            /// Compare-and-exchange; orderings apply as in std.
            pub fn compare_exchange(
                &self,
                current: $raw,
                new: $raw,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$raw, $raw> {
                with_ctx(|exec, tid| exec.switch(tid, false));
                let r = self
                    .v
                    .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst);
                match r {
                    Ok(_) => with_ctx(|exec, tid| {
                        exec.atomic_hb(tid, self.id.get(), is_acquire(success), is_release(success))
                    }),
                    Err(_) => with_ctx(|exec, tid| {
                        exec.atomic_hb(tid, self.id.get(), is_acquire(failure), false)
                    }),
                };
                r
            }

            /// Weak compare-and-exchange. The model never fails spuriously,
            /// which only narrows the schedules a retry loop generates.
            pub fn compare_exchange_weak(
                &self,
                current: $raw,
                new: $raw,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$raw, $raw> {
                self.compare_exchange(current, new, success, failure)
            }

            /// Bitwise OR, returning the previous value.
            pub fn fetch_or(&self, val: $raw, order: Ordering) -> $raw {
                tracked_op(&self.id, is_acquire(order), is_release(order));
                self.v.fetch_or(val, Ordering::SeqCst)
            }

            /// Bitwise AND, returning the previous value.
            pub fn fetch_and(&self, val: $raw, order: Ordering) -> $raw {
                tracked_op(&self.id, is_acquire(order), is_release(order));
                self.v.fetch_and(val, Ordering::SeqCst)
            }

            /// Exclusive access to the value (no schedule point: requires
            /// `&mut self`, so no other thread can observe it).
            pub fn get_mut(&mut self) -> &mut $raw {
                self.v.get_mut()
            }

            /// Consume the atomic and return the value.
            pub fn into_inner(self) -> $raw {
                self.v.into_inner()
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_tuple(stringify!($name))
                    .field(&self.v.load(Ordering::SeqCst))
                    .finish()
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(Default::default())
            }
        }
    };
}

macro_rules! model_atomic_int {
    ($name:ident, $std:ident, $raw:ty) => {
        model_atomic_common!($name, $std, $raw);

        impl $name {
            /// Wrapping add, returning the previous value.
            pub fn fetch_add(&self, val: $raw, order: Ordering) -> $raw {
                tracked_op(&self.id, is_acquire(order), is_release(order));
                self.v.fetch_add(val, Ordering::SeqCst)
            }

            /// Wrapping subtract, returning the previous value.
            pub fn fetch_sub(&self, val: $raw, order: Ordering) -> $raw {
                tracked_op(&self.id, is_acquire(order), is_release(order));
                self.v.fetch_sub(val, Ordering::SeqCst)
            }

            /// Bitwise XOR, returning the previous value.
            pub fn fetch_xor(&self, val: $raw, order: Ordering) -> $raw {
                tracked_op(&self.id, is_acquire(order), is_release(order));
                self.v.fetch_xor(val, Ordering::SeqCst)
            }
        }
    };
}

model_atomic_common!(AtomicBool, AtomicBool, bool);
model_atomic_int!(AtomicU8, AtomicU8, u8);
model_atomic_int!(AtomicU32, AtomicU32, u32);
model_atomic_int!(AtomicU64, AtomicU64, u64);
model_atomic_int!(AtomicUsize, AtomicUsize, usize);

/// Model counterpart of [`std::sync::atomic::AtomicPtr`].
pub struct AtomicPtr<T> {
    v: std::sync::atomic::AtomicPtr<T>,
    id: LazyId,
}

impl<T> AtomicPtr<T> {
    /// Create a new atomic pointer.
    pub const fn new(p: *mut T) -> Self {
        Self {
            v: std::sync::atomic::AtomicPtr::new(p),
            id: LazyId::new(),
        }
    }

    /// Load the current pointer.
    pub fn load(&self, order: Ordering) -> *mut T {
        tracked_op(&self.id, is_acquire(order), false);
        self.v.load(Ordering::SeqCst)
    }

    /// Store a new pointer.
    pub fn store(&self, p: *mut T, order: Ordering) {
        tracked_op(&self.id, false, is_release(order));
        self.v.store(p, Ordering::SeqCst)
    }

    /// Swap the pointer, returning the previous one.
    pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
        tracked_op(&self.id, is_acquire(order), is_release(order));
        self.v.swap(p, Ordering::SeqCst)
    }

    /// Compare-and-exchange; orderings apply as in std.
    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        with_ctx(|exec, tid| exec.switch(tid, false));
        let r = self
            .v
            .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst);
        match r {
            Ok(_) => with_ctx(|exec, tid| {
                exec.atomic_hb(tid, self.id.get(), is_acquire(success), is_release(success))
            }),
            Err(_) => {
                with_ctx(|exec, tid| exec.atomic_hb(tid, self.id.get(), is_acquire(failure), false))
            }
        };
        r
    }

    /// Weak compare-and-exchange (never fails spuriously in the model).
    pub fn compare_exchange_weak(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        self.compare_exchange(current, new, success, failure)
    }

    /// Exclusive access to the pointer (no schedule point).
    pub fn get_mut(&mut self) -> &mut *mut T {
        self.v.get_mut()
    }
}

impl<T> std::fmt::Debug for AtomicPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicPtr")
            .field(&self.v.load(Ordering::SeqCst))
            .finish()
    }
}

impl<T> Default for AtomicPtr<T> {
    fn default() -> Self {
        Self::new(std::ptr::null_mut())
    }
}
