//! Model-aware `Mutex` and `Condvar` with (a subset of) the std API.
//!
//! Blocking participates in the schedule exploration: a thread that waits
//! on a held mutex or a condvar is marked non-runnable, so the explorer can
//! detect deadlocks and lost wakeups. Lock/unlock and notify/wake carry
//! vector-clock happens-before edges like release/acquire atomics.

use std::marker::PhantomData;

use super::exec::{with_ctx, BlockReason, Exec, LazyId, ThreadStatus};

/// Model counterpart of [`std::sync::Mutex`].
///
/// Lock state lives in the current execution keyed by a lazy id, so
/// `const fn new` works exactly like std's. Outside an execution the mutex
/// degrades to unchecked single-threaded access.
pub struct Mutex<T> {
    id: LazyId,
    data: std::cell::UnsafeCell<T>,
}

// SAFETY: the model serializes all accesses through the token scheduler
// (or the type is used single-threaded outside executions); same contract
// as std::sync::Mutex.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

/// RAII guard for [`Mutex`]; unlocks on drop.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    /// Guards are !Send like std's (the model ties unlock to the locking
    /// thread's schedule).
    _not_send: PhantomData<*mut ()>,
}

impl<T> Mutex<T> {
    /// Create a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Self {
            id: LazyId::new(),
            data: std::cell::UnsafeCell::new(value),
        }
    }

    /// Acquire the mutex, blocking the model thread until it is free.
    ///
    /// Returns `Result` so call sites can keep std's `.lock().unwrap()`
    /// shape; the model never poisons.
    #[allow(clippy::result_unit_err)]
    pub fn lock(&self) -> Result<MutexGuard<'_, T>, ()> {
        with_ctx(|exec, tid| {
            loop {
                exec.switch(tid, false);
                let mut g = exec.lock();
                let id = self.id.get();
                let m = g
                    .mutexes
                    .entry(id)
                    .or_insert_with(|| super::exec::MutexState {
                        locked: false,
                        sync: Default::default(),
                    });
                if !m.locked {
                    m.locked = true;
                    let sync = m.sync.clone();
                    g.clocks[tid].bump(tid);
                    g.clocks[tid].join(&sync);
                    return;
                }
                drop(g);
                exec.block(tid, BlockReason::MutexLock(id));
                // Woken: loop and re-contend (barging semantics).
            }
        });
        Ok(MutexGuard {
            lock: self,
            _not_send: PhantomData,
        })
    }

    fn unlock(&self) {
        with_ctx(|exec, tid| {
            let mut g = exec.lock();
            let id = self.id.get();
            g.clocks[tid].bump(tid);
            let clock = g.clocks[tid].clone();
            let m = g.mutexes.get_mut(&id).expect("unlock of untracked mutex");
            debug_assert!(m.locked, "unlock of unlocked model mutex");
            m.locked = false;
            m.sync.join(&clock);
            Exec::wake_where(
                &mut g,
                |r| matches!(r, BlockReason::MutexLock(i) if *i == id),
            );
        });
    }

    /// Exclusive access without locking (requires `&mut self`).
    #[allow(clippy::result_unit_err)] // mirrors std's LockResult-shaped API
    pub fn get_mut(&mut self) -> Result<&mut T, ()> {
        Ok(self.data.get_mut())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the model scheduler guarantees at most one guard exists.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref`.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.unlock();
    }
}

/// Model counterpart of [`std::sync::Condvar`].
pub struct Condvar {
    id: LazyId,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self { id: LazyId::new() }
    }

    /// Atomically release the guard's mutex and wait for a notification,
    /// then reacquire the mutex. No spurious wakeups in the model.
    #[allow(clippy::result_unit_err)]
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> Result<MutexGuard<'a, T>, ()> {
        let mutex = guard.lock;
        let waited = with_ctx(|exec, tid| {
            let cv_id = self.id.get();
            {
                let mut g = exec.lock();
                g.condvars.entry(cv_id).or_default().waiters.push(tid);
            }
            // Unlocking wakes mutex contenders; the waiter then parks on
            // the condvar. The registration above happened first, so a
            // notify between unlock and park is still delivered (no lost
            // wakeup window, matching std's guarantee).
            drop(guard);
            exec.block(tid, BlockReason::CondvarWait(cv_id));
            let mut g = exec.lock();
            let sync = g.condvars.entry(cv_id).or_default().sync.clone();
            g.clocks[tid].bump(tid);
            g.clocks[tid].join(&sync);
        });
        if waited.is_none() {
            // Outside an execution there is no other thread to notify us;
            // treat as an immediate (spurious) wakeup.
        }
        mutex.lock()
    }

    /// Wake all current waiters.
    pub fn notify_all(&self) {
        with_ctx(|exec, tid| {
            let mut g = exec.lock();
            let cv_id = self.id.get();
            g.clocks[tid].bump(tid);
            let clock = g.clocks[tid].clone();
            let cv = g.condvars.entry(cv_id).or_default();
            cv.sync.join(&clock);
            let waiters = std::mem::take(&mut cv.waiters);
            for w in waiters {
                if let ThreadStatus::Blocked(BlockReason::CondvarWait(i)) = g.statuses[w] {
                    if i == cv_id {
                        g.statuses[w] = ThreadStatus::Runnable;
                    }
                }
            }
        });
    }

    /// Wake one waiter (the longest-waiting one, deterministically).
    pub fn notify_one(&self) {
        with_ctx(|exec, tid| {
            let mut g = exec.lock();
            let cv_id = self.id.get();
            g.clocks[tid].bump(tid);
            let clock = g.clocks[tid].clone();
            let cv = g.condvars.entry(cv_id).or_default();
            cv.sync.join(&clock);
            if !cv.waiters.is_empty() {
                let w = cv.waiters.remove(0);
                if let ThreadStatus::Blocked(BlockReason::CondvarWait(i)) = g.statuses[w] {
                    if i == cv_id {
                        g.statuses[w] = ThreadStatus::Runnable;
                    }
                }
            }
        });
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}
