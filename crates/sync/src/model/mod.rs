//! In-tree bounded model checker (a loom-style CHESS explorer).
//!
//! The workspace is built offline, so the real `loom` crate cannot be added
//! as a dependency; this module provides the subset the `primitives` shim
//! needs, with the same shape: model-aware atomics ([`atomic`]), cells
//! ([`RaceCell`]), [`sync::Mutex`]/[`sync::Condvar`], and [`thread`] spawn
//! /join, plus a [`model`] entry point that explores thread interleavings.
//!
//! # How exploration works
//!
//! Every model thread is a real OS thread, but a token scheduler serializes
//! them: exactly one runs at a time, and every instrumented operation is a
//! *schedule point* where the explorer may switch threads. The explorer
//! runs the closure repeatedly, depth-first over scheduling decisions, with
//! **preemption bounding** (CHESS-style): schedules with more than
//! `LOOM_MAX_PREEMPTIONS` involuntary context switches are pruned.
//! Voluntary yields (`Backoff::snooze`, spin hints) rotate fairly and are
//! not branched on, so spin loops stay bounded and the search terminates.
//!
//! # What it checks — and what it cannot
//!
//! * Assertion failures in the test closure, under every explored schedule.
//! * Deadlocks (all threads blocked on model mutexes/condvars/joins).
//! * Happens-before data races via [`RaceCell`] and per-atomic vector
//!   clocks: `Release`/`Acquire` atomics create edges, `Relaxed` does not,
//!   so relaxed-ordering misuse is caught even though the explored
//!   interleavings themselves are sequentially consistent.
//! * **Not** checked: weak-memory reorderings (only SC interleavings are
//!   generated), fence-to-fence synchronization (fences are schedule points
//!   only), and raw `UnsafeCell` contents (untracked; wrap test data in
//!   [`RaceCell`] instead).

pub mod atomic;
mod clock;
mod exec;
mod race;
pub mod sync;
pub mod thread;

pub use race::RaceCell;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

use exec::{set_ctx, with_ctx, ChoicePoint, Exec, ModelAbort};

/// Voluntary spin hint: a fair-rotation schedule point in the model.
pub fn spin_loop() {
    if with_ctx(|exec, tid| exec.switch(tid, true)).is_none() {
        std::hint::spin_loop();
    }
}

/// Voluntary yield: a fair-rotation schedule point in the model.
pub fn yield_now() {
    if with_ctx(|exec, tid| exec.switch(tid, true)).is_none() {
        std::thread::yield_now();
    }
}

/// Serializes concurrent `model()` calls (the test harness runs tests in
/// parallel; executions use process-global thread-locals).
static MODEL_LOCK: Mutex<()> = Mutex::new(());

/// Default preemption bound when `LOOM_MAX_PREEMPTIONS` is unset.
pub const DEFAULT_MAX_PREEMPTIONS: u32 = 3;

/// Default execution cap when `MODEL_MAX_EXECUTIONS` is unset. Hitting the
/// cap prints a LOUD warning: coverage was truncated, never silently.
pub const DEFAULT_MAX_EXECUTIONS: u64 = 200_000;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Outcome {
    choices: Vec<ChoicePoint>,
    failure: Option<String>,
}

fn run_one(f: Arc<dyn Fn() + Send + Sync>, prefix: Vec<usize>) -> Outcome {
    let exec = Arc::new(Exec::new(prefix));
    let main_tid = exec.register_thread(None);
    debug_assert_eq!(main_tid, 0);
    let exec2 = exec.clone();
    let os = std::thread::Builder::new()
        .name("model-main".into())
        .spawn(move || {
            set_ctx(Some((exec2.clone(), 0)));
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f())) {
                if payload.downcast_ref::<ModelAbort>().is_none() {
                    let msg = thread::payload_to_string(payload.as_ref());
                    let mut g = exec2.lock();
                    exec2.fail(&mut g, format!("main model thread panicked: {msg}"));
                }
            }
            exec2.finish(0);
            set_ctx(None);
        })
        .expect("failed to spawn model main thread");
    {
        let mut g = exec.lock();
        while !g.done {
            g = exec.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }
    let _ = os.join();
    let (choices, failure, handles) = {
        let mut g = exec.lock();
        (
            std::mem::take(&mut g.choices),
            g.failure.take(),
            std::mem::take(&mut g.os_handles),
        )
    };
    for h in handles {
        let _ = h.join();
    }
    Outcome { choices, failure }
}

/// Exhaustively (up to the preemption bound) model-check `f`.
///
/// Runs `f` once per explored schedule; panics with a diagnostic and the
/// failing schedule prefix on the first assertion failure, detected
/// deadlock, livelock (step-cap overrun) or `RaceCell` race. `f` must be
/// deterministic apart from scheduling (no wall-clock, no OS randomness).
///
/// Tunables (environment): `LOOM_MAX_PREEMPTIONS` (default 3) bounds
/// involuntary context switches per schedule; `MODEL_MAX_EXECUTIONS`
/// (default 200 000) caps explored schedules, warning loudly if truncated.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let _serial = MODEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let bound = env_u64("LOOM_MAX_PREEMPTIONS", DEFAULT_MAX_PREEMPTIONS as u64) as u32;
    let max_execs = env_u64("MODEL_MAX_EXECUTIONS", DEFAULT_MAX_EXECUTIONS);
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
    let mut execs: u64 = 0;
    while let Some(prefix) = stack.pop() {
        execs += 1;
        let outcome = run_one(f.clone(), prefix.clone());
        if let Some(failure) = outcome.failure {
            panic!(
                "model check failed after {execs} execution(s):\n  {failure}\n  \
                 schedule prefix: {prefix:?}\n  \
                 (replay is deterministic; LOOM_MAX_PREEMPTIONS={bound})"
            );
        }
        // Expand untried alternatives at decision points introduced beyond
        // the forced prefix (earlier points were expanded by an ancestor).
        for i in prefix.len()..outcome.choices.len() {
            let cp = &outcome.choices[i];
            for &alt in &cp.runnable {
                if alt == cp.chosen {
                    continue;
                }
                let preemptive = cp.prev_runnable && alt != cp.prev;
                let cost = cp.cost_before + u32::from(preemptive);
                if cost <= bound {
                    let mut child: Vec<usize> =
                        outcome.choices[..i].iter().map(|c| c.chosen).collect();
                    child.push(alt);
                    stack.push(child);
                }
            }
        }
        if execs >= max_execs && !stack.is_empty() {
            eprintln!(
                "WARNING: model: hit MODEL_MAX_EXECUTIONS={max_execs} with {} schedule \
                 prefixes unexplored — COVERAGE IS INCOMPLETE. Raise MODEL_MAX_EXECUTIONS \
                 or lower LOOM_MAX_PREEMPTIONS (currently {bound}).",
                stack.len()
            );
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::atomic::{AtomicBool, AtomicUsize, Ordering};
    use super::*;

    fn fails_with(f: impl Fn() + Send + Sync + 'static, needle: &str) {
        let err = catch_unwind(AssertUnwindSafe(|| model(f)))
            .expect_err("model() should have reported a failure");
        let msg = thread::payload_to_string(err.as_ref());
        assert!(
            msg.contains(needle),
            "failure message {msg:?} does not contain {needle:?}"
        );
    }

    #[test]
    fn atomic_increment_is_sound() {
        model(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = n.clone();
                    thread::spawn(move || {
                        n.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::Relaxed), 2);
        });
    }

    #[test]
    fn load_store_increment_race_is_found() {
        // The classic torn increment: load; add; store. Some schedule makes
        // both threads load 0 and the final value 1.
        fails_with(
            || {
                let n = Arc::new(AtomicUsize::new(0));
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let n = n.clone();
                        thread::spawn(move || {
                            let v = n.load(Ordering::SeqCst);
                            n.store(v + 1, Ordering::SeqCst);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
                assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
            },
            "lost update",
        );
    }

    #[test]
    fn relaxed_publish_race_is_found() {
        // Publishing data behind a Relaxed flag store creates no HB edge:
        // the reader's RaceCell access must be flagged as a race.
        fails_with(
            || {
                let cell = Arc::new(RaceCell::new(0u32));
                let flag = Arc::new(AtomicBool::new(false));
                let (c2, f2) = (cell.clone(), flag.clone());
                let t = thread::spawn(move || {
                    c2.set(42);
                    f2.store(true, Ordering::Relaxed);
                });
                if flag.load(Ordering::Acquire) {
                    let _ = cell.get();
                }
                t.join().unwrap();
            },
            "data race",
        );
    }

    #[test]
    fn release_acquire_publish_is_clean() {
        model(|| {
            let cell = Arc::new(RaceCell::new(0u32));
            let flag = Arc::new(AtomicBool::new(false));
            let (c2, f2) = (cell.clone(), flag.clone());
            let t = thread::spawn(move || {
                c2.set(42);
                f2.store(true, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) {
                assert_eq!(cell.get(), 42);
            }
            t.join().unwrap();
        });
    }

    #[test]
    fn abba_deadlock_is_found() {
        fails_with(
            || {
                let a = Arc::new(sync::Mutex::new(0u32));
                let b = Arc::new(sync::Mutex::new(0u32));
                let (a2, b2) = (a.clone(), b.clone());
                let t = thread::spawn(move || {
                    let _ga = a2.lock().unwrap();
                    let _gb = b2.lock().unwrap();
                });
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
                drop((_ga, _gb));
                t.join().unwrap();
            },
            "deadlock",
        );
    }

    #[test]
    fn mutex_provides_exclusion() {
        model(|| {
            let m = Arc::new(sync::Mutex::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let m = m.clone();
                    thread::spawn(move || {
                        let mut g = m.lock().unwrap();
                        let v = *g;
                        *g = v + 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*m.lock().unwrap(), 2);
        });
    }

    #[test]
    fn condvar_wakeup_is_not_lost() {
        model(|| {
            let m = Arc::new(sync::Mutex::new(false));
            let cv = Arc::new(sync::Condvar::new());
            let (m2, cv2) = (m.clone(), cv.clone());
            let t = thread::spawn(move || {
                let mut g = m2.lock().unwrap();
                *g = true;
                drop(g);
                cv2.notify_all();
            });
            let mut g = m.lock().unwrap();
            while !*g {
                g = cv.wait(g).unwrap();
            }
            drop(g);
            t.join().unwrap();
        });
    }
}
