//! Model-aware thread spawn/join.
//!
//! Model threads are real OS threads, but they only run while holding the
//! scheduler token, so spawning participates in schedule exploration.
//! Spawn and join create the usual happens-before edges (parent→child on
//! spawn, child→joiner on join).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

use super::exec::{set_ctx, with_ctx, BlockReason, Exec, ModelAbort, ThreadStatus};

/// Handle to a spawned model thread; join blocks the model thread.
pub struct JoinHandle<T> {
    exec: Arc<Exec>,
    tid: usize,
    result: Arc<Mutex<Option<T>>>,
}

/// Spawn a model thread running `f`.
///
/// Must be called from inside a `model()` execution (the main closure or
/// another model thread); panics otherwise.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let ctx = with_ctx(|exec, tid| (exec.clone(), tid))
        .expect("model::thread::spawn called outside a model() execution");
    let (exec, parent) = ctx;
    let tid = exec.register_thread(Some(parent));
    let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
    let result2 = result.clone();
    let exec2 = exec.clone();
    let os = std::thread::Builder::new()
        .name(format!("model-{tid}"))
        .spawn(move || {
            set_ctx(Some((exec2.clone(), tid)));
            exec2.wait_first_schedule(tid);
            let out = catch_unwind(AssertUnwindSafe(f));
            match out {
                Ok(v) => {
                    *result2.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                }
                Err(payload) => {
                    if payload.downcast_ref::<ModelAbort>().is_none() {
                        // `payload.as_ref()`, not `&payload`: the latter
                        // unsize-coerces the Box itself into the trait
                        // object and every downcast misses.
                        let msg = payload_to_string(payload.as_ref());
                        let mut g = exec2.lock();
                        exec2.fail(&mut g, format!("thread {tid} panicked: {msg}"));
                    }
                }
            }
            exec2.finish(tid);
            set_ctx(None);
        })
        .expect("failed to spawn model OS thread");
    exec.lock().os_handles.push(os);
    JoinHandle { exec, tid, result }
}

pub(super) fn payload_to_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its result.
    pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
        let me = with_ctx(|_, tid| tid).expect("join outside a model() execution");
        loop {
            let finished = {
                let g = self.exec.lock();
                if g.abort {
                    drop(g);
                    std::panic::panic_any(ModelAbort);
                }
                matches!(g.statuses[self.tid], ThreadStatus::Finished)
            };
            if finished {
                break;
            }
            self.exec.block(me, BlockReason::Join(self.tid));
        }
        // Join edge: everything the child did happens-before the joiner.
        {
            let mut g = self.exec.lock();
            let child = g.clocks[self.tid].clone();
            g.clocks[me].bump(me);
            g.clocks[me].join(&child);
        }
        match self.result.lock().unwrap_or_else(|e| e.into_inner()).take() {
            Some(v) => Ok(v),
            // The child panicked (and the execution is aborting); surface a
            // generic payload — the explorer reports the recorded failure.
            None => Err(Box::new("model thread panicked")),
        }
    }
}
