//! Vector clocks for happens-before tracking inside the model checker.

/// A vector clock: one logical-time component per model thread.
///
/// Component `i` is the number of visible operations thread `i` had performed
/// the last time its knowledge was merged into this clock. `a ≤ b` (checked
/// by [`VectorClock::le`]) means every event recorded in `a` happens-before
/// (or is) the frontier recorded in `b`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorClock(Vec<u32>);

impl VectorClock {
    /// The empty clock (all components zero).
    pub const fn new() -> Self {
        Self(Vec::new())
    }

    fn grow(&mut self, len: usize) {
        if self.0.len() < len {
            self.0.resize(len, 0);
        }
    }

    /// Increment this clock's own component for thread `tid`.
    pub fn bump(&mut self, tid: usize) {
        self.grow(tid + 1);
        self.0[tid] += 1;
    }

    /// Pointwise maximum: merge everything `other` knows into `self`.
    pub fn join(&mut self, other: &VectorClock) {
        self.grow(other.0.len());
        for (i, &v) in other.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }

    /// `true` iff `self ≤ other` pointwise (self happens-before-or-equals).
    pub fn le(&self, other: &VectorClock) -> bool {
        self.0
            .iter()
            .enumerate()
            .all(|(i, &v)| v <= other.0.get(i).copied().unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_le() {
        let mut a = VectorClock::new();
        let mut b = VectorClock::new();
        a.bump(0);
        b.bump(1);
        assert!(!a.le(&b));
        assert!(!b.le(&a));
        let mut c = a.clone();
        c.join(&b);
        assert!(a.le(&c));
        assert!(b.le(&c));
        assert!(!c.le(&a));
    }

    #[test]
    fn empty_le_everything() {
        let e = VectorClock::new();
        let mut a = VectorClock::new();
        a.bump(3);
        assert!(e.le(&a));
        assert!(e.le(&e));
        assert!(!a.le(&e));
    }
}
