//! Bounded lock-free multi-producer multi-consumer ring buffer.

use crate::primitives::{AtomicUsize, Ordering, UnsafeCell};
use crate::CachePadded;
use std::fmt;
use std::mem::MaybeUninit;

/// Dmitry Vyukov's bounded MPMC queue.
///
/// Used for fixed-depth hardware-style queues in the engine: NIC doorbell
/// rings and per-core tasklet vectors, where the capacity is a hardware
/// parameter and "full" is meaningful back-pressure.
///
/// Each slot carries a sequence number; producers and consumers claim slots
/// with a CAS on a cache-padded cursor, then synchronize hand-off through
/// the slot's sequence number — so a slow producer never blocks consumers of
/// *other* slots.
///
/// # Example
/// ```
/// use pm2_sync::MpmcQueue;
/// let ring = MpmcQueue::with_capacity(2);
/// ring.push(1).unwrap();
/// ring.push(2).unwrap();
/// assert_eq!(ring.push(3), Err(3)); // full: back-pressure
/// assert_eq!(ring.pop(), Some(1));
/// ```
pub struct MpmcQueue<T> {
    buffer: Box<[Slot<T>]>,
    mask: usize,
    enqueue_pos: CachePadded<AtomicUsize>,
    dequeue_pos: CachePadded<AtomicUsize>,
}

struct Slot<T> {
    sequence: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

// SAFETY: slot hand-off is synchronized by per-slot sequence numbers.
unsafe impl<T: Send> Send for MpmcQueue<T> {}
unsafe impl<T: Send> Sync for MpmcQueue<T> {}

impl<T> MpmcQueue<T> {
    /// Creates a queue able to hold `capacity` elements.
    ///
    /// `capacity` is rounded up to the next power of two and must be ≥ 2.
    ///
    /// # Panics
    /// Panics if `capacity` is 0 or 1.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 2, "MpmcQueue capacity must be at least 2");
        let cap = capacity.next_power_of_two();
        let buffer: Box<[Slot<T>]> = (0..cap)
            .map(|i| Slot {
                sequence: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        MpmcQueue {
            buffer,
            mask: cap - 1,
            enqueue_pos: CachePadded::new(AtomicUsize::new(0)),
            dequeue_pos: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Capacity of the ring (a power of two).
    pub fn capacity(&self) -> usize {
        self.buffer.len()
    }

    /// Attempts to enqueue `value`; returns it back if the queue is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.buffer[pos & self.mask];
            let seq = slot.sequence.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                // Slot free for this lap; try to claim it.
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: we claimed the slot; nobody else touches
                        // it until we bump its sequence.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.sequence.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(cur) => pos = cur,
                }
            } else if diff < 0 {
                return Err(value); // full
            } else {
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Attempts to dequeue a value; returns `None` if the queue is empty.
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.buffer[pos & self.mask];
            let seq = slot.sequence.load(Ordering::Acquire);
            let diff = seq as isize - (pos.wrapping_add(1)) as isize;
            if diff == 0 {
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: we claimed a filled slot; read the value
                        // and release the slot for the next lap.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.sequence
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(value);
                    }
                    Err(cur) => pos = cur,
                }
            } else if diff < 0 {
                return None; // empty
            } else {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Approximate number of queued elements (racy; diagnostic only).
    pub fn len(&self) -> usize {
        let enq = self.enqueue_pos.load(Ordering::Relaxed);
        let deq = self.dequeue_pos.load(Ordering::Relaxed);
        enq.wrapping_sub(deq).min(self.capacity())
    }

    /// Whether the queue appears empty (racy; diagnostic only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for MpmcQueue<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

impl<T> fmt::Debug for MpmcQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MpmcQueue")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fills_and_drains() {
        let q = MpmcQueue::with_capacity(4);
        assert_eq!(q.capacity(), 4);
        for i in 0..4 {
            assert!(q.push(i).is_ok());
        }
        assert_eq!(q.push(99), Err(99));
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_rounds_up() {
        let q: MpmcQueue<u8> = MpmcQueue::with_capacity(5);
        assert_eq!(q.capacity(), 8);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_tiny_capacity() {
        let _ = MpmcQueue::<u8>::with_capacity(1);
    }

    #[test]
    fn wraps_many_laps() {
        let q = MpmcQueue::with_capacity(2);
        for i in 0..1000 {
            q.push(i).unwrap();
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn concurrent_producers_consumers_conserve_items() {
        const PRODUCERS: usize = 2;
        const CONSUMERS: usize = 2;
        const PER: usize = 20_000;
        let q = Arc::new(MpmcQueue::with_capacity(64));
        let produced_sum: u64 = (0..(PRODUCERS * PER) as u64).sum();

        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..PER {
                        let v = (p * PER + i) as u64;
                        let mut item = v;
                        loop {
                            match q.push(item) {
                                Ok(()) => break,
                                Err(back) => {
                                    item = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                })
            })
            .collect();

        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    let mut got = 0usize;
                    while got < PRODUCERS * PER / CONSUMERS {
                        if let Some(v) = q.pop() {
                            sum += v;
                            got += 1;
                        } else {
                            std::thread::yield_now();
                        }
                    }
                    sum
                })
            })
            .collect();

        for p in producers {
            p.join().unwrap();
        }
        let consumed_sum: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(consumed_sum, produced_sum);
        assert_eq!(q.pop(), None);
    }
}
