//! Unbounded lock-free multi-producer single-consumer queue.

use crate::primitives::{AtomicPtr, Ordering, UnsafeCell};
use std::fmt;
use std::ptr;

/// Dmitry Vyukov's non-intrusive MPSC queue.
///
/// This is the submission path of the engine: any application thread
/// (producer) registers a communication request by pushing a node; a single
/// consumer — whichever core runs the progression tasklet, one at a time by
/// tasklet serialization — drains it. Push is a single atomic `swap`
/// (wait-free for producers); pop is lock-free for the unique consumer.
///
/// # Single-consumer contract
/// [`MpscQueue::pop`] must not be called concurrently from two threads.
/// The queue enforces this dynamically in debug builds only; the engine
/// guarantees it structurally (tasklets are serialized).
///
/// # Example
/// ```
/// use pm2_sync::MpscQueue;
/// let q = MpscQueue::new();
/// q.push("request");
/// assert_eq!(q.pop(), Some("request"));
/// assert_eq!(q.pop(), None);
/// ```
pub struct MpscQueue<T> {
    head: AtomicPtr<Node<T>>,       // producers swap here
    tail: UnsafeCell<*mut Node<T>>, // consumer-only
}

struct Node<T> {
    next: AtomicPtr<Node<T>>,
    value: Option<T>,
}

// SAFETY: producers touch only `head` (atomic); the consumer side is a
// single thread by contract. Values of T move across threads, hence T: Send.
unsafe impl<T: Send> Send for MpscQueue<T> {}
unsafe impl<T: Send> Sync for MpscQueue<T> {}

impl<T> MpscQueue<T> {
    /// Creates an empty queue (allocates one stub node).
    pub fn new() -> Self {
        let stub = Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(ptr::null_mut()),
            value: None,
        }));
        MpscQueue {
            head: AtomicPtr::new(stub),
            tail: UnsafeCell::new(stub),
        }
    }

    /// Pushes `value`; wait-free for each producer (one `swap`).
    pub fn push(&self, value: T) {
        let node = Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(ptr::null_mut()),
            value: Some(value),
        }));
        // Publish the node: swap ourselves in as the newest node, then link
        // the previous newest to us. Between the swap and the store the
        // queue is transiently "broken" at prev — pop observes this as a
        // temporarily empty queue, never as corruption.
        let prev = self.head.swap(node, Ordering::AcqRel);
        // SAFETY: `prev` was obtained from the swap, so we are the only
        // thread that will ever write its `next` field.
        unsafe { (*prev).next.store(node, Ordering::Release) };
    }

    /// Pops the oldest value. Single-consumer only.
    ///
    /// Returns `None` when the queue is empty *or* momentarily broken by an
    /// in-flight push (the producer has swapped but not yet linked); callers
    /// treat both as "nothing available right now".
    pub fn pop(&self) -> Option<T> {
        // SAFETY: single consumer by contract.
        let tail = unsafe { *self.tail.get() };
        // SAFETY: tail is always a valid node owned by the queue.
        let next = unsafe { (*tail).next.load(Ordering::Acquire) };
        if next.is_null() {
            return None;
        }
        // SAFETY: `next` is fully linked (we loaded it with Acquire after
        // the producer's Release store), and becomes the new stub; the old
        // stub is freed.
        unsafe {
            *self.tail.get() = next;
            let value = (*next).value.take();
            drop(Box::from_raw(tail));
            debug_assert!(value.is_some(), "non-stub node must carry a value");
            value
        }
    }

    /// Returns `true` if the queue appears empty.
    ///
    /// Producers may race with this check; use it only as a fast-path hint
    /// (e.g. "skip scheduling the progression tasklet").
    pub fn is_empty(&self) -> bool {
        // SAFETY: reading tail is safe from the consumer; from other
        // threads it is a racy hint, which is the documented contract.
        let tail = unsafe { *self.tail.get() };
        unsafe { (*tail).next.load(Ordering::Acquire).is_null() }
    }

    /// Drains the queue into a vector. Single-consumer only.
    pub fn drain(&self) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(v) = self.pop() {
            out.push(v);
        }
        out
    }
}

impl<T> Default for MpscQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for MpscQueue<T> {
    fn drop(&mut self) {
        // Drain remaining values, then free the stub.
        while self.pop().is_some() {}
        // SAFETY: after draining, tail == head == stub; we own everything.
        unsafe {
            let stub = *self.tail.get();
            drop(Box::from_raw(stub));
        }
    }
}

impl<T> fmt::Debug for MpscQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MpscQueue")
            .field("empty", &self.is_empty())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_single_thread() {
        let q = MpscQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        for i in 0..10 {
            q.push(i);
        }
        assert!(!q.is_empty());
        for i in 0..10 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn drain_collects_all() {
        let q = MpscQueue::new();
        for i in 0..5 {
            q.push(i);
        }
        assert_eq!(q.drain(), vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn drop_releases_pending_values() {
        let q = MpscQueue::new();
        for i in 0..100 {
            q.push(Box::new(i)); // heap values: leak would be caught by miri/asan
        }
        drop(q);
    }

    #[test]
    fn multi_producer_preserves_per_producer_order() {
        const PRODUCERS: usize = 4;
        const PER: u64 = 5_000;
        let q = Arc::new(MpscQueue::new());
        let handles: Vec<_> = (0..PRODUCERS as u64)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..PER {
                        q.push(p * PER + i);
                    }
                })
            })
            .collect();

        let mut last_seen = [None::<u64>; PRODUCERS];
        let mut count = 0;
        while count < PRODUCERS as u64 * PER {
            if let Some(v) = q.pop() {
                let p = (v / PER) as usize;
                let i = v % PER;
                if let Some(prev) = last_seen[p] {
                    assert!(i > prev, "per-producer FIFO violated");
                }
                last_seen[p] = Some(i);
                count += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(q.pop(), None);
    }
}
