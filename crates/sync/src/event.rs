//! Event count: spin-then-park completion waiting.

use crate::primitives::{AtomicU64, Condvar, Mutex, Ordering};
use crate::Backoff;

/// A monotonically increasing event counter with efficient waiting.
///
/// The paper's `swait` needs to block a communicating thread until "the
/// request completed" while letting the completion be signalled from *any*
/// core (whichever ran the detection tasklet). `EventCount` implements the
/// standard two-phase wait:
///
/// 1. spin briefly with [`Backoff`] — completions in the engine are
///    typically microseconds away, so most waits never touch the OS;
/// 2. park on a condition variable, with the waiter count published
///    *before* re-checking the counter so a concurrent [`EventCount::signal`]
///    cannot be lost (the classic flag-then-recheck protocol).
///
/// The counter is a u64 "generation": waiting is always expressed as "wake
/// me when the count exceeds the value I observed", which makes the
/// primitive immune to missed wakeups and spurious ones alike.
///
/// # Example
/// ```
/// use pm2_sync::EventCount;
/// let ec = EventCount::new();
/// let seen = ec.current();
/// ec.signal();              // e.g. from a completion tasklet
/// ec.wait_past(seen);       // returns immediately: already signalled
/// ```
#[derive(Debug)]
pub struct EventCount {
    count: AtomicU64,
    waiters: Mutex<usize>,
    condvar: Condvar,
}

impl EventCount {
    /// Creates an event count at generation 0.
    pub fn new() -> Self {
        EventCount {
            count: AtomicU64::new(0),
            waiters: Mutex::new(0),
            condvar: Condvar::new(),
        }
    }

    /// Current generation.
    pub fn current(&self) -> u64 {
        self.count.load(Ordering::Acquire)
    }

    /// Increments the generation and wakes all parked waiters.
    pub fn signal(&self) {
        self.count.fetch_add(1, Ordering::Release);
        // Only take the lock if somebody might be parked; the load pairs
        // with the increment in `wait_past` (performed under the lock).
        let waiters = self.waiters.lock().expect("event count lock poisoned");
        if *waiters > 0 {
            self.condvar.notify_all();
        }
    }

    /// Blocks until the generation exceeds `seen`.
    ///
    /// `seen` is the value a prior call to [`EventCount::current`] returned;
    /// if the event already happened, this returns immediately.
    pub fn wait_past(&self, seen: u64) {
        // Phase 1: optimistic spinning.
        let backoff = Backoff::new();
        while !backoff.is_completed() {
            if self.count.load(Ordering::Acquire) > seen {
                return;
            }
            backoff.snooze();
        }
        // Phase 2: park.
        let mut waiters = self.waiters.lock().expect("event count lock poisoned");
        *waiters += 1;
        // Re-check under the lock: a signal between phase 1 and here took
        // the same lock, so it either saw our registration or bumped the
        // counter before we re-check.
        while self.count.load(Ordering::Acquire) <= seen {
            waiters = self
                .condvar
                .wait(waiters)
                .expect("event count lock poisoned");
        }
        *waiters -= 1;
    }

    /// Convenience: waits for the *next* signal after now.
    pub fn wait_next(&self) {
        self.wait_past(self.current());
    }
}

impl Default for EventCount {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn immediate_return_if_already_signalled() {
        let ec = EventCount::new();
        let seen = ec.current();
        ec.signal();
        ec.wait_past(seen); // must not block
        assert_eq!(ec.current(), 1);
    }

    #[test]
    fn cross_thread_wakeup() {
        let ec = Arc::new(EventCount::new());
        let seen = ec.current();
        let waiter = {
            let ec = Arc::clone(&ec);
            std::thread::spawn(move || {
                ec.wait_past(seen);
                ec.current()
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        ec.signal();
        assert!(waiter.join().unwrap() >= 1);
    }

    #[test]
    fn many_waiters_all_released() {
        let ec = Arc::new(EventCount::new());
        let seen = ec.current();
        let waiters: Vec<_> = (0..8)
            .map(|_| {
                let ec = Arc::clone(&ec);
                std::thread::spawn(move || ec.wait_past(seen))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(10));
        ec.signal();
        for w in waiters {
            w.join().unwrap();
        }
    }

    #[test]
    fn generations_are_monotonic() {
        let ec = EventCount::new();
        for i in 1..=100 {
            ec.signal();
            assert_eq!(ec.current(), i);
        }
    }
}
