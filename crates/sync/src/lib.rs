//! Native (real OS-thread) concurrency primitives for the PM2-RS engine.
//!
//! The paper's §2.1 argues that an event-driven engine can replace a
//! library-wide mutex with *lightweight* per-event synchronization, because
//! each communication operation runs for a very short time:
//!
//! > "As the communication processing runs for a very short period of time,
//! > the synchronization can be achieved by using light primitives such as
//! > spinlocks."
//!
//! This crate provides those light primitives as real multi-threaded Rust:
//!
//! * [`SpinLock`] — test-and-test-and-set lock with exponential backoff;
//! * [`TicketLock`] — fair FIFO spinlock;
//! * [`SeqLock`] — sequence lock for read-mostly small data;
//! * [`MpscQueue`] — unbounded lock-free multi-producer single-consumer
//!   queue (Vyukov), used for request submission lists;
//! * [`MpmcQueue`] — bounded lock-free multi-producer multi-consumer ring;
//! * [`EventCount`] — parking/wakeup primitive for completion waiting;
//! * [`Tasklet`] / [`TaskletExecutor`] — a Linux-style tasklet engine
//!   (schedule once, run on exactly one CPU at a time, serialized per
//!   tasklet) executed by a pool of worker threads;
//! * [`CachePadded`] and [`Backoff`] — supporting utilities.
//!
//! The discrete-event simulation in `pm2-sim` reuses the same *state
//! machines* (notably the tasklet one) under virtual time; this crate is the
//! native, stress-testable incarnation.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod backoff;
mod cache_padded;
mod event;
mod mcs;
pub mod model;
mod mpmc;
mod mpsc;
mod native;
pub mod primitives;
mod rwspin;
mod seqlock;
mod spin;
mod tasklet;
mod ticket;
mod waitgroup;

pub use backoff::{exp_factor, Backoff};
pub use cache_padded::CachePadded;
pub use event::EventCount;
pub use mcs::{McsGuard, McsLock, McsNode};
pub use mpmc::MpmcQueue;
pub use mpsc::MpscQueue;
pub use native::{NativeEngine, NativeRequest};
pub use rwspin::{RwReadGuard, RwSpinLock, RwWriteGuard};
pub use seqlock::SeqLock;
pub use spin::{SpinLock, SpinLockGuard};
pub use tasklet::{Tasklet, TaskletExecutor, TaskletHandle, TaskletState};
pub use ticket::{TicketLock, TicketLockGuard};
pub use waitgroup::WaitGroup;
