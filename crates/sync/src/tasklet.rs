//! Native tasklet engine with Linux `tasklet_struct` semantics.
//!
//! Marcel "extensively relies on the concept of tasklets" (§3.1):
//! high-priority deferred work items with three guarantees that make them
//! ideal for serializing communication progress without a global lock:
//!
//! 1. **Coalescing** — scheduling an already-scheduled tasklet is a no-op;
//! 2. **Self-exclusion** — a tasklet never runs on two CPUs at once, so its
//!    body needs no internal locking against itself;
//! 3. **Promptness** — a scheduled tasklet runs as soon as a worker reaches
//!    a safe point.
//!
//! This module is the real-threads incarnation used by the native progress
//! engine and by the stress tests; `pm2-marcel` re-implements the identical
//! state machine under virtual time.

use crate::primitives::thread::JoinHandle;
use crate::primitives::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use crate::{EventCount, MpmcQueue};
use std::fmt;
use std::sync::Arc;

/// Tasklet state bits (mirrors Linux `TASKLET_STATE_SCHED` / `_RUN`).
const SCHEDULED: u8 = 0b01;
const RUNNING: u8 = 0b10;

/// Observable state of a tasklet, for diagnostics and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskletState {
    /// Not scheduled, not running.
    Idle,
    /// Queued for execution.
    Scheduled,
    /// Currently executing on some worker.
    Running,
    /// Executing, and re-scheduled during execution (will run again).
    RunningScheduled,
}

/// A deferred work item with Linux-tasklet semantics.
pub struct Tasklet {
    state: AtomicU8,
    disable_count: AtomicU32,
    runs: AtomicU64,
    coalesced: AtomicU64,
    func: Box<dyn Fn() + Send + Sync + 'static>,
}

impl Tasklet {
    /// Creates a tasklet executing `func` each time it is scheduled.
    pub fn new<F: Fn() + Send + Sync + 'static>(func: F) -> Arc<Self> {
        Arc::new(Tasklet {
            state: AtomicU8::new(0),
            disable_count: AtomicU32::new(0),
            runs: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            func: Box::new(func),
        })
    }

    /// Current state snapshot.
    pub fn state(&self) -> TaskletState {
        match self.state.load(Ordering::Acquire) {
            0 => TaskletState::Idle,
            s if s == SCHEDULED => TaskletState::Scheduled,
            s if s == RUNNING => TaskletState::Running,
            _ => TaskletState::RunningScheduled,
        }
    }

    /// Number of times the body has executed.
    pub fn run_count(&self) -> u64 {
        self.runs.load(Ordering::Relaxed)
    }

    /// Number of `schedule` calls that coalesced into an existing one.
    pub fn coalesced_count(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Forbids execution until a matching [`Tasklet::enable`]. Nestable.
    ///
    /// A disabled tasklet can still be *scheduled*; it runs once re-enabled.
    pub fn disable(&self) {
        self.disable_count.fetch_add(1, Ordering::AcqRel);
    }

    /// Re-allows execution (one level).
    ///
    /// # Panics
    /// Panics if called more times than [`Tasklet::disable`].
    pub fn enable(&self) {
        let prev = self.disable_count.fetch_sub(1, Ordering::AcqRel);
        assert!(prev > 0, "Tasklet::enable without matching disable");
    }

    fn is_disabled(&self) -> bool {
        self.disable_count.load(Ordering::Acquire) > 0
    }

    /// Marks scheduled; returns `true` if the caller must enqueue it.
    fn mark_scheduled(&self) -> bool {
        let prev = self.state.fetch_or(SCHEDULED, Ordering::AcqRel);
        if prev & SCHEDULED != 0 {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            false
        } else {
            true
        }
    }

    /// Attempts to claim the RUN bit; `false` if already running elsewhere.
    fn try_lock_run(&self) -> bool {
        self.state.fetch_or(RUNNING, Ordering::AcqRel) & RUNNING == 0
    }

    fn unlock_run(&self) {
        self.state.fetch_and(!RUNNING, Ordering::Release);
    }

    fn clear_scheduled(&self) {
        self.state.fetch_and(!SCHEDULED, Ordering::AcqRel);
    }

    fn is_scheduled(&self) -> bool {
        self.state.load(Ordering::Acquire) & SCHEDULED != 0
    }
}

impl fmt::Debug for Tasklet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tasklet")
            .field("state", &self.state())
            .field("runs", &self.run_count())
            .finish()
    }
}

/// Shared handle used to schedule a tasklet onto an executor.
#[derive(Clone)]
pub struct TaskletHandle {
    tasklet: Arc<Tasklet>,
    executor: Arc<ExecutorShared>,
}

impl TaskletHandle {
    /// Schedules the tasklet. Coalesces if already scheduled.
    ///
    /// Returns `true` if this call enqueued it, `false` if it coalesced.
    pub fn schedule(&self) -> bool {
        if self.tasklet.mark_scheduled() {
            self.executor.enqueue(Arc::clone(&self.tasklet));
            true
        } else {
            false
        }
    }

    /// Access to the underlying tasklet (state inspection, disable/enable).
    pub fn tasklet(&self) -> &Arc<Tasklet> {
        &self.tasklet
    }
}

impl fmt::Debug for TaskletHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("TaskletHandle").field(&self.tasklet).finish()
    }
}

struct ExecutorShared {
    queue: MpmcQueue<Arc<Tasklet>>,
    work: EventCount,
    shutdown: AtomicBool,
    executed: AtomicU64,
}

impl ExecutorShared {
    fn enqueue(&self, t: Arc<Tasklet>) {
        let mut item = t;
        // The ring is sized generously; if it is momentarily full, yield
        // and retry — dropping a scheduled tasklet would lose progress.
        loop {
            match self.queue.push(item) {
                Ok(()) => break,
                Err(back) => {
                    item = back;
                    crate::primitives::yield_now();
                }
            }
        }
        self.work.signal();
    }
}

/// A pool of worker threads executing [`Tasklet`]s.
///
/// Workers model the "idle cores" of the paper: they sleep until a tasklet
/// is scheduled and then race to execute it under the tasklet's
/// self-exclusion protocol.
pub struct TaskletExecutor {
    shared: Arc<ExecutorShared>,
    workers: Vec<JoinHandle<()>>,
}

impl TaskletExecutor {
    /// Spawns `workers` executor threads.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        let shared = Arc::new(ExecutorShared {
            queue: MpmcQueue::with_capacity(1024),
            work: EventCount::new(),
            shutdown: AtomicBool::new(false),
            executed: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                crate::primitives::thread::spawn_named(&format!("pm2-tasklet-{i}"), move || {
                    worker_loop(&shared)
                })
            })
            .collect();
        TaskletExecutor {
            shared,
            workers: handles,
        }
    }

    /// Registers a tasklet body and returns a schedulable handle.
    pub fn register<F: Fn() + Send + Sync + 'static>(&self, func: F) -> TaskletHandle {
        TaskletHandle {
            tasklet: Tasklet::new(func),
            executor: Arc::clone(&self.shared),
        }
    }

    /// Wraps an existing tasklet in a handle bound to this executor.
    pub fn handle_for(&self, tasklet: Arc<Tasklet>) -> TaskletHandle {
        TaskletHandle {
            tasklet,
            executor: Arc::clone(&self.shared),
        }
    }

    /// Total tasklet bodies executed by this pool.
    pub fn executed(&self) -> u64 {
        self.shared.executed.load(Ordering::Relaxed)
    }

    /// Stops the workers after the queue drains of currently-queued items.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work.signal();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for TaskletExecutor {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work.signal();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl fmt::Debug for TaskletExecutor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaskletExecutor")
            .field("workers", &self.workers.len())
            .field("executed", &self.executed())
            .finish()
    }
}

fn worker_loop(shared: &ExecutorShared) {
    loop {
        let seen = shared.work.current();
        match shared.queue.pop() {
            Some(tasklet) => run_one(shared, tasklet),
            None => {
                if shared.shutdown.load(Ordering::Acquire) {
                    // An enqueue may have landed between the failed pop and
                    // the flag load; the shutdown contract says every
                    // tasklet scheduled before shutdown() runs, so drain
                    // until the queue is empty *after* observing the flag.
                    // (Found by the loom suite: a one-worker executor lost
                    // a scheduled tasklet when shutdown raced the enqueue.)
                    while let Some(tasklet) = shared.queue.pop() {
                        run_one(shared, tasklet);
                    }
                    return;
                }
                shared.work.wait_past(seen);
                // Wake peers too in case several items arrived at once.
            }
        }
    }
}

/// Executes one dequeued tasklet under the SCHED/RUN protocol.
fn run_one(shared: &ExecutorShared, tasklet: Arc<Tasklet>) {
    if tasklet.is_disabled() {
        // Keep it pending: push back and let someone retry later. Yield so
        // a disabling thread gets CPU time to re-enable.
        crate::primitives::yield_now();
        shared.enqueue(tasklet);
        return;
    }
    if !tasklet.try_lock_run() {
        // Another worker is running it right now; Linux re-raises the
        // softirq in this case — we re-enqueue.
        shared.enqueue(tasklet);
        return;
    }
    // We own the RUN bit. Clear SCHED so schedules during the run enqueue a
    // fresh execution.
    tasklet.clear_scheduled();
    (tasklet.func)();
    tasklet.runs.fetch_add(1, Ordering::Relaxed);
    shared.executed.fetch_add(1, Ordering::Relaxed);
    tasklet.unlock_run();
    // A schedule that happened while RUNNING was set has already enqueued
    // the tasklet again (mark_scheduled saw SCHED==0); nothing more to do.
    let _ = tasklet.is_scheduled();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::{Duration, Instant};

    fn wait_until(deadline_ms: u64, cond: impl Fn() -> bool) -> bool {
        let start = Instant::now();
        while start.elapsed() < Duration::from_millis(deadline_ms) {
            if cond() {
                return true;
            }
            std::thread::yield_now();
        }
        cond()
    }

    #[test]
    fn runs_once_per_schedule() {
        let exec = TaskletExecutor::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        let h = {
            let hits = Arc::clone(&hits);
            exec.register(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            })
        };
        assert!(h.schedule());
        assert!(wait_until(2000, || hits.load(Ordering::SeqCst) == 1));
        h.schedule();
        assert!(wait_until(2000, || hits.load(Ordering::SeqCst) == 2));
        exec.shutdown();
    }

    #[test]
    fn coalesces_redundant_schedules() {
        let exec = TaskletExecutor::new(1);
        let gate = Arc::new(AtomicBool::new(false));
        let hits = Arc::new(AtomicUsize::new(0));
        let h = {
            let gate = Arc::clone(&gate);
            let hits = Arc::clone(&hits);
            exec.register(move || {
                while !gate.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
                hits.fetch_add(1, Ordering::SeqCst);
            })
        };
        // First schedule starts running and blocks on the gate.
        h.schedule();
        assert!(wait_until(2000, || h.tasklet().state()
            == TaskletState::Running
            || h.tasklet().state() == TaskletState::RunningScheduled));
        // While it runs, many schedules coalesce into exactly one more run.
        for _ in 0..10 {
            h.schedule();
        }
        gate.store(true, Ordering::Release);
        assert!(wait_until(2000, || hits.load(Ordering::SeqCst) == 2));
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        assert!(h.tasklet().coalesced_count() >= 8);
        exec.shutdown();
    }

    #[test]
    fn never_runs_concurrently_with_itself() {
        let exec = TaskletExecutor::new(4);
        let inside = Arc::new(AtomicUsize::new(0));
        let violations = Arc::new(AtomicUsize::new(0));
        let h = {
            let inside = Arc::clone(&inside);
            let violations = Arc::clone(&violations);
            exec.register(move || {
                if inside.fetch_add(1, Ordering::SeqCst) != 0 {
                    violations.fetch_add(1, Ordering::SeqCst);
                }
                std::thread::yield_now();
                inside.fetch_sub(1, Ordering::SeqCst);
            })
        };
        for _ in 0..2_000 {
            h.schedule();
            if h.tasklet().run_count() % 7 == 0 {
                std::thread::yield_now();
            }
        }
        assert!(wait_until(5000, || h.tasklet().state() == TaskletState::Idle));
        assert_eq!(violations.load(Ordering::SeqCst), 0);
        exec.shutdown();
    }

    #[test]
    fn disable_defers_execution() {
        let exec = TaskletExecutor::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        let h = {
            let hits = Arc::clone(&hits);
            exec.register(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            })
        };
        h.tasklet().disable();
        h.schedule();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(hits.load(Ordering::SeqCst), 0, "disabled tasklet ran");
        h.tasklet().enable();
        assert!(wait_until(2000, || hits.load(Ordering::SeqCst) == 1));
        exec.shutdown();
    }

    #[test]
    #[should_panic(expected = "without matching disable")]
    fn unbalanced_enable_panics() {
        let t = Tasklet::new(|| {});
        t.enable();
    }

    /// Regression (found by the loom suite): a tasklet scheduled just
    /// before `shutdown()` must still run. Pre-fix, a worker could pop
    /// `None`, observe the shutdown flag set meanwhile, and exit without
    /// re-checking the queue — losing the scheduled tasklet. Natively the
    /// window is narrow, so hammer it; the loom test
    /// `tasklet_scheduled_once_runs_exactly_once` hits it deterministically.
    #[test]
    fn scheduled_work_survives_immediate_shutdown() {
        for round in 0..500 {
            let exec = TaskletExecutor::new(1);
            let hits = Arc::new(AtomicUsize::new(0));
            let h = {
                let hits = Arc::clone(&hits);
                exec.register(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                })
            };
            assert!(h.schedule());
            exec.shutdown();
            assert_eq!(
                hits.load(Ordering::SeqCst),
                1,
                "scheduled tasklet lost by shutdown in round {round}"
            );
        }
    }
}
