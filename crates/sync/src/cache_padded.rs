//! Cache-line padding to prevent false sharing.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to the length of a cache line.
///
/// Two atomics that live on the same cache line ping-pong that line between
/// cores even when logically independent ("false sharing"). Hot per-core
/// state in the engine (ticket counters, per-core run-queue heads, NIC
/// doorbells) is wrapped in `CachePadded` so that each instance owns its
/// line.
///
/// 128-byte alignment is used on x86-64 and aarch64 because adjacent-line
/// prefetchers effectively couple pairs of 64-byte lines; 64 bytes is used
/// elsewhere.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
#[cfg_attr(any(target_arch = "x86_64", target_arch = "aarch64"), repr(align(128)))]
#[cfg_attr(
    not(any(target_arch = "x86_64", target_arch = "aarch64")),
    repr(align(64))
)]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache line.
    #[inline]
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwraps the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_at_least_a_cache_line() {
        assert!(std::mem::align_of::<CachePadded<u8>>() >= 64);
        let a = CachePadded::new(0u64);
        let b = CachePadded::new(0u64);
        assert_eq!(*a, *b);
    }

    #[test]
    fn deref_roundtrip() {
        let mut c = CachePadded::new(41u32);
        *c += 1;
        assert_eq!(c.into_inner(), 42);
    }
}
