//! Exponential backoff for spin loops.

use crate::primitives::{compiler_fence, Ordering};

/// Maximum exponent before [`Backoff::snooze`] starts yielding to the OS.
#[cfg(not(loom))]
const SPIN_LIMIT: u32 = 6;
/// Maximum exponent; beyond this the backoff saturates.
#[cfg(not(loom))]
const YIELD_LIMIT: u32 = 10;

// Under the model checker every spin iteration is a schedule point, so the
// exponential schedule would only inflate the state space; shrink it to the
// minimum that still exercises the spin → yield → park escalation.
#[cfg(loom)]
const SPIN_LIMIT: u32 = 0;
#[cfg(loom)]
const YIELD_LIMIT: u32 = 1;

/// Bounded exponential growth factor: `2^min(attempt, cap)`.
///
/// The schedule shared by every backoff in the engine — [`Backoff`] uses
/// it (with [`SPIN_LIMIT`]) to pace contended spin loops, and the
/// reliability layer's retransmit timers use it to space retries of an
/// unacknowledged frame.
#[inline]
pub fn exp_factor(attempt: u32, cap: u32) -> u64 {
    1u64 << attempt.min(cap).min(63)
}

/// Exponential backoff helper for contended spin loops.
///
/// Repeatedly failing to acquire a contended atomic wastes inter-core
/// bandwidth (cache-line ping-pong). `Backoff` spins with
/// [`std::hint::spin_loop`] an exponentially growing number of times, and —
/// once the contention appears persistent — yields the CPU to the OS
/// scheduler so another thread (possibly the lock holder) can run.
///
/// # Example
/// ```
/// use pm2_sync::Backoff;
/// use std::sync::atomic::{AtomicBool, Ordering};
///
/// let flag = AtomicBool::new(true); // pretend another thread will clear it
/// flag.store(false, Ordering::Release);
/// let backoff = Backoff::new();
/// while flag.load(Ordering::Acquire) {
///     backoff.snooze();
/// }
/// ```
#[derive(Debug)]
pub struct Backoff {
    step: std::cell::Cell<u32>,
}

impl Backoff {
    /// Creates a backoff counter in its initial (no-wait) state.
    #[inline]
    pub const fn new() -> Self {
        Backoff {
            step: std::cell::Cell::new(0),
        }
    }

    /// Resets the counter, e.g. after a successful acquisition.
    #[inline]
    pub fn reset(&self) {
        self.step.set(0);
    }

    /// Backs off using only busy spinning; suitable inside lock-free
    /// retry loops where the other party is guaranteed to be running.
    #[inline]
    pub fn spin(&self) {
        let step = self.step.get().min(SPIN_LIMIT);
        for _ in 0..(1u32 << step) {
            crate::primitives::spin_loop();
        }
        if self.step.get() <= SPIN_LIMIT {
            self.step.set(self.step.get() + 1);
        }
        compiler_fence(Ordering::SeqCst);
    }

    /// Backs off, escalating from busy spinning to `thread::yield_now`.
    ///
    /// Use this while waiting for another thread that might be descheduled
    /// (e.g. a lock holder); on an oversubscribed machine pure spinning
    /// could otherwise starve it.
    #[inline]
    pub fn snooze(&self) {
        let step = self.step.get();
        if step <= SPIN_LIMIT {
            for _ in 0..(1u32 << step) {
                crate::primitives::spin_loop();
            }
        } else {
            crate::primitives::yield_now();
        }
        if step <= YIELD_LIMIT {
            self.step.set(step + 1);
        }
    }

    /// Returns `true` once the backoff has escalated past pure spinning;
    /// callers waiting on a completion should switch to parking
    /// (see [`crate::EventCount`]) at that point.
    #[inline]
    pub fn is_completed(&self) -> bool {
        self.step.get() > YIELD_LIMIT
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_and_saturates() {
        let b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..32 {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }

    #[test]
    fn spin_does_not_trip_completion() {
        let b = Backoff::new();
        for _ in 0..64 {
            b.spin();
        }
        // `spin` never escalates past SPIN_LIMIT + 1, so completion (which
        // is about parking) is never signalled by pure spinning.
        assert!(!b.is_completed());
    }
}
