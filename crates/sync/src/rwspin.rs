//! Reader-writer spinlock with writer preference.

use crate::primitives::{AtomicUsize, Ordering, UnsafeCell};
use crate::Backoff;
use std::fmt;
use std::ops::{Deref, DerefMut};

/// Writer-pending bit; reader count lives in the remaining bits.
const WRITER: usize = 1 << (usize::BITS - 1);
/// Writer-waiting bit: blocks new readers so writers cannot starve.
const WRITER_WAITING: usize = 1 << (usize::BITS - 2);
const READER_MASK: usize = WRITER_WAITING - 1;

/// A busy-waiting reader-writer lock.
///
/// Engine metadata that is read on every progress call but written rarely
/// (e.g. the table of registered drivers, the list of idle hooks) wants
/// cheap shared readers. This lock packs the state into one word:
/// reader count, a writer-held bit and a writer-waiting bit; a waiting
/// writer blocks *new* readers so it cannot be starved by a reader
/// convoy.
///
/// # Example
/// ```
/// use pm2_sync::RwSpinLock;
/// let table = RwSpinLock::new(vec![1, 2, 3]);
/// assert_eq!(table.read().len(), 3);
/// table.write().push(4);
/// assert_eq!(table.read()[3], 4);
/// ```
pub struct RwSpinLock<T: ?Sized> {
    state: AtomicUsize,
    data: UnsafeCell<T>,
}

// SAFETY: standard reader-writer exclusion; T must be Send for exclusive
// access from any thread, and Sync for shared access from many.
unsafe impl<T: ?Sized + Send> Send for RwSpinLock<T> {}
unsafe impl<T: ?Sized + Send + Sync> Sync for RwSpinLock<T> {}

impl<T> RwSpinLock<T> {
    /// Creates an unlocked lock.
    pub const fn new(value: T) -> Self {
        RwSpinLock {
            state: AtomicUsize::new(0),
            data: UnsafeCell::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> RwSpinLock<T> {
    /// Acquires shared (read) access.
    pub fn read(&self) -> RwReadGuard<'_, T> {
        let backoff = Backoff::new();
        loop {
            let s = self.state.load(Ordering::Relaxed);
            // Wait while a writer holds or waits (writer preference).
            if s & (WRITER | WRITER_WAITING) == 0 {
                assert!(s & READER_MASK < READER_MASK, "reader count overflow");
                if self
                    .state
                    .compare_exchange_weak(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    return RwReadGuard { lock: self };
                }
            }
            backoff.snooze();
        }
    }

    /// Attempts shared access without waiting.
    pub fn try_read(&self) -> Option<RwReadGuard<'_, T>> {
        let s = self.state.load(Ordering::Relaxed);
        if s & (WRITER | WRITER_WAITING) != 0 {
            return None;
        }
        self.state
            .compare_exchange(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
            .ok()
            .map(|_| RwReadGuard { lock: self })
    }

    /// Acquires exclusive (write) access.
    pub fn write(&self) -> RwWriteGuard<'_, T> {
        // Announce intent so new readers back off.
        self.state.fetch_or(WRITER_WAITING, Ordering::Relaxed);
        let backoff = Backoff::new();
        loop {
            // Take the lock once no readers remain and no writer holds.
            let s = self.state.load(Ordering::Relaxed);
            if s & (WRITER | READER_MASK) == 0
                && self
                    .state
                    .compare_exchange_weak(
                        s,
                        (s & !WRITER_WAITING) | WRITER,
                        Ordering::Acquire,
                        Ordering::Relaxed,
                    )
                    .is_ok()
            {
                return RwWriteGuard { lock: self };
            }
            backoff.snooze();
        }
    }

    /// Attempts exclusive access without waiting.
    pub fn try_write(&self) -> Option<RwWriteGuard<'_, T>> {
        self.state
            .compare_exchange(0, WRITER, Ordering::Acquire, Ordering::Relaxed)
            .ok()
            .map(|_| RwWriteGuard { lock: self })
    }

    /// Current reader count (diagnostic; racy).
    pub fn readers(&self) -> usize {
        self.state.load(Ordering::Relaxed) & READER_MASK
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: Default> Default for RwSpinLock<T> {
    fn default() -> Self {
        RwSpinLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwSpinLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwSpinLock").field("data", &&*g).finish(),
            None => f.write_str("RwSpinLock(<write-locked>)"),
        }
    }
}

/// Shared guard.
#[must_use]
pub struct RwReadGuard<'a, T: ?Sized> {
    lock: &'a RwSpinLock<T>,
}

impl<T: ?Sized> Deref for RwReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: readers hold a share of the lock.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwReadGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.state.fetch_sub(1, Ordering::Release);
    }
}

/// Exclusive guard.
#[must_use]
pub struct RwWriteGuard<'a, T: ?Sized> {
    lock: &'a RwSpinLock<T>,
}

impl<T: ?Sized> Deref for RwWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the writer holds exclusive access.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for RwWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the writer holds exclusive access.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.state.fetch_and(!WRITER, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn readers_share_writers_exclude() {
        let l = RwSpinLock::new(5);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!((*r1, *r2), (5, 5));
        assert_eq!(l.readers(), 2);
        assert!(l.try_write().is_none());
        drop((r1, r2));
        let mut w = l.write();
        *w = 6;
        assert!(l.try_read().is_none());
        drop(w);
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn waiting_writer_blocks_new_readers() {
        let l = Arc::new(RwSpinLock::new(0u32));
        let r = l.read();
        let writer_started = Arc::new(AtomicBool::new(false));
        let writer = {
            let l = Arc::clone(&l);
            let ws = Arc::clone(&writer_started);
            std::thread::spawn(move || {
                ws.store(true, Ordering::Release);
                let mut w = l.write();
                *w = 1;
            })
        };
        while !writer_started.load(Ordering::Acquire) {
            std::hint::spin_loop();
        }
        // Give the writer time to set WRITER_WAITING.
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(
            l.try_read().is_none(),
            "new readers must wait behind a waiting writer"
        );
        drop(r);
        writer.join().unwrap();
        assert_eq!(*l.read(), 1);
    }

    #[test]
    fn hammer_readers_and_writers() {
        const WRITERS: usize = 2;
        const READERS: usize = 2;
        const ITERS: usize = 3_000;
        let l = Arc::new(RwSpinLock::new((0u64, 0u64)));
        let ws: Vec<_> = (0..WRITERS)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..ITERS {
                        let mut g = l.write();
                        g.0 += 1;
                        g.1 += 2;
                    }
                })
            })
            .collect();
        let rs: Vec<_> = (0..READERS)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..ITERS {
                        let g = l.read();
                        assert_eq!(g.1, g.0 * 2, "torn read under RW lock");
                    }
                })
            })
            .collect();
        for t in ws.into_iter().chain(rs) {
            t.join().unwrap();
        }
        let g = l.read();
        assert_eq!(g.0, (WRITERS * ITERS) as u64);
    }
}
