//! Property-based tests: the lock-free queues behave like their
//! sequential models under arbitrary operation sequences, and survive
//! randomized multi-threaded interleavings.

use proptest::prelude::*;
use pm2_sync::{MpmcQueue, MpscQueue, SeqLock, SpinLock, TicketLock};
use std::collections::VecDeque;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Push(u32),
    Pop,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u32..1000).prop_map(Op::Push),
            Just(Op::Pop),
        ],
        0..200,
    )
}

proptest! {
    /// Single-threaded MPSC behaves exactly like a VecDeque.
    #[test]
    fn mpsc_matches_model(ops in ops()) {
        let q = MpscQueue::new();
        let mut model = VecDeque::new();
        for op in ops {
            match op {
                Op::Push(v) => {
                    q.push(v);
                    model.push_back(v);
                }
                Op::Pop => {
                    prop_assert_eq!(q.pop(), model.pop_front());
                }
            }
            prop_assert_eq!(q.is_empty(), model.is_empty());
        }
        prop_assert_eq!(q.drain(), Vec::from(model));
    }

    /// Single-threaded bounded MPMC behaves like a bounded VecDeque.
    #[test]
    fn mpmc_matches_model(ops in ops(), cap_pow in 1u32..6) {
        let cap = 1usize << cap_pow;
        let q = MpmcQueue::with_capacity(cap);
        let mut model: VecDeque<u32> = VecDeque::new();
        for op in ops {
            match op {
                Op::Push(v) => {
                    let r = q.push(v);
                    if model.len() < cap {
                        prop_assert_eq!(r, Ok(()));
                        model.push_back(v);
                    } else {
                        prop_assert_eq!(r, Err(v));
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(q.pop(), model.pop_front());
                }
            }
        }
    }

    /// Values pushed by concurrent producers are all received exactly
    /// once, in per-producer order.
    #[test]
    fn mpsc_concurrent_no_loss_no_dup(per_producer in 1usize..300, producers in 1usize..4) {
        let q = Arc::new(MpscQueue::new());
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..per_producer {
                        q.push((p * per_producer + i) as u64);
                    }
                })
            })
            .collect();
        let mut last = vec![-1i64; producers];
        let mut count = 0;
        while count < producers * per_producer {
            if let Some(v) = q.pop() {
                let p = v as usize / per_producer;
                let i = (v as usize % per_producer) as i64;
                prop_assert!(i > last[p], "per-producer order violated");
                last[p] = i;
                count += 1;
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        prop_assert_eq!(q.pop(), None);
    }

    /// Spinlock-protected counter increments are never lost.
    #[test]
    fn spinlock_counter_exact(threads in 1usize..4, iters in 1usize..2000) {
        let lock = Arc::new(SpinLock::new(0usize));
        let hs: Vec<_> = (0..threads).map(|_| {
            let lock = Arc::clone(&lock);
            std::thread::spawn(move || {
                for _ in 0..iters {
                    *lock.lock() += 1;
                }
            })
        }).collect();
        for h in hs { h.join().unwrap(); }
        prop_assert_eq!(*lock.lock(), threads * iters);
    }

    /// Ticket lock is exact too.
    #[test]
    fn ticketlock_counter_exact(threads in 1usize..4, iters in 1usize..2000) {
        let lock = Arc::new(TicketLock::new(0usize));
        let hs: Vec<_> = (0..threads).map(|_| {
            let lock = Arc::clone(&lock);
            std::thread::spawn(move || {
                for _ in 0..iters {
                    *lock.lock() += 1;
                }
            })
        }).collect();
        for h in hs { h.join().unwrap(); }
        prop_assert_eq!(*lock.lock(), threads * iters);
    }

    /// SeqLock readers never observe an inconsistent pair.
    #[test]
    fn seqlock_never_tears(writes in 1u64..3000) {
        let l = Arc::new(SeqLock::new((0u64, 0u64)));
        let writer = {
            let l = Arc::clone(&l);
            std::thread::spawn(move || {
                for i in 1..=writes {
                    l.write((i, i.wrapping_mul(3)));
                }
            })
        };
        for _ in 0..2000 {
            let (a, b) = l.read();
            prop_assert_eq!(b, a.wrapping_mul(3));
        }
        writer.join().unwrap();
        let (a, b) = l.read();
        prop_assert_eq!((a, b), (writes, writes.wrapping_mul(3)));
    }
}
