//! Randomized model tests: the lock-free queues behave like their
//! sequential models under generated operation sequences, and survive
//! multi-threaded interleavings.
//!
//! The generator is a small seeded xorshift so every run replays the same
//! cases — failures reproduce with the printed seed and no external
//! property-testing machinery is needed.

use pm2_sync::{MpmcQueue, MpscQueue, SeqLock, SpinLock, TicketLock};
use std::collections::VecDeque;
use std::sync::Arc;

/// Minimal deterministic PRNG (xorshift64*), enough to drive op mixes.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[derive(Debug, Clone)]
enum Op {
    Push(u32),
    Pop,
}

fn ops(rng: &mut Rng, max_len: u64) -> Vec<Op> {
    let len = rng.below(max_len) as usize;
    (0..len)
        .map(|_| {
            if rng.below(2) == 0 {
                Op::Push(rng.below(1000) as u32)
            } else {
                Op::Pop
            }
        })
        .collect()
}

/// Single-threaded MPSC behaves exactly like a VecDeque.
#[test]
fn mpsc_matches_model() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed);
        let q = MpscQueue::new();
        let mut model = VecDeque::new();
        for op in ops(&mut rng, 200) {
            match op {
                Op::Push(v) => {
                    q.push(v);
                    model.push_back(v);
                }
                Op::Pop => {
                    assert_eq!(q.pop(), model.pop_front(), "seed {seed}");
                }
            }
            assert_eq!(q.is_empty(), model.is_empty(), "seed {seed}");
        }
        assert_eq!(q.drain(), Vec::from(model), "seed {seed}");
    }
}

/// Single-threaded bounded MPMC behaves like a bounded VecDeque.
#[test]
fn mpmc_matches_model() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed);
        let cap = 1usize << (1 + rng.below(5) as u32);
        let q = MpmcQueue::with_capacity(cap);
        let mut model: VecDeque<u32> = VecDeque::new();
        for op in ops(&mut rng, 200) {
            match op {
                Op::Push(v) => {
                    let r = q.push(v);
                    if model.len() < cap {
                        assert_eq!(r, Ok(()), "seed {seed}");
                        model.push_back(v);
                    } else {
                        assert_eq!(r, Err(v), "seed {seed}");
                    }
                }
                Op::Pop => {
                    assert_eq!(q.pop(), model.pop_front(), "seed {seed}");
                }
            }
        }
    }
}

/// Values pushed by concurrent producers are all received exactly once,
/// in per-producer order.
#[test]
fn mpsc_concurrent_no_loss_no_dup() {
    for seed in 0..8u64 {
        let mut rng = Rng::new(seed);
        let per_producer = 1 + rng.below(299) as usize;
        let producers = 1 + rng.below(3) as usize;
        let q = Arc::new(MpscQueue::new());
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..per_producer {
                        q.push((p * per_producer + i) as u64);
                    }
                })
            })
            .collect();
        let mut last = vec![-1i64; producers];
        let mut count = 0;
        while count < producers * per_producer {
            if let Some(v) = q.pop() {
                let p = v as usize / per_producer;
                let i = (v as usize % per_producer) as i64;
                assert!(i > last[p], "per-producer order violated (seed {seed})");
                last[p] = i;
                count += 1;
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(q.pop(), None);
    }
}

/// Spinlock-protected counter increments are never lost.
#[test]
fn spinlock_counter_exact() {
    for (threads, iters) in [(1usize, 1999usize), (2, 500), (3, 1500)] {
        let lock = Arc::new(SpinLock::new(0usize));
        let hs: Vec<_> = (0..threads)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..iters {
                        *lock.lock() += 1;
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(*lock.lock(), threads * iters);
    }
}

/// Ticket lock is exact too.
#[test]
fn ticketlock_counter_exact() {
    for (threads, iters) in [(1usize, 1999usize), (2, 500), (3, 1500)] {
        let lock = Arc::new(TicketLock::new(0usize));
        let hs: Vec<_> = (0..threads)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..iters {
                        *lock.lock() += 1;
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(*lock.lock(), threads * iters);
    }
}

/// SeqLock readers never observe an inconsistent pair.
#[test]
fn seqlock_never_tears() {
    for writes in [1u64, 77, 2999] {
        let l = Arc::new(SeqLock::new((0u64, 0u64)));
        let writer = {
            let l = Arc::clone(&l);
            std::thread::spawn(move || {
                for i in 1..=writes {
                    l.write((i, i.wrapping_mul(3)));
                }
            })
        };
        for _ in 0..2000 {
            let (a, b) = l.read();
            assert_eq!(b, a.wrapping_mul(3));
        }
        writer.join().unwrap();
        let (a, b) = l.read();
        assert_eq!((a, b), (writes, writes.wrapping_mul(3)));
    }
}
