//! Model-checked invariants for every pm2-sync primitive.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`, which reroutes the
//! `primitives` shim onto the in-tree bounded model checker
//! (`pm2_sync::model`): every test closure is executed once per explored
//! thread schedule, up to `LOOM_MAX_PREEMPTIONS` involuntary context
//! switches (default 3). Run via:
//!
//! ```text
//! PM2_LOOM=1 ./ci.sh          # or directly:
//! RUSTFLAGS="--cfg loom" LOOM_MAX_PREEMPTIONS=3 \
//!   cargo test -p pm2-sync --release --test loom
//! ```
//!
//! Each test encodes the primitive's core contract from DESIGN.md §9:
//! mutual exclusion (Spin/Ticket/MCS), FIFO fairness (Ticket),
//! reader-never-sees-torn-write (SeqLock), no-lost-no-duplicated elements
//! (MPSC/MPMC), wakeup-not-lost (EventCount), and the tasklet contract
//! (scheduled once ⇒ runs exactly once, never concurrently with itself).
//! Data protected by a lock lives in a `RaceCell`, so a primitive that
//! fails to establish the release/acquire edge its guard promises shows up
//! as a happens-before race, not just a lost update.
#![cfg(loom)]

use std::sync::Arc;

use pm2_sync::model::{model, thread, RaceCell};
use pm2_sync::primitives::spin_loop;
use pm2_sync::{
    EventCount, McsLock, McsNode, MpmcQueue, MpscQueue, SeqLock, SpinLock, TaskletExecutor,
    TicketLock,
};

#[test]
fn spinlock_mutual_exclusion() {
    model(|| {
        let lock = Arc::new(SpinLock::new(()));
        let data = Arc::new(RaceCell::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (lock, data) = (lock.clone(), data.clone());
                thread::spawn(move || {
                    let _g = lock.lock();
                    data.with_mut(|v| *v += 1);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let _g = lock.lock();
        assert_eq!(data.get(), 2, "increment lost under SpinLock");
    });
}

#[test]
fn spinlock_try_lock_excludes() {
    model(|| {
        let lock = Arc::new(SpinLock::new(0u32));
        let l2 = lock.clone();
        let t = thread::spawn(move || {
            if let Some(mut g) = l2.try_lock() {
                *g += 1;
            }
        });
        if let Some(mut g) = lock.try_lock() {
            *g += 1;
        }
        t.join().unwrap();
        // 0, 1 or 2 increments may have happened, but never a torn one.
        let v = *lock.lock();
        assert!(v <= 2, "impossible increment count {v}");
    });
}

#[test]
fn ticketlock_mutual_exclusion() {
    model(|| {
        let lock = Arc::new(TicketLock::new(()));
        let data = Arc::new(RaceCell::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (lock, data) = (lock.clone(), data.clone());
                thread::spawn(move || {
                    let _g = lock.lock();
                    data.with_mut(|v| *v += 1);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let _g = lock.lock();
        assert_eq!(data.get(), 2, "increment lost under TicketLock");
    });
}

#[test]
fn ticketlock_fifo_fairness() {
    model(|| {
        let lock = Arc::new(TicketLock::new(Vec::<u32>::new()));
        // Main holds the lock while two contenders take tickets strictly in
        // turn; FIFO requires the acquisition order to match ticket order.
        let gate = lock.lock();
        let t1 = {
            let lock = lock.clone();
            thread::spawn(move || lock.lock().push(1))
        };
        // queue_len counts holder + waiters; wait until thread 1 holds a
        // ticket before letting thread 2 take the next one.
        while lock.queue_len() < 2 {
            spin_loop();
        }
        let t2 = {
            let lock = lock.clone();
            thread::spawn(move || lock.lock().push(2))
        };
        while lock.queue_len() < 3 {
            spin_loop();
        }
        drop(gate);
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(
            &*lock.lock(),
            &[1, 2],
            "ticket lock served out of arrival order"
        );
    });
}

#[test]
fn mcs_mutual_exclusion() {
    model(|| {
        let lock = Arc::new(McsLock::new(()));
        let data = Arc::new(RaceCell::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (lock, data) = (lock.clone(), data.clone());
                thread::spawn(move || {
                    let mut node = McsNode::new();
                    let _g = lock.lock(&mut node);
                    data.with_mut(|v| *v += 1);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut node = McsNode::new();
        let _g = lock.lock(&mut node);
        assert_eq!(data.get(), 2, "increment lost under McsLock");
    });
}

#[test]
fn seqlock_reader_never_sees_torn_write() {
    model(|| {
        let lock = Arc::new(SeqLock::new((0usize, 0usize)));
        let l2 = lock.clone();
        let writer = thread::spawn(move || {
            for i in 1..=2usize {
                l2.write((i, 2 * i));
            }
        });
        // Both the retrying read and the optimistic try_read must only ever
        // observe (i, 2i) pairs.
        let (a, b) = lock.read();
        assert_eq!(b, 2 * a, "torn SeqLock read: ({a}, {b})");
        if let Some((a, b)) = lock.try_read() {
            assert_eq!(b, 2 * a, "torn SeqLock try_read: ({a}, {b})");
        }
        writer.join().unwrap();
        assert_eq!(lock.read(), (2, 4));
    });
}

#[test]
fn mpsc_no_lost_no_duplicated() {
    model(|| {
        let q = Arc::new(MpscQueue::new());
        let handles: Vec<_> = (0..2u32)
            .map(|p| {
                let q = q.clone();
                thread::spawn(move || {
                    q.push(2 * p);
                    q.push(2 * p + 1);
                })
            })
            .collect();
        // Single consumer (main): every pushed element arrives exactly once.
        let mut got = Vec::new();
        while got.len() < 4 {
            match q.pop() {
                Some(v) => got.push(v),
                None => spin_loop(),
            }
        }
        assert!(q.pop().is_none(), "queue yielded a duplicated element");
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3], "elements lost or duplicated");
        for h in handles {
            h.join().unwrap();
        }
    });
}

#[test]
fn mpmc_no_lost_no_duplicated() {
    model(|| {
        let q = Arc::new(MpmcQueue::with_capacity(4));
        let producers: Vec<_> = (0..2u32)
            .map(|p| {
                let q = q.clone();
                thread::spawn(move || {
                    let mut item = p;
                    loop {
                        match q.push(item) {
                            Ok(()) => break,
                            Err(back) => {
                                item = back;
                                spin_loop();
                            }
                        }
                    }
                })
            })
            .collect();
        let consumer = {
            let q = q.clone();
            thread::spawn(move || {
                let mut got = Vec::new();
                while got.is_empty() {
                    match q.pop() {
                        Some(v) => got.push(v),
                        None => spin_loop(),
                    }
                }
                got
            })
        };
        let mut got = consumer.join().unwrap();
        for h in producers {
            h.join().unwrap();
        }
        while let Some(v) = q.pop() {
            got.push(v);
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1], "MPMC lost or duplicated an element");
    });
}

#[test]
fn eventcount_wakeup_not_lost() {
    model(|| {
        let ec = Arc::new(EventCount::new());
        let data = Arc::new(RaceCell::new(0u32));
        let seen = ec.current();
        let (ec2, d2) = (ec.clone(), data.clone());
        let t = thread::spawn(move || {
            d2.set(7);
            ec2.signal();
        });
        // If the signal could be lost between the phase-1 spin and parking,
        // this deadlocks and the model reports it.
        ec.wait_past(seen);
        assert_eq!(data.get(), 7, "signal did not publish the data");
        t.join().unwrap();
    });
}

#[test]
fn tasklet_scheduled_once_runs_exactly_once() {
    model(|| {
        let executor = TaskletExecutor::new(1);
        let runs = Arc::new(RaceCell::new(0u32));
        let r2 = runs.clone();
        let handle = executor.register(move || r2.with_mut(|v| *v += 1));
        assert!(handle.schedule(), "first schedule must enqueue");
        executor.shutdown();
        assert_eq!(
            runs.get(),
            1,
            "scheduled-once tasklet must run exactly once"
        );
        assert_eq!(handle.tasklet().run_count(), 1);
    });
}

#[test]
fn tasklet_never_runs_concurrently_with_itself() {
    model(|| {
        let executor = TaskletExecutor::new(2);
        // A RaceCell read-modify-write: two overlapping executions of the
        // body would be unsynchronized accesses and flagged as a race.
        let witness = Arc::new(RaceCell::new(0u32));
        let w2 = witness.clone();
        let handle = executor.register(move || w2.with_mut(|v| *v += 1));
        let h2 = handle.clone();
        let scheduler = thread::spawn(move || {
            h2.schedule();
        });
        handle.schedule();
        scheduler.join().unwrap();
        executor.shutdown();
        let runs = handle.tasklet().run_count();
        assert!(
            (1..=2).contains(&runs),
            "two schedules must coalesce to 1 or run 2 times, got {runs}"
        );
        assert_eq!(witness.get(), runs as u32);
    });
}
