//! Native (real-thread) stress tests for the least-exercised primitives:
//! `RwSpinLock` writer exclusion under reader storms and `WaitGroup`
//! zero-count wake ordering. These complement the loom suite: loom explores
//! tiny schedules exhaustively, these hammer large thread counts
//! probabilistically (and are the workload the optional TSan lane runs).
#![cfg(not(loom))]

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use pm2_sync::{RwSpinLock, WaitGroup};

/// Writers must exclude both readers and other writers: every reader must
/// observe a consistent `(a, 2a)` pair and never observe a writer inside
/// the critical section.
#[test]
fn rwspin_writer_exclusion_under_reader_storm() {
    const READERS: usize = 6;
    const WRITERS: usize = 2;
    const WRITES_PER_WRITER: u64 = 20_000;

    let lock = Arc::new(RwSpinLock::new((0u64, 0u64)));
    let writers_inside = Arc::new(AtomicUsize::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let lock = Arc::clone(&lock);
            let inside = Arc::clone(&writers_inside);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut observed = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let g = lock.read();
                    assert_eq!(
                        inside.load(Ordering::Acquire),
                        0,
                        "reader overlapped a writer critical section"
                    );
                    let (a, b) = *g;
                    assert_eq!(b, 2 * a, "torn read under reader storm: ({a}, {b})");
                    observed += 1;
                }
                observed
            })
        })
        .collect();

    let writer_handles: Vec<_> = (0..WRITERS)
        .map(|_| {
            let lock = Arc::clone(&lock);
            let inside = Arc::clone(&writers_inside);
            std::thread::spawn(move || {
                for _ in 0..WRITES_PER_WRITER {
                    let mut g = lock.write();
                    assert_eq!(
                        inside.fetch_add(1, Ordering::AcqRel),
                        0,
                        "two writers inside the critical section"
                    );
                    let (a, _) = *g;
                    *g = (a + 1, 2 * (a + 1));
                    inside.fetch_sub(1, Ordering::AcqRel);
                }
            })
        })
        .collect();

    for w in writer_handles {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Release);
    let mut total_reads = 0u64;
    for r in readers {
        total_reads += r.join().unwrap();
    }
    let final_val = *lock.read();
    assert_eq!(final_val.0, WRITERS as u64 * WRITES_PER_WRITER);
    assert_eq!(final_val.1, 2 * final_val.0);
    assert!(total_reads > 0, "reader storm never got a read through");
}

/// `wait()` must return only after the count truly hit zero, and the wake
/// for the zero transition must not be lost, regardless of how token drops
/// interleave with the waiter entering `wait_past`.
#[test]
fn waitgroup_zero_count_wake_ordering() {
    const ROUNDS: usize = 500;
    const TOKENS: usize = 4;

    for round in 0..ROUNDS {
        let wg = WaitGroup::new();
        let effects = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..TOKENS)
            .map(|_| {
                let token = wg.add();
                let effects = Arc::clone(&effects);
                std::thread::spawn(move || {
                    // The effect must be ordered before the token drop, and
                    // thus visible to the waiter when wait() returns.
                    effects.fetch_add(1, Ordering::Release);
                    drop(token);
                })
            })
            .collect();
        wg.wait();
        assert_eq!(wg.pending(), 0, "wait returned early in round {round}");
        assert_eq!(
            effects.load(Ordering::Acquire),
            TOKENS,
            "token-drop effects not visible after wait in round {round}"
        );
        for h in handles {
            h.join().unwrap();
        }
    }
}

/// A waiter that arrives while drops are mid-flight must neither hang (lost
/// wake) nor return before zero; exercised with a racing re-adder to stress
/// the generation check in `wait`.
#[test]
fn waitgroup_wait_races_with_last_drop() {
    const ROUNDS: usize = 2_000;
    for _ in 0..ROUNDS {
        let wg = WaitGroup::new();
        let token = wg.add();
        let dropper = std::thread::spawn(move || drop(token));
        // Race wait() against the single drop: every interleaving must
        // terminate with pending() == 0.
        wg.wait();
        assert_eq!(wg.pending(), 0);
        dropper.join().unwrap();
    }
}
