//! The declarative transition tables: typed states × frame classes ×
//! guard/action rules.
//!
//! Each production handler (`handle_rts`, `handle_cts`, `handle_rdv_data`,
//! the `handle_rma_*` family, `deliver_eager`) is transcribed into one or
//! more [`Rule`]s. Dispatch is deliberately strict: a frame matched by no
//! rule is an `UnhandledFrame` violation (production would take an
//! unplanned path or panic), and a frame matched by more than one rule is
//! an `AmbiguousRules` violation (the table is not a function).
//!
//! Seeded [`Mutation`]s weaken individual guards/actions so the explorer
//! can demonstrate it detects each class of bug with a counterexample.

use crate::frames::{FrameClass, ProtoFrame};
use crate::state::{Asm, Mutation, Muts, NodeState, Violation};

/// Context a rule sees: who sent the frame, the frame, active mutations.
pub struct RuleCtx<'a> {
    /// Sending rank.
    pub src: usize,
    /// The frame being dispatched.
    pub frame: ProtoFrame,
    /// Active mutation set.
    pub muts: &'a Muts,
}

/// What a rule's action asks the world to do.
#[derive(Default)]
pub struct Effects {
    /// Frames to send (dest, frame) — each gets its own envelope.
    pub send: Vec<(usize, ProtoFrame)>,
    /// Origin-side flows completed at the dispatching node.
    pub complete: Vec<u64>,
    /// Safety violations detected while applying the action.
    pub violations: Vec<Violation>,
}

/// One transition rule: a guard over (frame, local state) and an action.
pub struct Rule {
    /// Stable rule name (reported in fire counts and counterexamples).
    pub name: &'static str,
    /// Frame class this rule applies to.
    pub class: FrameClass,
    /// Whether the rule claims the frame in this state.
    pub guard: fn(&RuleCtx, &NodeState) -> bool,
    /// State transition + emitted effects.
    pub action: fn(&RuleCtx, &mut NodeState, &mut Effects),
}

/// Record a delivery/apply count bump, flagging the second one.
fn bump(counter: &mut u32, eff: &mut Effects, what: impl FnOnce() -> String) {
    *counter += 1;
    if *counter == 2 {
        eff.violations
            .push(Violation::DoubleDelivery { what: what() });
    }
}

/// Close out a chunk assembly: verify every chunk landed exactly once.
fn check_assembly(asm: &Asm, eff: &mut Effects, what: impl FnOnce() -> String) {
    if !asm.seen.iter().all(|s| *s) {
        eff.violations
            .push(Violation::CorruptAssembly { what: what() });
    }
}

// ---- eager ------------------------------------------------------------

fn eager_deliver(ctx: &RuleCtx, n: &mut NodeState, eff: &mut Effects) {
    let ProtoFrame::Eager { tag, seq } = ctx.frame else {
        return;
    };
    let src = ctx.src;
    let count = n.delivered_eager.entry((src, tag, seq)).or_insert(0);
    bump(count, eff, || {
        format!("eager (src {src}, tag {tag}, seq {seq}) delivered twice")
    });
}

// ---- rendezvous -------------------------------------------------------

fn rts_known(ctx: &RuleCtx, n: &NodeState) -> bool {
    let ProtoFrame::Rts { rdv, .. } = ctx.frame else {
        return false;
    };
    n.rdv_recvs.contains_key(&(ctx.src, rdv))
}

fn rts_fresh_guard(ctx: &RuleCtx, n: &NodeState) -> bool {
    ctx.muts.has(Mutation::SkipRtsDedup) || !rts_known(ctx, n)
}

fn rts_fresh(ctx: &RuleCtx, n: &mut NodeState, eff: &mut Effects) {
    let ProtoFrame::Rts { rdv, chunks } = ctx.frame else {
        return;
    };
    n.rdv_recvs.insert((ctx.src, rdv), Asm::new(chunks));
    eff.send.push((ctx.src, ProtoFrame::Cts { rdv }));
}

fn rts_dup_guard(ctx: &RuleCtx, n: &NodeState) -> bool {
    !ctx.muts.has(Mutation::SkipRtsDedup) && rts_known(ctx, n)
}

fn cts_known(ctx: &RuleCtx, n: &NodeState) -> bool {
    let ProtoFrame::Cts { rdv } = ctx.frame else {
        return false;
    };
    n.rdv_sends.contains_key(&rdv)
}

fn cts_fresh(ctx: &RuleCtx, n: &mut NodeState, eff: &mut Effects) {
    let ProtoFrame::Cts { rdv } = ctx.frame else {
        return;
    };
    let Some(chunks) = n.rdv_sends.remove(&rdv) else {
        return;
    };
    for chunk in 0..chunks {
        eff.send
            .push((ctx.src, ProtoFrame::RdvData { rdv, chunk, chunks }));
    }
    // Production completes the send request once the NIC has consumed
    // the chunks; data-independently that is "on CTS".
    eff.complete.push(rdv);
}

fn cts_stale_guard(ctx: &RuleCtx, n: &NodeState) -> bool {
    !ctx.muts.has(Mutation::DropDupCtsGuard) && !cts_known(ctx, n)
}

fn rdv_data_asm<'a>(ctx: &RuleCtx, n: &'a NodeState) -> Option<&'a Asm> {
    let ProtoFrame::RdvData { rdv, .. } = ctx.frame else {
        return None;
    };
    n.rdv_recvs.get(&(ctx.src, rdv))
}

fn rdv_data_fresh_guard(ctx: &RuleCtx, n: &NodeState) -> bool {
    let ProtoFrame::RdvData { chunk, .. } = ctx.frame else {
        return false;
    };
    rdv_data_asm(ctx, n).is_some_and(|a| !a.seen[chunk as usize])
}

fn rdv_data_fresh(ctx: &RuleCtx, n: &mut NodeState, eff: &mut Effects) {
    let ProtoFrame::RdvData { rdv, chunk, chunks } = ctx.frame else {
        return;
    };
    let src = ctx.src;
    let Some(asm) = n.rdv_recvs.get_mut(&(src, rdv)) else {
        return;
    };
    asm.seen[chunk as usize] = true;
    asm.received += 1;
    let target = if ctx.muts.has(Mutation::CompleteRecvEarly) && chunks > 1 {
        chunks - 1
    } else {
        chunks
    };
    if asm.received >= target {
        let asm = n.rdv_recvs.remove(&(src, rdv)).unwrap();
        check_assembly(&asm, eff, || {
            format!(
                "rdv {rdv} completed with {}/{chunks} distinct chunks",
                asm.seen.iter().filter(|s| **s).count()
            )
        });
        let count = n.delivered_rdv.entry(rdv).or_insert(0);
        bump(count, eff, || format!("rdv {rdv} delivered twice"));
    }
}

fn rdv_data_dup_guard(ctx: &RuleCtx, n: &NodeState) -> bool {
    let ProtoFrame::RdvData { chunk, .. } = ctx.frame else {
        return false;
    };
    rdv_data_asm(ctx, n).is_some_and(|a| a.seen[chunk as usize])
}

fn rdv_data_stale_guard(ctx: &RuleCtx, n: &NodeState) -> bool {
    rdv_data_asm(ctx, n).is_none()
}

// ---- one-sided (RMA) --------------------------------------------------

fn rma_apply(n: &mut NodeState, eff: &mut Effects, op: u64, what: &'static str) {
    let count = n.applied_rma.entry(op).or_insert(0);
    bump(count, eff, || format!("{what} op {op} applied twice"));
}

fn rma_put(ctx: &RuleCtx, n: &mut NodeState, eff: &mut Effects) {
    let ProtoFrame::RmaPut { op } = ctx.frame else {
        return;
    };
    rma_apply(n, eff, op, "put");
    eff.send.push((ctx.src, ProtoFrame::RmaAck { op }));
}

fn put_chunk_asm<'a>(ctx: &RuleCtx, n: &'a NodeState) -> Option<&'a Asm> {
    let ProtoFrame::RmaPutData { op, .. } = ctx.frame else {
        return None;
    };
    n.rma_chunks.get(&(ctx.src, op))
}

fn put_chunk_fresh_guard(ctx: &RuleCtx, n: &NodeState) -> bool {
    let ProtoFrame::RmaPutData { chunk, .. } = ctx.frame else {
        return false;
    };
    ctx.muts.has(Mutation::ForgetChunkBitmap)
        || put_chunk_asm(ctx, n).is_none_or(|a| !a.seen[chunk as usize])
}

fn put_chunk_fresh(ctx: &RuleCtx, n: &mut NodeState, eff: &mut Effects) {
    let ProtoFrame::RmaPutData { op, chunk, chunks } = ctx.frame else {
        return;
    };
    let src = ctx.src;
    let asm = n
        .rma_chunks
        .entry((src, op))
        .or_insert_with(|| Asm::new(chunks));
    if !ctx.muts.has(Mutation::ForgetChunkBitmap) {
        asm.seen[chunk as usize] = true;
    }
    asm.received += 1;
    if asm.received == chunks {
        let asm = n.rma_chunks.remove(&(src, op)).unwrap();
        check_assembly(&asm, eff, || {
            format!(
                "put op {op} applied with {}/{chunks} distinct chunks",
                asm.seen.iter().filter(|s| **s).count()
            )
        });
        rma_apply(n, eff, op, "chunked put");
        eff.send.push((src, ProtoFrame::RmaAck { op }));
    }
}

fn put_chunk_dup_guard(ctx: &RuleCtx, n: &NodeState) -> bool {
    let ProtoFrame::RmaPutData { chunk, .. } = ctx.frame else {
        return false;
    };
    !ctx.muts.has(Mutation::ForgetChunkBitmap)
        && put_chunk_asm(ctx, n).is_some_and(|a| a.seen[chunk as usize])
}

fn rma_get(ctx: &RuleCtx, _n: &mut NodeState, eff: &mut Effects) {
    let ProtoFrame::RmaGet { op, reply_chunks } = ctx.frame else {
        return;
    };
    if reply_chunks <= 1 {
        eff.send.push((ctx.src, ProtoFrame::RmaGetReply { op }));
    } else {
        for chunk in 0..reply_chunks {
            eff.send.push((
                ctx.src,
                ProtoFrame::RmaGetData {
                    op,
                    chunk,
                    chunks: reply_chunks,
                },
            ));
        }
    }
}

fn rma_acc(ctx: &RuleCtx, n: &mut NodeState, eff: &mut Effects) {
    let ProtoFrame::RmaAcc { op } = ctx.frame else {
        return;
    };
    rma_apply(n, eff, op, "accumulate");
    eff.send.push((ctx.src, ProtoFrame::RmaAck { op }));
}

fn op_live(ctx: &RuleCtx, n: &NodeState) -> bool {
    ctx.frame
        .flow()
        .is_some_and(|op| n.rma_ops.contains_key(&op))
}

fn op_complete(ctx: &RuleCtx, n: &mut NodeState, eff: &mut Effects) {
    let Some(op) = ctx.frame.flow() else {
        return;
    };
    n.rma_ops.remove(&op);
    n.rma_get_asm.remove(&op);
    eff.complete.push(op);
}

fn op_stale_guard(ctx: &RuleCtx, n: &NodeState) -> bool {
    !op_live(ctx, n)
}

fn get_data_stale(ctx: &RuleCtx, n: &mut NodeState, _eff: &mut Effects) {
    // Production clears any half-built assembly for a dead op.
    if let Some(op) = ctx.frame.flow() {
        n.rma_get_asm.remove(&op);
    }
}

fn get_data_fresh_guard(ctx: &RuleCtx, n: &NodeState) -> bool {
    let ProtoFrame::RmaGetData { op, chunk, .. } = ctx.frame else {
        return false;
    };
    op_live(ctx, n)
        && (ctx.muts.has(Mutation::SkipGetChunkDedup)
            || n.rma_get_asm
                .get(&op)
                .is_none_or(|a| !a.seen[chunk as usize]))
}

fn get_data_fresh(ctx: &RuleCtx, n: &mut NodeState, eff: &mut Effects) {
    let ProtoFrame::RmaGetData { op, chunk, chunks } = ctx.frame else {
        return;
    };
    let asm = n.rma_get_asm.entry(op).or_insert_with(|| Asm::new(chunks));
    asm.seen[chunk as usize] = true;
    asm.received += 1;
    if asm.received == chunks {
        let asm = n.rma_get_asm.remove(&op).unwrap();
        check_assembly(&asm, eff, || {
            format!(
                "get op {op} assembled with {}/{chunks} distinct chunks",
                asm.seen.iter().filter(|s| **s).count()
            )
        });
        n.rma_ops.remove(&op);
        eff.complete.push(op);
    }
}

fn get_data_dup_guard(ctx: &RuleCtx, n: &NodeState) -> bool {
    let ProtoFrame::RmaGetData { op, chunk, .. } = ctx.frame else {
        return false;
    };
    op_live(ctx, n)
        && !ctx.muts.has(Mutation::SkipGetChunkDedup)
        && n.rma_get_asm
            .get(&op)
            .is_some_and(|a| a.seen[chunk as usize])
}

fn noop(_ctx: &RuleCtx, _n: &mut NodeState, _eff: &mut Effects) {}
fn always(_ctx: &RuleCtx, _n: &NodeState) -> bool {
    true
}

/// The full transition table for the three wire protocols.
///
/// Kept in one place so a reviewer can audit rule-by-rule against the
/// production handlers named in each comment.
pub const RULES: &[Rule] = &[
    // deliver_eager: delivery bookkeeping only (matching is data flow,
    // not protocol state).
    Rule {
        name: "eager-deliver",
        class: FrameClass::Eager,
        guard: always,
        action: eager_deliver,
    },
    // handle_rts: fresh RTS registers the assembly and answers CTS …
    Rule {
        name: "rts-fresh",
        class: FrameClass::Rts,
        guard: rts_fresh_guard,
        action: rts_fresh,
    },
    // … a duplicate RTS for a tracked rendezvous is suppressed.
    Rule {
        name: "rts-dup",
        class: FrameClass::Rts,
        guard: rts_dup_guard,
        action: noop,
    },
    // handle_cts: first CTS releases the parked payload as data chunks …
    Rule {
        name: "cts-fresh",
        class: FrameClass::Cts,
        guard: cts_known,
        action: cts_fresh,
    },
    // … a stale CTS (abandoned or completed rendezvous) is ignored.
    Rule {
        name: "cts-stale",
        class: FrameClass::Cts,
        guard: cts_stale_guard,
        action: noop,
    },
    // handle_rdv_data: fresh chunk lands in the assembly …
    Rule {
        name: "rdv-data-fresh",
        class: FrameClass::RdvData,
        guard: rdv_data_fresh_guard,
        action: rdv_data_fresh,
    },
    // … duplicate chunk is suppressed by the bitmap …
    Rule {
        name: "rdv-data-dup",
        class: FrameClass::RdvData,
        guard: rdv_data_dup_guard,
        action: noop,
    },
    // … and data for an untracked rendezvous is dropped.
    Rule {
        name: "rdv-data-stale",
        class: FrameClass::RdvData,
        guard: rdv_data_stale_guard,
        action: noop,
    },
    // handle_rma_put (small form): apply + ack.
    Rule {
        name: "rma-put",
        class: FrameClass::RmaPut,
        guard: always,
        action: rma_put,
    },
    // handle_rma_put_chunk: fresh chunk, completion applies + acks …
    Rule {
        name: "rma-put-chunk-fresh",
        class: FrameClass::RmaPutData,
        guard: put_chunk_fresh_guard,
        action: put_chunk_fresh,
    },
    // … duplicate chunk suppressed by the per-op bitmap.
    Rule {
        name: "rma-put-chunk-dup",
        class: FrameClass::RmaPutData,
        guard: put_chunk_dup_guard,
        action: noop,
    },
    // handle_rma_get: serve the reply (single frame or chunked).
    Rule {
        name: "rma-get",
        class: FrameClass::RmaGet,
        guard: always,
        action: rma_get,
    },
    // handle_rma_acc: apply + ack.
    Rule {
        name: "rma-acc",
        class: FrameClass::RmaAcc,
        guard: always,
        action: rma_acc,
    },
    // handle_rma_ack: first ack completes the origin-side op …
    Rule {
        name: "rma-ack-fresh",
        class: FrameClass::RmaAck,
        guard: op_live,
        action: op_complete,
    },
    // … a late duplicate ack finds no op and is ignored.
    Rule {
        name: "rma-ack-stale",
        class: FrameClass::RmaAck,
        guard: op_stale_guard,
        action: noop,
    },
    // handle_rma_get_reply: whole-payload reply completes the get …
    Rule {
        name: "get-reply-fresh",
        class: FrameClass::RmaGetReply,
        guard: op_live,
        action: op_complete,
    },
    // … unless the op was abandoned or already completed.
    Rule {
        name: "get-reply-stale",
        class: FrameClass::RmaGetReply,
        guard: op_stale_guard,
        action: noop,
    },
    // handle_rma_get_data: fresh reply chunk, completion on last …
    Rule {
        name: "get-data-fresh",
        class: FrameClass::RmaGetData,
        guard: get_data_fresh_guard,
        action: get_data_fresh,
    },
    // … duplicate chunk suppressed by the assembly bitmap …
    Rule {
        name: "get-data-dup",
        class: FrameClass::RmaGetData,
        guard: get_data_dup_guard,
        action: noop,
    },
    // … and chunks for a dead op clear any half-built assembly.
    Rule {
        name: "get-data-stale",
        class: FrameClass::RmaGetData,
        guard: op_stale_guard,
        action: get_data_stale,
    },
];

/// Dispatch one protocol frame through the table.
///
/// Returns the name of the (unique) rule that fired, or the violation
/// that the dispatch itself constitutes.
pub fn dispatch(
    src: usize,
    frame: ProtoFrame,
    muts: &Muts,
    node: &mut NodeState,
    eff: &mut Effects,
) -> Result<&'static str, Violation> {
    let ctx = RuleCtx { src, frame, muts };
    let class = frame.class();
    let mut hit: Option<&Rule> = None;
    for rule in RULES {
        if rule.class == class && (rule.guard)(&ctx, node) {
            if let Some(first) = hit {
                return Err(Violation::AmbiguousRules {
                    what: format!(
                        "{:?} from {src}: rules '{}' and '{}' both claim it",
                        frame, first.name, rule.name
                    ),
                });
            }
            hit = Some(rule);
        }
    }
    match hit {
        Some(rule) => {
            (rule.action)(&ctx, node, eff);
            Ok(rule.name)
        }
        None => Err(Violation::UnhandledFrame {
            what: format!("{frame:?} from {src}: no rule claims it"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn every_frame_class_has_a_rule() {
        let classes: BTreeSet<_> = RULES.iter().map(|r| r.class).collect();
        for class in [
            FrameClass::Eager,
            FrameClass::Rts,
            FrameClass::Cts,
            FrameClass::RdvData,
            FrameClass::RmaPut,
            FrameClass::RmaPutData,
            FrameClass::RmaGet,
            FrameClass::RmaGetReply,
            FrameClass::RmaGetData,
            FrameClass::RmaAcc,
            FrameClass::RmaAck,
        ] {
            assert!(classes.contains(&class), "no rule for {class:?}");
        }
    }

    #[test]
    fn rule_names_are_unique() {
        let names: BTreeSet<_> = RULES.iter().map(|r| r.name).collect();
        assert_eq!(names.len(), RULES.len());
    }

    #[test]
    fn dispatch_is_deterministic_on_faithful_tables() {
        // A CTS in every reachable local state matches exactly one rule.
        let muts = Muts::none();
        let mut eff = Effects::default();
        let mut node = NodeState::default();
        let fired = dispatch(1, ProtoFrame::Cts { rdv: 7 }, &muts, &mut node, &mut eff).unwrap();
        assert_eq!(fired, "cts-stale");
        node.rdv_sends.insert(7, 2);
        let fired = dispatch(1, ProtoFrame::Cts { rdv: 7 }, &muts, &mut node, &mut eff).unwrap();
        assert_eq!(fired, "cts-fresh");
        assert_eq!(eff.send.len(), 2, "two data chunks queued");
        assert_eq!(eff.complete, vec![7]);
    }

    #[test]
    fn mutated_table_leaves_stale_cts_unhandled() {
        let muts = Muts::of(&[Mutation::DropDupCtsGuard]);
        let mut eff = Effects::default();
        let mut node = NodeState::default();
        let err = dispatch(1, ProtoFrame::Cts { rdv: 7 }, &muts, &mut node, &mut eff).unwrap_err();
        assert_eq!(err.kind(), "unhandled-frame");
    }
}
