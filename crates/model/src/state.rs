//! Model states: per-rank protocol state, the abstract fabric, the
//! adversary budgets, and the violation vocabulary.
//!
//! Everything in [`World`] is canonically ordered (`BTreeMap`/`BTreeSet`,
//! fixed-size vectors) so that structurally equal states hash equal and
//! the explorer's visited set deduplicates reliably.

use crate::frames::{Frame, Pkt, ProtoFrame};
use pm2_newmad::SeqWindow;
use std::collections::{BTreeMap, BTreeSet};

/// What one rank's application script does at one step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpKind {
    /// Send one eager message.
    Eager {
        /// Destination rank.
        dst: usize,
        /// Matching tag.
        tag: u64,
        /// Flow sequence number.
        seq: u32,
    },
    /// Send one rendezvous message of `chunks` data chunks.
    Rdv {
        /// Destination rank.
        dst: usize,
        /// Data chunk count (≥ 1).
        chunks: u32,
    },
    /// Issue a one-sided put (`chunks` = 0 ⇒ single eager-size frame,
    /// ≥ 2 ⇒ that many `RmaPutData` chunks).
    RmaPut {
        /// Target rank.
        dst: usize,
        /// Chunk count (0 for the small-put wire form).
        chunks: u32,
    },
    /// Issue a one-sided get (`reply_chunks` = 0 ⇒ single reply frame,
    /// ≥ 2 ⇒ that many `RmaGetData` chunks back).
    RmaGet {
        /// Target rank.
        dst: usize,
        /// Reply chunk count (0 for the single-reply wire form).
        reply_chunks: u32,
    },
    /// Issue a one-sided accumulate.
    RmaAcc {
        /// Target rank.
        dst: usize,
    },
}

/// One scripted application operation, tagged with its flow id.
///
/// Flow ids double as the wire-level `rdv`/`op` identifiers, so they
/// must be unique across the whole configuration (asserted by
/// [`Cfg::validate`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AppOp {
    /// Unique flow id (also the wire `rdv`/`op` id for non-eager ops).
    pub flow: u64,
    /// What the operation does.
    pub kind: OpKind,
}

/// A seeded protocol mutation: a deliberate, localized bug injected into
/// the transition tables so the explorer can prove it finds the
/// resulting violation. Each variant names the defense it removes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Mutation {
    /// Envelope layer stops advancing the receive `SeqWindow`: every
    /// duplicate envelope is dispatched as if fresh.
    SkipSeqWindowAdvance,
    /// `cts-stale` rule removed: a CTS for an unknown rendezvous hits no
    /// rule (production would panic on an unhandled frame).
    DropDupCtsGuard,
    /// `rts-fresh` no longer checks for an existing assembly: a
    /// duplicate RTS resets the receiver's chunk assembly mid-flight.
    SkipRtsDedup,
    /// Put-chunk assembly forgets to mark chunks as seen: duplicates
    /// are counted twice and completion fires with holes.
    ForgetChunkBitmap,
    /// Retry exhaustion is detected but the waiting request is never
    /// failed: the flow stalls silently instead of erroring out.
    IgnoreRetriesExhausted,
    /// The retransmit timer stops re-issuing RTS envelopes (fires,
    /// burns an attempt, sends nothing).
    DontReissueRts,
    /// Envelope acks are only sent for fresh envelopes; duplicates are
    /// suppressed without re-acking, so the sender retries forever.
    AckOnlyFresh,
    /// Rendezvous receive completes one chunk early (at `chunks - 1`).
    CompleteRecvEarly,
    /// Get-reply chunk assembly skips its duplicate check.
    SkipGetChunkDedup,
}

/// The active mutation set (empty ⇒ the faithful tables).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Muts(pub BTreeSet<Mutation>);

impl Muts {
    /// The faithful, unmutated tables.
    pub fn none() -> Self {
        Muts::default()
    }
    /// A mutation set from a list.
    pub fn of(list: &[Mutation]) -> Self {
        Muts(list.iter().copied().collect())
    }
    /// Whether `m` is active.
    pub fn has(&self, m: Mutation) -> bool {
        self.0.contains(&m)
    }
}

/// A bounded model configuration: ranks, scripts, adversary budgets.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Number of ranks (2–3 in practice).
    pub ranks: usize,
    /// Per-rank application scripts, executed in order.
    pub scripts: Vec<Vec<AppOp>>,
    /// Envelope retry budget (production `SessionConfig::max_retries`).
    pub max_retries: u32,
    /// How many in-flight frames the adversary may drop.
    pub drop_budget: u8,
    /// How many in-flight frames the adversary may duplicate.
    pub dup_budget: u8,
}

impl Cfg {
    /// Panics if the configuration is malformed (flow ids not unique,
    /// script destinations out of range, self-sends).
    pub fn validate(&self) {
        assert_eq!(self.scripts.len(), self.ranks, "one script per rank");
        let mut flows = BTreeSet::new();
        for (rank, script) in self.scripts.iter().enumerate() {
            for op in script {
                assert!(flows.insert(op.flow), "flow id {} reused", op.flow);
                let dst = match op.kind {
                    OpKind::Eager { dst, .. }
                    | OpKind::Rdv { dst, .. }
                    | OpKind::RmaPut { dst, .. }
                    | OpKind::RmaGet { dst, .. }
                    | OpKind::RmaAcc { dst } => dst,
                };
                assert!(dst < self.ranks, "dest {dst} out of range");
                assert_ne!(dst, rank, "self-sends are not modelled");
            }
        }
    }

    /// All (origin, op) pairs across every script.
    pub fn all_ops(&self) -> impl Iterator<Item = (usize, &AppOp)> {
        self.scripts
            .iter()
            .enumerate()
            .flat_map(|(rank, script)| script.iter().map(move |op| (rank, op)))
    }

    /// The flow id of the eager op matching (origin, dst, tag, seq).
    ///
    /// Eager wire frames do not carry their flow id; exhaustion handling
    /// uses this reverse lookup to void the right flow.
    pub fn eager_flow(&self, origin: usize, dst: usize, tag: u64, seq: u32) -> Option<u64> {
        self.scripts[origin].iter().find_map(|op| match op.kind {
            OpKind::Eager {
                dst: d,
                tag: t,
                seq: s,
            } if d == dst && t == tag && s == seq => Some(op.flow),
            _ => None,
        })
    }
}

/// Receiver-side chunk assembly (rendezvous data, put chunks, get-reply
/// chunks): the model twin of production's chunk bitmap + counter.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Asm {
    /// Which chunk indices have landed.
    pub seen: Vec<bool>,
    /// How many arrivals were counted (≠ popcount(seen) under the
    /// `ForgetChunkBitmap` mutation — that gap *is* the bug).
    pub received: u32,
}

impl Asm {
    /// Fresh assembly for `chunks` chunks.
    pub fn new(chunks: u32) -> Self {
        Asm {
            seen: vec![false; chunks as usize],
            received: 0,
        }
    }
}

/// One pending (unacked) envelope at its sender.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelPend {
    /// The protocol frame inside the envelope (for retransmission).
    pub inner: ProtoFrame,
    /// Retransmit attempts so far (0 = only the original transmission).
    pub attempts: u32,
}

/// Status of one application flow at its origin.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowSt {
    /// The origin-side request completed (production `req.complete()`).
    pub completed: bool,
    /// The origin-side request failed with a typed error (production
    /// `req.fail(RetriesExhausted)`).
    pub failed: bool,
}

/// One rank's complete protocol state.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct NodeState {
    /// Next script index to run.
    pub next_op: usize,
    /// Origin-side flow status, keyed by flow id.
    pub flows: BTreeMap<u64, FlowSt>,
    /// Eager deliveries: (src, tag, seq) → delivery count.
    pub delivered_eager: BTreeMap<(usize, u64, u32), u32>,
    /// Rendezvous deliveries: rdv → delivery count.
    pub delivered_rdv: BTreeMap<u64, u32>,
    /// RMA target-side applies: op → apply count.
    pub applied_rma: BTreeMap<u64, u32>,
    /// Sender-side in-flight rendezvous (RTS sent, waiting for CTS).
    pub rdv_sends: BTreeMap<u64, u32>,
    /// Receiver-side rendezvous assemblies, keyed (src, rdv).
    pub rdv_recvs: BTreeMap<(usize, u64), Asm>,
    /// Origin-side in-flight RMA ops: op → target rank.
    pub rma_ops: BTreeMap<u64, usize>,
    /// Target-side put-chunk assemblies, keyed (src, op).
    pub rma_chunks: BTreeMap<(usize, u64), Asm>,
    /// Origin-side get-reply chunk assemblies, keyed by op.
    pub rma_get_asm: BTreeMap<u64, Asm>,
    /// Next envelope seq to assign, per destination.
    pub rel_next_tx: BTreeMap<usize, u64>,
    /// Pending (unacked) envelopes, keyed (dest, rel).
    pub rel_pending: BTreeMap<(usize, u64), RelPend>,
    /// Per-source receive window — the *production* `SeqWindow`, so the
    /// explorer checks the shipped dedup code, not a model twin.
    pub rel_rx: BTreeMap<usize, SeqWindow>,
    /// Ghost state (not part of any implementation): the exact set of
    /// envelope seqs ever delivered, per source. The explorer compares
    /// `SeqWindow` verdicts against this oracle to prove the window
    /// sound in both directions.
    pub env_seen: BTreeMap<usize, BTreeSet<u64>>,
}

/// The complete explored state: all ranks, the fabric, the adversary.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct World {
    /// Per-rank protocol state.
    pub nodes: Vec<NodeState>,
    /// Frames in flight, as a multiset (duplication makes counts > 1).
    pub net: BTreeMap<Pkt, u8>,
    /// Remaining adversary drop budget.
    pub drops_left: u8,
    /// Remaining adversary duplication budget.
    pub dups_left: u8,
    /// Flows voided by legitimate retry exhaustion: their goals and
    /// leftover state are excused at terminal states.
    pub voided: BTreeSet<u64>,
}

impl World {
    /// The initial state for `cfg`: quiet fabric, full budgets.
    pub fn init(cfg: &Cfg) -> Self {
        World {
            nodes: vec![NodeState::default(); cfg.ranks],
            net: BTreeMap::new(),
            drops_left: cfg.drop_budget,
            dups_left: cfg.dup_budget,
            voided: BTreeSet::new(),
        }
    }

    /// Add one copy of `pkt` to the fabric.
    pub fn net_add(&mut self, pkt: Pkt) {
        *self.net.entry(pkt).or_insert(0) += 1;
    }

    /// Remove one copy of `pkt` from the fabric.
    pub fn net_remove(&mut self, pkt: &Pkt) {
        match self.net.get_mut(pkt) {
            Some(1) => {
                self.net.remove(pkt);
            }
            Some(n) => *n -= 1,
            None => unreachable!("removing a frame that is not in flight"),
        }
    }

    /// Whether any copy of an envelope `rel` from `src` to `dst` is
    /// still in flight.
    pub fn env_in_flight(&self, src: usize, dst: usize, rel: u64) -> bool {
        self.net.keys().any(|p| {
            p.src == src && p.dst == dst && matches!(p.frame, Frame::Env { rel: r, .. } if r == rel)
        })
    }

    /// Whether an ack for envelope `rel` is in flight from `src` to `dst`.
    pub fn ack_in_flight(&self, src: usize, dst: usize, rel: u64) -> bool {
        self.net
            .keys()
            .any(|p| p.src == src && p.dst == dst && p.frame == Frame::Ack { rel })
    }
}

/// A safety or liveness property the explorer found violated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A message/op was delivered or applied more than once.
    DoubleDelivery {
        /// Human-readable description of the duplicated delivery.
        what: String,
    },
    /// A chunk assembly completed with missing or double-counted chunks.
    CorruptAssembly {
        /// Human-readable description of the corrupt completion.
        what: String,
    },
    /// A frame arrived that no rule handles (production panics here).
    UnhandledFrame {
        /// Human-readable description of the orphan frame.
        what: String,
    },
    /// More than one rule claimed the same frame: the table is not
    /// deterministic.
    AmbiguousRules {
        /// The rule names that collided.
        what: String,
    },
    /// The production `SeqWindow` disagreed with the ghost seen-set:
    /// re-admitted a duplicate or suppressed a fresh envelope.
    WindowUnsound {
        /// Which direction it failed, and for which envelope.
        what: String,
    },
    /// Retry exhaustion fired even though the adversary's drop budget
    /// cannot exhaust the retry budget (the timeout-gating theorem says
    /// each timer fire consumes at least one drop).
    SpuriousExhaustion {
        /// Which envelope exhausted.
        what: String,
    },
    /// A terminal state where some flow neither met its goal nor
    /// surfaced a typed failure: a silent stall (deadlock from the
    /// application's point of view).
    SilentStall {
        /// Which goal went unmet.
        what: String,
    },
    /// A terminal state retains protocol state for a flow that neither
    /// failed nor was voided: a leak.
    LeftoverState {
        /// Which table still holds state.
        what: String,
    },
}

impl Violation {
    /// Stable kind tag for assertions and counterexample headers.
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::DoubleDelivery { .. } => "double-delivery",
            Violation::CorruptAssembly { .. } => "corrupt-assembly",
            Violation::UnhandledFrame { .. } => "unhandled-frame",
            Violation::AmbiguousRules { .. } => "ambiguous-rules",
            Violation::WindowUnsound { .. } => "window-unsound",
            Violation::SpuriousExhaustion { .. } => "spurious-exhaustion",
            Violation::SilentStall { .. } => "silent-stall",
            Violation::LeftoverState { .. } => "leftover-state",
        }
    }

    /// The free-form detail string.
    pub fn detail(&self) -> &str {
        match self {
            Violation::DoubleDelivery { what }
            | Violation::CorruptAssembly { what }
            | Violation::UnhandledFrame { what }
            | Violation::AmbiguousRules { what }
            | Violation::WindowUnsound { what }
            | Violation::SpuriousExhaustion { what }
            | Violation::SilentStall { what }
            | Violation::LeftoverState { what } => what,
        }
    }
}
