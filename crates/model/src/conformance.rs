//! Trace conformance: replay a pm2-obs event stream from a real
//! simulation run against the same transition tables the explorer
//! checks, asserting every observed protocol transition is one the
//! model permits.
//!
//! The replay is a *projection*: obs events record protocol milestones
//! (RTS/CTS receipt, DMA chunk landings, RMA issues/applies/acks,
//! envelope retransmits), not raw frames, so the checker reconstructs
//! per-node model state from the milestones and dispatches each received
//! frame through [`crate::table::RULES`]. A production change that makes
//! a handler take a transition outside the tables (or re-deliver, or
//! complete twice) turns into a conformance error here.
//!
//! Envelope-layer events are checked against the retry discipline
//! directly: attempts are monotone and bounded by the retry budget, a
//! duplicate suppression implies an earlier retransmit of that very
//! envelope (valid for drop/delay-only fault plans — duplication faults
//! mint duplicates without retransmits), and an exhaustion implies the
//! full retry ladder was climbed first.

use crate::frames::ProtoFrame;
use crate::state::{Muts, NodeState};
use crate::table::{dispatch, Effects};
use pm2_sim::obs::{Event, EventKind};
use std::collections::BTreeMap;

/// Production parameters the trace was generated under.
#[derive(Clone, Copy, Debug)]
pub struct ConformCfg {
    /// `SessionConfig::max_retries` of the traced run.
    pub max_retries: u32,
    /// Whether the fault plan could duplicate frames (disables the
    /// dup-implies-retransmit check).
    pub dup_faults: bool,
}

impl Default for ConformCfg {
    fn default() -> Self {
        ConformCfg {
            max_retries: pm2_newmad::SessionConfig::default().max_retries,
            dup_faults: false,
        }
    }
}

/// The conformance verdict for one trace.
#[derive(Clone, Debug, Default)]
pub struct ConformReport {
    /// Every transition the tables did not permit, with context.
    pub errors: Vec<String>,
    /// How often each table rule fired during the replay.
    pub rule_fires: BTreeMap<&'static str, u64>,
    /// Rendezvous flows observed.
    pub rdvs: usize,
    /// RMA ops observed.
    pub rma_ops: usize,
    /// Eager deliveries observed.
    pub eager_deliveries: usize,
    /// Envelope retransmissions observed.
    pub retransmits: u64,
    /// Envelope duplicate suppressions observed.
    pub dup_suppressed: u64,
    /// Retry exhaustions observed.
    pub exhaustions: u64,
}

impl ConformReport {
    /// True when every observed transition was model-permitted.
    pub fn conformant(&self) -> bool {
        self.errors.is_empty()
    }

    /// Human-readable rendering of the verdict.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "conformance: {} rdv flow(s), {} rma op(s), {} eager deliveries, {} retransmit(s), {} dup(s) suppressed, {} exhaustion(s) — {}",
            self.rdvs,
            self.rma_ops,
            self.eager_deliveries,
            self.retransmits,
            self.dup_suppressed,
            self.exhaustions,
            if self.conformant() { "PERMITTED" } else { "VIOLATIONS" },
        );
        let _ = writeln!(out, "rule fires: {:?}", self.rule_fires);
        for e in &self.errors {
            let _ = writeln!(out, "  error: {e}");
        }
        out
    }
}

/// Per-op bookkeeping reconstructed from RmaIssue/RmaApply events.
#[derive(Default)]
struct OpTrack {
    bytes: usize,
    submit_bytes: usize,
    submits: usize,
    applies: usize,
    apply_bytes: usize,
    acked: u32,
}

/// Replay `events` (in emission order) against the protocol tables.
pub fn check_trace(events: &[Event], cfg: &ConformCfg) -> ConformReport {
    let mut report = ConformReport::default();
    let muts = Muts::none();
    let mut nodes: BTreeMap<usize, NodeState> = BTreeMap::new();

    // Pre-pass: rendezvous geometry. Production rendezvous ids are a
    // *per-session* counter, so two nodes reuse the same numeric id for
    // unrelated flows — every map here is keyed by (origin, rdv).
    let mut rdv_receiver: BTreeMap<(usize, u64), usize> = BTreeMap::new();
    let mut rdv_chunks: BTreeMap<(usize, u64), u32> = BTreeMap::new();
    for ev in events {
        match ev.kind {
            EventKind::CtsTx { rdv, dest } => {
                if let Some(node) = ev.node {
                    rdv_receiver.entry((dest, rdv)).or_insert(node);
                }
            }
            EventKind::DmaTx { rdv, chunk, .. } => {
                if let Some(node) = ev.node {
                    let c = rdv_chunks.entry((node, rdv)).or_insert(1);
                    *c = (*c).max(chunk + 1);
                }
            }
            _ => {}
        }
    }

    // RMA op ids are per-session counters like rdv ids: key by origin.
    let mut ops: BTreeMap<(usize, u64), OpTrack> = BTreeMap::new();
    let mut eager_reqs: BTreeMap<u64, u32> = BTreeMap::new();
    let mut eager_seq: BTreeMap<(usize, usize, u64), u32> = BTreeMap::new();
    // (src, dest, rel) → highest retransmit attempt seen.
    let mut retx: BTreeMap<(usize, usize, u64), u32> = BTreeMap::new();

    // Dispatch one received frame through the tables at `node`.
    let run = |nodes: &mut BTreeMap<usize, NodeState>,
               report: &mut ConformReport,
               node: usize,
               src: usize,
               frame: ProtoFrame|
     -> Option<&'static str> {
        let state = nodes.entry(node).or_default();
        let mut eff = Effects::default();
        match dispatch(src, frame, &muts, state, &mut eff) {
            Ok(rule) => {
                *report.rule_fires.entry(rule).or_insert(0) += 1;
                for v in eff.violations {
                    report
                        .errors
                        .push(format!("node {node}: {} — {}", v.kind(), v.detail()));
                }
                // Sends are witnessed by their own trace events; flow
                // completions surface as Cts/ack receipt below.
                for flow in eff.complete {
                    if let Some(f) = nodes.get_mut(&node).and_then(|n| n.flows.get_mut(&flow)) {
                        f.completed = true;
                    }
                }
                Some(rule)
            }
            Err(v) => {
                report
                    .errors
                    .push(format!("node {node}: {} — {}", v.kind(), v.detail()));
                None
            }
        }
    };

    for ev in events {
        let Some(node) = ev.node else { continue };
        match ev.kind {
            // ---- rendezvous ------------------------------------------
            EventKind::RtsTx { rdv, .. } => {
                let chunks = rdv_chunks.get(&(node, rdv)).copied().unwrap_or(1);
                let n = nodes.entry(node).or_default();
                n.rdv_sends.insert(rdv, chunks);
                n.flows.insert(
                    rdv,
                    crate::state::FlowSt {
                        completed: false,
                        failed: false,
                    },
                );
                report.rdvs += 1;
            }
            EventKind::RtsRx { rdv, src, .. } => {
                let chunks = rdv_chunks.get(&(src, rdv)).copied().unwrap_or(1);
                let fired = run(
                    &mut nodes,
                    &mut report,
                    node,
                    src,
                    ProtoFrame::Rts { rdv, chunks },
                );
                // Production suppresses duplicate RTSes before emitting
                // RtsRx, so every emission must take the fresh path.
                if fired.is_some_and(|rule| rule != "rts-fresh") {
                    report.errors.push(format!(
                        "node {node}: RtsRx rdv {rdv} dispatched as '{}', expected fresh",
                        fired.unwrap_or("?")
                    ));
                }
            }
            EventKind::CtsTx { rdv, dest } => {
                let known = nodes
                    .get(&node)
                    .is_some_and(|n| n.rdv_recvs.contains_key(&(dest, rdv)));
                if !known {
                    report.errors.push(format!(
                        "node {node}: CTS for rdv {rdv} sent with no assembly"
                    ));
                }
            }
            EventKind::CtsRx { rdv, .. } => {
                let receiver = rdv_receiver
                    .get(&(node, rdv))
                    .copied()
                    .unwrap_or(usize::MAX);
                let fired = run(
                    &mut nodes,
                    &mut report,
                    node,
                    receiver,
                    ProtoFrame::Cts { rdv },
                );
                // Stale and duplicate CTSes never emit CtsRx.
                if fired.is_some_and(|rule| rule != "cts-fresh") {
                    report.errors.push(format!(
                        "node {node}: CtsRx rdv {rdv} dispatched as '{}', expected fresh",
                        fired.unwrap_or("?")
                    ));
                }
            }
            EventKind::DmaRx {
                rdv, src, chunk, ..
            } => {
                let chunks = rdv_chunks.get(&(src, rdv)).copied().unwrap_or(1);
                let fired = run(
                    &mut nodes,
                    &mut report,
                    node,
                    src,
                    ProtoFrame::RdvData { rdv, chunk, chunks },
                );
                // Production suppresses duplicate and stale chunks
                // *before* emitting DmaRx, so every emitted landing must
                // be a fresh one.
                if let Some(rule) = fired {
                    if rule != "rdv-data-fresh" {
                        report.errors.push(format!(
                            "node {node}: DmaRx rdv {rdv} chunk {chunk} dispatched as '{rule}', expected fresh"
                        ));
                    }
                }
            }
            EventKind::RdvComplete { rdv, .. } => {
                let delivered = nodes
                    .get(&node)
                    .and_then(|n| n.delivered_rdv.get(&rdv))
                    .copied()
                    .unwrap_or(0);
                if delivered != 1 {
                    report.errors.push(format!(
                        "node {node}: RdvComplete for rdv {rdv} with model delivery count {delivered}"
                    ));
                }
            }
            // ---- eager -----------------------------------------------
            EventKind::EagerDeliver { req, src, tag, .. } => {
                report.eager_deliveries += 1;
                let count = eager_reqs.entry(req).or_insert(0);
                *count += 1;
                if *count > 1 {
                    report.errors.push(format!(
                        "node {node}: eager req {req} delivered {count} times"
                    ));
                }
                // Exercise the eager rule with a per-(node,src,tag)
                // synthetic seq: exactly-once at the envelope level is
                // asserted via the req counter above.
                let seq = eager_seq.entry((node, src, tag)).or_insert(0);
                let frame = ProtoFrame::Eager { tag, seq: *seq };
                *seq += 1;
                run(&mut nodes, &mut report, node, src, frame);
            }
            // ---- reliability envelope --------------------------------
            EventKind::Retransmit { rel, dest, attempt } => {
                report.retransmits += 1;
                let prev = retx.entry((node, dest, rel)).or_insert(0);
                if attempt != *prev + 1 {
                    report.errors.push(format!(
                        "node {node}: rel {rel} to {dest} retransmit attempt {attempt} after {prev}"
                    ));
                }
                *prev = attempt;
                if attempt > cfg.max_retries {
                    report.errors.push(format!(
                        "node {node}: rel {rel} to {dest} attempt {attempt} exceeds budget {}",
                        cfg.max_retries
                    ));
                }
            }
            EventKind::DupSuppressed { rel, src } => {
                report.dup_suppressed += 1;
                if !cfg.dup_faults && !retx.contains_key(&(src, node, rel)) {
                    report.errors.push(format!(
                        "node {node}: duplicate of rel {rel} from {src} suppressed without a prior retransmit"
                    ));
                }
            }
            EventKind::RetryExhausted { rel, dest } => {
                report.exhaustions += 1;
                let climbed = retx.get(&(node, dest, rel)).copied().unwrap_or(0);
                if climbed != cfg.max_retries {
                    report.errors.push(format!(
                        "node {node}: rel {rel} to {dest} exhausted after {climbed} retransmits, budget {}",
                        cfg.max_retries
                    ));
                }
            }
            // ---- one-sided -------------------------------------------
            EventKind::RmaIssue {
                op, dest, bytes, ..
            } => {
                if let Some(track) = ops.get_mut(&(node, op)) {
                    // Not the first (stage) issue: a fresh wire
                    // submission carrying one chunk of the op.
                    track.submits += 1;
                    track.submit_bytes += bytes;
                } else {
                    report.rma_ops += 1;
                    let n = nodes.entry(node).or_default();
                    n.rma_ops.insert(op, dest);
                    n.flows.insert(
                        op,
                        crate::state::FlowSt {
                            completed: false,
                            failed: false,
                        },
                    );
                    ops.insert(
                        (node, op),
                        OpTrack {
                            bytes,
                            ..OpTrack::default()
                        },
                    );
                }
            }
            EventKind::RmaApply { op, src, bytes, .. } => {
                // `src` is the issuing origin, so (src, op) names the op.
                let track = ops.entry((src, op)).or_default();
                track.applies += 1;
                track.apply_bytes += bytes;
            }
            EventKind::RmaAckRx { op, src } => {
                // Both put/acc acks and get replies complete an op; the
                // model projects every completion onto the ack rule.
                if !ops.contains_key(&(node, op)) {
                    report
                        .errors
                        .push(format!("node {node}: completion for never-issued op {op}"));
                }
                let fired = run(
                    &mut nodes,
                    &mut report,
                    node,
                    src,
                    ProtoFrame::RmaAck { op },
                );
                if fired == Some("rma-ack-stale") {
                    report
                        .errors
                        .push(format!("node {node}: op {op} completed twice"));
                }
                let track = ops.entry((node, op)).or_default();
                track.acked += 1;
            }
            _ => {}
        }
    }

    // Whole-trace RMA accounting: submissions reassemble the staged
    // bytes, applies are exactly-once (one whole apply, or one per
    // chunk summing to the payload).
    for (&(_origin, op), track) in &ops {
        if track.acked > 1 {
            report
                .errors
                .push(format!("op {op}: {} completion events", track.acked));
        }
        if track.submits > 0 && track.submit_bytes != track.bytes {
            report.errors.push(format!(
                "op {op}: wire submissions carry {} bytes, staged {}",
                track.submit_bytes, track.bytes
            ));
        }
        if track.applies > 0 {
            let whole = track.applies == 1 && track.apply_bytes == track.bytes;
            let chunked = track.applies > 1
                && track.apply_bytes == track.bytes
                && track.applies == track.bytes.div_ceil(pm2_newmad::RMA_CHUNK);
            if !(whole || chunked) {
                report.errors.push(format!(
                    "op {op}: {} applies covering {} of {} bytes — not exactly-once",
                    track.applies, track.apply_bytes, track.bytes
                ));
            }
        }
    }
    report
}
