//! The explicit-state explorer: exhaustive BFS over all interleavings of
//! application steps, frame deliveries, adversarial drop/dup choices and
//! retransmit-timer fires, under the configured budgets.
//!
//! Safety properties (exactly-once delivery, assembly integrity, window
//! soundness, table totality/determinism) are checked on every
//! transition; liveness properties (no silent stall, no leftover state,
//! typed failure on legitimate exhaustion) are checked at terminal
//! states, which exist because budgets and retry counts bound every run.
//!
//! # The timeout-gating theorem
//!
//! A retransmit timer for envelope `rel` may only fire when no copy of
//! the envelope and no ack for it is in flight. Every fire therefore
//! consumes at least one adversary drop (the copy or its ack must have
//! been dropped — delivery of the ack would have cancelled the timer,
//! and a delivered envelope re-acks every time). Hence with
//! `drop_budget ≤ max_retries`, retry exhaustion is unreachable on
//! correct tables: if it happens anyway, the explorer reports
//! [`Violation::SpuriousExhaustion`].

use crate::frames::{Frame, Pkt, ProtoFrame};
use crate::state::{Cfg, FlowSt, Mutation, Muts, OpKind, RelPend, Violation, World};
use crate::table::{dispatch, Effects};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt::Write as _;

/// Exploration bounds.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Stop after visiting this many distinct states (`complete` turns
    /// false in the report).
    pub max_states: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_states: 400_000,
        }
    }
}

/// One violating execution, reconstructed from the BFS parent chain.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// Stable violation kind (see [`Violation::kind`]).
    pub kind: &'static str,
    /// What exactly went wrong.
    pub detail: String,
    /// The transition labels from the initial state to the violation.
    pub trace: Vec<String>,
}

/// The explorer's verdict over one (cfg, mutations) pair.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions taken (edges, before dedup).
    pub transitions: usize,
    /// Whether the bounded state space was exhausted.
    pub complete: bool,
    /// Total violating transitions found.
    pub violation_count: usize,
    /// First counterexample found per violation kind.
    pub violations: Vec<Counterexample>,
    /// How often each rule fired across all explored transitions.
    pub rule_fires: BTreeMap<&'static str, u64>,
    /// Terminal states where every flow met its goal.
    pub success_terminals: usize,
    /// Terminal states with at least one voided/failed flow.
    pub failed_terminals: usize,
}

impl Report {
    /// The set of violation kinds found.
    pub fn kinds(&self) -> BTreeSet<&'static str> {
        self.violations.iter().map(|c| c.kind).collect()
    }

    /// Human-readable rendering: summary plus each counterexample as a
    /// numbered transition trace.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "explored {} states / {} transitions ({}), {} violating transition(s), terminals: {} ok / {} failed",
            self.states,
            self.transitions,
            if self.complete { "complete" } else { "BOUND HIT" },
            self.violation_count,
            self.success_terminals,
            self.failed_terminals,
        );
        for cx in &self.violations {
            let _ = writeln!(out, "\ncounterexample [{}]: {}", cx.kind, cx.detail);
            for (i, step) in cx.trace.iter().enumerate() {
                let _ = writeln!(out, "  {:>3}. {step}", i + 1);
            }
        }
        out
    }
}

/// One generated successor: label, resulting world, anything that went
/// wrong on the way, and which table rules fired.
struct Succ {
    label: String,
    world: World,
    violations: Vec<Violation>,
    fired: Vec<&'static str>,
}

/// Assign the next envelope seq from `from` to `to` and put the frame on
/// the fabric with a pending-retransmit record.
fn send_env(w: &mut World, from: usize, to: usize, inner: ProtoFrame) {
    let rel = {
        let n = &mut w.nodes[from];
        let next = n.rel_next_tx.entry(to).or_insert(0);
        let rel = *next;
        *next += 1;
        n.rel_pending
            .insert((to, rel), RelPend { inner, attempts: 0 });
        rel
    };
    w.net_add(Pkt {
        src: from,
        dst: to,
        frame: Frame::Env { rel, inner },
    });
}

/// Apply one scripted application operation at rank `n`.
fn app_step(w: &mut World, n: usize, cfg: &Cfg) {
    let op = cfg.scripts[n][w.nodes[n].next_op];
    w.nodes[n].next_op += 1;
    let flow = op.flow;
    let start_flow = |w: &mut World, completed: bool| {
        w.nodes[n].flows.insert(
            flow,
            FlowSt {
                completed,
                failed: false,
            },
        );
    };
    match op.kind {
        OpKind::Eager { dst, tag, seq } => {
            // Production completes an eager isend at NIC consumption,
            // before any delivery guarantee: model it as born-complete.
            start_flow(w, true);
            send_env(w, n, dst, ProtoFrame::Eager { tag, seq });
        }
        OpKind::Rdv { dst, chunks } => {
            start_flow(w, false);
            w.nodes[n].rdv_sends.insert(flow, chunks);
            send_env(w, n, dst, ProtoFrame::Rts { rdv: flow, chunks });
        }
        OpKind::RmaPut { dst, chunks } => {
            start_flow(w, false);
            w.nodes[n].rma_ops.insert(flow, dst);
            if chunks == 0 {
                send_env(w, n, dst, ProtoFrame::RmaPut { op: flow });
            } else {
                for chunk in 0..chunks {
                    send_env(
                        w,
                        n,
                        dst,
                        ProtoFrame::RmaPutData {
                            op: flow,
                            chunk,
                            chunks,
                        },
                    );
                }
            }
        }
        OpKind::RmaGet { dst, reply_chunks } => {
            start_flow(w, false);
            w.nodes[n].rma_ops.insert(flow, dst);
            send_env(
                w,
                n,
                dst,
                ProtoFrame::RmaGet {
                    op: flow,
                    reply_chunks,
                },
            );
        }
        OpKind::RmaAcc { dst } => {
            start_flow(w, false);
            w.nodes[n].rma_ops.insert(flow, dst);
            send_env(w, n, dst, ProtoFrame::RmaAcc { op: flow });
        }
    }
}

/// Deliver one envelope at `dst`: window check, ack, then dispatch
/// through the transition table if fresh. Operates on the successor as a
/// whole (world + fired rules + violations).
fn deliver_env(succ: &mut Succ, src: usize, dst: usize, rel: u64, inner: ProtoFrame, muts: &Muts) {
    let w = &mut succ.world;
    let fresh = if muts.has(Mutation::SkipSeqWindowAdvance) {
        true
    } else {
        let node = &mut w.nodes[dst];
        let fresh = node.rel_rx.entry(src).or_default().insert(rel);
        // Ghost oracle: the exact set of envelope seqs ever offered to
        // this window. The production SeqWindow must agree with it in
        // both directions.
        let seen = node.env_seen.entry(src).or_default();
        let was_offered = !seen.insert(rel);
        if fresh && was_offered {
            succ.violations.push(Violation::WindowUnsound {
                what: format!("window re-admitted envelope {rel} from {src} at {dst}"),
            });
        }
        if !fresh && !was_offered {
            succ.violations.push(Violation::WindowUnsound {
                what: format!("window suppressed never-seen envelope {rel} from {src} at {dst}"),
            });
        }
        fresh
    };
    let w = &mut succ.world;
    // Production re-acks duplicates so the sender's timer always dies;
    // the AckOnlyFresh mutation removes exactly that re-ack.
    if fresh || !muts.has(Mutation::AckOnlyFresh) {
        w.net_add(Pkt {
            src: dst,
            dst: src,
            frame: Frame::Ack { rel },
        });
    }
    if !fresh {
        return;
    }
    let mut eff = Effects::default();
    match dispatch(src, inner, muts, &mut w.nodes[dst], &mut eff) {
        Ok(rule) => succ.fired.push(rule),
        Err(v) => succ.violations.push(v),
    }
    succ.violations.append(&mut eff.violations);
    for flow in eff.complete {
        if let Some(f) = w.nodes[dst].flows.get_mut(&flow) {
            f.completed = true;
        }
    }
    for (to, frame) in eff.send {
        send_env(w, dst, to, frame);
    }
}

/// Release origin/target state held by the flow inside an exhausted
/// envelope, surfacing a typed failure where production has a waiter.
///
/// Mirrors `Session::rel_abandon` + `PiomReq::fail(RetriesExhausted)`.
/// Where production has no local waiter to fail (a lost eager payload,
/// data chunks for an already-completed send, a target-side reply or
/// ack), the flow is merely voided: its goals are excused at terminals,
/// exactly as production accepts silent loss there. Those gaps are the
/// honest limits documented in DESIGN.md §14.
fn abandon(w: &mut World, n: usize, dest: usize, inner: ProtoFrame, cfg: &Cfg) {
    let fail_origin = |w: &mut World, flow: u64| {
        if let Some(f) = w.nodes[n].flows.get_mut(&flow) {
            if !f.completed {
                f.failed = true;
            }
        }
    };
    match inner {
        ProtoFrame::Eager { tag, seq } => {
            if let Some(flow) = cfg.eager_flow(n, dest, tag, seq) {
                w.voided.insert(flow);
            }
        }
        ProtoFrame::Rts { rdv, .. } => {
            w.nodes[n].rdv_sends.remove(&rdv);
            fail_origin(w, rdv);
            w.voided.insert(rdv);
        }
        ProtoFrame::Cts { rdv } => {
            // The receiver abandons its side; the sender still parks the
            // payload forever (production limitation, excused via void).
            w.nodes[n].rdv_recvs.remove(&(dest, rdv));
            w.voided.insert(rdv);
        }
        ProtoFrame::RdvData { rdv, .. } => {
            w.voided.insert(rdv);
        }
        ProtoFrame::RmaPut { op }
        | ProtoFrame::RmaPutData { op, .. }
        | ProtoFrame::RmaGet { op, .. }
        | ProtoFrame::RmaAcc { op } => {
            if w.nodes[n].rma_ops.remove(&op).is_some() {
                w.nodes[n].rma_get_asm.remove(&op);
                fail_origin(w, op);
            }
            w.voided.insert(op);
        }
        ProtoFrame::RmaGetReply { op }
        | ProtoFrame::RmaGetData { op, .. }
        | ProtoFrame::RmaAck { op } => {
            // Target-side answer lost for good: the origin cannot learn
            // of it (production leaves the origin waiting).
            w.voided.insert(op);
        }
    }
}

/// Generate every successor of `w`.
fn successors(w: &World, cfg: &Cfg, muts: &Muts) -> Vec<Succ> {
    let mut out = Vec::new();
    // 1. Application steps.
    for n in 0..cfg.ranks {
        if w.nodes[n].next_op < cfg.scripts[n].len() {
            let mut succ = Succ {
                label: format!(
                    "app: rank {n} runs {:?}",
                    cfg.scripts[n][w.nodes[n].next_op]
                ),
                world: w.clone(),
                violations: Vec::new(),
                fired: Vec::new(),
            };
            app_step(&mut succ.world, n, cfg);
            out.push(succ);
        }
    }
    // 2./3./4. Per in-flight frame: deliver, adversarial drop, dup.
    for pkt in w.net.keys() {
        let mut succ = Succ {
            label: format!("deliver: {} -> {} {:?}", pkt.src, pkt.dst, pkt.frame),
            world: w.clone(),
            violations: Vec::new(),
            fired: Vec::new(),
        };
        succ.world.net_remove(pkt);
        match pkt.frame {
            Frame::Env { rel, inner } => deliver_env(&mut succ, pkt.src, pkt.dst, rel, inner, muts),
            Frame::Ack { rel } => {
                // Ack cancels the sender's retransmit timer; a late ack
                // for an abandoned envelope is a no-op.
                succ.world.nodes[pkt.dst]
                    .rel_pending
                    .remove(&(pkt.src, rel));
            }
        }
        out.push(succ);
        if w.drops_left > 0 {
            let mut succ = Succ {
                label: format!("drop: {} -> {} {:?}", pkt.src, pkt.dst, pkt.frame),
                world: w.clone(),
                violations: Vec::new(),
                fired: Vec::new(),
            };
            succ.world.net_remove(pkt);
            succ.world.drops_left -= 1;
            out.push(succ);
        }
        if w.dups_left > 0 {
            let mut succ = Succ {
                label: format!("dup: {} -> {} {:?}", pkt.src, pkt.dst, pkt.frame),
                world: w.clone(),
                violations: Vec::new(),
                fired: Vec::new(),
            };
            succ.world.net_add(*pkt);
            succ.world.dups_left -= 1;
            out.push(succ);
        }
    }
    // 5. Retransmit-timer fires: enabled only once the envelope and its
    // ack are both gone from the fabric (the gating that makes the
    // timeout theorem hold).
    for n in 0..cfg.ranks {
        for (&(dest, rel), pend) in &w.nodes[n].rel_pending {
            if w.env_in_flight(n, dest, rel) || w.ack_in_flight(dest, n, rel) {
                continue;
            }
            let mut succ = Succ {
                label: format!(
                    "timer: rank {n} refires rel {rel} to {dest} ({:?})",
                    pend.inner
                ),
                world: w.clone(),
                violations: Vec::new(),
                fired: Vec::new(),
            };
            let world = &mut succ.world;
            let p = world.nodes[n].rel_pending.get_mut(&(dest, rel)).unwrap();
            p.attempts += 1;
            let attempts = p.attempts;
            let inner = p.inner;
            if attempts > cfg.max_retries {
                succ.label = format!(
                    "timer: rank {n} exhausts rel {rel} to {dest} ({inner:?}) after {} attempts",
                    attempts - 1
                );
                if u32::from(cfg.drop_budget) <= cfg.max_retries {
                    succ.violations.push(Violation::SpuriousExhaustion {
                        what: format!(
                            "rel {rel} ({inner:?}) from {n} to {dest} exhausted {} retries with only {} drops allowed",
                            cfg.max_retries, cfg.drop_budget
                        ),
                    });
                }
                world.nodes[n].rel_pending.remove(&(dest, rel));
                if !muts.has(Mutation::IgnoreRetriesExhausted) {
                    abandon(world, n, dest, inner, cfg);
                }
            } else if !(muts.has(Mutation::DontReissueRts)
                && matches!(inner, ProtoFrame::Rts { .. }))
            {
                world.net_add(Pkt {
                    src: n,
                    dst: dest,
                    frame: Frame::Env { rel, inner },
                });
            }
            out.push(succ);
        }
    }
    out
}

/// Liveness / cleanliness checks at a terminal state.
fn check_terminal(w: &World, cfg: &Cfg) -> Vec<Violation> {
    let mut out = Vec::new();
    let excused = |flow: u64| w.voided.contains(&flow);
    for (origin, op) in cfg.all_ops() {
        let flow = op.flow;
        let met = match op.kind {
            OpKind::Eager { dst, tag, seq } => {
                w.nodes[dst]
                    .delivered_eager
                    .get(&(origin, tag, seq))
                    .copied()
                    .unwrap_or(0)
                    >= 1
            }
            OpKind::Rdv { dst, .. } => {
                w.nodes[dst].delivered_rdv.get(&flow).copied().unwrap_or(0) >= 1
                    && w.nodes[origin]
                        .flows
                        .get(&flow)
                        .is_some_and(|f| f.completed)
            }
            OpKind::RmaPut { dst, .. } | OpKind::RmaAcc { dst } => {
                w.nodes[dst].applied_rma.get(&flow).copied().unwrap_or(0) >= 1
                    && w.nodes[origin]
                        .flows
                        .get(&flow)
                        .is_some_and(|f| f.completed)
            }
            OpKind::RmaGet { .. } => w.nodes[origin]
                .flows
                .get(&flow)
                .is_some_and(|f| f.completed),
        };
        let failed = w.nodes[origin].flows.get(&flow).is_some_and(|f| f.failed);
        if !met && !failed && !excused(flow) {
            out.push(Violation::SilentStall {
                what: format!(
                    "flow {flow} ({:?} from rank {origin}) neither completed nor failed",
                    op.kind
                ),
            });
        }
    }
    for (rank, node) in w.nodes.iter().enumerate() {
        let mut leftovers: Vec<(u64, &'static str)> = Vec::new();
        leftovers.extend(node.rdv_sends.keys().map(|&f| (f, "rdv_sends")));
        leftovers.extend(node.rdv_recvs.keys().map(|&(_, f)| (f, "rdv_recvs")));
        leftovers.extend(node.rma_ops.keys().map(|&f| (f, "rma_ops")));
        leftovers.extend(node.rma_chunks.keys().map(|&(_, f)| (f, "rma_chunks")));
        leftovers.extend(node.rma_get_asm.keys().map(|&f| (f, "rma_get_asm")));
        for (flow, table) in leftovers {
            if !excused(flow) {
                out.push(Violation::LeftoverState {
                    what: format!("rank {rank} still holds flow {flow} in {table}"),
                });
            }
        }
    }
    out
}

/// Exhaustively explore `cfg` under mutation set `muts`.
pub fn explore(cfg: &Cfg, muts: &Muts, limits: Limits) -> Report {
    cfg.validate();
    let mut report = Report {
        complete: true,
        ..Report::default()
    };
    let mut worlds: Vec<World> = vec![World::init(cfg)];
    let mut parents: Vec<Option<(usize, String)>> = vec![None];
    let mut visited: HashMap<World, usize> = HashMap::new();
    visited.insert(worlds[0].clone(), 0);
    let mut queue: VecDeque<usize> = VecDeque::from([0]);
    let mut seen_kinds: BTreeSet<&'static str> = BTreeSet::new();

    let trace_to = |parents: &[Option<(usize, String)>], mut idx: usize, last: String| {
        let mut steps = vec![last];
        while let Some((parent, label)) = &parents[idx] {
            steps.push(label.clone());
            idx = *parent;
        }
        steps.reverse();
        steps
    };

    while let Some(idx) = queue.pop_front() {
        if visited.len() >= limits.max_states {
            report.complete = false;
            break;
        }
        let succs = successors(&worlds[idx], cfg, muts);
        if succs.is_empty() {
            // Terminal state: run the liveness/cleanliness checks.
            let violations = check_terminal(&worlds[idx], cfg);
            if violations.is_empty() {
                if worlds[idx].voided.is_empty() {
                    report.success_terminals += 1;
                } else {
                    report.failed_terminals += 1;
                }
            }
            for v in violations {
                report.violation_count += 1;
                if seen_kinds.insert(v.kind()) {
                    report.violations.push(Counterexample {
                        kind: v.kind(),
                        detail: v.detail().to_string(),
                        trace: trace_to(&parents, idx, "terminal state reached".to_string()),
                    });
                }
            }
            continue;
        }
        for succ in succs {
            report.transitions += 1;
            for rule in &succ.fired {
                *report.rule_fires.entry(rule).or_insert(0) += 1;
            }
            if !succ.violations.is_empty() {
                for v in &succ.violations {
                    report.violation_count += 1;
                    if seen_kinds.insert(v.kind()) {
                        report.violations.push(Counterexample {
                            kind: v.kind(),
                            detail: v.detail().to_string(),
                            trace: trace_to(&parents, idx, succ.label.clone()),
                        });
                    }
                }
                // Do not explore past a violation: the property is
                // already broken, deeper states only repeat it.
                continue;
            }
            if !visited.contains_key(&succ.world) {
                let id = worlds.len();
                visited.insert(succ.world.clone(), id);
                worlds.push(succ.world);
                parents.push(Some((idx, succ.label)));
                queue.push_back(id);
            }
        }
    }
    report.states = visited.len();
    report
}
