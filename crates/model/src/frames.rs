//! The abstract frame vocabulary of the model.
//!
//! Each production `WireMsg` variant that crosses the fabric is projected
//! onto a data-independent `ProtoFrame`: payload bytes are dropped, only
//! the control fields that drive protocol state transitions survive
//! (identifiers, chunk indices, chunk counts). The reliability envelope
//! (`Env`/`Ack`) is modelled separately in [`Frame`], exactly as
//! production wraps `WireMsg::Rel` around the inner frame.

/// A protocol frame with payload identity abstracted away.
///
/// `Eager` carries the matching pair (tag, seq) that the production
/// receive path uses for delivery bookkeeping; every rendezvous / RMA
/// frame carries the flow id (`rdv` / `op`) plus chunking coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProtoFrame {
    /// Small message, delivered on arrival (production `WireMsg::Eager`).
    Eager {
        /// Matching tag.
        tag: u64,
        /// Per-flow sequence number.
        seq: u32,
    },
    /// Rendezvous request-to-send (production `WireMsg::Rts`).
    Rts {
        /// Rendezvous id.
        rdv: u64,
        /// Number of data chunks the sender will emit after the CTS.
        chunks: u32,
    },
    /// Rendezvous clear-to-send (production `WireMsg::Cts`).
    Cts {
        /// Rendezvous id.
        rdv: u64,
    },
    /// One rendezvous data chunk (production `WireMsg::RdvData`).
    RdvData {
        /// Rendezvous id.
        rdv: u64,
        /// Chunk index.
        chunk: u32,
        /// Total chunk count.
        chunks: u32,
    },
    /// Small one-sided put (production `WireMsg::RmaPut`).
    RmaPut {
        /// RMA op id.
        op: u64,
    },
    /// One chunk of a large put (production `WireMsg::RmaPutData`).
    RmaPutData {
        /// RMA op id.
        op: u64,
        /// Chunk index.
        chunk: u32,
        /// Total chunk count.
        chunks: u32,
    },
    /// One-sided get request (production `WireMsg::RmaGet`).
    RmaGet {
        /// RMA op id.
        op: u64,
        /// How many reply chunks the target will serve (0 or 1 ⇒ a
        /// single `RmaGetReply`; ≥ 2 ⇒ that many `RmaGetData` frames).
        reply_chunks: u32,
    },
    /// Whole-payload get reply (production `WireMsg::RmaGetReply`).
    RmaGetReply {
        /// RMA op id.
        op: u64,
    },
    /// One chunk of a large get reply (production `WireMsg::RmaGetData`).
    RmaGetData {
        /// RMA op id.
        op: u64,
        /// Chunk index.
        chunk: u32,
        /// Total chunk count.
        chunks: u32,
    },
    /// One-sided accumulate (production `WireMsg::RmaAcc`).
    RmaAcc {
        /// RMA op id.
        op: u64,
    },
    /// Remote-completion ack for put/accumulate (production
    /// `WireMsg::RmaAck`).
    RmaAck {
        /// RMA op id.
        op: u64,
    },
}

/// The coarse frame class a transition rule is keyed on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FrameClass {
    /// `ProtoFrame::Eager`.
    Eager,
    /// `ProtoFrame::Rts`.
    Rts,
    /// `ProtoFrame::Cts`.
    Cts,
    /// `ProtoFrame::RdvData`.
    RdvData,
    /// `ProtoFrame::RmaPut`.
    RmaPut,
    /// `ProtoFrame::RmaPutData`.
    RmaPutData,
    /// `ProtoFrame::RmaGet`.
    RmaGet,
    /// `ProtoFrame::RmaGetReply`.
    RmaGetReply,
    /// `ProtoFrame::RmaGetData`.
    RmaGetData,
    /// `ProtoFrame::RmaAcc`.
    RmaAcc,
    /// `ProtoFrame::RmaAck`.
    RmaAck,
}

impl ProtoFrame {
    /// The class used to select candidate rules in the transition table.
    pub fn class(&self) -> FrameClass {
        match self {
            ProtoFrame::Eager { .. } => FrameClass::Eager,
            ProtoFrame::Rts { .. } => FrameClass::Rts,
            ProtoFrame::Cts { .. } => FrameClass::Cts,
            ProtoFrame::RdvData { .. } => FrameClass::RdvData,
            ProtoFrame::RmaPut { .. } => FrameClass::RmaPut,
            ProtoFrame::RmaPutData { .. } => FrameClass::RmaPutData,
            ProtoFrame::RmaGet { .. } => FrameClass::RmaGet,
            ProtoFrame::RmaGetReply { .. } => FrameClass::RmaGetReply,
            ProtoFrame::RmaGetData { .. } => FrameClass::RmaGetData,
            ProtoFrame::RmaAcc { .. } => FrameClass::RmaAcc,
            ProtoFrame::RmaAck { .. } => FrameClass::RmaAck,
        }
    }

    /// The flow id this frame belongs to, if it names one.
    ///
    /// Eager frames do not carry their flow id on the wire; the
    /// configuration maps (dest, tag, seq) back to the flow.
    pub fn flow(&self) -> Option<u64> {
        match *self {
            ProtoFrame::Eager { .. } => None,
            ProtoFrame::Rts { rdv, .. }
            | ProtoFrame::Cts { rdv }
            | ProtoFrame::RdvData { rdv, .. } => Some(rdv),
            ProtoFrame::RmaPut { op }
            | ProtoFrame::RmaPutData { op, .. }
            | ProtoFrame::RmaGet { op, .. }
            | ProtoFrame::RmaGetReply { op }
            | ProtoFrame::RmaGetData { op, .. }
            | ProtoFrame::RmaAcc { op }
            | ProtoFrame::RmaAck { op } => Some(op),
        }
    }
}

/// What actually travels on the abstract fabric: a reliability envelope
/// carrying a protocol frame, or a bare envelope ack.
///
/// Mirrors production `WireMsg::Rel { rel, inner }` / `WireMsg::RelAck`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Frame {
    /// Sequenced envelope around a protocol frame.
    Env {
        /// Per-(src → dst) envelope sequence number.
        rel: u64,
        /// The protocol frame inside.
        inner: ProtoFrame,
    },
    /// Envelope acknowledgement (cancels the sender's retransmit timer).
    Ack {
        /// Envelope sequence number being acknowledged.
        rel: u64,
    },
}

/// A frame in flight: directed, addressed copy on the abstract fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pkt {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// The frame itself.
    pub frame: Frame,
}
