//! pm2-model: an explicit-state model checker for the newmad wire
//! protocols, plus a trace-conformance checker tying the model to real
//! simulation runs.
//!
//! The three wire protocols — the eager path with its ack/retransmit
//! reliability envelope, the rendezvous RTS/CTS/DMA handshake, and the
//! one-sided RMA frame family — are transcribed into declarative
//! transition tables ([`table::RULES`]): typed per-rank states × frame
//! classes × guard/action rules, deliberately data-independent (payload
//! bytes never influence control flow, so small models generalize).
//!
//! [`explore::explore`] runs an exhaustive BFS over every interleaving
//! of application steps, deliveries, adversarial loss/duplication (under
//! explicit budgets) and retransmit-timer fires, checking:
//!
//! - **exactly-once delivery** — no eager message, rendezvous payload or
//!   RMA op is delivered/applied twice;
//! - **assembly integrity** — chunked transfers complete only with every
//!   chunk present exactly once;
//! - **table totality and determinism** — every reachable frame is
//!   claimed by exactly one rule;
//! - **window soundness** — the *production* [`pm2_newmad::SeqWindow`]
//!   (embedded verbatim, not re-implemented) agrees with a ghost
//!   seen-set in both directions;
//! - **bounded retries** — retry exhaustion is unreachable while the
//!   adversary's drop budget cannot defeat the retry budget (the
//!   timeout-gating theorem), and when it legitimately fires the waiting
//!   request observes a typed failure instead of a silent stall;
//! - **quiescence** — terminal states hold no protocol state for any
//!   flow that did not legitimately fail.
//!
//! Violations are reported as human-readable counterexamples: the exact
//! transition sequence from the initial state. Seeded [`state::Mutation`]s
//! re-introduce removed defenses one at a time so the checker can prove
//! it catches each class of bug (see `tests/model.rs`).
//!
//! [`conformance::check_trace`] replays pm2-obs event streams from real
//! cluster runs through the same tables, asserting observed transitions
//! are model-permitted — the bridge that keeps tables and implementation
//! from drifting apart.

pub mod conformance;
pub mod explore;
pub mod frames;
pub mod state;
pub mod table;

pub use conformance::{check_trace, ConformCfg, ConformReport};
pub use explore::{explore, Counterexample, Limits, Report};
pub use frames::{Frame, FrameClass, Pkt, ProtoFrame};
pub use state::{AppOp, Asm, Cfg, Mutation, Muts, NodeState, OpKind, Violation, World};
pub use table::{dispatch, Effects, Rule, RuleCtx, RULES};
