//! Size×ranks algorithm auto-selection.
//!
//! The selection table (overridable per cluster via
//! `ClusterConfig::coll`, or wholesale through [`CollTuning::force`]):
//!
//! | collective | condition                          | algorithm   |
//! |------------|------------------------------------|-------------|
//! | barrier    | always                             | dissemination ([`crate::RecDoubleAlgo`]) |
//! | bcast      | always                             | binomial tree |
//! | reduce     | always                             | binomial tree |
//! | allreduce  | `len ≤ flat_small_max_bytes` and `flat_small_min_ranks ≤ P ≤ flat_small_max_ranks` | flat |
//! | allreduce  | `len ≤ rd_max_bytes` or `P < 3`    | recursive doubling |
//! | allreduce  | otherwise                          | ring (chunked) |
//! | gather     | `P ≥ tree_gather_min_ranks` and `len ≤ tree_gather_max_bytes` | binomial tree |
//! | gather     | otherwise                          | flat |
//! | alltoall   | always                             | flat |
//!
//! Rationale: tree/dissemination shapes dominate flat at every size
//! (`log P` vs `P-1` sequential rounds at the root); recursive doubling
//! is latency-optimal while ring is bandwidth-optimal, so payload size
//! picks between them; tree gather only wins when per-message overhead —
//! not the root's inbound bandwidth — dominates, i.e. many ranks and
//! small payloads. The flat window for tiny allreduces is measured, not
//! theoretical: at sub-latency payloads the root's serialized eager
//! receives are cheaper than `log P` *sequential* exchange rounds while
//! `P-1` stays small — on the simulated MYRI-10G testbed the crossover
//! brackets P ≈ 5…9 at ≤ 512 B (see `BENCH_coll.json`).

use crate::algo::AlgoKind;
use crate::plan::CollKind;

/// Tuning knobs of the collective engine.
#[derive(Debug, Clone)]
pub struct CollTuning {
    /// Ring-allreduce pipelining chunk (bytes). The default sits just
    /// above the 32 KiB rendezvous threshold so chunks take the zero-copy
    /// rendezvous path and successive ring rounds overlap their
    /// handshakes.
    pub ring_chunk_bytes: usize,
    /// Allreduce payloads at most this long use recursive doubling
    /// instead of the ring.
    pub rd_max_bytes: usize,
    /// Tiny-allreduce flat window: payloads at most this long…
    pub flat_small_max_bytes: usize,
    /// …on at least this many ranks…
    pub flat_small_min_ranks: usize,
    /// …and at most this many stay on the flat shape.
    pub flat_small_max_ranks: usize,
    /// Gather switches to the binomial tree at this many ranks…
    pub tree_gather_min_ranks: usize,
    /// …but only for payloads at most this long.
    pub tree_gather_max_bytes: usize,
    /// Force every collective through one algorithm (differential tests,
    /// benchmarks). `None` = auto-select.
    pub force: Option<AlgoKind>,
}

impl Default for CollTuning {
    fn default() -> Self {
        CollTuning {
            ring_chunk_bytes: 64 << 10,
            rd_max_bytes: 4 << 10,
            flat_small_max_bytes: 512,
            flat_small_min_ranks: 5,
            flat_small_max_ranks: 9,
            tree_gather_min_ranks: 8,
            tree_gather_max_bytes: 4 << 10,
            force: None,
        }
    }
}

impl CollTuning {
    /// Picks the algorithm for one collective call.
    pub fn select(&self, kind: &CollKind, len: usize, ranks: usize) -> AlgoKind {
        if let Some(forced) = self.force {
            return forced;
        }
        match kind {
            CollKind::Barrier => AlgoKind::RecDouble,
            CollKind::Bcast { .. } | CollKind::Reduce { .. } => AlgoKind::Tree,
            CollKind::Allreduce { .. } => {
                if len <= self.flat_small_max_bytes
                    && (self.flat_small_min_ranks..=self.flat_small_max_ranks).contains(&ranks)
                {
                    AlgoKind::Flat
                } else if len <= self.rd_max_bytes || ranks < 3 {
                    AlgoKind::RecDouble
                } else {
                    AlgoKind::Ring
                }
            }
            CollKind::Gather { .. } => {
                if ranks >= self.tree_gather_min_ranks && len <= self.tree_gather_max_bytes {
                    AlgoKind::Tree
                } else {
                    AlgoKind::Flat
                }
            }
            CollKind::Alltoall => AlgoKind::Flat,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ReduceOp;

    #[test]
    fn size_splits_allreduce() {
        let t = CollTuning::default();
        let ar = CollKind::Allreduce {
            op: ReduceOp::SumU64,
        };
        assert_eq!(t.select(&ar, 1 << 10, 8), AlgoKind::RecDouble);
        assert_eq!(t.select(&ar, 1 << 20, 8), AlgoKind::Ring);
        assert_eq!(t.select(&ar, 1 << 20, 2), AlgoKind::RecDouble);
    }

    #[test]
    fn tiny_allreduce_window_stays_flat() {
        let t = CollTuning::default();
        let ar = CollKind::Allreduce {
            op: ReduceOp::SumU64,
        };
        assert_eq!(t.select(&ar, 256, 8), AlgoKind::Flat);
        assert_eq!(t.select(&ar, 256, 4), AlgoKind::RecDouble);
        assert_eq!(t.select(&ar, 256, 16), AlgoKind::RecDouble);
        assert_eq!(t.select(&ar, 1 << 10, 8), AlgoKind::RecDouble);
    }

    #[test]
    fn force_overrides_everything() {
        let t = CollTuning {
            force: Some(AlgoKind::Flat),
            ..CollTuning::default()
        };
        assert_eq!(t.select(&CollKind::Barrier, 0, 16), AlgoKind::Flat);
        assert_eq!(
            t.select(
                &CollKind::Allreduce {
                    op: ReduceOp::SumU64
                },
                1 << 20,
                8
            ),
            AlgoKind::Flat
        );
    }

    #[test]
    fn gather_needs_scale_and_small_payloads() {
        let t = CollTuning::default();
        let g = CollKind::Gather { root: 0 };
        assert_eq!(t.select(&g, 256, 16), AlgoKind::Tree);
        assert_eq!(t.select(&g, 256, 4), AlgoKind::Flat);
        assert_eq!(t.select(&g, 1 << 20, 16), AlgoKind::Flat);
    }
}
