//! Checked tag-space management for collectives.
//!
//! Collectives need wire tags that can never collide with application
//! traffic or with each other. Instead of ad-hoc `BASE + (k << n)`
//! constants, every collective allocates a [`TagSpace`] from the rank's
//! [`TagAllocator`]: the reserved bit, a per-kind namespace, a
//! per-collective generation window and a 32-bit flow field are packed
//! into one `u64` tag. Because every rank issues collectives in the same
//! order (the usual MPI contract), the generation counters agree across
//! ranks without any exchange.
//!
//! Layout (most significant first):
//!
//! ```text
//! bit 60        : reserved-space marker (RESERVED_TAG_BASE)
//! bits 56..60   : collective kind (barrier, bcast, …)
//! bits 32..56   : generation (mod 2^24)
//! bits  0..32   : flow — a planner-assigned id both endpoints derive
//!                 from the step's (phase, round, segment, chunk)
//! ```

use pm2_newmad::Tag;
use std::cell::Cell;

/// Reserved tag space for collectives; application tags must stay below.
pub const RESERVED_TAG_BASE: u64 = 1 << 60;

const KIND_SHIFT: u32 = 56;
const GEN_SHIFT: u32 = 32;
const GEN_WINDOW: u64 = 1 << 24;
/// Width of the flow field of a collective tag.
pub const FLOW_BITS: u32 = 32;

/// Number of distinct collective kinds (see [`crate::plan::CollKind::id`]).
pub const KINDS: usize = 6;

/// Panics if `tag` intrudes into the reserved collective space.
///
/// The panic message contains the word "reserved" — the application-facing
/// guard tests key on it.
pub fn assert_app_tag(tag: Tag) {
    assert!(
        tag.0 < RESERVED_TAG_BASE,
        "tag {tag} is reserved for collectives"
    );
}

/// Per-rank allocator of collective tag spaces.
///
/// One per communicator; kept behind an `Rc` so clones of the same rank's
/// communicator share the generation counters.
#[derive(Debug, Default)]
pub struct TagAllocator {
    gens: [Cell<u64>; KINDS],
}

impl TagAllocator {
    /// A fresh allocator (all generations at zero).
    pub fn new() -> TagAllocator {
        TagAllocator::default()
    }

    /// Allocates the next generation of kind `kind_id`'s namespace.
    ///
    /// Every rank must call this in the same order (which follows from
    /// the MPI collective-ordering contract).
    pub fn alloc(&self, kind_id: u64) -> TagSpace {
        let kind = kind_id as usize;
        assert!(kind < KINDS, "unknown collective kind {kind_id}");
        let gen = self.gens[kind].get();
        self.gens[kind].set(gen + 1);
        TagSpace {
            base: RESERVED_TAG_BASE | (kind_id << KIND_SHIFT) | ((gen % GEN_WINDOW) << GEN_SHIFT),
        }
    }

    /// Generations handed out so far for `kind_id`.
    pub fn generation(&self, kind_id: u64) -> u64 {
        self.gens[kind_id as usize].get()
    }
}

/// One collective's slice of the reserved tag space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagSpace {
    base: u64,
}

impl TagSpace {
    /// The wire tag of flow `flow` within this collective.
    ///
    /// # Panics
    /// Panics if `flow` overflows the 32-bit flow field.
    pub fn tag(&self, flow: u64) -> Tag {
        assert!(flow < 1 << FLOW_BITS, "flow {flow} overflows the tag field");
        Tag(self.base | flow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generations_do_not_collide() {
        let a = TagAllocator::new();
        let s0 = a.alloc(2);
        let s1 = a.alloc(2);
        assert_ne!(s0.tag(5), s1.tag(5));
        assert_eq!(a.generation(2), 2);
    }

    #[test]
    fn kinds_do_not_collide() {
        let a = TagAllocator::new();
        assert_ne!(a.alloc(0).tag(7), a.alloc(1).tag(7));
    }

    #[test]
    fn all_tags_are_reserved_space() {
        let a = TagAllocator::new();
        for kind in 0..KINDS as u64 {
            let t = a.alloc(kind).tag((1 << FLOW_BITS) - 1);
            assert!(t.0 >= RESERVED_TAG_BASE);
        }
    }

    #[test]
    fn app_tags_below_base_pass() {
        assert_app_tag(Tag(RESERVED_TAG_BASE - 1));
        assert_app_tag(Tag(0));
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn reserved_app_tag_panics() {
        assert_app_tag(Tag(RESERVED_TAG_BASE));
    }

    #[test]
    #[should_panic(expected = "is reserved for collectives")]
    fn reserved_panic_message_names_collectives() {
        // The guard's message is load-bearing: application-facing tests key
        // on it, so pin the exact wording for tags above the base too.
        assert_app_tag(Tag(RESERVED_TAG_BASE + 12345));
    }

    #[test]
    fn generation_wraps_at_window_but_counter_keeps_counting() {
        let a = TagAllocator::new();
        let first = a.alloc(3);
        // Drive the generation field through its full 2^24 window; the
        // packed tag wraps back to the first generation's bits while the
        // monotonic counter keeps going.
        for _ in 0..GEN_WINDOW - 1 {
            a.alloc(3);
        }
        let wrapped = a.alloc(3);
        assert_eq!(wrapped.tag(0), first.tag(0));
        assert_eq!(a.generation(3), GEN_WINDOW + 1);
        // One step past the wrap is again distinct from the first space.
        assert_ne!(a.alloc(3).tag(0), first.tag(0));
        // Wrapped tags still live in the reserved space with intact kind
        // bits.
        assert!(wrapped.tag(0).0 >= RESERVED_TAG_BASE);
        assert_eq!((wrapped.tag(0).0 >> KIND_SHIFT) & 0xF, 3);
    }
}
