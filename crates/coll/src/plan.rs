//! The step-DAG representation of a collective, plus buffer and chunk math.
//!
//! A [`Plan`] is one rank's view of a collective: a list of point-to-point
//! [`Step`]s (sends and receives) with explicit dependency edges. The
//! executor issues every step whose dependencies have completed, so
//! independent steps overlap freely while read-after-write and
//! write-after-read hazards on the payload buffers are respected.
//!
//! Buffers are plain `Vec<Vec<u8>>` slots owned by the executor; the slot
//! convention per collective kind is documented on [`CollKind`].

use std::ops::Range;

/// Reduction operator applied by combining receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Little-endian u64 lane-wise wrapping sum (trailing bytes summed
    /// individually). The `allreduce_sum` operator.
    SumU64,
    /// Byte-wise wrapping sum — total-order-free, so any associative
    /// schedule gives identical bytes; the differential-test operator.
    WrapAdd8,
}

impl ReduceOp {
    /// Combines `src` into `dst` (`dst ⊕= src`). Lengths must match.
    pub fn combine(self, dst: &mut [u8], src: &[u8]) {
        assert_eq!(dst.len(), src.len(), "reduce length mismatch");
        match self {
            ReduceOp::SumU64 => {
                let lanes = dst.len() / 8 * 8;
                for i in (0..lanes).step_by(8) {
                    let a = u64::from_le_bytes(dst[i..i + 8].try_into().unwrap());
                    let b = u64::from_le_bytes(src[i..i + 8].try_into().unwrap());
                    dst[i..i + 8].copy_from_slice(&a.wrapping_add(b).to_le_bytes());
                }
                for i in lanes..dst.len() {
                    dst[i] = dst[i].wrapping_add(src[i]);
                }
            }
            ReduceOp::WrapAdd8 => {
                for (d, s) in dst.iter_mut().zip(src) {
                    *d = d.wrapping_add(*s);
                }
            }
        }
    }
}

/// Which collective is being planned, with its parameters.
///
/// Buffer-slot conventions (the executor's `Vec<Vec<u8>>`):
///
/// * `Barrier` — no slots;
/// * `Bcast`/`Reduce`/`Allreduce` — slot 0 holds the payload (the root's
///   data for bcast, each rank's contribution for the reductions) and the
///   result;
/// * `Gather` — `ranks` slots, slot *r* = rank *r*'s contribution (only
///   the own slot is filled on entry; the root ends with all of them);
/// * `Alltoall` — `2·ranks` slots: `0..ranks` outbound (`slot[r]` goes to
///   rank *r*), `ranks..2·ranks` inbound (`slot[ranks+r]` came from *r*).
///   The own-rank slot is passed through by the caller, not the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollKind {
    /// Synchronization only, no payload.
    Barrier,
    /// One-to-all broadcast from `root`.
    Bcast {
        /// Source rank.
        root: usize,
    },
    /// All-to-one reduction at `root`.
    Reduce {
        /// Destination rank.
        root: usize,
        /// Combining operator.
        op: ReduceOp,
    },
    /// Reduction whose result reaches every rank.
    Allreduce {
        /// Combining operator.
        op: ReduceOp,
    },
    /// All-to-one concatenation at `root` (per-rank buffers may differ in
    /// length).
    Gather {
        /// Destination rank.
        root: usize,
    },
    /// Personalized all-to-all exchange.
    Alltoall,
}

impl CollKind {
    /// Stable id used as the tag-space namespace (see [`crate::tags`]).
    pub fn id(&self) -> u64 {
        match self {
            CollKind::Barrier => 0,
            CollKind::Bcast { .. } => 1,
            CollKind::Reduce { .. } => 2,
            CollKind::Allreduce { .. } => 3,
            CollKind::Gather { .. } => 4,
            CollKind::Alltoall => 5,
        }
    }

    /// Human-readable name (diagnostics, bench series).
    pub fn name(&self) -> &'static str {
        match self {
            CollKind::Barrier => "barrier",
            CollKind::Bcast { .. } => "bcast",
            CollKind::Reduce { .. } => "reduce",
            CollKind::Allreduce { .. } => "allreduce",
            CollKind::Gather { .. } => "gather",
            CollKind::Alltoall => "alltoall",
        }
    }
}

/// Everything a planner needs to lay out one rank's steps.
#[derive(Debug, Clone, Copy)]
pub struct CollSpec {
    /// The collective and its parameters.
    pub kind: CollKind,
    /// Uniform payload length in bytes (bcast/reduce/allreduce; used by
    /// the ring planner for segmentation — gather/alltoall frames carry
    /// their own lengths).
    pub len: usize,
    /// Number of participating ranks.
    pub ranks: usize,
    /// Pipelining chunk size for chunked algorithms (bytes).
    pub chunk: usize,
}

/// Where a send step's payload bytes come from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendSrc {
    /// A zero-byte synchronization token.
    Token,
    /// A slice of one buffer slot (`None` range = the whole slot).
    Slot {
        /// Buffer slot index.
        slot: usize,
        /// Byte range within the slot, or the whole slot.
        range: Option<Range<usize>>,
    },
    /// The listed slots framed as `(rank:u32, len:u32, bytes)*` — the
    /// tree-gather "subtree blob".
    Packed {
        /// Slot indices (= rank numbers) to frame, in order.
        ranks: Vec<usize>,
    },
}

/// What a receive step does with the arriving bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvDst {
    /// Synchronization token: bytes are dropped.
    Discard,
    /// Store into a slot slice: `combine: None` replaces (resizing when
    /// the range is `None`), `Some(op)` reduces element-wise.
    Slot {
        /// Buffer slot index.
        slot: usize,
        /// Byte range within the slot, or the whole slot.
        range: Option<Range<usize>>,
        /// Combine with the existing contents instead of replacing.
        combine: Option<ReduceOp>,
    },
    /// Decode a [`SendSrc::Packed`] frame back into its slots.
    Unpack,
}

/// A send or receive with its data binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOp {
    /// Transmit to [`Step::peer`].
    Send(SendSrc),
    /// Receive from [`Step::peer`].
    Recv(RecvDst),
}

/// One point-to-point operation of a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// The remote rank.
    pub peer: usize,
    /// Flow id — both endpoints derive the same value from the step's
    /// role (phase/round/segment/chunk), so it becomes the low tag bits
    /// and disambiguates concurrent steps between the same pair.
    pub flow: u64,
    /// Indices of steps that must *complete* before this one is issued.
    pub deps: Vec<usize>,
    /// The operation.
    pub op: StepOp,
}

/// One rank's step-DAG for one collective.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Plan {
    /// The steps; dependency edges point at smaller indices.
    pub steps: Vec<Step>,
}

impl Plan {
    /// An empty plan (single-rank collectives).
    pub fn new() -> Plan {
        Plan::default()
    }

    /// Appends a send step; returns its index.
    pub fn send(&mut self, peer: usize, flow: u64, deps: Vec<usize>, src: SendSrc) -> usize {
        self.push(Step {
            peer,
            flow,
            deps,
            op: StepOp::Send(src),
        })
    }

    /// Appends a receive step; returns its index.
    pub fn recv(&mut self, peer: usize, flow: u64, deps: Vec<usize>, dst: RecvDst) -> usize {
        self.push(Step {
            peer,
            flow,
            deps,
            op: StepOp::Recv(dst),
        })
    }

    fn push(&mut self, step: Step) -> usize {
        debug_assert!(
            step.deps.iter().all(|&d| d < self.steps.len()),
            "dependency on a not-yet-planned step"
        );
        self.steps.push(step);
        self.steps.len() - 1
    }

    /// Number of send steps (the root-hot-spot regression test counts
    /// these).
    pub fn send_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s.op, StepOp::Send(_)))
            .count()
    }

    /// Number of receive steps.
    pub fn recv_count(&self) -> usize {
        self.steps.len() - self.send_count()
    }
}

/// Splits `len` bytes into `parts` contiguous near-equal ranges
/// (`r*len/parts .. (r+1)*len/parts`); short lengths yield empty tail
/// ranges, which the executor carries as zero-byte messages.
pub fn segment_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    (0..parts)
        .map(|r| (r * len / parts)..((r + 1) * len / parts))
        .collect()
}

/// Splits `range` into pipeline chunks of at most `chunk` bytes, capped
/// at `max_chunks` pieces (the flow field reserves 12 bits for the chunk
/// index). An empty range yields one empty chunk so the step structure
/// stays uniform.
pub fn chunk_ranges(range: Range<usize>, chunk: usize, max_chunks: usize) -> Vec<Range<usize>> {
    let len = range.end - range.start;
    if len == 0 {
        #[allow(clippy::single_range_in_vec_init)]
        return vec![range.start..range.start];
    }
    let chunk = chunk.max(1);
    let n = len.div_ceil(chunk).min(max_chunks.max(1));
    segment_ranges(len, n)
        .into_iter()
        .map(|r| (range.start + r.start)..(range.start + r.end))
        .collect()
}

/// Frames the listed slots as `(rank:u32, len:u32, bytes)*`.
pub fn pack_slots(bufs: &[Vec<u8>], ranks: &[usize]) -> Vec<u8> {
    let total: usize = ranks.iter().map(|&r| 8 + bufs[r].len()).sum();
    let mut out = Vec::with_capacity(total);
    for &r in ranks {
        out.extend_from_slice(&(r as u32).to_le_bytes());
        out.extend_from_slice(&(bufs[r].len() as u32).to_le_bytes());
        out.extend_from_slice(&bufs[r]);
    }
    out
}

/// Materializes the bytes a send step transmits.
pub fn materialize(bufs: &[Vec<u8>], src: &SendSrc) -> Vec<u8> {
    match src {
        SendSrc::Token => Vec::new(),
        SendSrc::Slot { slot, range: None } => bufs[*slot].clone(),
        SendSrc::Slot {
            slot,
            range: Some(r),
        } => bufs[*slot][r.clone()].to_vec(),
        SendSrc::Packed { ranks } => pack_slots(bufs, ranks),
    }
}

/// Applies a receive step's arrived bytes to the buffer slots.
pub fn apply_recv(bufs: &mut [Vec<u8>], dst: &RecvDst, data: Vec<u8>) {
    match dst {
        RecvDst::Discard => {}
        RecvDst::Slot {
            slot,
            range: None,
            combine: None,
        } => bufs[*slot] = data,
        RecvDst::Slot {
            slot,
            range: None,
            combine: Some(op),
        } => op.combine(&mut bufs[*slot], &data),
        RecvDst::Slot {
            slot,
            range: Some(r),
            combine,
        } => {
            let dst = &mut bufs[*slot][r.clone()];
            match combine {
                None => dst.copy_from_slice(&data),
                Some(op) => op.combine(dst, &data),
            }
        }
        RecvDst::Unpack => unpack_slots(bufs, &data),
    }
}

/// Decodes a [`pack_slots`] frame back into `bufs`.
///
/// # Panics
/// Panics on a malformed frame (truncated header or body, slot out of
/// range) — framing errors are planner bugs, not recoverable conditions.
pub fn unpack_slots(bufs: &mut [Vec<u8>], mut frame: &[u8]) {
    while !frame.is_empty() {
        assert!(frame.len() >= 8, "truncated gather frame header");
        let rank = u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize;
        let len = u32::from_le_bytes(frame[4..8].try_into().unwrap()) as usize;
        frame = &frame[8..];
        assert!(frame.len() >= len, "truncated gather frame body");
        bufs[rank] = frame[..len].to_vec();
        frame = &frame[len..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_cover_and_partition() {
        for len in [0usize, 1, 7, 8, 1000] {
            for parts in [1usize, 2, 3, 8] {
                let segs = segment_ranges(len, parts);
                assert_eq!(segs.len(), parts);
                assert_eq!(segs[0].start, 0);
                assert_eq!(segs[parts - 1].end, len);
                for w in segs.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
            }
        }
    }

    #[test]
    fn chunks_respect_size_and_cap() {
        let c = chunk_ranges(100..1100, 300, 4096);
        assert_eq!(c.len(), 4);
        assert_eq!(c[0].start, 100);
        assert_eq!(c[3].end, 1100);
        assert!(c.iter().all(|r| r.end - r.start <= 300));
        // Cap forces bigger chunks rather than dropping data.
        let capped = chunk_ranges(0..1000, 1, 2);
        assert_eq!(capped.len(), 2);
        assert_eq!(capped[1].end, 1000);
        // Empty range → one empty chunk.
        assert_eq!(chunk_ranges(5..5, 64, 16), vec![5..5]);
    }

    #[test]
    fn pack_roundtrips() {
        let bufs = vec![vec![1, 2], vec![], vec![9; 5]];
        let frame = pack_slots(&bufs, &[0, 2]);
        let mut out = vec![Vec::new(); 3];
        unpack_slots(&mut out, &frame);
        assert_eq!(out[0], vec![1, 2]);
        assert_eq!(out[2], vec![9; 5]);
        assert!(out[1].is_empty());
    }

    #[test]
    fn reduce_ops_combine() {
        let mut a = 5u64.to_le_bytes().to_vec();
        a.push(250);
        let mut b = 7u64.to_le_bytes().to_vec();
        b.push(10);
        ReduceOp::SumU64.combine(&mut a, &b);
        assert_eq!(u64::from_le_bytes(a[..8].try_into().unwrap()), 12);
        assert_eq!(a[8], 4); // 250 + 10 wraps
        let mut x = vec![200u8, 1];
        ReduceOp::WrapAdd8.combine(&mut x, &[100, 2]);
        assert_eq!(x, vec![44, 3]);
    }

    #[test]
    fn plan_counts_sends() {
        let mut p = Plan::new();
        let r = p.recv(1, 0, vec![], RecvDst::Discard);
        p.send(1, 1, vec![r], SendSrc::Token);
        assert_eq!(p.send_count(), 1);
        assert_eq!(p.recv_count(), 1);
    }
}
