//! The collective executor: runs a [`Plan`] over a NewMadeleine session,
//! blocking or nonblocking.
//!
//! The executor issues every step whose dependencies have completed, then
//! waits for *any* in-flight step — so independent branches of the DAG
//! stay in flight together and each underlying point-to-point operation
//! progresses from the session's PIOMAN drivers (idle-core tasklets,
//! timer ticks, blocking waits), not only from this thread.
//!
//! [`CollEngine::coll`] drives the DAG on the calling thread (the wait
//! itself yields the core under the PIOMAN engine). [`CollEngine::icoll`]
//! spawns a Marcel thread to drive it and returns a [`CollHandle`]
//! immediately, so the application computes while the collective runs —
//! the schedulable-thread equivalent of the paper's offloaded tasklets.
//! Under the *sequential* engine `icoll` still works whenever a core is
//! free to run the executor, but cannot overlap once every core busy-waits
//! (that engine's defining limitation).

use crate::algo::AlgoKind;
use crate::plan::{apply_recv, materialize, CollKind, CollSpec, Plan, SendSrc, StepOp};
use crate::tags::{TagAllocator, TagSpace};
use crate::tuning::CollTuning;
use pioman::PiomReq;
use pm2_marcel::{Priority, ThreadCtx};
use pm2_newmad::{RecvHandle, SendHandle, Session};
use pm2_sim::obs::EventKind;
use pm2_sim::SimTime;
use pm2_topo::NodeId;
use std::cell::RefCell;
use std::rc::Rc;

/// Cumulative per-rank collective counters (NmCounters-style snapshot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollCounters {
    /// Collectives completed.
    pub collectives: u64,
    /// Of those, started nonblockingly (`icoll`).
    pub nonblocking: u64,
    /// DAG steps executed (sends + receives).
    pub steps: u64,
    /// Send steps executed.
    pub sends: u64,
    /// Receive steps executed.
    pub recvs: u64,
    /// Pipeline chunks transmitted (partial-buffer sends).
    pub chunks: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Payload bytes received.
    pub bytes_recv: u64,
    /// Virtual nanoseconds of application compute overlapped with
    /// nonblocking collectives (post-to-wait window, capped at
    /// completion).
    pub overlap_ns: u64,
}

struct EngineInner {
    session: Session,
    rank: usize,
    ranks: usize,
    tags: TagAllocator,
    tuning: CollTuning,
    counters: RefCell<CollCounters>,
}

/// Per-rank collective engine (cheap to clone; clones share counters and
/// tag generations).
#[derive(Clone)]
pub struct CollEngine {
    inner: Rc<EngineInner>,
}

impl CollEngine {
    /// Builds the engine for `rank` of `ranks` over `session`.
    pub fn new(session: Session, rank: usize, ranks: usize, tuning: CollTuning) -> CollEngine {
        CollEngine {
            inner: Rc::new(EngineInner {
                session,
                rank,
                ranks,
                tags: TagAllocator::new(),
                tuning,
                counters: RefCell::new(CollCounters::default()),
            }),
        }
    }

    /// This engine's rank.
    pub fn rank(&self) -> usize {
        self.inner.rank
    }

    /// Number of participating ranks.
    pub fn ranks(&self) -> usize {
        self.inner.ranks
    }

    /// The tuning in effect.
    pub fn tuning(&self) -> &CollTuning {
        &self.inner.tuning
    }

    /// Counter snapshot.
    pub fn counters(&self) -> CollCounters {
        *self.inner.counters.borrow()
    }

    /// The algorithm the auto-selector would pick for this call shape.
    pub fn select(&self, kind: &CollKind, len: usize) -> AlgoKind {
        self.inner.tuning.select(kind, len, self.inner.ranks)
    }

    /// Plans one collective: picks the algorithm (unless `force`d), lays
    /// out this rank's DAG and claims the next tag generation. Tag
    /// allocation happens here — in call order, identically on every rank
    /// — never inside a spawned executor, whose scheduling is not part of
    /// the ordering contract.
    fn prepare(&self, kind: CollKind, len: usize, force: Option<AlgoKind>) -> (Plan, TagSpace) {
        let algo = force.unwrap_or_else(|| self.select(&kind, len));
        let spec = CollSpec {
            kind,
            len,
            ranks: self.inner.ranks,
            chunk: self.inner.tuning.ring_chunk_bytes,
        };
        let plan = algo.algorithm().plan(&spec, self.inner.rank);
        let space = self.inner.tags.alloc(kind.id());
        (plan, space)
    }

    /// Runs one collective to completion on the calling thread.
    ///
    /// `bufs` follows the slot convention of [`CollKind`]; `len` is the
    /// uniform payload length (selection and ring segmentation input);
    /// `force` bypasses auto-selection.
    pub async fn coll(
        &self,
        ctx: &ThreadCtx,
        kind: CollKind,
        len: usize,
        mut bufs: Vec<Vec<u8>>,
        force: Option<AlgoKind>,
    ) -> Vec<Vec<u8>> {
        let (plan, space) = self.prepare(kind, len, force);
        self.run_plan(ctx, &plan, &mut bufs, space).await;
        let verify = ctx.marcel().sim().verify();
        verify.lock_acquire("coll.state");
        self.inner.counters.borrow_mut().collectives += 1;
        verify.lock_release("coll.state");
        bufs
    }

    /// Starts one collective nonblockingly: a dedicated Marcel thread
    /// drives the DAG while the caller returns immediately with a
    /// [`CollHandle`]. The executor thread is ordinary schedulable work,
    /// so it runs exactly when a core is idle — the collective's steps
    /// overlap the application's compute.
    pub fn icoll(
        &self,
        ctx: &ThreadCtx,
        kind: CollKind,
        len: usize,
        bufs: Vec<Vec<u8>>,
        force: Option<AlgoKind>,
    ) -> CollHandle {
        let (plan, space) = self.prepare(kind, len, force);
        let sim = ctx.marcel().sim().clone();
        let req = PiomReq::new(&sim, "coll");
        let out: Rc<RefCell<Option<Vec<Vec<u8>>>>> = Rc::new(RefCell::new(None));
        let engine = self.clone();
        let req2 = req.clone();
        let out2 = Rc::clone(&out);
        let sim2 = sim.clone();
        ctx.marcel().spawn(
            format!("coll-{}", kind.name()),
            Priority::Normal,
            None,
            move |tctx| async move {
                let mut bufs = bufs;
                engine.run_plan(&tctx, &plan, &mut bufs, space).await;
                sim2.verify().lock_acquire("coll.state");
                {
                    let mut c = engine.inner.counters.borrow_mut();
                    c.collectives += 1;
                    c.nonblocking += 1;
                }
                sim2.verify().lock_release("coll.state");
                *out2.borrow_mut() = Some(bufs);
                req2.complete(&sim2);
            },
        );
        CollHandle {
            req,
            out,
            posted_at: sim.now(),
            engine: self.clone(),
        }
    }

    /// Executes a plan: issue every dependency-satisfied step, wait for
    /// any completion, apply it, repeat.
    async fn run_plan(&self, ctx: &ThreadCtx, plan: &Plan, bufs: &mut [Vec<u8>], space: TagSpace) {
        enum H {
            S(SendHandle),
            R(RecvHandle),
        }
        let n = plan.steps.len();
        if n == 0 {
            return;
        }
        let session = &self.inner.session;
        // A dependency on a *send* step is satisfied at issue time: the
        // payload is materialized (copied out of the slot) when the send
        // is submitted, so a WAR successor may overwrite the slot right
        // away. Waiting for send *completion* would deadlock symmetric
        // exchanges on the rendezvous path, where a send only completes
        // once the peer posts the matching receive. Dependencies on
        // receive steps need the data and wait for completion.
        let mut done = vec![false; n];
        let mut issued = vec![false; n];
        let dep_ok = |done: &[bool], issued: &[bool], d: usize| match plan.steps[d].op {
            StepOp::Send(_) => issued[d],
            StepOp::Recv(_) => done[d],
        };
        let mut inflight: Vec<(usize, H)> = Vec::new();
        let mut completed = 0usize;
        while completed < n {
            for i in 0..n {
                if issued[i]
                    || !plan.steps[i]
                        .deps
                        .iter()
                        .all(|&d| dep_ok(&done, &issued, d))
                {
                    continue;
                }
                issued[i] = true;
                let step = &plan.steps[i];
                let tag = space.tag(step.flow);
                let sim = ctx.marcel().sim();
                sim.obs().emit(
                    sim.now(),
                    Some(ctx.marcel().node().0),
                    EventKind::CollStep {
                        rank: self.inner.rank,
                        step: i,
                        flow: step.flow,
                        peer: step.peer,
                        send: matches!(step.op, StepOp::Send(_)),
                    },
                );
                match &step.op {
                    StepOp::Send(src) => {
                        let bytes = materialize(bufs, src);
                        sim.verify().lock_acquire("coll.state");
                        {
                            let mut c = self.inner.counters.borrow_mut();
                            c.sends += 1;
                            c.bytes_sent += bytes.len() as u64;
                            if matches!(src, SendSrc::Slot { range: Some(_), .. }) {
                                c.chunks += 1;
                            }
                        }
                        sim.verify().lock_release("coll.state");
                        let h = session.isend(ctx, NodeId(step.peer), tag, bytes).await;
                        inflight.push((i, H::S(h)));
                    }
                    StepOp::Recv(_) => {
                        let h = session.irecv(ctx, Some(NodeId(step.peer)), tag).await;
                        inflight.push((i, H::R(h)));
                    }
                }
            }
            let reqs: Vec<PiomReq> = inflight
                .iter()
                .map(|(_, h)| match h {
                    H::S(h) => h.req().clone(),
                    H::R(h) => h.req().clone(),
                })
                .collect();
            let idx = session.swait_any(&reqs, ctx).await;
            let (i, h) = inflight.swap_remove(idx);
            if let H::R(h) = h {
                let data = h.take_data().expect("completed receive carries data");
                let StepOp::Recv(dst) = &plan.steps[i].op else {
                    unreachable!("recv handle on a send step");
                };
                ctx.marcel().sim().verify().lock_acquire("coll.state");
                {
                    let mut c = self.inner.counters.borrow_mut();
                    c.recvs += 1;
                    c.bytes_recv += data.len() as u64;
                }
                ctx.marcel().sim().verify().lock_release("coll.state");
                apply_recv(bufs, dst, data);
            }
            let verify = ctx.marcel().sim().verify();
            verify.lock_acquire("coll.state");
            self.inner.counters.borrow_mut().steps += 1;
            verify.lock_release("coll.state");
            done[i] = true;
            completed += 1;
        }
    }
}

/// Handle of a nonblocking collective started with [`CollEngine::icoll`].
pub struct CollHandle {
    req: PiomReq,
    out: Rc<RefCell<Option<Vec<Vec<u8>>>>>,
    posted_at: SimTime,
    engine: CollEngine,
}

impl CollHandle {
    /// True once the collective has completed (the result is ready).
    pub fn is_complete(&self) -> bool {
        self.req.is_complete()
    }

    /// The underlying request (compose with `Session::swait_any`).
    pub fn req(&self) -> &PiomReq {
        &self.req
    }

    /// Waits for completion and returns the buffer slots.
    ///
    /// The post-to-wait window (capped at the completion instant) is
    /// accounted as overlap time in [`CollCounters::overlap_ns`] — virtual
    /// time the application spent computing while the collective
    /// progressed in the background.
    pub async fn wait(&self, ctx: &ThreadCtx) -> Vec<Vec<u8>> {
        let now = ctx.marcel().sim().now();
        // completed_at() models an atomic load of the completion record and
        // stays uninstrumented (swait below performs the verified acquire).
        let progressed_until = self.req.completed_at().unwrap_or(now).min(now);
        let verify = ctx.marcel().sim().verify();
        verify.lock_acquire("coll.state");
        self.engine.inner.counters.borrow_mut().overlap_ns +=
            progressed_until.saturating_since(self.posted_at).as_nanos();
        verify.lock_release("coll.state");
        self.engine.inner.session.swait(&self.req, ctx).await;
        self.out
            .borrow_mut()
            .take()
            .expect("completed collective carries buffers")
    }
}
