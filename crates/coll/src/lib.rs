//! PM2-COLL: a collective-communication engine over NewMadeleine/PIOMAN.
//!
//! The paper's thesis is that communication should progress on idle cores
//! instead of waiting for the application to re-enter the library; nowhere
//! does that matter more than in collectives, whose point-to-point steps
//! form long dependency chains. This crate plans each collective as a
//! **DAG of point-to-point steps** ([`Plan`]) and drives it through the
//! existing Session/PIOMAN progression, so every step advances from
//! idle-core tasklets, timer ticks, and blocking waits — not only from
//! the calling thread.
//!
//! * [`plan`] — the step-DAG representation and the buffer/chunk math;
//! * [`algo`] — the [`Algorithm`] trait and the shipped planners:
//!   [`FlatAlgo`] (the O(P)-at-root reference), [`TreeAlgo`] (binomial
//!   bcast/reduce/gather), [`RingAlgo`] (ring allreduce with chunked
//!   pipelining over the rendezvous path), [`RecDoubleAlgo`]
//!   (recursive-doubling allreduce, dissemination barrier);
//! * [`tuning`] — the size×ranks auto-selector ([`CollTuning`]);
//! * [`tags`] — the checked [`TagAllocator`] namespacing per-collective
//!   generations inside the reserved tag space;
//! * [`engine`] — the [`CollEngine`] executor, blocking ([`CollEngine::coll`])
//!   and nonblocking ([`CollEngine::icoll`] returning a [`CollHandle`]).

#![warn(missing_docs)]

pub mod algo;
pub mod engine;
pub mod plan;
pub mod tags;
pub mod tuning;

pub use algo::{AlgoKind, Algorithm, FlatAlgo, RecDoubleAlgo, RingAlgo, TreeAlgo};
pub use engine::{CollCounters, CollEngine, CollHandle};
pub use plan::{CollKind, CollSpec, Plan, ReduceOp, Step, StepOp};
pub use tags::{TagAllocator, RESERVED_TAG_BASE};
pub use tuning::CollTuning;
