//! The [`Algorithm`] trait and the shipped collective planners.
//!
//! Every planner turns a [`CollSpec`] into one rank's [`Plan`]. The flow
//! ids it assigns are derived from the step's role (phase, round,
//! segment, chunk), so both endpoints of a message compute the same wire
//! tag without any coordination. Planners are pure functions of
//! `(spec, rank)` — the differential tests exploit that by running the
//! same spec through every algorithm and comparing results byte-for-byte.
//!
//! An algorithm asked for a collective kind it has no specialized shape
//! for falls back to the [`FlatAlgo`] plan; the auto-selector
//! ([`crate::tuning::CollTuning`]) only routes kinds to algorithms that
//! improve on flat.

use crate::plan::{CollKind, CollSpec, Plan, RecvDst, ReduceOp, SendSrc};

/// Chunk-index field width inside a ring flow id.
const CHUNK_BITS: u32 = 12;
/// Hard cap on pipeline chunks per segment (flow-field width).
pub const MAX_CHUNKS: usize = 1 << CHUNK_BITS;

/// Phase-namespaced flow id (multi-phase plans keep phases disjoint).
fn fl(phase: u64, x: u64) -> u64 {
    debug_assert!(phase < 16 && x < 1 << 28);
    (phase << 28) | x
}

/// A collective planner.
pub trait Algorithm {
    /// Short name (bench series, diagnostics).
    fn name(&self) -> &'static str;
    /// Plans `rank`'s step-DAG for the collective described by `spec`.
    fn plan(&self, spec: &CollSpec, rank: usize) -> Plan;
}

/// Which planner to use — the unit of auto-selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoKind {
    /// Direct O(P)-at-root exchanges (the reference).
    Flat,
    /// Binomial tree (bcast/reduce/gather; allreduce = reduce∘bcast).
    Tree,
    /// Ring allreduce with chunked pipelining.
    Ring,
    /// Recursive doubling (allreduce) / dissemination (barrier).
    RecDouble,
}

impl AlgoKind {
    /// The planner behind this kind.
    pub fn algorithm(self) -> &'static dyn Algorithm {
        match self {
            AlgoKind::Flat => &FlatAlgo,
            AlgoKind::Tree => &TreeAlgo,
            AlgoKind::Ring => &RingAlgo,
            AlgoKind::RecDouble => &RecDoubleAlgo,
        }
    }

    /// Short name (bench series keys).
    pub fn name(self) -> &'static str {
        self.algorithm().name()
    }

    /// All shipped algorithms (differential-test matrix).
    pub const ALL: [AlgoKind; 4] = [
        AlgoKind::Flat,
        AlgoKind::Tree,
        AlgoKind::Ring,
        AlgoKind::RecDouble,
    ];
}

// ---------------------------------------------------------------- flat --

/// The reference algorithm: every collective routes directly through its
/// root (or pairwise for alltoall). O(P) sequential work at the root —
/// kept as the differential-testing baseline and the fallback shape.
pub struct FlatAlgo;

impl Algorithm for FlatAlgo {
    fn name(&self) -> &'static str {
        "flat"
    }

    fn plan(&self, spec: &CollSpec, rank: usize) -> Plan {
        let p = spec.ranks;
        let mut plan = Plan::new();
        if p <= 1 {
            return plan;
        }
        match spec.kind {
            CollKind::Barrier => {
                if rank == 0 {
                    let recvs: Vec<usize> = (1..p)
                        .map(|r| plan.recv(r, fl(0, r as u64), vec![], RecvDst::Discard))
                        .collect();
                    for r in 1..p {
                        plan.send(r, fl(1, r as u64), recvs.clone(), SendSrc::Token);
                    }
                } else {
                    plan.send(0, fl(0, rank as u64), vec![], SendSrc::Token);
                    plan.recv(0, fl(1, rank as u64), vec![], RecvDst::Discard);
                }
            }
            CollKind::Bcast { root } => {
                if rank == root {
                    for r in (0..p).filter(|&r| r != root) {
                        plan.send(r, fl(0, r as u64), vec![], whole_send(0));
                    }
                } else {
                    plan.recv(root, fl(0, rank as u64), vec![], whole_replace(0));
                }
            }
            CollKind::Reduce { root, op } => {
                if rank == root {
                    for r in (0..p).filter(|&r| r != root) {
                        plan.recv(r, fl(0, r as u64), vec![], whole_combine(0, op));
                    }
                } else {
                    plan.send(root, fl(0, rank as u64), vec![], whole_send(0));
                }
            }
            CollKind::Allreduce { op } => {
                // Reduce to rank 0, then broadcast from it.
                if rank == 0 {
                    let recvs: Vec<usize> = (1..p)
                        .map(|r| plan.recv(r, fl(0, r as u64), vec![], whole_combine(0, op)))
                        .collect();
                    for r in 1..p {
                        plan.send(r, fl(1, r as u64), recvs.clone(), whole_send(0));
                    }
                } else {
                    plan.send(0, fl(0, rank as u64), vec![], whole_send(0));
                    plan.recv(0, fl(1, rank as u64), vec![], whole_replace(0));
                }
            }
            CollKind::Gather { root } => {
                if rank == root {
                    for r in (0..p).filter(|&r| r != root) {
                        plan.recv(
                            r,
                            fl(0, r as u64),
                            vec![],
                            RecvDst::Slot {
                                slot: r,
                                range: None,
                                combine: None,
                            },
                        );
                    }
                } else {
                    plan.send(
                        root,
                        fl(0, rank as u64),
                        vec![],
                        SendSrc::Slot {
                            slot: rank,
                            range: None,
                        },
                    );
                }
            }
            CollKind::Alltoall => {
                for r in (0..p).filter(|&r| r != rank) {
                    plan.send(
                        r,
                        fl(0, rank as u64),
                        vec![],
                        SendSrc::Slot {
                            slot: r,
                            range: None,
                        },
                    );
                    plan.recv(
                        r,
                        fl(0, r as u64),
                        vec![],
                        RecvDst::Slot {
                            slot: p + r,
                            range: None,
                            combine: None,
                        },
                    );
                }
            }
        }
        plan
    }
}

fn whole_send(slot: usize) -> SendSrc {
    SendSrc::Slot { slot, range: None }
}

fn whole_replace(slot: usize) -> RecvDst {
    RecvDst::Slot {
        slot,
        range: None,
        combine: None,
    }
}

fn whole_combine(slot: usize, op: ReduceOp) -> RecvDst {
    RecvDst::Slot {
        slot,
        range: None,
        combine: Some(op),
    }
}

// ---------------------------------------------------------------- tree --

/// Binomial position of virtual rank `vrank` in a `ranks`-wide tree:
/// its parent (None at the root) and its children as `(vrank, mask)`
/// pairs, largest subtree first. Child `(c, m)` roots the vrank range
/// `c..min(c+m, ranks)`.
pub fn binomial(vrank: usize, ranks: usize) -> (Option<usize>, Vec<(usize, usize)>) {
    let mut mask = 1usize;
    let mut parent = None;
    while mask < ranks {
        if vrank & mask != 0 {
            parent = Some(vrank - mask);
            break;
        }
        mask <<= 1;
    }
    let mut children = Vec::new();
    let mut m = mask >> 1;
    while m > 0 {
        if vrank + m < ranks {
            children.push((vrank + m, m));
        }
        m >>= 1;
    }
    (parent, children)
}

/// Binomial-tree bcast/reduce/gather: `ceil(log2 P)` sequential rounds at
/// the root instead of `P-1`. Allreduce composes tree-reduce with
/// tree-bcast; barrier and alltoall fall back to flat (the selector never
/// routes them here).
pub struct TreeAlgo;

impl Algorithm for TreeAlgo {
    fn name(&self) -> &'static str {
        "tree"
    }

    fn plan(&self, spec: &CollSpec, rank: usize) -> Plan {
        let p = spec.ranks;
        let mut plan = Plan::new();
        if p <= 1 {
            return plan;
        }
        match spec.kind {
            CollKind::Bcast { root } => {
                let v = (rank + p - root) % p;
                let (parent, children) = binomial(v, p);
                let recv = parent.map(|pv| {
                    plan.recv((pv + root) % p, fl(0, v as u64), vec![], whole_replace(0))
                });
                for (cv, _m) in children {
                    plan.send(
                        (cv + root) % p,
                        fl(0, cv as u64),
                        recv.into_iter().collect(),
                        whole_send(0),
                    );
                }
            }
            CollKind::Reduce { root, op } => {
                let v = (rank + p - root) % p;
                let (parent, children) = binomial(v, p);
                let recvs: Vec<usize> = children
                    .iter()
                    .map(|&(cv, _m)| {
                        plan.recv(
                            (cv + root) % p,
                            fl(0, cv as u64),
                            vec![],
                            whole_combine(0, op),
                        )
                    })
                    .collect();
                if let Some(pv) = parent {
                    plan.send((pv + root) % p, fl(0, v as u64), recvs, whole_send(0));
                }
            }
            CollKind::Allreduce { op } => {
                // Tree-reduce to rank 0 (phase 0), tree-bcast back (phase 1).
                let (parent, children) = binomial(rank, p);
                let recvs: Vec<usize> = children
                    .iter()
                    .map(|&(cv, _m)| plan.recv(cv, fl(0, cv as u64), vec![], whole_combine(0, op)))
                    .collect();
                let up = parent
                    .map(|pv| plan.send(pv, fl(0, rank as u64), recvs.clone(), whole_send(0)));
                // Bcast phase. The root's fan-out waits for its whole
                // reduction; a non-root's replace-recv must wait for its
                // own up-send (write-after-read on slot 0).
                let down = up.map(|up_send| {
                    plan.recv(
                        parent.expect("non-root has a parent"),
                        fl(1, rank as u64),
                        vec![up_send],
                        whole_replace(0),
                    )
                });
                for (cv, _m) in children {
                    let deps = match down {
                        Some(d) => vec![d],
                        None => recvs.clone(),
                    };
                    plan.send(cv, fl(1, cv as u64), deps, whole_send(0));
                }
            }
            CollKind::Gather { root } => {
                let v = (rank + p - root) % p;
                let (parent, children) = binomial(v, p);
                let recvs: Vec<usize> = children
                    .iter()
                    .map(|&(cv, _m)| {
                        plan.recv((cv + root) % p, fl(0, cv as u64), vec![], RecvDst::Unpack)
                    })
                    .collect();
                if let Some(pv) = parent {
                    // Frame the whole subtree: self plus every child range.
                    let mut subtree = vec![rank];
                    for &(cv, m) in &children {
                        for cvv in cv..(cv + m).min(p) {
                            subtree.push((cvv + root) % p);
                        }
                    }
                    plan.send(
                        (pv + root) % p,
                        fl(0, v as u64),
                        recvs,
                        SendSrc::Packed { ranks: subtree },
                    );
                }
            }
            CollKind::Barrier | CollKind::Alltoall => return FlatAlgo.plan(spec, rank),
        }
        plan
    }
}

// ---------------------------------------------------------------- ring --

/// Ring allreduce: reduce-scatter then allgather, `2(P-1)` rounds of
/// `len/P`-byte segments, each segment further split into pipeline chunks
/// of at most [`CollSpec::chunk`] bytes so successive rounds overlap over
/// the rendezvous path. Bandwidth-optimal: every link carries
/// `2·len·(P-1)/P` bytes total, independent of P. Other kinds fall back
/// to flat.
pub struct RingAlgo;

impl Algorithm for RingAlgo {
    fn name(&self) -> &'static str {
        "ring"
    }

    fn plan(&self, spec: &CollSpec, rank: usize) -> Plan {
        let p = spec.ranks;
        let CollKind::Allreduce { op } = spec.kind else {
            return FlatAlgo.plan(spec, rank);
        };
        let mut plan = Plan::new();
        if p <= 1 {
            return plan;
        }
        let right = (rank + 1) % p;
        let left = (rank + p - 1) % p;
        let rounds = 2 * (p - 1);
        let segments = crate::plan::segment_ranges(spec.len, p);
        for (s, seg) in segments.iter().enumerate() {
            // Rounds in which this rank sends / receives segment `s`.
            let a = (rank + p - s) % p;
            let b = (rank + p - s - 1) % p; // = a-1 mod p
            let mut events: Vec<(usize, bool)> = Vec::new(); // (round, is_send)
            for r in [a, a + p] {
                if r < rounds {
                    events.push((r, true));
                }
            }
            for r in [b, b + p] {
                if r < rounds {
                    events.push((r, false));
                }
            }
            events.sort_unstable();
            for (c, chunk) in crate::plan::chunk_ranges(seg.clone(), spec.chunk, MAX_CHUNKS)
                .into_iter()
                .enumerate()
            {
                // Chain this chunk's events: each send reads what the
                // previous recv produced; each recv overwrites what the
                // previous send read.
                let mut prev: Option<usize> = None;
                for &(r, is_send) in &events {
                    let flow = (((r * p + s) as u64) << CHUNK_BITS) | c as u64;
                    let deps: Vec<usize> = prev.into_iter().collect();
                    prev = Some(if is_send {
                        plan.send(
                            right,
                            flow,
                            deps,
                            SendSrc::Slot {
                                slot: 0,
                                range: Some(chunk.clone()),
                            },
                        )
                    } else {
                        plan.recv(
                            left,
                            flow,
                            deps,
                            RecvDst::Slot {
                                slot: 0,
                                range: Some(chunk.clone()),
                                // Reduce-scatter rounds combine, allgather
                                // rounds overwrite with the finished value.
                                combine: if r < p - 1 { Some(op) } else { None },
                            },
                        )
                    });
                }
            }
        }
        plan
    }
}

// ---------------------------------------- recursive doubling / dissemination --

/// Latency-optimal small-payload algorithms: recursive-doubling allreduce
/// (`ceil(log2 P)` exchange rounds, with a fold/unfold pre-phase for
/// non-power-of-two P) and the dissemination barrier. Other kinds fall
/// back to flat.
pub struct RecDoubleAlgo;

impl Algorithm for RecDoubleAlgo {
    fn name(&self) -> &'static str {
        "recdouble"
    }

    fn plan(&self, spec: &CollSpec, rank: usize) -> Plan {
        let p = spec.ranks;
        let mut plan = Plan::new();
        if p <= 1 {
            return plan;
        }
        match spec.kind {
            CollKind::Barrier => {
                // Dissemination: in round k, signal (rank + 2^k) and wait
                // for (rank - 2^k); after ceil(log2 P) rounds everyone has
                // transitively heard from everyone.
                let mut prev_recv: Option<usize> = None;
                let mut d = 1usize;
                let mut k = 0u64;
                while d < p {
                    plan.send(
                        (rank + d) % p,
                        fl(0, k),
                        prev_recv.into_iter().collect(),
                        SendSrc::Token,
                    );
                    prev_recv =
                        Some(plan.recv((rank + p - d) % p, fl(0, k), vec![], RecvDst::Discard));
                    d <<= 1;
                    k += 1;
                }
            }
            CollKind::Allreduce { op } => {
                let m = p.next_power_of_two() >> usize::from(!p.is_power_of_two());
                let rem = p - m;
                if rank >= m {
                    // Folded-in extra rank: contribute, then receive the
                    // result. The replace-recv waits for the fold-send
                    // (write-after-read on slot 0).
                    let s = plan.send(rank - m, fl(0, rank as u64), vec![], whole_send(0));
                    plan.recv(rank - m, fl(2, rank as u64), vec![s], whole_replace(0));
                } else {
                    let mut prev: Option<usize> = None;
                    if rank < rem {
                        prev = Some(plan.recv(
                            rank + m,
                            fl(0, (rank + m) as u64),
                            vec![],
                            whole_combine(0, op),
                        ));
                    }
                    let mut d = 1usize;
                    let mut k = 0u64;
                    while d < m {
                        let partner = rank ^ d;
                        let s =
                            plan.send(partner, fl(1, k), prev.into_iter().collect(), whole_send(0));
                        prev = Some(plan.recv(partner, fl(1, k), vec![s], whole_combine(0, op)));
                        d <<= 1;
                        k += 1;
                    }
                    if rank < rem {
                        plan.send(
                            rank + m,
                            fl(2, (rank + m) as u64),
                            prev.into_iter().collect(),
                            whole_send(0),
                        );
                    }
                }
            }
            _ => return FlatAlgo.plan(spec, rank),
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{apply_recv, materialize, StepOp};
    use std::collections::{HashMap, VecDeque};

    fn spec(kind: CollKind, len: usize, ranks: usize) -> CollSpec {
        CollSpec {
            kind,
            len,
            ranks,
            chunk: 64 << 10,
        }
    }

    /// Plan-level executor: runs every rank's plan against an in-memory
    /// mailbox, honouring dependency edges. Sends complete on issue;
    /// receives complete when the matching message is present. Panics on
    /// deadlock — i.e. on a planner bug.
    fn run_local(
        spec: &CollSpec,
        algo: AlgoKind,
        mut bufs: Vec<Vec<Vec<u8>>>,
    ) -> Vec<Vec<Vec<u8>>> {
        let p = spec.ranks;
        let plans: Vec<Plan> = (0..p).map(|r| algo.algorithm().plan(spec, r)).collect();
        let mut done: Vec<Vec<bool>> = plans.iter().map(|pl| vec![false; pl.steps.len()]).collect();
        let mut mailbox: HashMap<(usize, usize, u64), VecDeque<Vec<u8>>> = HashMap::new();
        loop {
            let mut progress = false;
            let mut all_done = true;
            for rank in 0..p {
                for i in 0..plans[rank].steps.len() {
                    if done[rank][i] {
                        continue;
                    }
                    all_done = false;
                    let step = &plans[rank].steps[i];
                    if !step.deps.iter().all(|&d| done[rank][d]) {
                        continue;
                    }
                    match &step.op {
                        StepOp::Send(src) => {
                            let bytes = materialize(&bufs[rank], src);
                            mailbox
                                .entry((rank, step.peer, step.flow))
                                .or_default()
                                .push_back(bytes);
                        }
                        StepOp::Recv(dst) => {
                            let key = (step.peer, rank, step.flow);
                            let Some(q) = mailbox.get_mut(&key) else {
                                continue;
                            };
                            let Some(bytes) = q.pop_front() else {
                                continue;
                            };
                            apply_recv(&mut bufs[rank], dst, bytes);
                        }
                    }
                    done[rank][i] = true;
                    progress = true;
                }
            }
            if all_done {
                return bufs;
            }
            assert!(progress, "plan deadlocked under {}", algo.name());
        }
    }

    fn payload(rank: usize, len: usize) -> Vec<u8> {
        (0..len)
            .map(|j| (rank as u8).wrapping_mul(31) ^ (j as u8))
            .collect()
    }

    /// Satellite regression: the tree bcast moves at most `ceil(log2 P)`
    /// sequential rounds at the root, against the flat algorithm's `P-1`.
    #[test]
    fn tree_bcast_root_sends_log_p() {
        for p in 2..=64usize {
            let s = spec(CollKind::Bcast { root: 0 }, 1024, p);
            let tree_root = TreeAlgo.plan(&s, 0);
            let flat_root = FlatAlgo.plan(&s, 0);
            let log2p = usize::BITS as usize - (p - 1).leading_zeros() as usize;
            assert!(
                tree_root.send_count() <= log2p,
                "P={p}: tree root does {} sends, log2 bound is {log2p}",
                tree_root.send_count()
            );
            assert_eq!(flat_root.send_count(), p - 1, "P={p}");
            // Same bound from any root.
            let tree_r1 = TreeAlgo.plan(&spec(CollKind::Bcast { root: p - 1 }, 1024, p), p - 1);
            assert!(tree_r1.send_count() <= log2p);
        }
    }

    #[test]
    fn binomial_tree_shape() {
        let (parent, children) = binomial(0, 8);
        assert_eq!(parent, None);
        assert_eq!(children, vec![(4, 4), (2, 2), (1, 1)]);
        let (parent, children) = binomial(6, 8);
        assert_eq!(parent, Some(4));
        assert_eq!(children, vec![(7, 1)]);
        // Non-power-of-two: child ranges clip at `ranks`.
        let (parent, children) = binomial(4, 6);
        assert_eq!(parent, Some(0));
        assert_eq!(children, vec![(5, 1)]);
    }

    #[test]
    fn bcast_agrees_across_algorithms() {
        for p in [2usize, 3, 5, 8, 13, 16] {
            for root in [0, p - 1, p / 2] {
                let s = spec(CollKind::Bcast { root }, 777, p);
                let make = |r: usize| {
                    vec![if r == root {
                        payload(root, 777)
                    } else {
                        Vec::new()
                    }]
                };
                for algo in [AlgoKind::Flat, AlgoKind::Tree] {
                    let bufs = run_local(&s, algo, (0..p).map(make).collect());
                    for (r, b) in bufs.iter().enumerate() {
                        assert_eq!(
                            b[0],
                            payload(root, 777),
                            "{} p={p} root={root} rank={r}",
                            algo.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn allreduce_agrees_across_algorithms() {
        for p in [2usize, 3, 4, 7, 8, 12, 16] {
            for len in [0usize, 1, 8, 100, 4096] {
                let s = spec(
                    CollKind::Allreduce {
                        op: ReduceOp::WrapAdd8,
                    },
                    len,
                    p,
                );
                let mut expect = vec![0u8; len];
                for r in 0..p {
                    ReduceOp::WrapAdd8.combine(&mut expect, &payload(r, len));
                }
                for algo in AlgoKind::ALL {
                    let bufs = run_local(&s, algo, (0..p).map(|r| vec![payload(r, len)]).collect());
                    for (r, b) in bufs.iter().enumerate() {
                        assert_eq!(b[0], expect, "{} p={p} len={len} rank={r}", algo.name());
                    }
                }
            }
        }
    }

    #[test]
    fn gather_agrees_across_algorithms() {
        for p in [2usize, 3, 6, 8, 11] {
            let root = p / 2;
            let s = spec(CollKind::Gather { root }, 0, p);
            let make = |me: usize| {
                let mut slots = vec![Vec::new(); p];
                slots[me] = payload(me, 10 + me); // ragged lengths
                slots
            };
            for algo in [AlgoKind::Flat, AlgoKind::Tree] {
                let bufs = run_local(&s, algo, (0..p).map(make).collect());
                for (r, slot) in bufs[root].iter().enumerate() {
                    assert_eq!(slot, &payload(r, 10 + r), "{} p={p} slot {r}", algo.name());
                }
            }
        }
    }

    #[test]
    fn barrier_and_alltoall_plans_complete() {
        for p in [2usize, 3, 8] {
            for algo in AlgoKind::ALL {
                run_local(&spec(CollKind::Barrier, 0, p), algo, vec![vec![]; p]);
            }
            let s = spec(CollKind::Alltoall, 0, p);
            let make = |me: usize| {
                let mut slots = vec![Vec::new(); 2 * p];
                for (to, slot) in slots.iter_mut().enumerate().take(p) {
                    *slot = vec![(me * p + to) as u8; 5];
                }
                slots
            };
            let bufs = run_local(&s, AlgoKind::Flat, (0..p).map(make).collect());
            for (me, mine) in bufs.iter().enumerate() {
                for from in 0..p {
                    if from == me {
                        continue; // own slot handled by the caller
                    }
                    assert_eq!(mine[p + from], vec![(from * p + me) as u8; 5]);
                }
            }
        }
    }

    #[test]
    fn ring_chunking_multiplies_steps() {
        let coarse = RingAlgo.plan(
            &CollSpec {
                chunk: 128 << 10,
                ..spec(
                    CollKind::Allreduce {
                        op: ReduceOp::WrapAdd8,
                    },
                    1 << 20,
                    8,
                )
            },
            3,
        );
        let fine = RingAlgo.plan(
            &CollSpec {
                chunk: 16 << 10,
                ..spec(
                    CollKind::Allreduce {
                        op: ReduceOp::WrapAdd8,
                    },
                    1 << 20,
                    8,
                )
            },
            3,
        );
        assert!(fine.steps.len() > coarse.steps.len());
        // 1 MiB over 8 ranks = 128 KiB segments → 8 chunks of 16 KiB each;
        // 2(P-1) rounds of one send + one recv per chunk-slot.
        assert_eq!(fine.steps.len(), coarse.steps.len() * 8);
    }

    #[test]
    fn single_rank_plans_are_empty() {
        for algo in AlgoKind::ALL {
            for kind in [
                CollKind::Barrier,
                CollKind::Bcast { root: 0 },
                CollKind::Allreduce {
                    op: ReduceOp::SumU64,
                },
                CollKind::Gather { root: 0 },
                CollKind::Alltoall,
            ] {
                assert!(algo
                    .algorithm()
                    .plan(&spec(kind, 64, 1), 0)
                    .steps
                    .is_empty());
            }
        }
    }
}
