//! pm2-rma: one-sided windows over NewMadeleine with passive-target
//! completion.
//!
//! The two-sided API (`isend`/`irecv`) requires both peers to call into
//! the library. This crate exposes the complementary one-sided model on
//! top of the session's RMA protocol (`pm2-newmad::rma`):
//!
//! * a node exposes a [`Window`] of memory **once**;
//! * remote origins [`Window::put`]/[`Window::get`]/[`Window::accumulate`]
//!   against it, and complete locally with [`Window::flush`] /
//!   [`RmaEngine::flush_all`];
//! * the target never calls into the library again — incoming ops are
//!   applied inside PIOMAN progression, on whichever core happens to run
//!   it (a stolen idle core, the timer tasklet, the blocking-call
//!   watcher, or the dedicated progress thread of
//!   [`pioman::PiomanConfig::progress_thread`]).
//!
//! # Progress for all: per-thread injection endpoints
//!
//! Issuing an op only *stages* it (sub-microsecond on the calling core)
//! and enqueues a costed injection closure on the calling thread's
//! [`InjectionEndpoint`] — a per-thread send queue registered as one more
//! driver in the PIOMAN registry. Whoever runs progression next drains
//! the endpoint and pays the descriptor-build cost, so a compute-bound
//! origin thread keeps computing while an idle core injects, transmits
//! and completes its one-sided traffic. Endpoints share a global rank,
//! so multi-threaded injection order is replayed exactly.
//!
//! Under the sequential engine (no PIOMAN) there is nobody to steal the
//! work: the origin injects inline and pays the cost itself, and a
//! passive target genuinely never progresses — the paper's motivation,
//! kept observable.

#![warn(missing_docs)]

use pioman::InjectionEndpoint;
use pm2_marcel::{ThreadCtx, ThreadId};
use pm2_newmad::Session;
use pm2_topo::NodeId;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Handle to one issued one-sided op: wait on it individually or collect
/// a completed get's payload.
#[derive(Clone)]
pub struct RmaHandle {
    engine: RmaEngine,
    op: u64,
}

impl RmaHandle {
    /// The session-level op id (stable, for traces and debugging).
    pub fn op(&self) -> u64 {
        self.op
    }

    /// Waits for this single op to complete (flush of one).
    pub async fn wait(&self, ctx: &ThreadCtx) {
        self.engine.inner.session.rma_wait(ctx, self.op).await;
    }

    /// Takes a completed get's payload (None for puts/accumulates or if
    /// the get has not completed yet). Retires the op's bookkeeping.
    pub fn take_result(&self) -> Option<Vec<u8>> {
        self.engine.inner.session.rma_take_result(self.op)
    }
}

struct EngineInner {
    session: Session,
    /// Lazily-created per-application-thread injection endpoints (only
    /// under the PIOMAN engine; the sequential engine injects inline).
    endpoints: RefCell<HashMap<ThreadId, Rc<InjectionEndpoint>>>,
    /// Ops issued and not yet flushed, keyed by (issuing thread, window).
    pending: RefCell<HashMap<(ThreadId, u64), Vec<u64>>>,
}

/// The per-node one-sided engine: wraps a [`Session`], owns the
/// per-thread injection endpoints and the flush bookkeeping.
#[derive(Clone)]
pub struct RmaEngine {
    inner: Rc<EngineInner>,
}

impl RmaEngine {
    /// Creates the engine over `session`.
    pub fn new(session: &Session) -> RmaEngine {
        RmaEngine {
            inner: Rc::new(EngineInner {
                session: session.clone(),
                endpoints: RefCell::new(HashMap::new()),
                pending: RefCell::new(HashMap::new()),
            }),
        }
    }

    /// The node this engine runs on.
    pub fn node(&self) -> NodeId {
        self.inner.session.node()
    }

    /// The underlying session (counters, debug state).
    pub fn session(&self) -> &Session {
        &self.inner.session
    }

    /// Exposes `len` zero-initialised bytes as window `win` on this node
    /// and returns the local handle. The registration cost (NIC memory
    /// pinning) is charged to the calling thread — it is the *only* cost
    /// the target ever pays for passive-target traffic.
    pub async fn window_create(&self, ctx: &ThreadCtx, win: u64, len: usize) -> Window {
        let cost = self.inner.session.rma_window_create(win, len);
        if !cost.is_zero() {
            ctx.compute(cost).await;
        }
        self.window(win)
    }

    /// Handle to window id `win` for issuing ops at remote nodes (every
    /// node addressing the same id gets its own per-target instance, as
    /// with an MPI window object).
    pub fn window(&self, win: u64) -> Window {
        Window {
            engine: self.clone(),
            win,
        }
    }

    /// Completes every outstanding op issued through this engine — any
    /// thread, any window (`MPI_Win_flush_all` over all windows).
    pub async fn flush_all(&self, ctx: &ThreadCtx) {
        loop {
            let ops: Vec<u64> = {
                let mut pending = self.inner.pending.borrow_mut();
                let ops = pending.values().flatten().copied().collect();
                pending.clear();
                ops
            };
            if ops.is_empty() {
                return;
            }
            for op in ops {
                self.inner.session.rma_wait(ctx, op).await;
            }
            // Other threads may have issued more while we blocked.
        }
    }

    /// Ops issued to remote targets and not yet acknowledged.
    pub fn inflight(&self) -> usize {
        self.inner.session.rma_inflight()
    }

    fn issue(&self, ctx: &ThreadCtx, win: u64, op: u64, self_target: bool) -> RmaHandle {
        self.inner
            .pending
            .borrow_mut()
            .entry((ctx.id(), win))
            .or_default()
            .push(op);
        // Self-target ops applied at stage time: nothing to inject.
        if !self_target {
            match self.inner.session.pioman() {
                Some(pioman) => {
                    let ep = Rc::clone(
                        self.inner
                            .endpoints
                            .borrow_mut()
                            .entry(ctx.id())
                            .or_insert_with(|| Rc::new(pioman.create_endpoint())),
                    );
                    let session = self.inner.session.clone();
                    ep.inject(ctx.current_core(), move || session.rma_inject(op));
                }
                None => {
                    // Sequential engine: the origin pays for its own
                    // injection, inside its next library call.
                    self.inner.session.rma_inject(op);
                }
            }
        }
        RmaHandle {
            engine: self.clone(),
            op,
        }
    }
}

/// One node's handle to a window id: issue one-sided ops at any target
/// node exposing the same id, or read the local exposure.
#[derive(Clone)]
pub struct Window {
    engine: RmaEngine,
    win: u64,
}

impl Window {
    /// The window id.
    pub fn id(&self) -> u64 {
        self.win
    }

    /// Stores `data` into `target`'s window at `offset`. Returns
    /// immediately with a handle; completion is observed via
    /// [`Window::flush`] (or waiting the handle).
    pub fn put(&self, ctx: &ThreadCtx, target: NodeId, offset: usize, data: Vec<u8>) -> RmaHandle {
        let sess = &self.engine.inner.session;
        let self_target = target == sess.node();
        let op = sess.rma_stage_put(target, self.win, offset, data);
        self.engine.issue(ctx, self.win, op, self_target)
    }

    /// Reads `len` bytes from `target`'s window at `offset`. After the
    /// handle completes (flush or wait), collect the payload with
    /// [`RmaHandle::take_result`].
    pub fn get(&self, ctx: &ThreadCtx, target: NodeId, offset: usize, len: usize) -> RmaHandle {
        let sess = &self.engine.inner.session;
        let self_target = target == sess.node();
        let op = sess.rma_stage_get(target, self.win, offset, len);
        self.engine.issue(ctx, self.win, op, self_target)
    }

    /// Byte-wise wrapping-add of `data` into `target`'s window at
    /// `offset` (`WrapAdd8`). Exactly-once even under retransmission —
    /// the reliability layer suppresses duplicates before they reach the
    /// window.
    pub fn accumulate(
        &self,
        ctx: &ThreadCtx,
        target: NodeId,
        offset: usize,
        data: Vec<u8>,
    ) -> RmaHandle {
        let sess = &self.engine.inner.session;
        let self_target = target == sess.node();
        let op = sess.rma_stage_acc(target, self.win, offset, data);
        self.engine.issue(ctx, self.win, op, self_target)
    }

    /// Completes every op the calling thread issued on this window
    /// (`MPI_Win_flush`): on return, puts and accumulates are applied at
    /// their targets and gets have their payloads ready.
    pub async fn flush(&self, ctx: &ThreadCtx) {
        loop {
            let ops = self
                .engine
                .inner
                .pending
                .borrow_mut()
                .remove(&(ctx.id(), self.win));
            let Some(ops) = ops else { return };
            for op in ops {
                self.engine.inner.session.rma_wait(ctx, op).await;
            }
        }
    }

    /// Reads this node's local exposure of the window (free; target-side
    /// verification and the passive target's way to consume results).
    pub fn read_local(&self, offset: usize, len: usize) -> Vec<u8> {
        self.engine
            .inner
            .session
            .rma_window_read(self.win, offset, len)
    }
}
