//! Wire messages and tags.

use std::fmt;

/// Per-message framing overhead on the wire for eager messages.
pub const EAGER_HEADER_BYTES: usize = 32;
/// Framing overhead for rendezvous data frames.
pub const RDV_HEADER_BYTES: usize = 48;
/// Extra wire bytes of the reliability envelope (sequence number).
pub const REL_HEADER_BYTES: usize = 8;

/// Application-level message tag used for matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(pub u64);

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag{}", self.0)
    }
}

/// One eager message inside an aggregated frame.
#[derive(Debug, Clone)]
pub struct EagerPart {
    /// Matching tag.
    pub tag: Tag,
    /// Per-(destination, tag) sequence number.
    pub seq: u32,
    /// Payload.
    pub data: Vec<u8>,
}

/// Frames exchanged between NICs (the fabric payload type).
#[derive(Debug, Clone)]
pub enum WireMsg {
    /// A single eager message.
    Eager(EagerPart),
    /// Several eager messages aggregated into one frame (the
    /// [`crate::AggregStrategy`] optimization).
    Packed(Vec<EagerPart>),
    /// Rendezvous request-to-send: "I have `len` bytes for `tag`".
    Rts {
        /// Matching tag.
        tag: Tag,
        /// Sequence number in the (dest, tag) flow.
        seq: u32,
        /// Payload length of the upcoming transfer.
        len: usize,
        /// Sender-local rendezvous id, echoed back in the CTS.
        rdv: u64,
    },
    /// Clear-to-send: the receiver matched the RTS and registered its
    /// buffer.
    Cts {
        /// The sender's rendezvous id.
        rdv: u64,
    },
    /// Flow-control credit return: the receiver freed unexpected-pool
    /// space (credit-based flow control protects the bounded pool of
    /// §2.2's unexpected-message path).
    Credit {
        /// Pool bytes returned to the sender.
        bytes: usize,
    },
    /// A chunk of zero-copy rendezvous data.
    RdvData {
        /// The sender's rendezvous id.
        rdv: u64,
        /// Chunk index (multirail distribution splits the payload).
        chunk: u32,
        /// Total chunks of this transfer.
        chunks: u32,
        /// Chunk payload.
        data: Vec<u8>,
    },
    /// Reliability envelope: wraps any other frame with a per-(sender,
    /// destination) sequence number when the lossy-fabric mode is active.
    /// The receiver acks every envelope and suppresses duplicates; the
    /// sender retransmits unacked envelopes with exponential backoff.
    Rel {
        /// Envelope sequence number in the (sender → destination) flow.
        rel: u64,
        /// The protected frame.
        inner: Box<WireMsg>,
    },
    /// Acknowledgement of a reliability envelope (never itself wrapped:
    /// a lost ack is recovered by the sender's retransmit, which the
    /// receiver re-acks).
    Ack {
        /// The acknowledged envelope sequence number.
        rel: u64,
    },
    /// One-sided put small enough for a single eager-class frame. The
    /// target applies it to its window without any posted receive
    /// (matching-free) and answers with an [`WireMsg::RmaAck`].
    RmaPut {
        /// Target window id.
        win: u64,
        /// Byte offset inside the window.
        offset: usize,
        /// Origin-scoped op id, echoed in the ack.
        op: u64,
        /// Bytes to store.
        data: Vec<u8>,
    },
    /// One chunk of a large one-sided put (rendezvous-style DMA). Unlike
    /// the two-sided path there is no RTS/CTS handshake: the window was
    /// registered at creation, so chunks flow immediately.
    RmaPutData {
        /// Target window id.
        win: u64,
        /// Byte offset of the whole put inside the window.
        offset: usize,
        /// Origin-scoped op id, echoed in the ack after the last chunk.
        op: u64,
        /// Chunk index.
        chunk: u32,
        /// Total chunks of this put.
        chunks: u32,
        /// Chunk payload.
        data: Vec<u8>,
    },
    /// One-sided read request: the target answers with an
    /// [`WireMsg::RmaGetReply`] carrying the window bytes.
    RmaGet {
        /// Target window id.
        win: u64,
        /// Byte offset inside the window.
        offset: usize,
        /// Bytes to read.
        len: usize,
        /// Origin-scoped op id, echoed in the reply.
        op: u64,
    },
    /// Window bytes answering an [`WireMsg::RmaGet`] small enough for a
    /// single eager-class frame.
    RmaGetReply {
        /// The origin's op id.
        op: u64,
        /// The bytes read.
        data: Vec<u8>,
    },
    /// One chunk of a large get reply (rendezvous-style DMA, mirroring
    /// [`WireMsg::RmaPutData`] in the opposite direction): replies above
    /// the rendezvous threshold are split so a single lost frame only
    /// costs one chunk's retransmit, not the whole payload's.
    RmaGetData {
        /// The origin's op id.
        op: u64,
        /// Chunk index.
        chunk: u32,
        /// Total chunks of this reply.
        chunks: u32,
        /// Chunk payload.
        data: Vec<u8>,
    },
    /// One-sided byte-wise wrapping-add accumulate (`WrapAdd8`). Applied
    /// exactly once: the reliability envelope suppresses retransmitted
    /// duplicates before they can reach the window.
    RmaAcc {
        /// Target window id.
        win: u64,
        /// Byte offset inside the window.
        offset: usize,
        /// Origin-scoped op id, echoed in the ack.
        op: u64,
        /// Bytes to add (wrapping, per byte).
        data: Vec<u8>,
    },
    /// Target → origin completion ack for a put or accumulate. Unlike the
    /// reliability-level [`WireMsg::Ack`] this is an application frame and
    /// *is* itself wrapped in a reliability envelope on lossy fabrics.
    RmaAck {
        /// The completed op id.
        op: u64,
    },
}

impl WireMsg {
    /// Bytes this message occupies on the wire (payload + headers).
    pub fn wire_bytes(&self) -> usize {
        match self {
            WireMsg::Eager(p) => EAGER_HEADER_BYTES + p.data.len(),
            WireMsg::Packed(parts) => parts
                .iter()
                .map(|p| EAGER_HEADER_BYTES + p.data.len())
                .sum::<usize>(),
            WireMsg::Rts { .. } | WireMsg::Cts { .. } | WireMsg::Credit { .. } => 64,
            WireMsg::RdvData { data, .. } => RDV_HEADER_BYTES + data.len(),
            WireMsg::Rel { inner, .. } => REL_HEADER_BYTES + inner.wire_bytes(),
            WireMsg::Ack { .. } => 64,
            WireMsg::RmaPut { data, .. } | WireMsg::RmaAcc { data, .. } => {
                EAGER_HEADER_BYTES + data.len()
            }
            WireMsg::RmaPutData { data, .. } | WireMsg::RmaGetData { data, .. } => {
                RDV_HEADER_BYTES + data.len()
            }
            WireMsg::RmaGetReply { data, .. } => EAGER_HEADER_BYTES + data.len(),
            WireMsg::RmaGet { .. } | WireMsg::RmaAck { .. } => 64,
        }
    }

    /// Application payload bytes carried.
    pub fn app_bytes(&self) -> usize {
        match self {
            WireMsg::Eager(p) => p.data.len(),
            WireMsg::Packed(parts) => parts.iter().map(|p| p.data.len()).sum(),
            WireMsg::Rts { .. } | WireMsg::Cts { .. } | WireMsg::Credit { .. } => 0,
            WireMsg::RdvData { data, .. } => data.len(),
            WireMsg::Rel { inner, .. } => inner.app_bytes(),
            WireMsg::Ack { .. } => 0,
            WireMsg::RmaPut { data, .. }
            | WireMsg::RmaPutData { data, .. }
            | WireMsg::RmaAcc { data, .. }
            | WireMsg::RmaGetReply { data, .. }
            | WireMsg::RmaGetData { data, .. } => data.len(),
            WireMsg::RmaGet { .. } | WireMsg::RmaAck { .. } => 0,
        }
    }
}

/// Intra-node message carried by the shared-memory channel.
#[derive(Debug, Clone)]
pub struct ShmMsg {
    /// Matching tag.
    pub tag: Tag,
    /// Sequence number in the (node-local, tag) flow.
    pub seq: u32,
    /// Payload.
    pub data: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_include_headers() {
        let m = WireMsg::Eager(EagerPart {
            tag: Tag(1),
            seq: 0,
            data: vec![0; 100],
        });
        assert_eq!(m.wire_bytes(), 132);
        assert_eq!(m.app_bytes(), 100);
    }

    #[test]
    fn packed_sums_parts() {
        let part = |n| EagerPart {
            tag: Tag(n),
            seq: 0,
            data: vec![0; 10],
        };
        let m = WireMsg::Packed(vec![part(1), part(2), part(3)]);
        assert_eq!(m.wire_bytes(), 3 * (EAGER_HEADER_BYTES + 10));
        assert_eq!(m.app_bytes(), 30);
    }

    #[test]
    fn control_frames_are_small_fixed_size() {
        let rts = WireMsg::Rts {
            tag: Tag(0),
            seq: 0,
            len: 1 << 20,
            rdv: 1,
        };
        assert_eq!(rts.wire_bytes(), 64);
        assert_eq!(rts.app_bytes(), 0);
        assert_eq!(WireMsg::Cts { rdv: 1 }.wire_bytes(), 64);
    }

    #[test]
    fn reliability_envelope_adds_fixed_header() {
        let m = WireMsg::Rel {
            rel: 3,
            inner: Box::new(WireMsg::Eager(EagerPart {
                tag: Tag(1),
                seq: 0,
                data: vec![0; 100],
            })),
        };
        assert_eq!(m.wire_bytes(), REL_HEADER_BYTES + EAGER_HEADER_BYTES + 100);
        assert_eq!(m.app_bytes(), 100);
        assert_eq!(WireMsg::Ack { rel: 3 }.wire_bytes(), 64);
        assert_eq!(WireMsg::Ack { rel: 3 }.app_bytes(), 0);
    }

    #[test]
    fn rma_frames_pin_their_byte_accounting() {
        let put = WireMsg::RmaPut {
            win: 1,
            offset: 0,
            op: 9,
            data: vec![0; 100],
        };
        assert_eq!(put.wire_bytes(), EAGER_HEADER_BYTES + 100);
        assert_eq!(put.app_bytes(), 100);
        let acc = WireMsg::RmaAcc {
            win: 1,
            offset: 0,
            op: 9,
            data: vec![0; 8],
        };
        assert_eq!(acc.wire_bytes(), EAGER_HEADER_BYTES + 8);
        let chunk = WireMsg::RmaPutData {
            win: 1,
            offset: 0,
            op: 9,
            chunk: 0,
            chunks: 4,
            data: vec![0; 1 << 14],
        };
        assert_eq!(chunk.wire_bytes(), RDV_HEADER_BYTES + (1 << 14));
        let get = WireMsg::RmaGet {
            win: 1,
            offset: 0,
            len: 1 << 10,
            op: 9,
        };
        assert_eq!(get.wire_bytes(), 64);
        assert_eq!(get.app_bytes(), 0);
        let reply = WireMsg::RmaGetReply {
            op: 9,
            data: vec![0; 1 << 10],
        };
        assert_eq!(reply.wire_bytes(), EAGER_HEADER_BYTES + (1 << 10));
        assert_eq!(reply.app_bytes(), 1 << 10);
        // A chunked get reply is a DMA frame like a put chunk.
        let reply_chunk = WireMsg::RmaGetData {
            op: 9,
            chunk: 1,
            chunks: 4,
            data: vec![0; 1 << 14],
        };
        assert_eq!(reply_chunk.wire_bytes(), RDV_HEADER_BYTES + (1 << 14));
        assert_eq!(reply_chunk.app_bytes(), 1 << 14);
        assert_eq!(WireMsg::RmaAck { op: 9 }.wire_bytes(), 64);
        // An RMA ack rides inside a reliability envelope on lossy fabrics
        // (unlike the rel-level Ack, which never does).
        let wrapped = WireMsg::Rel {
            rel: 1,
            inner: Box::new(WireMsg::RmaAck { op: 9 }),
        };
        assert_eq!(wrapped.wire_bytes(), REL_HEADER_BYTES + 64);
    }
}
