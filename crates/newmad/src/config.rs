//! Session configuration, engine selection, and cumulative counters.

use pm2_sim::SimDuration;

/// When does an eager submission run in the background vs. inline?
///
/// The paper's §5 lists "an adaptive strategy to choose whether to offload
/// communication or not" as future work; this implements it. Offloading a
/// submission costs the ≈2 µs cross-CPU tasklet invocation measured in
/// §4.1, which is only worth paying when the submission itself is
/// expensive and an idle core actually exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffloadPolicy {
    /// Always defer to the background engine (the paper's evaluated
    /// design).
    Always,
    /// Always submit inline on the calling thread (classical eager
    /// behaviour, but still PIOMAN-driven for receives).
    Never,
    /// Offload only when an idle core exists *and* the submission cost
    /// exceeds [`SessionConfig::adaptive_min_cost`].
    Adaptive,
}

/// Which progression engine drives the session (the paper's comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Original NewMadeleine: progress only inside library calls, on the
    /// calling thread. `swait` busy-polls and never releases the core.
    Sequential,
    /// PIOMAN-enabled NewMadeleine: progress on idle cores / timer ticks /
    /// blocking calls; `swait` blocks and frees the core.
    Pioman,
}

/// Session tuning knobs.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Progression engine.
    pub engine: EngineKind,
    /// Messages above this use the rendezvous protocol (MX: 32 kB).
    pub rdv_threshold: usize,
    /// CPU cost of registering a request in `isend`/`irecv`.
    pub request_registration: SimDuration,
    /// Busy-poll pause of the sequential `swait`.
    pub poll_pause: SimDuration,
    /// Distribute traffic over all rails (multirail) instead of rail 0.
    pub multirail: bool,
    /// Offload-or-inline decision for eager submissions (PIOMAN engine).
    pub offload_policy: OffloadPolicy,
    /// Credit-based flow control: bytes of unexpected-pool space each
    /// peer may consume at this node before its eager sends fall back to
    /// rendezvous. Protects the bounded pool behind §2.2's unexpected
    /// path (MX-style).
    pub credit_bytes_per_peer: usize,
    /// Minimum submission cost worth offloading under
    /// [`OffloadPolicy::Adaptive`] (≈ the cross-CPU tasklet overhead).
    pub adaptive_min_cost: SimDuration,
    /// Spin granularity on the sequential engine's library-wide mutex.
    ///
    /// The original engine is only thread-safe "through a library-wide
    /// scope mutex" (§2): every `isend`/`irecv`/`swait` iteration takes
    /// the big lock, so concurrent threads serialize and burn this much
    /// CPU per failed acquisition. The PIOMAN engine does not use it
    /// (per-event spinlocks are modelled in `PiomanConfig::lock_model`).
    pub seq_lock_spin: SimDuration,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            engine: EngineKind::Pioman,
            rdv_threshold: 32 << 10,
            request_registration: SimDuration::from_nanos(300),
            poll_pause: SimDuration::from_nanos(300),
            multirail: false,
            offload_policy: OffloadPolicy::Always,
            adaptive_min_cost: SimDuration::from_micros(2),
            credit_bytes_per_peer: 16 << 20,
            seq_lock_spin: SimDuration::from_nanos(200),
        }
    }
}

/// Cumulative session counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NmCounters {
    /// `isend` calls.
    pub sends: u64,
    /// `irecv` calls.
    pub recvs: u64,
    /// Eager frames transmitted (after aggregation).
    pub eager_frames_tx: u64,
    /// Eager messages transmitted (before aggregation).
    pub eager_msgs_tx: u64,
    /// Messages that arrived before their receive was posted.
    pub unexpected: u64,
    /// Rendezvous transfers started (RTS sent).
    pub rdv_started: u64,
    /// Rendezvous transfers completed on the receive side.
    pub rdv_completed: u64,
    /// Intra-node messages through the shared-memory channel.
    pub shm_msgs: u64,
    /// Deliveries observed out of sequence order (expected only under the
    /// shortest-first reordering strategy).
    pub ooo_deliveries: u64,
    /// Failed acquisitions of the sequential engine's library-wide mutex.
    pub seq_lock_contentions: u64,
    /// Eager sends demoted to rendezvous for lack of flow-control credits.
    pub credit_fallbacks: u64,
    /// Credit-return frames transmitted.
    pub credits_returned: u64,
    /// Productive progress steps executed by the network-rail drivers
    /// (submissions plus received frames handled).
    pub net_progress: u64,
    /// Productive progress steps executed by the shared-memory driver.
    pub shm_progress: u64,
}
