//! Session configuration, engine selection, and cumulative counters.

use pm2_sim::SimDuration;

/// When does an eager submission run in the background vs. inline?
///
/// The paper's §5 lists "an adaptive strategy to choose whether to offload
/// communication or not" as future work; this implements it. Offloading a
/// submission costs the ≈2 µs cross-CPU tasklet invocation measured in
/// §4.1, which is only worth paying when the submission itself is
/// expensive and an idle core actually exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffloadPolicy {
    /// Always defer to the background engine (the paper's evaluated
    /// design).
    Always,
    /// Always submit inline on the calling thread (classical eager
    /// behaviour, but still PIOMAN-driven for receives).
    Never,
    /// Offload only when an idle core exists *and* the submission cost
    /// exceeds [`SessionConfig::adaptive_min_cost`].
    Adaptive,
}

/// Which progression engine drives the session (the paper's comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Original NewMadeleine: progress only inside library calls, on the
    /// calling thread. `swait` busy-polls and never releases the core.
    Sequential,
    /// PIOMAN-enabled NewMadeleine: progress on idle cores / timer ticks /
    /// blocking calls; `swait` blocks and frees the core.
    Pioman,
}

/// Session tuning knobs.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Progression engine.
    pub engine: EngineKind,
    /// Messages above this use the rendezvous protocol (MX: 32 kB).
    pub rdv_threshold: usize,
    /// CPU cost of registering a request in `isend`/`irecv`.
    pub request_registration: SimDuration,
    /// Busy-poll pause of the sequential `swait`.
    pub poll_pause: SimDuration,
    /// Distribute traffic over all rails (multirail) instead of rail 0.
    pub multirail: bool,
    /// Offload-or-inline decision for eager submissions (PIOMAN engine).
    pub offload_policy: OffloadPolicy,
    /// Credit-based flow control: bytes of unexpected-pool space each
    /// peer may consume at this node before its eager sends fall back to
    /// rendezvous. Protects the bounded pool behind §2.2's unexpected
    /// path (MX-style).
    pub credit_bytes_per_peer: usize,
    /// Minimum submission cost worth offloading under
    /// [`OffloadPolicy::Adaptive`] (≈ the cross-CPU tasklet overhead).
    pub adaptive_min_cost: SimDuration,
    /// Spin granularity on the sequential engine's library-wide mutex.
    ///
    /// The original engine is only thread-safe "through a library-wide
    /// scope mutex" (§2): every `isend`/`irecv`/`swait` iteration takes
    /// the big lock, so concurrent threads serialize and burn this much
    /// CPU per failed acquisition. The PIOMAN engine does not use it
    /// (per-event spinlocks are modelled in `PiomanConfig::lock_model`).
    pub seq_lock_spin: SimDuration,
    /// Ack/retransmit reliability layer: `Some(true)` forces it on,
    /// `Some(false)` forces it off, `None` (the default) enables it
    /// exactly when a rail carries an active
    /// [`FaultPlan`](pm2_fabric::FaultPlan) — so the happy path stays
    /// byte-identical to a build without the reliability machinery.
    pub reliability: Option<bool>,
    /// Base retransmit timeout for an unacknowledged envelope, on top of
    /// twice the frame's nominal wire time. Retries back off
    /// exponentially from here (`pm2_sync::exp_factor`).
    pub retransmit_timeout: SimDuration,
    /// Retry budget per envelope: after this many unacknowledged
    /// retransmissions the frame is abandoned and counted in
    /// [`NmCounters::retries_exhausted`] (the rail is presumed dead).
    pub max_retries: u32,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            engine: EngineKind::Pioman,
            rdv_threshold: 32 << 10,
            request_registration: SimDuration::from_nanos(300),
            poll_pause: SimDuration::from_nanos(300),
            multirail: false,
            offload_policy: OffloadPolicy::Always,
            adaptive_min_cost: SimDuration::from_micros(2),
            credit_bytes_per_peer: 16 << 20,
            seq_lock_spin: SimDuration::from_nanos(200),
            reliability: None,
            retransmit_timeout: SimDuration::from_micros(100),
            max_retries: 16,
        }
    }
}

/// Cumulative session counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NmCounters {
    /// `isend` calls.
    pub sends: u64,
    /// `irecv` calls.
    pub recvs: u64,
    /// Eager frames transmitted (after aggregation).
    pub eager_frames_tx: u64,
    /// Eager messages transmitted (before aggregation).
    pub eager_msgs_tx: u64,
    /// Messages that arrived before their receive was posted.
    pub unexpected: u64,
    /// Rendezvous transfers started (RTS sent).
    pub rdv_started: u64,
    /// Rendezvous transfers completed on the receive side.
    pub rdv_completed: u64,
    /// Intra-node messages through the shared-memory channel.
    pub shm_msgs: u64,
    /// Deliveries observed out of sequence order (expected only under the
    /// shortest-first reordering strategy).
    pub ooo_deliveries: u64,
    /// Failed acquisitions of the sequential engine's library-wide mutex.
    pub seq_lock_contentions: u64,
    /// Eager sends demoted to rendezvous for lack of flow-control credits.
    pub credit_fallbacks: u64,
    /// Credit-return frames transmitted.
    pub credits_returned: u64,
    /// Productive progress steps executed by the network-rail drivers
    /// (submissions plus received frames handled).
    pub net_progress: u64,
    /// Productive progress steps executed by the shared-memory driver.
    pub shm_progress: u64,
    /// Reliability envelopes retransmitted after an ack timeout.
    pub retransmits: u64,
    /// Retransmissions whose protected frame was a rendezvous RTS or CTS
    /// (the handshake re-issue path).
    pub rts_reissues: u64,
    /// Acknowledgement frames queued for received envelopes.
    pub acks_sent: u64,
    /// Duplicate envelopes (or rendezvous chunks) suppressed before they
    /// could reach matching — exactly-once delivery to the app.
    pub dup_suppressed: u64,
    /// Envelopes abandoned after the retry budget ran out.
    pub retries_exhausted: u64,
    /// One-sided puts issued (origin side, any size).
    pub rma_puts: u64,
    /// One-sided gets issued (origin side).
    pub rma_gets: u64,
    /// One-sided accumulates issued (origin side).
    pub rma_accs: u64,
    /// One-sided ops applied to a local window (target side; a chunked
    /// put counts once, on its final chunk).
    pub rma_applied: u64,
    /// RMA completion frames (acks and get replies) queued by the target.
    pub rma_acks_tx: u64,
    /// One-sided frames addressed to a window this node does not expose,
    /// dropped gracefully instead of panicking (a misbehaving or stale
    /// peer must not take the target down).
    pub rma_bad_frames: u64,
    /// Matching-queue records examined across all posted/unexpected
    /// lookups (arena bucket fronts plus lazily skipped stale twins).
    /// Stays O(messages) since the arena refactor; the old linear scans
    /// made this quadratic under unexpected backlogs.
    pub match_probes: u64,
}
