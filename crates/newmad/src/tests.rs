//! End-to-end session tests over a small simulated cluster.

use crate::{
    AggregStrategy, EngineKind, FifoStrategy, Session, SessionConfig, ShmMsg, Strategy, Tag,
    WireMsg,
};
use pioman::{Pioman, PiomanConfig};
use pm2_fabric::{Fabric, FabricParams, ShmChannel};
use pm2_marcel::{Marcel, MarcelConfig, Priority};
use pm2_sim::{Sim, SimDuration};
use pm2_topo::{NodeId, Topology};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// A freshly wired simulated cluster for tests.
pub(crate) struct World {
    pub sim: Sim,
    pub marcels: Vec<Marcel>,
    pub sessions: Vec<Session>,
    /// Keeps the fabrics (and thus the links) alive for the sim's lifetime.
    #[allow(dead_code)]
    pub fabrics: Vec<Rc<Fabric<WireMsg>>>,
}

pub(crate) struct WorldCfg {
    pub nodes: usize,
    pub cores: usize,
    pub engine: EngineKind,
    pub rails: usize,
    pub multirail: bool,
    pub strategy: Rc<dyn Strategy>,
}

impl Default for WorldCfg {
    fn default() -> Self {
        WorldCfg {
            nodes: 2,
            cores: 8,
            engine: EngineKind::Pioman,
            rails: 1,
            multirail: false,
            strategy: Rc::new(FifoStrategy),
        }
    }
}

pub(crate) fn build_world(cfg: WorldCfg) -> World {
    build_world_with(cfg, |_| {})
}

pub(crate) fn build_world_with(cfg: WorldCfg, tweak: impl Fn(&mut SessionConfig)) -> World {
    let sim = Sim::new(42);
    let topo = Rc::new(Topology::new(cfg.nodes, 1, cfg.cores));
    let fabrics: Vec<Rc<Fabric<WireMsg>>> = (0..cfg.rails)
        .map(|_| Fabric::new(sim.clone(), Rc::clone(&topo), FabricParams::myri10g()))
        .collect();
    let mut marcels = Vec::new();
    let mut sessions = Vec::new();
    for n in 0..cfg.nodes {
        let marcel = Marcel::new(
            sim.clone(),
            Rc::clone(&topo),
            NodeId(n),
            MarcelConfig::default(),
        );
        let pioman = match cfg.engine {
            EngineKind::Pioman => Some(Pioman::new(&marcel, PiomanConfig::default())),
            EngineKind::Sequential => None,
        };
        let rails = fabrics.iter().map(|f| f.nic(NodeId(n))).collect();
        let shm: Rc<ShmChannel<ShmMsg>> =
            ShmChannel::new(sim.clone(), NodeId(n), FabricParams::myri10g());
        let session = Session::new(&marcel, rails, shm, Rc::clone(&cfg.strategy), pioman, {
            let mut sc = SessionConfig {
                engine: cfg.engine,
                multirail: cfg.multirail,
                ..SessionConfig::default()
            };
            tweak(&mut sc);
            sc
        });
        marcels.push(marcel);
        sessions.push(session);
    }
    World {
        sim,
        marcels,
        sessions,
        fabrics,
    }
}

fn payload(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31) ^ seed)
        .collect()
}

/// Runs sender/receiver bodies on two nodes and returns the final time.
fn run_pair<FS, FR>(world: &World, send_body: FS, recv_body: FR) -> u64
where
    FS: FnOnce(
            Session,
            pm2_marcel::ThreadCtx,
        ) -> std::pin::Pin<Box<dyn std::future::Future<Output = ()>>>
        + 'static,
    FR: FnOnce(
            Session,
            pm2_marcel::ThreadCtx,
        ) -> std::pin::Pin<Box<dyn std::future::Future<Output = ()>>>
        + 'static,
{
    let s0 = world.sessions[0].clone();
    let s1 = world.sessions[1].clone();
    world.marcels[0].spawn("sender", Priority::Normal, None, move |ctx| {
        send_body(s0, ctx)
    });
    world.marcels[1].spawn("receiver", Priority::Normal, None, move |ctx| {
        recv_body(s1, ctx)
    });
    world.sim.run().as_micros()
}

#[test]
fn eager_roundtrip_pioman() {
    let world = build_world(WorldCfg::default());
    let data = payload(4096, 7);
    let data2 = data.clone();
    let got = Rc::new(RefCell::new(Vec::new()));
    let got2 = Rc::clone(&got);
    run_pair(
        &world,
        move |s, ctx| {
            Box::pin(async move {
                let h = s.isend(&ctx, NodeId(1), Tag(1), data2).await;
                s.swait_send(&h, &ctx).await;
            })
        },
        move |s, ctx| {
            Box::pin(async move {
                let v = s.recv(&ctx, Some(NodeId(0)), Tag(1)).await;
                *got2.borrow_mut() = v;
            })
        },
    );
    assert_eq!(*got.borrow(), data);
    assert_eq!(world.sessions[0].counters().sends, 1);
    assert_eq!(world.sessions[1].counters().recvs, 1);
    assert_eq!(world.sessions[1].counters().rdv_completed, 0);
}

#[test]
fn eager_roundtrip_sequential() {
    let world = build_world(WorldCfg {
        engine: EngineKind::Sequential,
        ..WorldCfg::default()
    });
    let data = payload(1024, 3);
    let data2 = data.clone();
    let got = Rc::new(RefCell::new(Vec::new()));
    let got2 = Rc::clone(&got);
    run_pair(
        &world,
        move |s, ctx| {
            Box::pin(async move {
                let h = s.isend(&ctx, NodeId(1), Tag(5), data2).await;
                s.swait_send(&h, &ctx).await;
            })
        },
        move |s, ctx| {
            Box::pin(async move {
                let v = s.recv(&ctx, Some(NodeId(0)), Tag(5)).await;
                *got2.borrow_mut() = v;
            })
        },
    );
    assert_eq!(*got.borrow(), data);
}

#[test]
fn unexpected_message_is_copied_out_at_post_time() {
    let world = build_world(WorldCfg::default());
    let data = payload(2048, 9);
    let data2 = data.clone();
    let got = Rc::new(RefCell::new(Vec::new()));
    let got2 = Rc::clone(&got);
    run_pair(
        &world,
        move |s, ctx| {
            Box::pin(async move {
                let h = s.isend(&ctx, NodeId(1), Tag(2), data2).await;
                s.swait_send(&h, &ctx).await;
            })
        },
        move |s, ctx| {
            Box::pin(async move {
                // Deliberately post late: the message arrives unexpected.
                ctx.compute(SimDuration::from_micros(50)).await;
                let v = s.recv(&ctx, Some(NodeId(0)), Tag(2)).await;
                *got2.borrow_mut() = v;
            })
        },
    );
    assert_eq!(*got.borrow(), data);
    assert_eq!(world.sessions[1].counters().unexpected, 1);
}

#[test]
fn rendezvous_roundtrip_with_data_integrity() {
    let world = build_world(WorldCfg::default());
    let data = payload(256 << 10, 5); // 256 kB: above the 32 kB threshold
    let data2 = data.clone();
    let got = Rc::new(RefCell::new(Vec::new()));
    let got2 = Rc::clone(&got);
    let done_at = Rc::new(Cell::new(0u64));
    let done2 = Rc::clone(&done_at);
    run_pair(
        &world,
        move |s, ctx| {
            Box::pin(async move {
                let h = s.isend(&ctx, NodeId(1), Tag(3), data2).await;
                s.swait_send(&h, &ctx).await;
            })
        },
        move |s, ctx| {
            Box::pin(async move {
                let v = s.recv(&ctx, Some(NodeId(0)), Tag(3)).await;
                done2.set(ctx.marcel().sim().now().as_micros());
                *got2.borrow_mut() = v;
            })
        },
    );
    let end = done_at.get();
    assert_eq!(got.borrow().len(), data.len());
    assert_eq!(*got.borrow(), data);
    assert_eq!(world.sessions[0].counters().rdv_started, 1);
    assert_eq!(world.sessions[1].counters().rdv_completed, 1);
    // 256 kB at 1.25 GB/s ≈ 210µs of wire time + handshake.
    assert!(end > 200 && end < 300, "t={end}µs");
}

#[test]
fn rendezvous_waits_for_late_receiver() {
    let world = build_world(WorldCfg::default());
    let data = payload(64 << 10, 1);
    let data2 = data.clone();
    let got = Rc::new(RefCell::new(Vec::new()));
    let got2 = Rc::clone(&got);
    run_pair(
        &world,
        move |s, ctx| {
            Box::pin(async move {
                let h = s.isend(&ctx, NodeId(1), Tag(4), data2).await;
                s.swait_send(&h, &ctx).await;
            })
        },
        move |s, ctx| {
            Box::pin(async move {
                ctx.compute(SimDuration::from_micros(100)).await;
                let v = s.recv(&ctx, Some(NodeId(0)), Tag(4)).await;
                *got2.borrow_mut() = v;
            })
        },
    );
    assert_eq!(*got.borrow(), data);
    // The RTS arrived before the irecv: counted as unexpected.
    assert_eq!(world.sessions[1].counters().unexpected, 1);
    assert_eq!(world.sessions[1].counters().rdv_completed, 1);
}

#[test]
fn intra_node_shared_memory_channel() {
    let world = build_world(WorldCfg {
        nodes: 1,
        ..WorldCfg::default()
    });
    let data = payload(4096, 2);
    let data2 = data.clone();
    let got = Rc::new(RefCell::new(Vec::new()));
    let got2 = Rc::clone(&got);
    let s0 = world.sessions[0].clone();
    let s1 = world.sessions[0].clone();
    world.marcels[0].spawn("sender", Priority::Normal, None, move |ctx| async move {
        let h = s0.isend(&ctx, NodeId(0), Tag(6), data2).await;
        s0.swait_send(&h, &ctx).await;
    });
    {
        let got2 = Rc::clone(&got2);
        world.marcels[0].spawn("receiver", Priority::Normal, None, move |ctx| async move {
            let v = s1.recv(&ctx, Some(NodeId(0)), Tag(6)).await;
            *got2.borrow_mut() = v;
        });
    }
    world.sim.run();
    assert_eq!(*got.borrow(), data);
    assert_eq!(world.sessions[0].counters().shm_msgs, 1);
    // No NIC traffic at all.
    assert_eq!(world.sessions[0].counters().eager_frames_tx, 0);
}

#[test]
fn any_source_receive() {
    let world = build_world(WorldCfg {
        nodes: 3,
        ..WorldCfg::default()
    });
    let got = Rc::new(RefCell::new(Vec::new()));
    for sender in [1usize, 2] {
        let s = world.sessions[sender].clone();
        world.marcels[sender].spawn("sender", Priority::Normal, None, move |ctx| async move {
            let h = s
                .isend(&ctx, NodeId(0), Tag(7), vec![sender as u8; 64])
                .await;
            s.swait_send(&h, &ctx).await;
        });
    }
    let s0 = world.sessions[0].clone();
    let got2 = Rc::clone(&got);
    world.marcels[0].spawn("receiver", Priority::Normal, None, move |ctx| async move {
        for _ in 0..2 {
            let v = s0.recv(&ctx, None, Tag(7)).await;
            got2.borrow_mut().push(v[0]);
        }
    });
    world.sim.run();
    let mut senders = got.borrow().clone();
    senders.sort_unstable();
    assert_eq!(senders, vec![1, 2]);
}

#[test]
fn many_messages_preserve_per_tag_fifo() {
    let world = build_world(WorldCfg::default());
    const N: usize = 50;
    let got = Rc::new(RefCell::new(Vec::new()));
    let got2 = Rc::clone(&got);
    run_pair(
        &world,
        move |s, ctx| {
            Box::pin(async move {
                let mut handles = Vec::new();
                for i in 0..N {
                    handles.push(s.isend(&ctx, NodeId(1), Tag(1), vec![i as u8; 128]).await);
                }
                for h in &handles {
                    s.swait_send(h, &ctx).await;
                }
            })
        },
        move |s, ctx| {
            Box::pin(async move {
                for _ in 0..N {
                    let v = s.recv(&ctx, Some(NodeId(0)), Tag(1)).await;
                    got2.borrow_mut().push(v[0]);
                }
            })
        },
    );
    assert_eq!(*got.borrow(), (0..N as u8).collect::<Vec<_>>());
    assert_eq!(world.sessions[1].counters().ooo_deliveries, 0);
}

#[test]
fn aggregation_reduces_frames() {
    let world = build_world(WorldCfg {
        strategy: Rc::new(AggregStrategy::default()),
        cores: 2,
        ..WorldCfg::default()
    });
    const N: u64 = 10;
    let got = Rc::new(Cell::new(0u64));
    let got2 = Rc::clone(&got);
    run_pair(
        &world,
        move |s, ctx| {
            Box::pin(async move {
                // Burst of small sends: all registered before any submission
                // (the single idle core is slower than registration).
                let mut hs = Vec::new();
                for i in 0..N {
                    hs.push(s.isend(&ctx, NodeId(1), Tag(i), vec![i as u8; 64]).await);
                }
                for h in &hs {
                    s.swait_send(h, &ctx).await;
                }
            })
        },
        move |s, ctx| {
            Box::pin(async move {
                for i in 0..N {
                    let v = s.recv(&ctx, Some(NodeId(0)), Tag(i)).await;
                    assert_eq!(v, vec![i as u8; 64]);
                    got2.set(got2.get() + 1);
                }
            })
        },
    );
    assert_eq!(got.get(), N);
    let c = world.sessions[0].counters();
    assert_eq!(c.eager_msgs_tx, N);
    assert!(
        c.eager_frames_tx < N,
        "aggregation should emit fewer frames: {} frames for {} msgs",
        c.eager_frames_tx,
        c.eager_msgs_tx
    );
}

#[test]
fn multirail_splits_rendezvous_data() {
    let world = build_world(WorldCfg {
        rails: 2,
        multirail: true,
        ..WorldCfg::default()
    });
    let data = payload(512 << 10, 8);
    let data2 = data.clone();
    let got = Rc::new(RefCell::new(Vec::new()));
    let got2 = Rc::clone(&got);
    let end_multirail = run_pair(
        &world,
        move |s, ctx| {
            Box::pin(async move {
                let h = s.isend(&ctx, NodeId(1), Tag(1), data2).await;
                s.swait_send(&h, &ctx).await;
            })
        },
        move |s, ctx| {
            Box::pin(async move {
                let v = s.recv(&ctx, Some(NodeId(0)), Tag(1)).await;
                *got2.borrow_mut() = v;
            })
        },
    );
    assert_eq!(*got.borrow(), data);

    // Same transfer over a single rail takes notably longer.
    let world1 = build_world(WorldCfg::default());
    let data2 = data.clone();
    let got = Rc::new(RefCell::new(Vec::new()));
    let got2 = Rc::clone(&got);
    let end_single = run_pair(
        &world1,
        move |s, ctx| {
            Box::pin(async move {
                let h = s.isend(&ctx, NodeId(1), Tag(1), data2).await;
                s.swait_send(&h, &ctx).await;
            })
        },
        move |s, ctx| {
            Box::pin(async move {
                let v = s.recv(&ctx, Some(NodeId(0)), Tag(1)).await;
                *got2.borrow_mut() = v;
            })
        },
    );
    assert!(
        (end_multirail as f64) < end_single as f64 * 0.7,
        "multirail {end_multirail}µs vs single {end_single}µs"
    );
}

#[test]
fn iprobe_sees_unexpected_and_rts() {
    let world = build_world(WorldCfg::default());
    let probed = Rc::new(RefCell::new(Vec::new()));
    {
        let s = world.sessions[0].clone();
        world.marcels[0].spawn("tx", Priority::Normal, None, move |ctx| async move {
            let h1 = s.isend(&ctx, NodeId(1), Tag(1), vec![1; 2048]).await;
            let h2 = s.isend(&ctx, NodeId(1), Tag(2), vec![2; 64 << 10]).await;
            s.swait_send(&h1, &ctx).await;
            // h2 (rendezvous) cannot complete before the receiver posts.
            let _ = h2;
        });
    }
    {
        let s = world.sessions[1].clone();
        let probed = Rc::clone(&probed);
        world.marcels[1].spawn("rx", Priority::Normal, None, move |ctx| async move {
            ctx.compute(SimDuration::from_micros(50)).await;
            probed.borrow_mut().push(s.iprobe(Some(NodeId(0)), Tag(1)));
            probed.borrow_mut().push(s.iprobe(Some(NodeId(0)), Tag(2)));
            probed.borrow_mut().push(s.iprobe(Some(NodeId(0)), Tag(3)));
            // Consume the eager one; probe must then miss.
            let _ = s.recv(&ctx, Some(NodeId(0)), Tag(1)).await;
            probed.borrow_mut().push(s.iprobe(Some(NodeId(0)), Tag(1)));
            // Answer the rendezvous too so the simulation can quiesce.
            let _ = s.recv(&ctx, Some(NodeId(0)), Tag(2)).await;
        });
    }
    world.sim.run();
    assert_eq!(
        *probed.borrow(),
        vec![Some(2048), Some(64 << 10), None, None]
    );
}

#[test]
fn swait_any_returns_first() {
    let world = build_world(WorldCfg::default());
    {
        let s = world.sessions[0].clone();
        world.marcels[0].spawn("tx", Priority::Normal, None, move |ctx| async move {
            ctx.compute(SimDuration::from_micros(30)).await;
            s.send(&ctx, NodeId(1), Tag(2), vec![9; 128]).await;
            ctx.compute(SimDuration::from_micros(30)).await;
            s.send(&ctx, NodeId(1), Tag(1), vec![8; 128]).await;
        });
    }
    let winner = Rc::new(Cell::new(usize::MAX));
    {
        let s = world.sessions[1].clone();
        let winner = Rc::clone(&winner);
        world.marcels[1].spawn("rx", Priority::Normal, None, move |ctx| async move {
            let h1 = s.irecv(&ctx, Some(NodeId(0)), Tag(1)).await;
            let h2 = s.irecv(&ctx, Some(NodeId(0)), Tag(2)).await;
            let reqs = vec![h1.req().clone(), h2.req().clone()];
            winner.set(s.swait_any(&reqs, &ctx).await);
            // Drain both to let the sim finish cleanly.
            let _ = s.swait_recv(&h2, &ctx).await;
            let _ = s.swait_recv(&h1, &ctx).await;
        });
    }
    world.sim.run();
    assert_eq!(winner.get(), 1, "tag 2 is sent first and must win");
}

#[test]
fn flush_drains_submissions() {
    let world = build_world(WorldCfg {
        cores: 1, // nothing idle: packs stay queued until flushed
        ..WorldCfg::default()
    });
    {
        let s = world.sessions[0].clone();
        world.marcels[0].spawn("tx", Priority::Normal, None, move |ctx| async move {
            let mut hs = Vec::new();
            for i in 0..8 {
                hs.push(s.isend(&ctx, NodeId(1), Tag(i), vec![i as u8; 1024]).await);
            }
            s.flush_sends(&ctx).await;
            // After a flush, every eager send has reached the NIC: the
            // handles complete at egress without further library calls.
            for h in &hs {
                s.swait_send(h, &ctx).await;
            }
        });
    }
    let got = Rc::new(Cell::new(0u32));
    {
        let s = world.sessions[1].clone();
        let got = Rc::clone(&got);
        world.marcels[1].spawn("rx", Priority::Normal, None, move |ctx| async move {
            for i in 0..8 {
                let _ = s.recv(&ctx, Some(NodeId(0)), Tag(i)).await;
                got.set(got.get() + 1);
            }
        });
    }
    world.sim.run();
    assert_eq!(got.get(), 8);
}

#[test]
fn multirail_round_robins_eager_messages() {
    let world = build_world(WorldCfg {
        rails: 2,
        multirail: true,
        ..WorldCfg::default()
    });
    const N: u64 = 8;
    {
        let s = world.sessions[0].clone();
        world.marcels[0].spawn("tx", Priority::Normal, None, move |ctx| async move {
            for i in 0..N {
                s.send(&ctx, NodeId(1), Tag(i), vec![i as u8; 4096]).await;
            }
        });
    }
    let got = Rc::new(Cell::new(0u64));
    {
        let s = world.sessions[1].clone();
        let got = Rc::clone(&got);
        world.marcels[1].spawn("rx", Priority::Normal, None, move |ctx| async move {
            for i in 0..N {
                let v = s.recv(&ctx, Some(NodeId(0)), Tag(i)).await;
                assert_eq!(v, vec![i as u8; 4096]);
                got.set(got.get() + 1);
            }
        });
    }
    world.sim.run();
    assert_eq!(got.get(), N);
    // Both rails carried traffic.
    let c0 = world.fabrics[0].nic(NodeId(0)).counters();
    let c1 = world.fabrics[1].nic(NodeId(0)).counters();
    assert!(c0.tx_frames > 0 && c1.tx_frames > 0, "{c0:?} {c1:?}");
}

#[test]
fn registry_hits_on_repeated_rendezvous() {
    let world = build_world(WorldCfg::default());
    const N: u64 = 4;
    {
        let s = world.sessions[0].clone();
        world.marcels[0].spawn("tx", Priority::Normal, None, move |ctx| async move {
            for i in 0..N {
                // Same tag every iteration models a reused buffer.
                s.send(&ctx, NodeId(1), Tag(1), vec![i as u8; 64 << 10])
                    .await;
            }
        });
    }
    {
        let s = world.sessions[1].clone();
        world.marcels[1].spawn("rx", Priority::Normal, None, move |ctx| async move {
            for i in 0..N {
                let v = s.recv(&ctx, Some(NodeId(0)), Tag(1)).await;
                assert_eq!(v[0], i as u8);
            }
        });
    }
    world.sim.run();
    let tx_stats = world.sessions[0].registry().stats();
    assert_eq!(tx_stats.misses, 1, "first registration pins");
    assert_eq!(tx_stats.hits, (N - 1), "reuse hits the cache");
    let rx_stats = world.sessions[1].registry().stats();
    assert_eq!(rx_stats.misses + rx_stats.hits, N);
}

#[test]
fn flow_control_demotes_to_rendezvous_and_recovers() {
    // A 10 kB credit pool: the first couple of 2 kB eager sends fit, the
    // rest must fall back to rendezvous until the receiver posts and
    // credits flow back.
    let world = {
        let w = WorldCfg {
            cores: 4,
            ..Default::default()
        };
        build_world_with(w, |sc| sc.credit_bytes_per_peer = 10 << 10)
    };
    const N: u64 = 12;
    let got = Rc::new(Cell::new(0u64));
    {
        let s = world.sessions[0].clone();
        world.marcels[0].spawn("tx", Priority::Normal, None, move |ctx| async move {
            let mut hs = Vec::new();
            for i in 0..N {
                hs.push(s.isend(&ctx, NodeId(1), Tag(i), vec![i as u8; 2048]).await);
            }
            for h in &hs {
                s.swait_send(h, &ctx).await;
            }
        });
    }
    {
        let s = world.sessions[1].clone();
        let got = Rc::clone(&got);
        world.marcels[1].spawn("rx", Priority::Normal, None, move |ctx| async move {
            // Delay so the early eager sends land unexpected (consuming
            // pool) before any credits can be returned.
            ctx.compute(SimDuration::from_micros(60)).await;
            for i in 0..N {
                let v = s.recv(&ctx, Some(NodeId(0)), Tag(i)).await;
                assert_eq!(v, vec![i as u8; 2048]);
                got.set(got.get() + 1);
            }
        });
    }
    world.sim.run();
    assert_eq!(got.get(), N);
    let c0 = world.sessions[0].counters();
    assert!(
        c0.credit_fallbacks > 0,
        "pool exhaustion should demote some sends: {c0:?}"
    );
    assert!(
        c0.rdv_started >= c0.credit_fallbacks,
        "fallbacks go through the rendezvous path"
    );
    let c1 = world.sessions[1].counters();
    assert!(c1.credits_returned > 0, "receiver must return credits");
}

#[test]
fn generous_credits_never_fall_back() {
    let world = build_world(WorldCfg::default());
    {
        let s = world.sessions[0].clone();
        world.marcels[0].spawn("tx", Priority::Normal, None, move |ctx| async move {
            for i in 0..20 {
                s.send(&ctx, NodeId(1), Tag(i), vec![1; 4096]).await;
            }
        });
    }
    {
        let s = world.sessions[1].clone();
        world.marcels[1].spawn("rx", Priority::Normal, None, move |ctx| async move {
            for i in 0..20 {
                let _ = s.recv(&ctx, Some(NodeId(0)), Tag(i)).await;
            }
        });
    }
    world.sim.run();
    assert_eq!(world.sessions[0].counters().credit_fallbacks, 0);
}

#[test]
fn pioman_overlaps_sequential_does_not() {
    // The paper's core claim in miniature (Fig. 5 at one size):
    // isend(8K); compute(20µs); swait — Pioman ≈ max, Sequential ≈ sum.
    fn run_once(engine: EngineKind) -> u64 {
        let world = build_world(WorldCfg {
            engine,
            ..WorldCfg::default()
        });
        let done_at = Rc::new(Cell::new(0u64));
        let done2 = Rc::clone(&done_at);
        let s0 = world.sessions[0].clone();
        let s1 = world.sessions[1].clone();
        world.marcels[0].spawn("sender", Priority::Normal, None, move |ctx| async move {
            let h = s0.isend(&ctx, NodeId(1), Tag(1), vec![0xab; 8 << 10]).await;
            ctx.compute(SimDuration::from_micros(20)).await;
            s0.swait_send(&h, &ctx).await;
            done2.set(ctx.marcel().sim().now().as_micros());
        });
        world.marcels[1].spawn("receiver", Priority::Normal, None, move |ctx| async move {
            let _ = s1.recv(&ctx, Some(NodeId(0)), Tag(1)).await;
        });
        world.sim.run();
        done_at.get()
    }
    let pioman = run_once(EngineKind::Pioman);
    let sequential = run_once(EngineKind::Sequential);
    // Submission of 8K ≈ 3.4µs. Pioman: overlapped → ≈ 20-22µs.
    // Sequential: submission happens inside swait → ≥ 23µs.
    assert!(pioman <= 22, "pioman sender total {pioman}µs");
    assert!(
        sequential > pioman,
        "sequential {sequential}µs should exceed pioman {pioman}µs"
    );
}
