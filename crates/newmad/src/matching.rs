//! Matching state: posted receives, the unexpected pool, sequence/credit
//! bookkeeping, and the per-transport pack lists.
//!
//! Extracted from the session monolith: this module owns [`NmState`] (the
//! data every protocol path mutates) and the pure matching helpers; the
//! protocol logic itself lives in `eager`, `rendezvous` and `progress`.
//!
//! # Arena-indexed matching
//!
//! The posted-receive and unexpected pools used to be flat `Vec`s scanned
//! front to back on every match — O(pool) per lookup, quadratic under the
//! incast scenarios where hundreds of messages arrive before their
//! receives are posted. Both are now arena-indexed: entries live in a
//! [`Slab`] and per-`(source, tag)` bucket queues hold `(index, stamp)`
//! pairs in arrival order, so a lookup touches only its own bucket's
//! front. A global monotonic stamp per entry preserves the *exact* former
//! scan semantics:
//!
//! * [`PostedTable`]: a posted receive sits in exactly one queue —
//!   directed `(src, tag)` or wildcard `tag`. A match compares the two
//!   candidate fronts by stamp, which is precisely "first posted receive
//!   matching (src, tag)" of the old linear scan.
//! * [`ArrivalPool`]: an unexpected message must be findable both by a
//!   directed receive and by a wildcard one, so each entry is indexed in
//!   *two* queues. Consuming it through one index leaves a stale twin in
//!   the other; twins are skipped (stamp mismatch against the arena) and
//!   discarded lazily, so total probe work stays O(entries), each entry
//!   paying for its own two index records.

use crate::config::NmCounters;
use crate::reliability::RelPending;
use crate::rendezvous::{RdvRecv, RdvSend};
use crate::rma::{RmaChunks, RmaGetAssembly, RmaOp};
use crate::strategy::{Pack, PackKind};
use pioman::PiomReq;
use pm2_sim::Slab;
use pm2_topo::NodeId;
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::rc::Rc;

use crate::msg::Tag;

/// A receive posted by the application, waiting for a match.
pub(crate) struct PostedRecv {
    pub(crate) src: Option<NodeId>,
    pub(crate) tag: Tag,
    pub(crate) req: PiomReq,
    pub(crate) out: Rc<RefCell<Option<Vec<u8>>>>,
}

/// An eager message that arrived before its receive was posted (§2.2's
/// unexpected path: it sits in the library pool until matched).
pub(crate) struct UnexpectedMsg {
    pub(crate) src: NodeId,
    pub(crate) tag: Tag,
    pub(crate) seq: u32,
    pub(crate) data: Vec<u8>,
}

/// A rendezvous announcement (RTS) with no posted receive yet.
pub(crate) struct UnexpectedRts {
    pub(crate) src: NodeId,
    pub(crate) tag: Tag,
    #[allow(dead_code)]
    pub(crate) seq: u32,
    pub(crate) len: usize,
    pub(crate) rdv: u64,
}

/// A multiply-rotate hasher for the small integer keys of the matching
/// maps ([`NodeId`], [`Tag`]). SipHash's DoS resistance buys nothing
/// against a deterministic simulator and costs real time on the eager
/// hot path, where nearly every queue is one hash lookup deep.
#[derive(Default)]
struct FxHasher(u64);

impl FxHasher {
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl std::hash::Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

type FxMap<K, V> = HashMap<K, V, std::hash::BuildHasherDefault<FxHasher>>;

/// Once a bucket map holds this many entries *and* outnumbers the live
/// arena fourfold, emptied queues are swept. Below the floor they are
/// kept so a ping-pong on one tag reuses its queue's capacity instead of
/// re-allocating every round.
const MAP_SWEEP_FLOOR: usize = 64;

fn sweep_if_bloated<K, V>(map: &mut FxMap<K, VecDeque<V>>, live: usize) {
    if map.len() > MAP_SWEEP_FLOOR && map.len() > 4 * live {
        map.retain(|_, q| !q.is_empty());
    }
}

/// Posted receives, arena-backed, matched in posting order.
///
/// Directed posts queue under `(src, tag)`, wildcard posts under `tag`;
/// an incoming `(src, tag)` message takes the older of the two fronts by
/// stamp. Entries are only ever removed through their own queue's front,
/// so no tombstones arise here. Emptied queues stay in their map (their
/// capacity is reused by the next post on that key) until the amortized
/// [`sweep_if_bloated`] pass reclaims them.
pub(crate) struct PostedTable<T> {
    arena: Slab<(u64, T)>,
    by_src: FxMap<(NodeId, Tag), VecDeque<(usize, u64)>>,
    any_src: FxMap<Tag, VecDeque<(usize, u64)>>,
    next_stamp: u64,
}

impl<T> PostedTable<T> {
    pub(crate) fn new() -> Self {
        PostedTable {
            arena: Slab::new(),
            by_src: FxMap::default(),
            any_src: FxMap::default(),
            next_stamp: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.arena.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    pub(crate) fn push(&mut self, src: Option<NodeId>, tag: Tag, value: T) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        let idx = self.arena.insert((stamp, value));
        match src {
            Some(s) => self.by_src.entry((s, tag)).or_default(),
            None => self.any_src.entry(tag).or_default(),
        }
        .push_back((idx, stamp));
    }

    /// Takes the first (in posting order) entry matching a message from
    /// `src` with `tag`; returns it plus the probe count (bucket fronts
    /// examined, ≥ 1 per call).
    pub(crate) fn take(&mut self, src: NodeId, tag: Tag) -> (Option<T>, u64) {
        let mut probes = 0u64;
        let directed = self
            .by_src
            .get(&(src, tag))
            .and_then(|q| q.front())
            .copied();
        probes += directed.is_some() as u64;
        let wildcard = self.any_src.get(&tag).and_then(|q| q.front()).copied();
        probes += wildcard.is_some() as u64;
        let pick = match (directed, wildcard) {
            (Some((di, ds)), Some((_, ws))) if ds < ws => Some((true, di)),
            (Some(_), Some((wi, _))) => Some((false, wi)),
            (Some((di, _)), None) => Some((true, di)),
            (None, Some((wi, _))) => Some((false, wi)),
            (None, None) => None,
        };
        let Some((from_directed, idx)) = pick else {
            return (None, probes.max(1));
        };
        if from_directed {
            self.by_src
                .get_mut(&(src, tag))
                // lint-allow: arena invariant, front inspected just above
                .expect("front just seen")
                .pop_front();
        } else {
            self.any_src
                .get_mut(&tag)
                // lint-allow: arena invariant, front inspected just above
                .expect("front just seen")
                .pop_front();
        }
        // lint-allow: arena invariant, queues only index live entries
        let (_, value) = self.arena.remove(idx).expect("queue front in arena");
        sweep_if_bloated(&mut self.by_src, self.arena.len());
        sweep_if_bloated(&mut self.any_src, self.arena.len());
        (Some(value), probes.max(1))
    }
}

impl<T> Default for PostedTable<T> {
    fn default() -> Self {
        PostedTable::new()
    }
}

/// Arrived-before-matched entries (unexpected messages, parked RTS),
/// arena-backed, consumed in arrival order.
///
/// Each entry is indexed twice — under `(src, tag)` for directed
/// receives and under `tag` for wildcards — and validated by stamp on
/// access, so the twin left behind by a removal is skipped lazily.
pub(crate) struct ArrivalPool<T> {
    arena: Slab<(u64, T)>,
    by_src: FxMap<(NodeId, Tag), VecDeque<(usize, u64)>>,
    by_tag: FxMap<Tag, VecDeque<(usize, u64)>>,
    next_stamp: u64,
}

impl<T> ArrivalPool<T> {
    pub(crate) fn new() -> Self {
        ArrivalPool {
            arena: Slab::new(),
            by_src: FxMap::default(),
            by_tag: FxMap::default(),
            next_stamp: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.arena.len()
    }

    pub(crate) fn push(&mut self, src: NodeId, tag: Tag, value: T) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        let idx = self.arena.insert((stamp, value));
        self.by_src
            .entry((src, tag))
            .or_default()
            .push_back((idx, stamp));
        self.by_tag.entry(tag).or_default().push_back((idx, stamp));
    }

    /// Pops stale twins off the selected queue's front until a live entry
    /// (or the end) is reached; returns its arena index.
    fn front_live(&mut self, src: Option<NodeId>, tag: Tag, probes: &mut u64) -> Option<usize> {
        let q = match src {
            Some(s) => self.by_src.get_mut(&(s, tag)),
            None => self.by_tag.get_mut(&tag),
        }?;
        let arena = &self.arena;
        let found = loop {
            let Some(&(idx, stamp)) = q.front() else {
                break None;
            };
            *probes += 1;
            if arena.get(idx).is_some_and(|&(live, _)| live == stamp) {
                break Some(idx);
            }
            q.pop_front(); // stale twin: consumed through the other index
        };
        found
    }

    /// Takes the oldest entry matching `(src, tag)` (`src == None` is the
    /// wildcard); returns it plus the probe count (index records
    /// examined, ≥ 1 per call).
    pub(crate) fn take(&mut self, src: Option<NodeId>, tag: Tag) -> (Option<T>, u64) {
        let mut probes = 0u64;
        let found = self.front_live(src, tag, &mut probes);
        let value = found.map(|idx| {
            match src {
                Some(s) => self.by_src.get_mut(&(s, tag)),
                None => self.by_tag.get_mut(&tag),
            }
            // lint-allow: arena invariant, front_live found this queue
            .expect("live front just seen")
            .pop_front();
            // lint-allow: arena invariant, stamp validated by front_live
            let value = self.arena.remove(idx).expect("validated live").1;
            sweep_if_bloated(&mut self.by_src, self.arena.len());
            sweep_if_bloated(&mut self.by_tag, self.arena.len());
            value
        });
        (value, probes.max(1))
    }

    /// Non-destructive variant of [`ArrivalPool::take`] (still prunes the
    /// stale twins it walks over).
    pub(crate) fn peek(&mut self, src: Option<NodeId>, tag: Tag) -> (Option<&T>, u64) {
        let mut probes = 0u64;
        let found = self.front_live(src, tag, &mut probes);
        // lint-allow: arena invariant, stamp validated by front_live
        let value = found.map(|idx| &self.arena.get(idx).expect("validated live").1);
        (value, probes.max(1))
    }
}

impl<T> Default for ArrivalPool<T> {
    fn default() -> Self {
        ArrivalPool::new()
    }
}

/// Duplicate-suppression window over one peer's envelope sequence stream.
///
/// Tracks the seen set as a cumulative prefix (`cum` = next expected seq)
/// plus the out-of-order stragglers beyond it, so memory stays bounded by
/// the reorder depth rather than the message count — a 10⁶-message soak
/// keeps this at a handful of entries.
///
/// Public so pm2-model can embed the *production* window in its abstract
/// protocol states: the explorer then proves window soundness over this
/// exact code rather than a parallel re-implementation that could drift.
#[derive(Debug, Default, Clone, PartialEq, Eq, Hash)]
pub struct SeqWindow {
    cum: u64,
    beyond: BTreeSet<u64>,
}

impl SeqWindow {
    /// Records `seq` as seen; returns `true` if it was fresh (first
    /// sighting), `false` for a duplicate.
    pub fn insert(&mut self, seq: u64) -> bool {
        if seq < self.cum || !self.beyond.insert(seq) {
            return false;
        }
        while self.beyond.remove(&self.cum) {
            self.cum += 1;
        }
        true
    }

    /// Next expected sequence number (every seq below it has been seen).
    pub fn cum(&self) -> u64 {
        self.cum
    }

    /// Out-of-order sequence numbers seen beyond the cumulative prefix.
    pub fn beyond(&self) -> impl Iterator<Item = u64> + '_ {
        self.beyond.iter().copied()
    }
}

/// All mutable session state behind the `RefCell`.
pub(crate) struct NmState {
    /// Waiting packs bound for the network rails (Figure 3's send list,
    /// one per transport since the progression split).
    pub(crate) net_packs: VecDeque<Pack>,
    /// Waiting packs bound for the intra-node shared-memory channel.
    pub(crate) shm_packs: VecDeque<Pack>,
    /// Global enqueue stamp shared by both lists (see [`Pack::seq`]).
    pub(crate) pack_seq: u64,
    pub(crate) posted: PostedTable<PostedRecv>,
    pub(crate) unexpected: ArrivalPool<UnexpectedMsg>,
    pub(crate) unexpected_rts: ArrivalPool<UnexpectedRts>,
    /// `(src, rdv)` of every parked RTS — O(1) duplicate suppression
    /// (the pool itself is keyed by `(src, tag)`, not rdv id).
    pub(crate) parked_rts: HashSet<(NodeId, u64)>,
    pub(crate) rdv_sends: HashMap<u64, RdvSend>,
    pub(crate) rdv_recvs: HashMap<(NodeId, u64), RdvRecv>,
    /// CTS frames that matched before their RdvSend found (never in-order
    /// fabric, but kept for robustness under jitter): none expected.
    pub(crate) send_seq: HashMap<(NodeId, Tag), u32>,
    pub(crate) last_delivered: HashMap<(NodeId, Tag), u32>,
    /// Sender side: remaining eager credits per destination.
    pub(crate) credits: HashMap<NodeId, i64>,
    /// Receiver side: freed pool bytes not yet returned, per source.
    pub(crate) credit_owed: HashMap<NodeId, usize>,
    pub(crate) next_rdv: u64,
    /// Reliability: next envelope sequence per destination.
    pub(crate) rel_next_tx: HashMap<NodeId, u64>,
    /// Reliability: unacked envelopes awaiting retransmit, keyed by
    /// (destination, envelope seq).
    pub(crate) rel_pending: HashMap<(NodeId, u64), RelPending>,
    /// Reliability: per-source duplicate-suppression windows.
    pub(crate) rel_rx: HashMap<NodeId, SeqWindow>,
    /// One-sided windows exposed by this node: id → window memory.
    pub(crate) rma_windows: HashMap<u64, Vec<u8>>,
    /// Origin-side one-sided ops (staged, in flight, or holding an
    /// untaken get result).
    pub(crate) rma_ops: HashMap<u64, RmaOp>,
    /// Ops issued to a remote target and not yet acked — drives driver
    /// arming (a completed get whose result sits untaken does not).
    pub(crate) rma_inflight: usize,
    /// Next origin-scoped op id.
    pub(crate) next_rma_op: u64,
    /// Target-side chunk assembly for large puts, keyed (origin, op).
    pub(crate) rma_chunks: HashMap<(NodeId, u64), RmaChunks>,
    /// Origin-side chunk assembly for large get replies, keyed by op
    /// alone (op ids are origin-scoped; reusing `rma_chunks`' (node, op)
    /// key could collide with a put this node is target-assembling under
    /// the same op number from the same peer).
    pub(crate) rma_get_chunks: HashMap<u64, RmaGetAssembly>,
    pub(crate) rail_rr: usize,
    pub(crate) poll_rotor: usize,
    /// Productive progress steps per driver shard (rails…, then shm).
    pub(crate) driver_work: Vec<u64>,
    pub(crate) counters: NmCounters,
}

impl NmState {
    pub(crate) fn new(n_rails: usize) -> NmState {
        NmState {
            net_packs: VecDeque::new(),
            shm_packs: VecDeque::new(),
            pack_seq: 0,
            posted: PostedTable::new(),
            unexpected: ArrivalPool::new(),
            unexpected_rts: ArrivalPool::new(),
            parked_rts: HashSet::new(),
            rdv_sends: HashMap::new(),
            rdv_recvs: HashMap::new(),
            send_seq: HashMap::new(),
            last_delivered: HashMap::new(),
            credits: HashMap::new(),
            credit_owed: HashMap::new(),
            next_rdv: 1,
            rel_next_tx: HashMap::new(),
            rel_pending: HashMap::new(),
            rel_rx: HashMap::new(),
            rma_windows: HashMap::new(),
            rma_ops: HashMap::new(),
            rma_inflight: 0,
            next_rma_op: 1,
            rma_chunks: HashMap::new(),
            rma_get_chunks: HashMap::new(),
            rail_rr: 0,
            poll_rotor: 0,
            driver_work: vec![0; n_rails + 1],
            counters: NmCounters::default(),
        }
    }

    /// Enqueues a pack on the transport list matching its destination
    /// (`own` node → shared memory, anything else → network), stamping it
    /// with the next global rank.
    pub(crate) fn push_pack(&mut self, own: NodeId, dest: NodeId, kind: PackKind) {
        let seq = self.pack_seq;
        self.pack_seq += 1;
        let pack = Pack { dest, seq, kind };
        if dest == own {
            self.shm_packs.push_back(pack);
        } else {
            self.net_packs.push_back(pack);
        }
    }

    /// Registers a posted receive for matching.
    pub(crate) fn post_recv(&mut self, rec: PostedRecv) {
        let (src, tag) = (rec.src, rec.tag);
        self.posted.push(src, tag, rec);
    }

    /// Takes the first posted receive matching a message from `(src,
    /// tag)`, exactly as the former front-to-back scan would have.
    pub(crate) fn take_posted(&mut self, src: NodeId, tag: Tag) -> Option<PostedRecv> {
        let (rec, probes) = self.posted.take(src, tag);
        self.counters.match_probes += probes;
        rec
    }

    /// Parks an eager message that arrived before its receive.
    pub(crate) fn park_unexpected(&mut self, msg: UnexpectedMsg) {
        self.counters.unexpected += 1;
        let (src, tag) = (msg.src, msg.tag);
        self.unexpected.push(src, tag, msg);
    }

    /// Takes the oldest unexpected message matching `(src, tag)`.
    pub(crate) fn take_unexpected(
        &mut self,
        src: Option<NodeId>,
        tag: Tag,
    ) -> Option<UnexpectedMsg> {
        let (msg, probes) = self.unexpected.take(src, tag);
        self.counters.match_probes += probes;
        msg
    }

    /// Payload length of the oldest matching unexpected message, without
    /// consuming it.
    pub(crate) fn probe_unexpected(&mut self, src: Option<NodeId>, tag: Tag) -> Option<usize> {
        let (msg, probes) = self.unexpected.peek(src, tag);
        let len = msg.map(|m| m.data.len());
        self.counters.match_probes += probes;
        len
    }

    /// Parks a rendezvous announcement with no posted receive yet.
    pub(crate) fn park_rts(&mut self, rts: UnexpectedRts) {
        self.counters.unexpected += 1;
        self.parked_rts.insert((rts.src, rts.rdv));
        let (src, tag) = (rts.src, rts.tag);
        self.unexpected_rts.push(src, tag, rts);
    }

    /// True if an RTS with this `(src, rdv)` identity is already parked
    /// (duplicate-handshake suppression).
    pub(crate) fn rts_parked(&self, src: NodeId, rdv: u64) -> bool {
        self.parked_rts.contains(&(src, rdv))
    }

    /// Takes the oldest parked RTS matching `(src, tag)`.
    pub(crate) fn take_rts(&mut self, src: Option<NodeId>, tag: Tag) -> Option<UnexpectedRts> {
        let (rts, probes) = self.unexpected_rts.take(src, tag);
        self.counters.match_probes += probes;
        if let Some(u) = &rts {
            self.parked_rts.remove(&(u.src, u.rdv));
        }
        rts
    }

    /// Announced length of the oldest matching parked RTS, without
    /// consuming it.
    pub(crate) fn probe_rts(&mut self, src: Option<NodeId>, tag: Tag) -> Option<usize> {
        let (rts, probes) = self.unexpected_rts.peek(src, tag);
        let len = rts.map(|u| u.len);
        self.counters.match_probes += probes;
        len
    }

    /// Tracks delivery order per flow (detects reordering introduced by
    /// non-FIFO strategies).
    pub(crate) fn note_delivery(&mut self, src: NodeId, tag: Tag, seq: u32) {
        let last = self.last_delivered.entry((src, tag)).or_insert(0);
        if seq < *last {
            self.counters.ooo_deliveries += 1;
        } else {
            *last = seq;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(n: usize) -> NodeId {
        NodeId(n)
    }

    /// Reference model of the former linear scans, for differential
    /// checks: a Vec in insertion order.
    struct NaivePool {
        entries: Vec<(Option<NodeId>, Tag, u32)>,
    }

    impl NaivePool {
        fn matches(e: &(Option<NodeId>, Tag, u32), src: Option<NodeId>, tag: Tag) -> bool {
            // Entry-side wildcard (posted table) and query-side wildcard
            // (arrival pool) both reduce to "None matches anything".
            e.1 == tag && (e.0.is_none() || src.is_none() || e.0 == src)
        }
        fn take(&mut self, src: Option<NodeId>, tag: Tag) -> Option<u32> {
            let pos = self
                .entries
                .iter()
                .position(|e| Self::matches(e, src, tag))?;
            Some(self.entries.remove(pos).2)
        }
    }

    #[test]
    fn posted_table_matches_in_posting_order_across_wildcards() {
        let mut t = PostedTable::new();
        t.push(Some(nid(1)), Tag(7), 100u32); // directed at src 1
        t.push(None, Tag(7), 101); // wildcard, posted later
        t.push(Some(nid(2)), Tag(7), 102);
        // Message from src 2: the wildcard (stamp 1) predates the
        // directed post for src 2 (stamp 2) — old scan took the wildcard.
        assert_eq!(t.take(nid(2), Tag(7)).0, Some(101));
        assert_eq!(t.take(nid(2), Tag(7)).0, Some(102));
        assert_eq!(t.take(nid(2), Tag(7)).0, None);
        assert_eq!(t.take(nid(1), Tag(7)).0, Some(100));
        assert!(t.is_empty());
    }

    #[test]
    fn posted_table_differential_vs_naive_scan() {
        let mut rng = pm2_sim::rng::Xoshiro256::new(7);
        let mut table = PostedTable::new();
        let mut naive = NaivePool {
            entries: Vec::new(),
        };
        let mut next = 0u32;
        for _ in 0..20_000 {
            if rng.gen_bool(0.55) {
                let src = if rng.gen_bool(0.3) {
                    None
                } else {
                    Some(nid(rng.gen_below(4) as usize))
                };
                let tag = Tag(rng.gen_below(3));
                table.push(src, tag, next);
                naive.entries.push((src, tag, next));
                next += 1;
            } else {
                let src = nid(rng.gen_below(4) as usize);
                let tag = Tag(rng.gen_below(3));
                assert_eq!(table.take(src, tag).0, naive.take(Some(src), tag));
            }
        }
    }

    #[test]
    fn arrival_pool_differential_vs_naive_scan() {
        let mut rng = pm2_sim::rng::Xoshiro256::new(11);
        let mut pool = ArrivalPool::new();
        let mut naive = NaivePool {
            entries: Vec::new(),
        };
        let mut next = 0u32;
        for _ in 0..20_000 {
            if rng.gen_bool(0.55) {
                let src = nid(rng.gen_below(4) as usize);
                let tag = Tag(rng.gen_below(3));
                pool.push(src, tag, next);
                naive.entries.push((Some(src), tag, next));
                next += 1;
            } else {
                let src = if rng.gen_bool(0.4) {
                    None
                } else {
                    Some(nid(rng.gen_below(4) as usize))
                };
                let tag = Tag(rng.gen_below(3));
                if rng.gen_bool(0.2) {
                    // Probe must see what a take would take.
                    let want = naive
                        .entries
                        .iter()
                        .find(|e| NaivePool::matches(e, src, tag))
                        .map(|e| e.2);
                    assert_eq!(pool.peek(src, tag).0.copied(), want);
                } else {
                    assert_eq!(pool.take(src, tag).0, naive.take(src, tag));
                }
            }
            assert_eq!(pool.len(), naive.entries.len());
        }
    }

    #[test]
    fn unexpected_backlog_drains_with_linear_probe_work() {
        // Regression (pre-fix: every take scanned the whole Vec, so an
        // N-deep backlog cost Θ(N²) probe work to drain — this asserts
        // the arena keeps it O(N), counter-verified through NmState).
        const N: u64 = 2000;
        let mut st = NmState::new(1);
        for i in 0..N {
            st.park_unexpected(UnexpectedMsg {
                src: nid((i % 7) as usize),
                tag: Tag(i % 5),
                seq: i as u32,
                data: vec![0u8; 8],
            });
        }
        assert_eq!(st.counters.match_probes, 0, "parking is probe-free");
        let mut drained = 0u64;
        for i in 0..N {
            // Alternate directed and wildcard receives, like a mixed
            // incast drain.
            let src = if i % 3 == 0 {
                None
            } else {
                Some(nid((i % 7) as usize))
            };
            if st.take_unexpected(src, Tag(i % 5)).is_some() {
                drained += 1;
            }
        }
        // Drain stragglers via pure wildcards across all tags.
        for tag in 0..5 {
            while st.take_unexpected(None, Tag(tag)).is_some() {
                drained += 1;
            }
        }
        assert_eq!(drained, N, "every parked message is reachable");
        assert_eq!(st.unexpected.len(), 0);
        let probes = st.counters.match_probes;
        assert!(
            probes <= 6 * N,
            "probe work {probes} for backlog {N} is not O(N)"
        );
    }

    #[test]
    fn rts_parking_tracks_duplicate_identity() {
        let mut st = NmState::new(1);
        let rts = |rdv: u64| UnexpectedRts {
            src: nid(3),
            tag: Tag(9),
            seq: 0,
            len: 1 << 20,
            rdv,
        };
        st.park_rts(rts(41));
        st.park_rts(rts(42));
        assert!(st.rts_parked(nid(3), 41));
        assert!(!st.rts_parked(nid(3), 40));
        assert_eq!(st.probe_rts(Some(nid(3)), Tag(9)), Some(1 << 20));
        let got = st.take_rts(None, Tag(9)).expect("oldest parked RTS");
        assert_eq!(got.rdv, 41);
        assert!(!st.rts_parked(nid(3), 41), "identity cleared on take");
        assert!(st.rts_parked(nid(3), 42));
        assert_eq!(st.unexpected_rts.len(), 1);
    }

    #[test]
    fn seq_window_suppresses_duplicates() {
        let mut w = SeqWindow::default();
        assert!(w.insert(0));
        assert!(w.insert(2));
        assert!(!w.insert(0));
        assert!(!w.insert(2));
        assert!(w.insert(1));
        assert!(!w.insert(1));
        assert!(w.insert(3));
    }
}
