//! Matching state: posted receives, the unexpected pool, sequence/credit
//! bookkeeping, and the per-transport pack lists.
//!
//! Extracted from the session monolith: this module owns [`NmState`] (the
//! data every protocol path mutates) and the pure matching helpers; the
//! protocol logic itself lives in `eager`, `rendezvous` and `progress`.

use crate::config::NmCounters;
use crate::reliability::RelPending;
use crate::rendezvous::{RdvRecv, RdvSend};
use crate::rma::{RmaChunks, RmaOp};
use crate::strategy::{Pack, PackKind};
use pioman::PiomReq;
use pm2_topo::NodeId;
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::rc::Rc;

use crate::msg::Tag;

/// A receive posted by the application, waiting for a match.
pub(crate) struct PostedRecv {
    pub(crate) src: Option<NodeId>,
    pub(crate) tag: Tag,
    pub(crate) req: PiomReq,
    pub(crate) out: Rc<RefCell<Option<Vec<u8>>>>,
}

/// An eager message that arrived before its receive was posted (§2.2's
/// unexpected path: it sits in the library pool until matched).
pub(crate) struct UnexpectedMsg {
    pub(crate) src: NodeId,
    pub(crate) tag: Tag,
    pub(crate) seq: u32,
    pub(crate) data: Vec<u8>,
}

/// A rendezvous announcement (RTS) with no posted receive yet.
pub(crate) struct UnexpectedRts {
    pub(crate) src: NodeId,
    pub(crate) tag: Tag,
    #[allow(dead_code)]
    pub(crate) seq: u32,
    pub(crate) len: usize,
    pub(crate) rdv: u64,
}

/// Duplicate-suppression window over one peer's envelope sequence stream.
///
/// Tracks the seen set as a cumulative prefix (`cum` = next expected seq)
/// plus the out-of-order stragglers beyond it, so memory stays bounded by
/// the reorder depth rather than the message count — a 10⁶-message soak
/// keeps this at a handful of entries.
#[derive(Debug, Default)]
pub(crate) struct SeqWindow {
    cum: u64,
    beyond: BTreeSet<u64>,
}

impl SeqWindow {
    /// Records `seq` as seen; returns `true` if it was fresh (first
    /// sighting), `false` for a duplicate.
    pub(crate) fn insert(&mut self, seq: u64) -> bool {
        if seq < self.cum || !self.beyond.insert(seq) {
            return false;
        }
        while self.beyond.remove(&self.cum) {
            self.cum += 1;
        }
        true
    }
}

/// All mutable session state behind the `RefCell`.
pub(crate) struct NmState {
    /// Waiting packs bound for the network rails (Figure 3's send list,
    /// one per transport since the progression split).
    pub(crate) net_packs: VecDeque<Pack>,
    /// Waiting packs bound for the intra-node shared-memory channel.
    pub(crate) shm_packs: VecDeque<Pack>,
    /// Global enqueue stamp shared by both lists (see [`Pack::seq`]).
    pub(crate) pack_seq: u64,
    pub(crate) posted: VecDeque<PostedRecv>,
    pub(crate) unexpected: Vec<UnexpectedMsg>,
    pub(crate) unexpected_rts: Vec<UnexpectedRts>,
    pub(crate) rdv_sends: HashMap<u64, RdvSend>,
    pub(crate) rdv_recvs: HashMap<(NodeId, u64), RdvRecv>,
    /// CTS frames that matched before their RdvSend found (never in-order
    /// fabric, but kept for robustness under jitter): none expected.
    pub(crate) send_seq: HashMap<(NodeId, Tag), u32>,
    pub(crate) last_delivered: HashMap<(NodeId, Tag), u32>,
    /// Sender side: remaining eager credits per destination.
    pub(crate) credits: HashMap<NodeId, i64>,
    /// Receiver side: freed pool bytes not yet returned, per source.
    pub(crate) credit_owed: HashMap<NodeId, usize>,
    pub(crate) next_rdv: u64,
    /// Reliability: next envelope sequence per destination.
    pub(crate) rel_next_tx: HashMap<NodeId, u64>,
    /// Reliability: unacked envelopes awaiting retransmit, keyed by
    /// (destination, envelope seq).
    pub(crate) rel_pending: HashMap<(NodeId, u64), RelPending>,
    /// Reliability: per-source duplicate-suppression windows.
    pub(crate) rel_rx: HashMap<NodeId, SeqWindow>,
    /// One-sided windows exposed by this node: id → window memory.
    pub(crate) rma_windows: HashMap<u64, Vec<u8>>,
    /// Origin-side one-sided ops (staged, in flight, or holding an
    /// untaken get result).
    pub(crate) rma_ops: HashMap<u64, RmaOp>,
    /// Ops issued to a remote target and not yet acked — drives driver
    /// arming (a completed get whose result sits untaken does not).
    pub(crate) rma_inflight: usize,
    /// Next origin-scoped op id.
    pub(crate) next_rma_op: u64,
    /// Target-side chunk assembly for large puts, keyed (origin, op).
    pub(crate) rma_chunks: HashMap<(NodeId, u64), RmaChunks>,
    pub(crate) rail_rr: usize,
    pub(crate) poll_rotor: usize,
    /// Productive progress steps per driver shard (rails…, then shm).
    pub(crate) driver_work: Vec<u64>,
    pub(crate) counters: NmCounters,
}

impl NmState {
    pub(crate) fn new(n_rails: usize) -> NmState {
        NmState {
            net_packs: VecDeque::new(),
            shm_packs: VecDeque::new(),
            pack_seq: 0,
            posted: VecDeque::new(),
            unexpected: Vec::new(),
            unexpected_rts: Vec::new(),
            rdv_sends: HashMap::new(),
            rdv_recvs: HashMap::new(),
            send_seq: HashMap::new(),
            last_delivered: HashMap::new(),
            credits: HashMap::new(),
            credit_owed: HashMap::new(),
            next_rdv: 1,
            rel_next_tx: HashMap::new(),
            rel_pending: HashMap::new(),
            rel_rx: HashMap::new(),
            rma_windows: HashMap::new(),
            rma_ops: HashMap::new(),
            rma_inflight: 0,
            next_rma_op: 1,
            rma_chunks: HashMap::new(),
            rail_rr: 0,
            poll_rotor: 0,
            driver_work: vec![0; n_rails + 1],
            counters: NmCounters::default(),
        }
    }

    /// Enqueues a pack on the transport list matching its destination
    /// (`own` node → shared memory, anything else → network), stamping it
    /// with the next global rank.
    pub(crate) fn push_pack(&mut self, own: NodeId, dest: NodeId, kind: PackKind) {
        let seq = self.pack_seq;
        self.pack_seq += 1;
        let pack = Pack { dest, seq, kind };
        if dest == own {
            self.shm_packs.push_back(pack);
        } else {
            self.net_packs.push_back(pack);
        }
    }

    /// Index of the first posted receive matching `(src, tag)`.
    pub(crate) fn match_posted(&self, src: NodeId, tag: Tag) -> Option<usize> {
        self.posted
            .iter()
            .position(|p| p.tag == tag && p.src.is_none_or(|s| s == src))
    }

    /// Tracks delivery order per flow (detects reordering introduced by
    /// non-FIFO strategies).
    pub(crate) fn note_delivery(&mut self, src: NodeId, tag: Tag, seq: u32) {
        let last = self.last_delivered.entry((src, tag)).or_insert(0);
        if seq < *last {
            self.counters.ooo_deliveries += 1;
        } else {
            *last = seq;
        }
    }
}
