//! The progression layer: per-transport PIOMAN drivers, the shared
//! submission engine, and the sequential engine's inline progress unit.
//!
//! Since the sharded-progression refactor each transport registers its
//! own driver with the PIOMAN registry:
//!
//! * one [`RailDriver`] per NIC rail — multirail rails progress
//!   independently, so an idle core draining rail 0 never blocks rail 1;
//! * one [`ShmDriver`] for the shared-memory channel (which doubles as
//!   the self-loopback path: messages a node sends to itself).
//!
//! Submission order across the per-transport pack lists is preserved by
//! [`Pack::seq`] stamps: the registry serves the globally-oldest pack
//! first, so a FIFO strategy behaves exactly as it did with the single
//! monolithic driver.
//!
//! [`Pack::seq`]: crate::strategy::Pack::seq

use crate::msg::{ShmMsg, WireMsg};
use crate::session::{Session, SessionInner};
use crate::strategy::Submission;
use pioman::{DriverPending, Progress, ProgressDriver};
use pm2_sim::obs::EventKind;
use pm2_sim::{SimDuration, Trigger};
use pm2_topo::NodeId;
use std::rc::Weak;

/// PIOMAN driver for one NIC rail: submits network-bound packs and polls
/// this rail's receive queue.
pub(crate) struct RailDriver {
    pub(crate) session: Weak<SessionInner>,
    pub(crate) rail: usize,
}

impl ProgressDriver for RailDriver {
    fn progress(&self) -> Progress {
        match self.session.upgrade() {
            Some(inner) => Session { inner }.rail_progress(self.rail),
            None => Progress::NONE,
        }
    }
    fn pending(&self) -> DriverPending {
        match self.session.upgrade() {
            Some(inner) => Session { inner }.rail_pending(self.rail),
            None => DriverPending::default(),
        }
    }
    fn hw_trigger(&self) -> Option<Trigger> {
        self.session
            .upgrade()
            .map(|inner| inner.rails[self.rail].hw_trigger())
    }
}

/// PIOMAN driver for the shared-memory channel (intra-node/self traffic).
pub(crate) struct ShmDriver {
    pub(crate) session: Weak<SessionInner>,
}

impl ProgressDriver for ShmDriver {
    fn progress(&self) -> Progress {
        match self.session.upgrade() {
            Some(inner) => Session { inner }.shm_progress(),
            None => Progress::NONE,
        }
    }
    fn pending(&self) -> DriverPending {
        match self.session.upgrade() {
            Some(inner) => Session { inner }.shm_pending(),
            None => DriverPending::default(),
        }
    }
    fn hw_trigger(&self) -> Option<Trigger> {
        self.session.upgrade().map(|inner| inner.shm.hw_trigger())
    }
}

impl Session {
    // ----- per-driver pending ---------------------------------------------

    /// What rail `idx`'s driver has outstanding. Matching interest
    /// (posted receives, in-flight rendezvous) arms every rail: any of
    /// them may carry the frame that advances the protocol.
    pub(crate) fn rail_pending(&self, idx: usize) -> DriverPending {
        let st = self.inner.state.borrow();
        DriverPending {
            submissions: !st.net_packs.is_empty(),
            armed: !st.posted.is_empty()
                || !st.rdv_sends.is_empty()
                || !st.rdv_recvs.is_empty()
                // Unacked reliability envelopes wait for their acks.
                || !st.rel_pending.is_empty()
                // In-flight one-sided ops wait for their acks/replies, and
                // half-assembled chunked puts for their remaining chunks.
                || st.rma_inflight > 0
                || !st.rma_chunks.is_empty()
                || !st.rma_get_chunks.is_empty()
                // Unsolicited traffic (unexpected messages, incoming RTS)
                // must be drained even with nothing posted.
                || self.inner.rails[idx].rx_pending(),
            oldest_submission: st.net_packs.front().map(|p| p.seq),
        }
    }

    /// What the shared-memory driver has outstanding. Only actual channel
    /// input arms it: shm delivery is synchronous with the copy, so there
    /// is never a completion to poll for without a visible message.
    pub(crate) fn shm_pending(&self) -> DriverPending {
        let st = self.inner.state.borrow();
        DriverPending {
            submissions: !st.shm_packs.is_empty(),
            armed: self.inner.shm.pending(),
            oldest_submission: st.shm_packs.front().map(|p| p.seq),
        }
    }

    /// Union view (used by the sequential engine's flush).
    pub(crate) fn pending(&self) -> DriverPending {
        let st = self.inner.state.borrow();
        DriverPending {
            submissions: !st.net_packs.is_empty() || !st.shm_packs.is_empty(),
            armed: !st.posted.is_empty()
                || !st.rdv_sends.is_empty()
                || !st.rdv_recvs.is_empty()
                || !st.rel_pending.is_empty()
                || st.rma_inflight > 0
                || !st.rma_chunks.is_empty()
                || !st.rma_get_chunks.is_empty()
                || self.inner.rails.iter().any(|r| r.rx_pending())
                || self.inner.shm.pending(),
            oldest_submission: match (
                st.net_packs.front().map(|p| p.seq),
                st.shm_packs.front().map(|p| p.seq),
            ) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
        }
    }

    // ----- per-driver progress --------------------------------------------

    /// One unit of progress on rail `idx`: submit the oldest network
    /// pack, else drain one received frame, else report an unproductive
    /// poll (the registry discards it if another shard works).
    pub(crate) fn rail_progress(&self, idx: usize) -> Progress {
        let verify = self.inner.sim.verify();
        let vnode = verify.set_node(Some(self.inner.node.0));
        verify.lock_acquire("newmad.state");
        let submission = {
            let mut st = self.inner.state.borrow_mut();
            let st = &mut *st;
            self.inner.strategy.pop(&mut st.net_packs)
        };
        verify.lock_release("newmad.state");
        verify.set_node(vnode);
        if let Some(sub) = submission {
            let cost = self.submit(sub);
            return Progress {
                cost,
                did_work: true,
            };
        }
        let rail = &self.inner.rails[idx];
        if let Some(frame) = rail.rx_poll() {
            let handling = self.handle_wire(frame.src, frame.payload);
            self.note_driver_work(idx);
            return Progress {
                cost: rail.poll_cost() + handling,
                did_work: true,
            };
        }
        Progress {
            cost: rail.poll_cost(),
            did_work: false,
        }
    }

    /// One unit of progress on the shared-memory channel.
    pub(crate) fn shm_progress(&self) -> Progress {
        let verify = self.inner.sim.verify();
        let vnode = verify.set_node(Some(self.inner.node.0));
        verify.lock_acquire("newmad.state");
        let submission = {
            let mut st = self.inner.state.borrow_mut();
            let st = &mut *st;
            self.inner.strategy.pop(&mut st.shm_packs)
        };
        verify.lock_release("newmad.state");
        verify.set_node(vnode);
        if let Some(sub) = submission {
            let cost = self.submit(sub);
            return Progress {
                cost,
                did_work: true,
            };
        }
        if let Some(msg) = self.inner.shm.poll() {
            let cost = self.handle_shm(msg);
            self.note_driver_work(self.inner.rails.len());
            return Progress {
                cost,
                did_work: true,
            };
        }
        Progress::NONE
    }

    /// Tallies a productive step on driver shard `idx` (rails…, shm).
    fn note_driver_work(&self, idx: usize) {
        let verify = self.inner.sim.verify();
        verify.lock_acquire("newmad.state");
        {
            let mut st = self.inner.state.borrow_mut();
            st.driver_work[idx] += 1;
            if idx < self.inner.rails.len() {
                st.counters.net_progress += 1;
            } else {
                st.counters.shm_progress += 1;
            }
        }
        verify.lock_release("newmad.state");
    }

    /// Productive progress steps per driver shard, in driver registration
    /// order (one entry per rail, then shared memory).
    pub fn driver_progress(&self) -> Vec<u64> {
        self.inner.state.borrow().driver_work.clone()
    }

    // ----- sequential engine ----------------------------------------------

    /// One unit of progress: submit one frame or poll one source.
    ///
    /// The sequential engine calls this inline from `swait`; under the
    /// PIOMAN engine the equivalent scheduling decision is made by the
    /// driver registry over [`RailDriver`]/[`ShmDriver`].
    pub fn progress_unit(&self) -> Progress {
        let verify = self.inner.sim.verify();
        let vnode = verify.set_node(Some(self.inner.node.0));
        let p = self.progress_unit_inner();
        verify.set_node(vnode);
        p
    }

    fn progress_unit_inner(&self) -> Progress {
        let verify = self.inner.sim.verify();
        // 1. Feed the network: pop the globally-oldest submission.
        verify.lock_acquire("newmad.state");
        let submission = {
            let mut st = self.inner.state.borrow_mut();
            let st = &mut *st;
            let net = st.net_packs.front().map(|p| p.seq);
            let shm = st.shm_packs.front().map(|p| p.seq);
            let queue = match (net, shm) {
                (Some(a), Some(b)) if b < a => Some(&mut st.shm_packs),
                (Some(_), _) => Some(&mut st.net_packs),
                (None, Some(_)) => Some(&mut st.shm_packs),
                (None, None) => None,
            };
            queue.and_then(|q| self.inner.strategy.pop(q))
        };
        verify.lock_release("newmad.state");
        if let Some(sub) = submission {
            let cost = self.submit(sub);
            return Progress {
                cost,
                did_work: true,
            };
        }
        // 2. Poll one input source (rails and shm in rotation).
        let n_sources = self.inner.rails.len() + 1;
        for _ in 0..n_sources {
            verify.lock_acquire("newmad.state");
            let rotor = {
                let mut st = self.inner.state.borrow_mut();
                let r = st.poll_rotor;
                st.poll_rotor = (st.poll_rotor + 1) % n_sources;
                r
            };
            verify.lock_release("newmad.state");
            if rotor < self.inner.rails.len() {
                let rail = &self.inner.rails[rotor];
                if let Some(frame) = rail.rx_poll() {
                    let handling = self.handle_wire(frame.src, frame.payload);
                    self.note_driver_work(rotor);
                    return Progress {
                        cost: rail.poll_cost() + handling,
                        did_work: true,
                    };
                }
            } else if let Some(msg) = self.inner.shm.poll() {
                let cost = self.handle_shm(msg);
                self.note_driver_work(self.inner.rails.len());
                return Progress {
                    cost,
                    did_work: true,
                };
            }
        }
        // 3. Nothing arrived: an unproductive poll if something is armed.
        if self.pending().armed {
            Progress {
                cost: self.inner.rails[0].poll_cost(),
                did_work: false,
            }
        } else {
            Progress::NONE
        }
    }

    // ----- submission and dispatch ----------------------------------------

    /// Executes one submission; returns host CPU cost.
    pub(crate) fn submit(&self, sub: Submission) -> SimDuration {
        let sim = &self.inner.sim;
        let intra = sub.dest == self.inner.node;
        if intra {
            // Shared-memory channel: copy-in cost, completion immediate
            // (the message now lives in the channel).
            let parts = match sub.msg {
                WireMsg::Eager(p) => vec![p],
                WireMsg::Packed(ps) => ps,
                // lint-allow: strategy never packs control frames intra-node
                other => unreachable!("intra-node control frame {other:?}"),
            };
            let mut cost = SimDuration::ZERO;
            {
                let mut st = self.inner.state.borrow_mut();
                st.counters.shm_msgs += parts.len() as u64;
            }
            let total_bytes: usize = parts.iter().map(|p| p.data.len()).sum();
            let site = sim.obs().site();
            for req in &sub.reqs {
                sim.obs().emit(
                    sim.now(),
                    Some(self.inner.node.0),
                    EventKind::ShmSubmit {
                        req: req.id(),
                        dest: sub.dest.0,
                        bytes: total_bytes,
                        site,
                    },
                );
            }
            for p in parts {
                let copy = self.inner.shm.copy_cost(p.data.len());
                // The message becomes visible once its copy-in completes.
                self.inner.shm.push_after(
                    ShmMsg {
                        tag: p.tag,
                        seq: p.seq,
                        data: p.data,
                    },
                    cost + copy,
                );
                cost += copy;
            }
            let sim2 = sim.clone();
            let done = sim.now() + cost;
            sim.schedule_at(done, move |_| {
                for req in sub.reqs {
                    req.complete(&sim2);
                }
            });
            self.note_driver_work(self.inner.rails.len());
            return cost;
        }
        // Pick a rail.
        let rail_idx = if self.inner.cfg.multirail && self.inner.rails.len() > 1 {
            let mut st = self.inner.state.borrow_mut();
            st.rail_rr = (st.rail_rr + 1) % self.inner.rails.len();
            st.rail_rr
        } else {
            0
        };
        let rail = &self.inner.rails[rail_idx];
        let cost = submit_cost_for(rail, &sub.msg);
        {
            let mut st = self.inner.state.borrow_mut();
            match &sub.msg {
                WireMsg::Eager(_) => {
                    st.counters.eager_frames_tx += 1;
                    st.counters.eager_msgs_tx += 1;
                }
                WireMsg::Packed(ps) => {
                    st.counters.eager_frames_tx += 1;
                    st.counters.eager_msgs_tx += ps.len() as u64;
                }
                _ => {}
            }
        }
        // pm2-obs: typed submission events, matched before the reliability
        // wrap (retransmitted envelopes re-enter as WireMsg::Rel and are
        // deliberately not re-reported as fresh submissions).
        if sim.obs().is_enabled() {
            let site = sim.obs().site();
            let now = sim.now();
            let node = Some(self.inner.node.0);
            match &sub.msg {
                WireMsg::Eager(_) | WireMsg::Packed(_) => {
                    for req in &sub.reqs {
                        sim.obs().emit(
                            now,
                            node,
                            EventKind::NicSubmit {
                                req: req.id(),
                                dest: sub.dest.0,
                                bytes: sub.msg.wire_bytes(),
                                site,
                            },
                        );
                    }
                }
                WireMsg::Rts { len, rdv, .. } => {
                    sim.obs().emit(
                        now,
                        node,
                        EventKind::RtsTx {
                            rdv: *rdv,
                            dest: sub.dest.0,
                            len: *len,
                        },
                    );
                }
                WireMsg::Cts { rdv } => {
                    sim.obs().emit(
                        now,
                        node,
                        EventKind::CtsTx {
                            rdv: *rdv,
                            dest: sub.dest.0,
                        },
                    );
                }
                WireMsg::RdvData {
                    rdv, chunk, data, ..
                } => {
                    sim.obs().emit(
                        now,
                        node,
                        EventKind::DmaTx {
                            rdv: *rdv,
                            dest: sub.dest.0,
                            chunk: *chunk,
                            len: data.len(),
                        },
                    );
                }
                WireMsg::RmaPut { win, op, data, .. }
                | WireMsg::RmaPutData { win, op, data, .. }
                | WireMsg::RmaAcc { win, op, data, .. } => {
                    sim.obs().emit(
                        now,
                        node,
                        EventKind::RmaIssue {
                            op: *op,
                            dest: sub.dest.0,
                            win: *win,
                            bytes: data.len(),
                        },
                    );
                }
                WireMsg::RmaGet { win, len, op, .. } => {
                    sim.obs().emit(
                        now,
                        node,
                        EventKind::RmaIssue {
                            op: *op,
                            dest: sub.dest.0,
                            win: *win,
                            bytes: *len,
                        },
                    );
                }
                WireMsg::Credit { .. }
                | WireMsg::Rel { .. }
                | WireMsg::Ack { .. }
                | WireMsg::RmaGetReply { .. }
                | WireMsg::RmaGetData { .. }
                | WireMsg::RmaAck { .. } => {}
            }
        }
        // Lossy-fabric mode: wrap the frame in a reliability envelope
        // (retransmitted frames are already wrapped; acks never are).
        let (msg, rel) = if self.inner.reliability
            && !matches!(sub.msg, WireMsg::Rel { .. } | WireMsg::Ack { .. })
        {
            let (msg, rel) = self.wrap_rel(sub.dest, sub.msg);
            (msg, Some(rel))
        } else {
            (sub.msg, None)
        };
        let wire_bytes = msg.wire_bytes();
        let retained = rel.map(|_| msg.clone());
        // The frame reaches the NIC only after the submission work
        // (PIO/copy/descriptor post) completes on the submitting core.
        let info = rail.tx_after(sub.dest, wire_bytes, msg, cost);
        if let (Some(rel), Some(retained)) = (rel, retained) {
            self.track_rel(sub.dest, rel, retained, info.arrival);
        }
        // Eager sends complete when the NIC has consumed the buffer.
        for req in sub.reqs {
            let sim2 = sim.clone();
            sim.schedule_at(info.egress_end, move |_| req.complete(&sim2));
        }
        self.note_driver_work(rail_idx);
        self.trace(|| format!("submit {}B to {}", wire_bytes, sub.dest));
        cost
    }

    /// Handles one frame from a NIC; returns handling CPU cost.
    pub(crate) fn handle_wire(&self, src: NodeId, msg: WireMsg) -> SimDuration {
        match msg {
            WireMsg::Eager(part) => self.deliver_eager(src, part),
            WireMsg::Packed(parts) => {
                let mut cost = SimDuration::ZERO;
                for p in parts {
                    cost += self.deliver_eager(src, p);
                }
                cost
            }
            WireMsg::Rts { tag, seq, len, rdv } => self.handle_rts(src, tag, seq, len, rdv),
            WireMsg::Cts { rdv } => self.handle_cts(rdv),
            WireMsg::Credit { bytes } => {
                let limit = self.inner.cfg.credit_bytes_per_peer as i64;
                let mut st = self.inner.state.borrow_mut();
                *st.credits.entry(src).or_insert(limit) += bytes as i64;
                SimDuration::ZERO
            }
            WireMsg::RdvData {
                rdv,
                chunk,
                chunks,
                data,
            } => self.handle_rdv_data(src, rdv, chunk, chunks, data),
            WireMsg::Rel { rel, inner } => self.handle_rel(src, rel, *inner),
            WireMsg::Ack { rel } => self.handle_ack(src, rel),
            WireMsg::RmaPut {
                win,
                offset,
                op,
                data,
            } => self.handle_rma_put(src, win, offset, op, data),
            WireMsg::RmaPutData {
                win,
                offset,
                op,
                chunk,
                chunks,
                data,
            } => self.handle_rma_put_chunk(src, win, offset, op, chunk, chunks, data),
            WireMsg::RmaGet {
                win,
                offset,
                len,
                op,
            } => self.handle_rma_get(src, win, offset, len, op),
            WireMsg::RmaGetReply { op, data } => self.handle_rma_get_reply(src, op, data),
            WireMsg::RmaGetData {
                op,
                chunk,
                chunks,
                data,
            } => self.handle_rma_get_data(src, op, chunk, chunks, data),
            WireMsg::RmaAcc {
                win,
                offset,
                op,
                data,
            } => self.handle_rma_acc(src, win, offset, op, data),
            WireMsg::RmaAck { op } => self.handle_rma_ack(src, op),
        }
    }
}

/// Host CPU cost of submitting `msg`: PIO/copy for eager payloads, a
/// fixed control-frame submission for the handshake traffic, a DMA
/// descriptor post for zero-copy chunks. The reliability envelope adds
/// nothing — it is part of the frame header.
fn submit_cost_for(rail: &pm2_fabric::Nic<WireMsg>, msg: &WireMsg) -> SimDuration {
    match msg {
        WireMsg::Eager(_) | WireMsg::Packed(_) => rail.submit_cost(msg.app_bytes()),
        WireMsg::Rts { .. }
        | WireMsg::Cts { .. }
        | WireMsg::Credit { .. }
        | WireMsg::Ack { .. }
        | WireMsg::RmaGet { .. }
        | WireMsg::RmaAck { .. } => rail.submit_cost(64),
        WireMsg::RdvData { .. } | WireMsg::RmaPutData { .. } | WireMsg::RmaGetData { .. } => {
            rail.params().dma_setup
        }
        WireMsg::RmaPut { data, .. }
        | WireMsg::RmaAcc { data, .. }
        | WireMsg::RmaGetReply { data, .. } => rail.submit_cost(data.len()),
        WireMsg::Rel { inner, .. } => submit_cost_for(rail, inner),
    }
}
