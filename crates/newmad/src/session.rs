//! The per-node NewMadeleine session: gates, matching, protocols, engines.

use crate::msg::{EagerPart, ShmMsg, Tag, WireMsg};
use crate::strategy::{Pack, PackKind, Strategy, Submission};
use pioman::{DriverPending, Pioman, PiomReq, Progress, ProgressDriver};
use pm2_fabric::{MemoryRegistry, Nic, ShmChannel};
use pm2_marcel::{Marcel, ThreadCtx};
use pm2_sim::trace::Category;
use pm2_sim::{Sim, SimDuration, Trigger};
use pm2_topo::NodeId;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::{Rc, Weak};

/// When does an eager submission run in the background vs. inline?
///
/// The paper's §5 lists "an adaptive strategy to choose whether to offload
/// communication or not" as future work; this implements it. Offloading a
/// submission costs the ≈2 µs cross-CPU tasklet invocation measured in
/// §4.1, which is only worth paying when the submission itself is
/// expensive and an idle core actually exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffloadPolicy {
    /// Always defer to the background engine (the paper's evaluated
    /// design).
    Always,
    /// Always submit inline on the calling thread (classical eager
    /// behaviour, but still PIOMAN-driven for receives).
    Never,
    /// Offload only when an idle core exists *and* the submission cost
    /// exceeds [`SessionConfig::adaptive_min_cost`].
    Adaptive,
}

/// Which progression engine drives the session (the paper's comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Original NewMadeleine: progress only inside library calls, on the
    /// calling thread. `swait` busy-polls and never releases the core.
    Sequential,
    /// PIOMAN-enabled NewMadeleine: progress on idle cores / timer ticks /
    /// blocking calls; `swait` blocks and frees the core.
    Pioman,
}

/// Session tuning knobs.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Progression engine.
    pub engine: EngineKind,
    /// Messages above this use the rendezvous protocol (MX: 32 kB).
    pub rdv_threshold: usize,
    /// CPU cost of registering a request in `isend`/`irecv`.
    pub request_registration: SimDuration,
    /// Busy-poll pause of the sequential `swait`.
    pub poll_pause: SimDuration,
    /// Distribute traffic over all rails (multirail) instead of rail 0.
    pub multirail: bool,
    /// Offload-or-inline decision for eager submissions (PIOMAN engine).
    pub offload_policy: OffloadPolicy,
    /// Credit-based flow control: bytes of unexpected-pool space each
    /// peer may consume at this node before its eager sends fall back to
    /// rendezvous. Protects the bounded pool behind §2.2's unexpected
    /// path (MX-style).
    pub credit_bytes_per_peer: usize,
    /// Minimum submission cost worth offloading under
    /// [`OffloadPolicy::Adaptive`] (≈ the cross-CPU tasklet overhead).
    pub adaptive_min_cost: SimDuration,
    /// Spin granularity on the sequential engine's library-wide mutex.
    ///
    /// The original engine is only thread-safe "through a library-wide
    /// scope mutex" (§2): every `isend`/`irecv`/`swait` iteration takes
    /// the big lock, so concurrent threads serialize and burn this much
    /// CPU per failed acquisition. The PIOMAN engine does not use it
    /// (per-event spinlocks are modelled in `PiomanConfig::lock_model`).
    pub seq_lock_spin: SimDuration,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            engine: EngineKind::Pioman,
            rdv_threshold: 32 << 10,
            request_registration: SimDuration::from_nanos(300),
            poll_pause: SimDuration::from_nanos(300),
            multirail: false,
            offload_policy: OffloadPolicy::Always,
            adaptive_min_cost: SimDuration::from_micros(2),
            credit_bytes_per_peer: 16 << 20,
            seq_lock_spin: SimDuration::from_nanos(200),
        }
    }
}

/// Cumulative session counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NmCounters {
    /// `isend` calls.
    pub sends: u64,
    /// `irecv` calls.
    pub recvs: u64,
    /// Eager frames transmitted (after aggregation).
    pub eager_frames_tx: u64,
    /// Eager messages transmitted (before aggregation).
    pub eager_msgs_tx: u64,
    /// Messages that arrived before their receive was posted.
    pub unexpected: u64,
    /// Rendezvous transfers started (RTS sent).
    pub rdv_started: u64,
    /// Rendezvous transfers completed on the receive side.
    pub rdv_completed: u64,
    /// Intra-node messages through the shared-memory channel.
    pub shm_msgs: u64,
    /// Deliveries observed out of sequence order (expected only under the
    /// shortest-first reordering strategy).
    pub ooo_deliveries: u64,
    /// Failed acquisitions of the sequential engine's library-wide mutex.
    pub seq_lock_contentions: u64,
    /// Eager sends demoted to rendezvous for lack of flow-control credits.
    pub credit_fallbacks: u64,
    /// Credit-return frames transmitted.
    pub credits_returned: u64,
}

struct PostedRecv {
    src: Option<NodeId>,
    tag: Tag,
    req: PiomReq,
    out: Rc<RefCell<Option<Vec<u8>>>>,
}

struct UnexpectedMsg {
    src: NodeId,
    tag: Tag,
    seq: u32,
    data: Vec<u8>,
}

struct UnexpectedRts {
    src: NodeId,
    tag: Tag,
    #[allow(dead_code)]
    seq: u32,
    len: usize,
    rdv: u64,
}

struct RdvSend {
    dest: NodeId,
    tag: Tag,
    data: Option<Vec<u8>>,
    req: PiomReq,
    cts_received: bool,
}

struct RdvRecv {
    req: PiomReq,
    out: Rc<RefCell<Option<Vec<u8>>>>,
    chunks: Vec<Option<Vec<u8>>>,
    received: u32,
}

struct NmState {
    packs: VecDeque<Pack>,
    posted: VecDeque<PostedRecv>,
    unexpected: Vec<UnexpectedMsg>,
    unexpected_rts: Vec<UnexpectedRts>,
    rdv_sends: HashMap<u64, RdvSend>,
    rdv_recvs: HashMap<(NodeId, u64), RdvRecv>,
    /// CTS frames that matched before their RdvSend found (never in-order
    /// fabric, but kept for robustness under jitter): none expected.
    send_seq: HashMap<(NodeId, Tag), u32>,
    last_delivered: HashMap<(NodeId, Tag), u32>,
    /// Sender side: remaining eager credits per destination.
    credits: HashMap<NodeId, i64>,
    /// Receiver side: freed pool bytes not yet returned, per source.
    credit_owed: HashMap<NodeId, usize>,
    next_rdv: u64,
    rail_rr: usize,
    poll_rotor: usize,
    counters: NmCounters,
}

struct SessionInner {
    sim: Sim,
    marcel: Marcel,
    node: NodeId,
    rails: Vec<Rc<Nic<WireMsg>>>,
    shm: Rc<ShmChannel<ShmMsg>>,
    strategy: Rc<dyn Strategy>,
    pioman: Option<Pioman>,
    registry: MemoryRegistry,
    cfg: SessionConfig,
    /// Virtual time until which the sequential engine's library-wide
    /// mutex is held.
    seq_lock_until: std::cell::Cell<pm2_sim::SimTime>,
    state: RefCell<NmState>,
}

/// Handle to one node's communication session (cheap to clone).
#[derive(Clone)]
pub struct Session {
    inner: Rc<SessionInner>,
}

/// Handle of an asynchronous send.
#[derive(Clone, Debug)]
pub struct SendHandle {
    req: PiomReq,
}

impl SendHandle {
    /// The underlying request.
    pub fn req(&self) -> &PiomReq {
        &self.req
    }
    /// True once the send buffer is reusable.
    pub fn is_complete(&self) -> bool {
        self.req.is_complete()
    }
}

/// Handle of an asynchronous receive.
#[derive(Clone, Debug)]
pub struct RecvHandle {
    req: PiomReq,
    out: Rc<RefCell<Option<Vec<u8>>>>,
}

impl RecvHandle {
    /// The underlying request.
    pub fn req(&self) -> &PiomReq {
        &self.req
    }
    /// True once the message is in the application buffer.
    pub fn is_complete(&self) -> bool {
        self.req.is_complete()
    }
    /// Takes the received payload (after completion).
    pub fn take_data(&self) -> Option<Vec<u8>> {
        self.out.borrow_mut().take()
    }
}

/// PIOMAN driver adapter: routes progress callbacks into the session.
struct NmDriver {
    session: Weak<SessionInner>,
}

impl ProgressDriver for NmDriver {
    fn progress(&self) -> Progress {
        match self.session.upgrade() {
            Some(inner) => Session { inner }.progress_unit(),
            None => Progress::NONE,
        }
    }
    fn pending(&self) -> DriverPending {
        match self.session.upgrade() {
            Some(inner) => Session { inner }.pending(),
            None => DriverPending::default(),
        }
    }
    fn hw_trigger(&self) -> Option<Trigger> {
        self.session
            .upgrade()
            .map(|inner| Session { inner }.combined_hw_trigger())
    }
}

impl Session {
    /// Creates a session for `marcel`'s node.
    ///
    /// `rails` are the node's NICs (one per physical network);
    /// `shm` is the node's intra-node channel; `pioman` must be given for
    /// [`EngineKind::Pioman`] and is ignored by the sequential engine.
    pub fn new(
        marcel: &Marcel,
        rails: Vec<Rc<Nic<WireMsg>>>,
        shm: Rc<ShmChannel<ShmMsg>>,
        strategy: Rc<dyn Strategy>,
        pioman: Option<Pioman>,
        cfg: SessionConfig,
    ) -> Session {
        assert!(!rails.is_empty(), "a session needs at least one rail");
        if cfg.engine == EngineKind::Pioman {
            assert!(
                pioman.is_some(),
                "the Pioman engine requires a Pioman server"
            );
        }
        let params = rails[0].params().clone();
        let inner = Rc::new(SessionInner {
            sim: marcel.sim().clone(),
            marcel: marcel.clone(),
            node: marcel.node(),
            rails,
            shm,
            strategy,
            pioman: pioman.clone(),
            registry: MemoryRegistry::new(params),
            cfg,
            seq_lock_until: std::cell::Cell::new(pm2_sim::SimTime::ZERO),
            state: RefCell::new(NmState {
                packs: VecDeque::new(),
                posted: VecDeque::new(),
                unexpected: Vec::new(),
                unexpected_rts: Vec::new(),
                rdv_sends: HashMap::new(),
                rdv_recvs: HashMap::new(),
                send_seq: HashMap::new(),
                last_delivered: HashMap::new(),
                credits: HashMap::new(),
                credit_owed: HashMap::new(),
                next_rdv: 1,
                rail_rr: 0,
                poll_rotor: 0,
                counters: NmCounters::default(),
            }),
        });
        let session = Session {
            inner: Rc::clone(&inner),
        };
        if let Some(p) = &pioman {
            p.attach_driver(Rc::new(NmDriver {
                session: Rc::downgrade(&inner),
            }));
        }
        // Frame arrivals nudge idle cores: the simulation-friendly
        // equivalent of the continuous busy-poll of §3.2 observing the
        // doorbell the moment it flips.
        let marcel_weak = {
            let m = inner.marcel.clone();
            move || m.kick_all_idle()
        };
        for rail in &inner.rails {
            let kick = marcel_weak.clone();
            rail.set_rx_callback(move || kick());
        }
        let kick = marcel_weak;
        inner.shm.set_callback(move || kick());
        session
    }

    /// The node this session runs on.
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// The engine in use.
    pub fn engine(&self) -> EngineKind {
        self.inner.cfg.engine
    }

    /// Counter snapshot.
    pub fn counters(&self) -> NmCounters {
        self.inner.state.borrow().counters
    }

    /// The registration cache (rendezvous ablations inspect its stats).
    pub fn registry(&self) -> &MemoryRegistry {
        &self.inner.registry
    }

    /// The strategy name (for benchmark reports).
    pub fn strategy_name(&self) -> &'static str {
        self.inner.strategy.name()
    }

    // ----- application API ------------------------------------------------

    /// Posts an asynchronous send of `data` to `(dest, tag)` from thread
    /// `ctx`.
    ///
    /// Only *registers* the request (a fraction of a microsecond on the
    /// calling core); the expensive submission happens later — in the
    /// background under the PIOMAN engine, inside `swait` under the
    /// sequential engine.
    pub async fn isend(
        &self,
        ctx: &ThreadCtx,
        dest: NodeId,
        tag: Tag,
        data: Vec<u8>,
    ) -> SendHandle {
        self.seq_acquire(ctx).await;
        self.seq_hold(self.inner.cfg.request_registration);
        ctx.compute(self.inner.cfg.request_registration).await;
        let req = PiomReq::new(&self.inner.sim, "send");
        let len = data.len();
        let intra = dest == self.inner.node;
        // Offload-or-inline decision (PIOMAN engine, eager messages only).
        let eager = intra || len <= self.inner.cfg.rdv_threshold;
        let inline = self.inner.cfg.engine == EngineKind::Pioman
            && eager
            && match self.inner.cfg.offload_policy {
                OffloadPolicy::Always => false,
                OffloadPolicy::Never => true,
                OffloadPolicy::Adaptive => {
                    let cost = if intra {
                        self.inner.shm.copy_cost(len)
                    } else {
                        self.inner.rails[0].submit_cost(len)
                    };
                    !(self.inner.marcel.has_idle_core()
                        && cost >= self.inner.cfg.adaptive_min_cost)
                }
            };
        let inline_submission = {
            let mut st = self.inner.state.borrow_mut();
            st.counters.sends += 1;
            let seq = st.send_seq.entry((dest, tag)).or_insert(0);
            let this_seq = *seq;
            *seq += 1;
            // Flow control: an eager send needs unexpected-pool credits at
            // the destination; without them it demotes to rendezvous
            // (which is zero-copy and needs no pool).
            let mut use_rdv = !intra && len > self.inner.cfg.rdv_threshold;
            if !intra && !use_rdv {
                let need = (crate::msg::EAGER_HEADER_BYTES + len) as i64;
                let limit = self.inner.cfg.credit_bytes_per_peer as i64;
                let c = st.credits.entry(dest).or_insert(limit);
                if *c < need {
                    use_rdv = true;
                    st.counters.credit_fallbacks += 1;
                } else {
                    *c -= need;
                }
            }
            if use_rdv {
                // Rendezvous: queue the RTS control frame.
                let rdv = st.next_rdv;
                st.next_rdv += 1;
                st.rdv_sends.insert(
                    rdv,
                    RdvSend {
                        dest,
                        tag,
                        data: Some(data),
                        req: req.clone(),
                        cts_received: false,
                    },
                );
                st.packs.push_back(Pack {
                    dest,
                    kind: PackKind::Rts {
                        tag,
                        seq: this_seq,
                        len,
                        rdv,
                    },
                });
                st.counters.rdv_started += 1;
                None
            } else {
                let part = EagerPart {
                    tag,
                    seq: this_seq,
                    data,
                };
                if inline {
                    Some(Submission {
                        dest,
                        msg: WireMsg::Eager(part),
                        reqs: vec![req.clone()],
                    })
                } else {
                    st.packs.push_back(Pack {
                        dest,
                        kind: PackKind::Eager {
                            part,
                            req: req.clone(),
                        },
                    });
                    None
                }
            }
        };
        match inline_submission {
            Some(sub) => {
                // Inline: the calling thread pays the submission here.
                let cost = self.submit(sub);
                ctx.compute(cost).await;
            }
            None => self.notify_work(ctx),
        }
        SendHandle { req }
    }

    /// Posts an asynchronous receive for `(src, tag)`; `None` matches any
    /// source.
    pub async fn irecv(&self, ctx: &ThreadCtx, src: Option<NodeId>, tag: Tag) -> RecvHandle {
        self.seq_acquire(ctx).await;
        self.seq_hold(self.inner.cfg.request_registration);
        ctx.compute(self.inner.cfg.request_registration).await;
        let req = PiomReq::new(&self.inner.sim, "recv");
        let out: Rc<RefCell<Option<Vec<u8>>>> = Rc::new(RefCell::new(None));
        // Unexpected eager message already here? Copy it out (the §2.2
        // unexpected path: one extra copy).
        let copy_cost = {
            let mut st = self.inner.state.borrow_mut();
            st.counters.recvs += 1;
            if let Some(pos) = st
                .unexpected
                .iter()
                .position(|u| u.tag == tag && src.map_or(true, |s| s == u.src))
            {
                let u = st.unexpected.remove(pos);
                Self::note_delivery(&mut st, u.src, tag, u.seq);
                let wire = crate::msg::EAGER_HEADER_BYTES + u.data.len();
                let src_node = u.src;
                let cost = self.inner.rails[0].params().memcpy_cost(u.data.len());
                *out.borrow_mut() = Some(u.data);
                self.credit_freed(&mut st, src_node, wire);
                Some(cost)
            } else if let Some(pos) = st
                .unexpected_rts
                .iter()
                .position(|u| u.tag == tag && src.map_or(true, |s| s == u.src))
            {
                // A rendezvous was waiting for us: answer it.
                let u = st.unexpected_rts.remove(pos);
                let reg = self.inner.registry.register(tag.0 | 1 << 63, u.len);
                st.rdv_recvs.insert(
                    (u.src, u.rdv),
                    RdvRecv {
                        req: req.clone(),
                        out: Rc::clone(&out),
                        chunks: Vec::new(),
                        received: 0,
                    },
                );
                st.packs.push_back(Pack {
                    dest: u.src,
                    kind: PackKind::Cts { rdv: u.rdv },
                });
                Some(reg)
            } else {
                st.posted.push_back(PostedRecv {
                    src,
                    tag,
                    req: req.clone(),
                    out: Rc::clone(&out),
                });
                None
            }
        };
        match copy_cost {
            Some(cost) => {
                ctx.compute(cost).await;
                // Eager unexpected: completed by the copy itself.
                // Rendezvous: completes when the data lands.
                if out.borrow().is_some() {
                    req.complete(&self.inner.sim);
                }
                // Either way there may be new work (CTS or credit-return
                // packs queued above).
                self.notify_work(ctx);
            }
            None => {
                // Freshly posted: arm the background engine (polling
                // interest and, if configured, the blocking watcher).
                self.notify_work(ctx);
            }
        }
        RecvHandle { req, out }
    }

    /// Waits for a request from thread `ctx`, engine-dependently.
    pub async fn swait(&self, req: &PiomReq, ctx: &ThreadCtx) {
        match self.inner.cfg.engine {
            EngineKind::Pioman => {
                self.inner
                    .pioman
                    .as_ref()
                    .expect("pioman engine")
                    .wait(req, ctx)
                    .await;
            }
            EngineKind::Sequential => {
                // The original NewMadeleine: the calling thread drives all
                // progress, never yields its core, and serializes against
                // other threads through the library-wide mutex.
                loop {
                    if req.is_complete() {
                        return;
                    }
                    self.seq_acquire(ctx).await;
                    if req.is_complete() {
                        return;
                    }
                    let p = self.progress_unit();
                    if !p.cost.is_zero() {
                        self.seq_hold(p.cost);
                        ctx.compute(p.cost).await;
                    }
                    if req.is_complete() {
                        return;
                    }
                    if !p.did_work {
                        ctx.compute(self.inner.cfg.poll_pause).await;
                    }
                }
            }
        }
    }

    /// `swait` on a send handle.
    pub async fn swait_send(&self, h: &SendHandle, ctx: &ThreadCtx) {
        self.swait(&h.req, ctx).await;
    }

    /// Waits until any of `reqs` completes; returns its index.
    pub async fn swait_any(&self, reqs: &[PiomReq], ctx: &ThreadCtx) -> usize {
        match self.inner.cfg.engine {
            EngineKind::Pioman => {
                self.inner
                    .pioman
                    .as_ref()
                    .expect("pioman engine")
                    .wait_any(reqs, ctx)
                    .await
            }
            EngineKind::Sequential => loop {
                if let Some(i) = reqs.iter().position(PiomReq::is_complete) {
                    return i;
                }
                self.seq_acquire(ctx).await;
                let p = self.progress_unit();
                if !p.cost.is_zero() {
                    self.seq_hold(p.cost);
                    ctx.compute(p.cost).await;
                }
                if !p.did_work {
                    ctx.compute(self.inner.cfg.poll_pause).await;
                }
            },
        }
    }

    /// Blocking send: `isend` + `swait`.
    pub async fn send(&self, ctx: &ThreadCtx, dest: NodeId, tag: Tag, data: Vec<u8>) {
        let h = self.isend(ctx, dest, tag, data).await;
        self.swait_send(&h, ctx).await;
    }

    /// Non-destructive probe: the payload length of a matching message
    /// that has already arrived (eager) or been announced (rendezvous
    /// RTS), without consuming it.
    pub fn iprobe(&self, src: Option<NodeId>, tag: Tag) -> Option<usize> {
        let st = self.inner.state.borrow();
        st.unexpected
            .iter()
            .find(|u| u.tag == tag && src.map_or(true, |s| s == u.src))
            .map(|u| u.data.len())
            .or_else(|| {
                st.unexpected_rts
                    .iter()
                    .find(|u| u.tag == tag && src.map_or(true, |s| s == u.src))
                    .map(|u| u.len)
            })
    }

    /// Drives the engine until every queued pack has been handed to the
    /// hardware (submissions drained). The calling thread does the work
    /// inline, like the original engine's flush.
    pub async fn flush_sends(&self, ctx: &ThreadCtx) {
        loop {
            if !self.pending().submissions {
                return;
            }
            self.seq_acquire(ctx).await;
            let p = self.progress_unit();
            if !p.cost.is_zero() {
                self.seq_hold(p.cost);
                ctx.compute(p.cost).await;
            } else if !p.did_work {
                ctx.yield_now().await;
            }
        }
    }

    /// `swait` on a receive handle; returns the payload.
    pub async fn swait_recv(&self, h: &RecvHandle, ctx: &ThreadCtx) -> Vec<u8> {
        self.swait(&h.req, ctx).await;
        h.take_data().expect("completed receive carries data")
    }

    /// Convenience: blocking receive.
    pub async fn recv(&self, ctx: &ThreadCtx, src: Option<NodeId>, tag: Tag) -> Vec<u8> {
        let h = self.irecv(ctx, src, tag).await;
        self.swait_recv(&h, ctx).await
    }

    /// Spins until the sequential engine's library-wide mutex is free
    /// (no-op under the PIOMAN engine).
    async fn seq_acquire(&self, ctx: &ThreadCtx) {
        if self.inner.cfg.engine != EngineKind::Sequential {
            return;
        }
        loop {
            if self.inner.sim.now() >= self.inner.seq_lock_until.get() {
                return;
            }
            self.inner.state.borrow_mut().counters.seq_lock_contentions += 1;
            ctx.compute(self.inner.cfg.seq_lock_spin).await;
        }
    }

    /// Holds the library-wide mutex for `cost` starting now.
    fn seq_hold(&self, cost: SimDuration) {
        if self.inner.cfg.engine == EngineKind::Sequential {
            self.inner
                .seq_lock_until
                .set(self.inner.sim.now() + cost);
        }
    }

    fn notify_work(&self, ctx: &ThreadCtx) {
        if self.inner.cfg.engine == EngineKind::Pioman {
            if let Some(p) = &self.inner.pioman {
                p.notify_work(ctx.current_core());
            }
        }
    }

    // ----- progress -------------------------------------------------------

    /// What the session has outstanding (drives PIOMAN's polling).
    fn pending(&self) -> DriverPending {
        let st = self.inner.state.borrow();
        DriverPending {
            submissions: !st.packs.is_empty(),
            armed: !st.posted.is_empty()
                || !st.rdv_sends.is_empty()
                || !st.rdv_recvs.is_empty()
                // Unsolicited traffic (unexpected messages, incoming RTS)
                // must be drained even with nothing posted.
                || self.inner.rails.iter().any(|r| r.rx_pending())
                || self.inner.shm.pending(),
        }
    }

    /// A trigger firing when any rail or the shm channel has input.
    fn combined_hw_trigger(&self) -> Trigger {
        let sources: Vec<Trigger> = self
            .inner
            .rails
            .iter()
            .map(|r| r.rx_trigger())
            .chain(std::iter::once(self.inner.shm.trigger()))
            .collect();
        if sources.iter().any(|t| t.is_fired()) {
            let t = Trigger::new();
            t.fire();
            return t;
        }
        if sources.len() == 1 {
            return sources.into_iter().next().expect("one source");
        }
        let combined = Trigger::new();
        for s in sources {
            let c = combined.clone();
            self.inner.sim.spawn(async move {
                s.wait().await;
                c.fire();
            });
        }
        combined
    }

    /// One unit of progress: submit one frame or poll one source.
    ///
    /// This is the callback PIOMAN executes "within tasklets in order to
    /// avoid simultaneous access to NewMadeleine data structures" (§3.2);
    /// the sequential engine calls it inline from `swait`.
    pub fn progress_unit(&self) -> Progress {
        // 1. Feed the network: pop one submission via the strategy.
        let submission = {
            let mut st = self.inner.state.borrow_mut();
            let st = &mut *st;
            self.inner.strategy.pop(&mut st.packs)
        };
        if let Some(sub) = submission {
            let cost = self.submit(sub);
            return Progress {
                cost,
                did_work: true,
            };
        }
        // 2. Poll one input source (rails and shm in rotation).
        let n_sources = self.inner.rails.len() + 1;
        for _ in 0..n_sources {
            let rotor = {
                let mut st = self.inner.state.borrow_mut();
                let r = st.poll_rotor;
                st.poll_rotor = (st.poll_rotor + 1) % n_sources;
                r
            };
            if rotor < self.inner.rails.len() {
                let rail = &self.inner.rails[rotor];
                if let Some(frame) = rail.rx_poll() {
                    let handling = self.handle_wire(frame.src, frame.payload);
                    return Progress {
                        cost: rail.poll_cost() + handling,
                        did_work: true,
                    };
                }
            } else if let Some(msg) = self.inner.shm.poll() {
                let cost = self.handle_shm(msg);
                return Progress {
                    cost,
                    did_work: true,
                };
            }
        }
        // 3. Nothing arrived: an unproductive poll if something is armed.
        if self.pending().armed {
            Progress {
                cost: self.inner.rails[0].poll_cost(),
                did_work: false,
            }
        } else {
            Progress::NONE
        }
    }

    /// Executes one submission; returns host CPU cost.
    fn submit(&self, sub: Submission) -> Progress0 {
        let sim = &self.inner.sim;
        let intra = sub.dest == self.inner.node;
        if intra {
            // Shared-memory channel: copy-in cost, completion immediate
            // (the message now lives in the channel).
            let parts = match sub.msg {
                WireMsg::Eager(p) => vec![p],
                WireMsg::Packed(ps) => ps,
                other => unreachable!("intra-node control frame {other:?}"),
            };
            let mut cost = SimDuration::ZERO;
            {
                let mut st = self.inner.state.borrow_mut();
                st.counters.shm_msgs += parts.len() as u64;
            }
            for p in parts {
                let copy = self.inner.shm.copy_cost(p.data.len());
                // The message becomes visible once its copy-in completes.
                self.inner.shm.push_after(
                    ShmMsg {
                        tag: p.tag,
                        seq: p.seq,
                        data: p.data,
                    },
                    cost + copy,
                );
                cost += copy;
            }
            let sim2 = sim.clone();
            let done = sim.now() + cost;
            sim.schedule_at(done, move |_| {
                for req in sub.reqs {
                    req.complete(&sim2);
                }
            });
            return cost;
        }
        // Pick a rail.
        let rail_idx = if self.inner.cfg.multirail && self.inner.rails.len() > 1 {
            let mut st = self.inner.state.borrow_mut();
            st.rail_rr = (st.rail_rr + 1) % self.inner.rails.len();
            st.rail_rr
        } else {
            0
        };
        let rail = &self.inner.rails[rail_idx];
        let cost = match &sub.msg {
            WireMsg::Eager(_) | WireMsg::Packed(_) => rail.submit_cost(sub.msg.app_bytes()),
            WireMsg::Rts { .. } | WireMsg::Cts { .. } | WireMsg::Credit { .. } => {
                rail.submit_cost(64)
            }
            WireMsg::RdvData { .. } => rail.params().dma_setup,
        };
        {
            let mut st = self.inner.state.borrow_mut();
            match &sub.msg {
                WireMsg::Eager(_) => {
                    st.counters.eager_frames_tx += 1;
                    st.counters.eager_msgs_tx += 1;
                }
                WireMsg::Packed(ps) => {
                    st.counters.eager_frames_tx += 1;
                    st.counters.eager_msgs_tx += ps.len() as u64;
                }
                _ => {}
            }
        }
        let wire_bytes = sub.msg.wire_bytes();
        // The frame reaches the NIC only after the submission work
        // (PIO/copy/descriptor post) completes on the submitting core.
        let info = rail.tx_after(sub.dest, wire_bytes, sub.msg, cost);
        // Eager sends complete when the NIC has consumed the buffer.
        for req in sub.reqs {
            let sim2 = sim.clone();
            sim.schedule_at(info.egress_end, move |_| req.complete(&sim2));
        }
        self.trace(|| format!("submit {}B to {}", wire_bytes, sub.dest));
        cost
    }

    /// Handles one frame from a NIC; returns handling CPU cost.
    fn handle_wire(&self, src: NodeId, msg: WireMsg) -> SimDuration {
        match msg {
            WireMsg::Eager(part) => self.deliver_eager(src, part),
            WireMsg::Packed(parts) => {
                let mut cost = SimDuration::ZERO;
                for p in parts {
                    cost += self.deliver_eager(src, p);
                }
                cost
            }
            WireMsg::Rts { tag, seq, len, rdv } => self.handle_rts(src, tag, seq, len, rdv),
            WireMsg::Cts { rdv } => self.handle_cts(rdv),
            WireMsg::Credit { bytes } => {
                let limit = self.inner.cfg.credit_bytes_per_peer as i64;
                let mut st = self.inner.state.borrow_mut();
                *st.credits.entry(src).or_insert(limit) += bytes as i64;
                SimDuration::ZERO
            }
            WireMsg::RdvData {
                rdv,
                chunk,
                chunks,
                data,
            } => self.handle_rdv_data(src, rdv, chunk, chunks, data),
        }
    }

    /// Records that `wire_bytes` of a peer's unexpected-pool allowance
    /// were freed; returns credits in batches of a quarter pool.
    fn credit_freed(&self, st: &mut NmState, src: NodeId, wire_bytes: usize) {
        if src == self.inner.node {
            return;
        }
        let owed = st.credit_owed.entry(src).or_insert(0);
        *owed += wire_bytes;
        let batch = (self.inner.cfg.credit_bytes_per_peer / 4).max(1);
        if *owed >= batch {
            let bytes = std::mem::take(owed);
            st.packs.push_back(Pack {
                dest: src,
                kind: PackKind::Credit { bytes },
            });
            st.counters.credits_returned += 1;
        }
    }

    fn note_delivery(st: &mut NmState, src: NodeId, tag: Tag, seq: u32) {
        let last = st.last_delivered.entry((src, tag)).or_insert(0);
        if seq < *last {
            st.counters.ooo_deliveries += 1;
        } else {
            *last = seq;
        }
    }

    /// Eager arrival: deliver to a posted receive (zero copy — the NIC
    /// DMA'd straight to the application buffer) or park as unexpected.
    fn deliver_eager(&self, src: NodeId, part: EagerPart) -> SimDuration {
        let mut st = self.inner.state.borrow_mut();
        let pos = st
            .posted
            .iter()
            .position(|p| p.tag == part.tag && p.src.map_or(true, |s| s == src));
        match pos {
            Some(i) => {
                let posted = st.posted.remove(i).expect("index in bounds");
                Self::note_delivery(&mut st, src, part.tag, part.seq);
                let wire = crate::msg::EAGER_HEADER_BYTES + part.data.len();
                self.credit_freed(&mut st, src, wire);
                drop(st);
                *posted.out.borrow_mut() = Some(part.data);
                posted.req.complete(&self.inner.sim);
                self.trace(|| format!("eager {} from {} matched", part.tag, src));
                SimDuration::ZERO
            }
            None => {
                st.counters.unexpected += 1;
                st.unexpected.push(UnexpectedMsg {
                    src,
                    tag: part.tag,
                    seq: part.seq,
                    data: part.data,
                });
                SimDuration::ZERO
            }
        }
    }

    /// RTS arrival: if the receive is posted, register the buffer and
    /// queue the CTS; otherwise park the RTS.
    fn handle_rts(&self, src: NodeId, tag: Tag, seq: u32, len: usize, rdv: u64) -> SimDuration {
        let mut st = self.inner.state.borrow_mut();
        let pos = st
            .posted
            .iter()
            .position(|p| p.tag == tag && p.src.map_or(true, |s| s == src));
        match pos {
            Some(i) => {
                let posted = st.posted.remove(i).expect("index in bounds");
                Self::note_delivery(&mut st, src, tag, seq);
                st.rdv_recvs.insert(
                    (src, rdv),
                    RdvRecv {
                        req: posted.req,
                        out: posted.out,
                        chunks: Vec::new(),
                        received: 0,
                    },
                );
                st.packs.push_back(Pack {
                    dest: src,
                    kind: PackKind::Cts { rdv },
                });
                drop(st);
                self.trace(|| format!("rts {tag} matched, CTS queued"));
                self.inner.registry.register(tag.0 | 1 << 63, len)
            }
            None => {
                st.counters.unexpected += 1;
                st.unexpected_rts.push(UnexpectedRts {
                    src,
                    tag,
                    seq,
                    len,
                    rdv,
                });
                SimDuration::ZERO
            }
        }
    }

    /// CTS arrival at the sender: register the send buffer and queue the
    /// zero-copy data chunks.
    fn handle_cts(&self, rdv: u64) -> SimDuration {
        let mut st = self.inner.state.borrow_mut();
        let Some(send) = st.rdv_sends.get_mut(&rdv) else {
            debug_assert!(false, "CTS for unknown rendezvous {rdv}");
            return SimDuration::ZERO;
        };
        debug_assert!(!send.cts_received, "duplicate CTS");
        send.cts_received = true;
        let data = send.data.take().expect("rendezvous payload present");
        let dest = send.dest;
        let tag = send.tag;
        let req = send.req.clone();
        st.rdv_sends.remove(&rdv);
        drop(st);

        let reg = self.inner.registry.register(tag.0, data.len());
        // Split over the rails (multirail distribution).
        let n_chunks = if self.inner.cfg.multirail && self.inner.rails.len() > 1 {
            self.inner.rails.len()
        } else {
            1
        };
        let chunk_size = data.len().div_ceil(n_chunks);
        let mut cost = reg;
        let mut last_egress = self.inner.sim.now();
        let chunks: Vec<Vec<u8>> = data.chunks(chunk_size.max(1)).map(<[u8]>::to_vec).collect();
        let total = chunks.len() as u32;
        for (i, chunk) in chunks.into_iter().enumerate() {
            let rail = &self.inner.rails[i % self.inner.rails.len()];
            cost += rail.params().dma_setup;
            let wire = crate::msg::RDV_HEADER_BYTES + chunk.len();
            // Each descriptor post takes CPU time before the DMA starts.
            let info = rail.tx_after(
                dest,
                wire,
                WireMsg::RdvData {
                    rdv,
                    chunk: i as u32,
                    chunks: total,
                    data: chunk,
                },
                cost,
            );
            last_egress = last_egress.max(info.egress_end);
        }
        // The send completes when the NIC finishes reading the buffer.
        let sim2 = self.inner.sim.clone();
        self.inner
            .sim
            .schedule_at(last_egress, move |_| req.complete(&sim2));
        self.trace(|| format!("cts {rdv}: {total} chunk(s) queued to {dest}"));
        cost
    }

    /// Rendezvous data arrival: zero-copy into the application buffer.
    fn handle_rdv_data(
        &self,
        src: NodeId,
        rdv: u64,
        chunk: u32,
        chunks: u32,
        data: Vec<u8>,
    ) -> SimDuration {
        let mut st = self.inner.state.borrow_mut();
        let Some(recv) = st.rdv_recvs.get_mut(&(src, rdv)) else {
            debug_assert!(false, "RdvData for unknown rendezvous {rdv}");
            return SimDuration::ZERO;
        };
        if recv.chunks.is_empty() {
            recv.chunks.resize(chunks as usize, None);
        }
        debug_assert!(recv.chunks[chunk as usize].is_none(), "duplicate chunk");
        recv.chunks[chunk as usize] = Some(data);
        recv.received += 1;
        if recv.received == chunks {
            let recv = st.rdv_recvs.remove(&(src, rdv)).expect("present");
            st.counters.rdv_completed += 1;
            drop(st);
            let mut assembled = Vec::new();
            for c in recv.chunks {
                assembled.extend_from_slice(&c.expect("all chunks received"));
            }
            *recv.out.borrow_mut() = Some(assembled);
            recv.req.complete(&self.inner.sim);
            self.trace(|| format!("rdv {rdv} from {src} complete"));
        }
        SimDuration::ZERO
    }

    /// Intra-node message: deliver (copy-out cost) or park as unexpected.
    fn handle_shm(&self, msg: ShmMsg) -> SimDuration {
        let own = self.inner.node;
        let mut st = self.inner.state.borrow_mut();
        let pos = st
            .posted
            .iter()
            .position(|p| p.tag == msg.tag && p.src.map_or(true, |s| s == own));
        match pos {
            Some(i) => {
                let posted = st.posted.remove(i).expect("index in bounds");
                Self::note_delivery(&mut st, own, msg.tag, msg.seq);
                drop(st);
                let cost = self.inner.shm.copy_cost(msg.data.len());
                *posted.out.borrow_mut() = Some(msg.data);
                posted.req.complete(&self.inner.sim);
                cost
            }
            None => {
                st.counters.unexpected += 1;
                st.unexpected.push(UnexpectedMsg {
                    src: own,
                    tag: msg.tag,
                    seq: msg.seq,
                    data: msg.data,
                });
                SimDuration::ZERO
            }
        }
    }

    fn trace(&self, f: impl FnOnce() -> String) {
        self.inner
            .sim
            .trace()
            .emit_with(self.inner.sim.now(), Category::Proto, f);
    }
}

/// Type alias to keep `submit`'s signature honest about what it returns.
type Progress0 = SimDuration;
