//! The per-node NewMadeleine session: public API, configuration, and gate
//! bookkeeping.
//!
//! The protocol machinery lives in sibling modules since the sharded
//! progression refactor: matching state in [`crate::matching`], the eager
//! receive path in `eager`, the rendezvous protocol in `rendezvous`, and
//! the per-transport PIOMAN drivers plus the submission engine in
//! `progress`.

use crate::config::{EngineKind, NmCounters, OffloadPolicy, SessionConfig};
use crate::handles::{RecvHandle, SendHandle};
use crate::matching::{NmState, PostedRecv};
use crate::msg::{EagerPart, ShmMsg, Tag, WireMsg};
use crate::progress::{RailDriver, ShmDriver};
use crate::rendezvous::{RdvRecv, RdvSend};
use crate::strategy::{PackKind, Strategy, Submission};
use pioman::{PiomReq, Pioman};
use pm2_fabric::{MemoryRegistry, Nic, ShmChannel};
use pm2_marcel::{Marcel, ThreadCtx};
use pm2_sim::obs::EventKind;
use pm2_sim::trace::Category;
use pm2_sim::{Sim, SimDuration};
use pm2_topo::NodeId;
use std::cell::RefCell;
use std::rc::Rc;

pub(crate) struct SessionInner {
    pub(crate) sim: Sim,
    pub(crate) marcel: Marcel,
    pub(crate) node: NodeId,
    pub(crate) rails: Vec<Rc<Nic<WireMsg>>>,
    pub(crate) shm: Rc<ShmChannel<ShmMsg>>,
    pub(crate) strategy: Rc<dyn Strategy>,
    pub(crate) pioman: Option<Pioman>,
    pub(crate) registry: MemoryRegistry,
    pub(crate) cfg: SessionConfig,
    /// Whether the ack/retransmit reliability layer is active (resolved
    /// from [`SessionConfig::reliability`] and the rails' fault plans).
    pub(crate) reliability: bool,
    /// Virtual time until which the sequential engine's library-wide
    /// mutex is held.
    pub(crate) seq_lock_until: std::cell::Cell<pm2_sim::SimTime>,
    pub(crate) state: RefCell<NmState>,
}

/// Handle to one node's communication session (cheap to clone).
#[derive(Clone)]
pub struct Session {
    pub(crate) inner: Rc<SessionInner>,
}

/// Snapshot of a session's internal queue depths, for leak checks in
/// fault-injection tests: after a quiesced run everything here should be
/// zero (no parked request, no unacked envelope, no queued pack).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionDebugState {
    /// Posted receives still waiting for a match.
    pub posted: usize,
    /// Unexpected eager messages parked in the library pool.
    pub unexpected: usize,
    /// Rendezvous announcements (RTS) with no posted receive.
    pub unexpected_rts: usize,
    /// Sender-side rendezvous still waiting for a CTS.
    pub rdv_sends: usize,
    /// Receiver-side rendezvous still assembling chunks.
    pub rdv_recvs: usize,
    /// Unacked reliability envelopes awaiting retransmit.
    pub rel_pending: usize,
    /// Packs queued for the network rails.
    pub net_packs: usize,
    /// Packs queued for the shared-memory channel.
    pub shm_packs: usize,
    /// One-sided op entries still tracked (in flight, staged, or holding
    /// an untaken get result).
    pub rma_ops: usize,
    /// One-sided ops issued to a remote target and not yet acked.
    pub rma_inflight: usize,
    /// Target-side chunked puts still assembling.
    pub rma_chunks: usize,
    /// Origin-side chunked get replies still assembling.
    pub rma_get_chunks: usize,
}

impl SessionDebugState {
    /// `true` when no request, envelope or pack is outstanding.
    pub fn is_clean(&self) -> bool {
        *self == SessionDebugState::default()
    }
}

impl Session {
    /// Creates a session for `marcel`'s node.
    ///
    /// `rails` are the node's NICs (one per physical network);
    /// `shm` is the node's intra-node channel; `pioman` must be given for
    /// [`EngineKind::Pioman`] and is ignored by the sequential engine.
    ///
    /// Under the PIOMAN engine each transport registers its own driver
    /// with the progression registry: one per rail, then one for the
    /// shared-memory channel. Multirail rails therefore progress
    /// independently — an idle core draining rail 0 never blocks rail 1.
    pub fn new(
        marcel: &Marcel,
        rails: Vec<Rc<Nic<WireMsg>>>,
        shm: Rc<ShmChannel<ShmMsg>>,
        strategy: Rc<dyn Strategy>,
        pioman: Option<Pioman>,
        cfg: SessionConfig,
    ) -> Session {
        assert!(!rails.is_empty(), "a session needs at least one rail");
        if cfg.engine == EngineKind::Pioman {
            assert!(
                pioman.is_some(),
                "the Pioman engine requires a Pioman server"
            );
        }
        let params = rails[0].params().clone();
        let n_rails = rails.len();
        // Reliability defaults to "on iff some rail can actually lose
        // frames", so fault-free runs keep the original wire format.
        let reliability = cfg
            .reliability
            .unwrap_or_else(|| rails.iter().any(|r| r.params().fault.is_active()));
        let inner = Rc::new(SessionInner {
            sim: marcel.sim().clone(),
            marcel: marcel.clone(),
            node: marcel.node(),
            rails,
            shm,
            strategy,
            pioman: pioman.clone(),
            registry: MemoryRegistry::new(params),
            cfg,
            reliability,
            seq_lock_until: std::cell::Cell::new(pm2_sim::SimTime::ZERO),
            state: RefCell::new(NmState::new(n_rails)),
        });
        let session = Session {
            inner: Rc::clone(&inner),
        };
        if let Some(p) = &pioman {
            for rail in 0..n_rails {
                p.attach_driver(Rc::new(RailDriver {
                    session: Rc::downgrade(&inner),
                    rail,
                }));
            }
            p.attach_driver(Rc::new(ShmDriver {
                session: Rc::downgrade(&inner),
            }));
        }
        // Frame arrivals nudge idle cores: the simulation-friendly
        // equivalent of the continuous busy-poll of §3.2 observing the
        // doorbell the moment it flips.
        let marcel_weak = {
            let m = inner.marcel.clone();
            let p = inner.pioman.clone();
            move || {
                m.kick_all_idle();
                // A parked dedicated progress thread is summoned by the
                // doorbell too (it blocks parked, not idle, so the kick
                // above cannot reach it). No-op unless
                // `PiomanConfig::progress_thread` spawned one.
                if let Some(p) = &p {
                    p.wake_progress_thread();
                }
            }
        };
        for rail in &inner.rails {
            let kick = marcel_weak.clone();
            rail.set_rx_callback(kick);
        }
        let kick = marcel_weak;
        inner.shm.set_callback(kick);
        session
    }

    /// The node this session runs on.
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// The engine in use.
    pub fn engine(&self) -> EngineKind {
        self.inner.cfg.engine
    }

    /// Counter snapshot.
    pub fn counters(&self) -> NmCounters {
        self.inner.state.borrow().counters
    }

    /// Whether the ack/retransmit reliability layer is active.
    pub fn reliability_enabled(&self) -> bool {
        self.inner.reliability
    }

    /// Queue-depth snapshot for post-run leak checks (see
    /// [`SessionDebugState`]).
    pub fn debug_state(&self) -> SessionDebugState {
        let st = self.inner.state.borrow();
        SessionDebugState {
            posted: st.posted.len(),
            unexpected: st.unexpected.len(),
            unexpected_rts: st.unexpected_rts.len(),
            rdv_sends: st.rdv_sends.len(),
            rdv_recvs: st.rdv_recvs.len(),
            rel_pending: st.rel_pending.len(),
            net_packs: st.net_packs.len(),
            shm_packs: st.shm_packs.len(),
            rma_ops: st.rma_ops.len(),
            rma_inflight: st.rma_inflight,
            rma_chunks: st.rma_chunks.len(),
            rma_get_chunks: st.rma_get_chunks.len(),
        }
    }

    /// The registration cache (rendezvous ablations inspect its stats).
    pub fn registry(&self) -> &MemoryRegistry {
        &self.inner.registry
    }

    /// The PIOMAN server driving this session, if the engine is
    /// [`EngineKind::Pioman`] (`None` under the sequential engine).
    /// pm2-rma uses it to create per-thread injection endpoints.
    pub fn pioman(&self) -> Option<Pioman> {
        self.inner.pioman.clone()
    }

    /// The strategy name (for benchmark reports).
    pub fn strategy_name(&self) -> &'static str {
        self.inner.strategy.name()
    }

    // ----- application API ------------------------------------------------

    /// Posts an asynchronous send of `data` to `(dest, tag)` from thread
    /// `ctx`.
    ///
    /// Only *registers* the request (a fraction of a microsecond on the
    /// calling core); the expensive submission happens later — in the
    /// background under the PIOMAN engine, inside `swait` under the
    /// sequential engine.
    pub async fn isend(
        &self,
        ctx: &ThreadCtx,
        dest: NodeId,
        tag: Tag,
        data: Vec<u8>,
    ) -> SendHandle {
        self.seq_acquire(ctx).await;
        self.seq_hold(self.inner.cfg.request_registration);
        ctx.compute(self.inner.cfg.request_registration).await;
        let req = PiomReq::new(&self.inner.sim, "send");
        let len = data.len();
        let intra = dest == self.inner.node;
        // Offload-or-inline decision (PIOMAN engine, eager messages only).
        let eager = intra || len <= self.inner.cfg.rdv_threshold;
        let inline = self.inner.cfg.engine == EngineKind::Pioman
            && eager
            && match self.inner.cfg.offload_policy {
                OffloadPolicy::Always => false,
                OffloadPolicy::Never => true,
                OffloadPolicy::Adaptive => {
                    let cost = if intra {
                        self.inner.shm.copy_cost(len)
                    } else {
                        self.inner.rails[0].submit_cost(len)
                    };
                    !(self.inner.marcel.has_idle_core() && cost >= self.inner.cfg.adaptive_min_cost)
                }
            };
        let own = self.inner.node;
        let mut rdv_id = None;
        let verify = self.inner.sim.verify();
        let vnode = verify.set_node(Some(own.0));
        verify.lock_acquire("newmad.state");
        let inline_submission = {
            let mut st = self.inner.state.borrow_mut();
            st.counters.sends += 1;
            let seq = st.send_seq.entry((dest, tag)).or_insert(0);
            let this_seq = *seq;
            *seq += 1;
            // Flow control: an eager send needs unexpected-pool credits at
            // the destination; without them it demotes to rendezvous
            // (which is zero-copy and needs no pool).
            let mut use_rdv = !intra && len > self.inner.cfg.rdv_threshold;
            if !intra && !use_rdv {
                let need = (crate::msg::EAGER_HEADER_BYTES + len) as i64;
                let limit = self.inner.cfg.credit_bytes_per_peer as i64;
                let c = st.credits.entry(dest).or_insert(limit);
                if *c < need {
                    use_rdv = true;
                    st.counters.credit_fallbacks += 1;
                } else {
                    *c -= need;
                }
            }
            if use_rdv {
                // Rendezvous: queue the RTS control frame.
                let rdv = st.next_rdv;
                st.next_rdv += 1;
                rdv_id = Some(rdv);
                st.rdv_sends.insert(
                    rdv,
                    RdvSend {
                        dest,
                        tag,
                        data: Some(data),
                        req: req.clone(),
                        cts_received: false,
                    },
                );
                st.push_pack(
                    own,
                    dest,
                    PackKind::Rts {
                        tag,
                        seq: this_seq,
                        len,
                        rdv,
                    },
                );
                st.counters.rdv_started += 1;
                None
            } else {
                let part = EagerPart {
                    tag,
                    seq: this_seq,
                    data,
                };
                if inline {
                    Some(Submission {
                        dest,
                        msg: WireMsg::Eager(part),
                        reqs: vec![req.clone()],
                    })
                } else {
                    st.push_pack(
                        own,
                        dest,
                        PackKind::Eager {
                            part,
                            req: req.clone(),
                        },
                    );
                    None
                }
            }
        };
        verify.lock_release("newmad.state");
        verify.set_node(vnode);
        self.inner.sim.obs().emit(
            self.inner.sim.now(),
            Some(own.0),
            EventKind::SendPosted {
                req: req.id(),
                dest: dest.0,
                tag: tag.0,
                len,
                rdv: rdv_id,
            },
        );
        match inline_submission {
            Some(sub) => {
                // Inline: the calling thread pays the submission here.
                let cost = self.submit(sub);
                ctx.compute(cost).await;
            }
            None => self.notify_work(ctx),
        }
        SendHandle { req }
    }

    /// Posts an asynchronous receive for `(src, tag)`; `None` matches any
    /// source.
    pub async fn irecv(&self, ctx: &ThreadCtx, src: Option<NodeId>, tag: Tag) -> RecvHandle {
        self.seq_acquire(ctx).await;
        self.seq_hold(self.inner.cfg.request_registration);
        ctx.compute(self.inner.cfg.request_registration).await;
        let req = PiomReq::new(&self.inner.sim, "recv");
        self.inner.sim.obs().emit(
            self.inner.sim.now(),
            Some(self.inner.node.0),
            EventKind::RecvPosted {
                req: req.id(),
                src: src.map(|s| s.0),
                tag: tag.0,
            },
        );
        let out: Rc<RefCell<Option<Vec<u8>>>> = Rc::new(RefCell::new(None));
        // Unexpected eager message already here? Copy it out (the §2.2
        // unexpected path: one extra copy).
        let own = self.inner.node;
        let verify = self.inner.sim.verify();
        let vnode = verify.set_node(Some(own.0));
        verify.lock_acquire("newmad.state");
        let copy_cost = {
            let mut st = self.inner.state.borrow_mut();
            st.counters.recvs += 1;
            if let Some(u) = st.take_unexpected(src, tag) {
                st.note_delivery(u.src, tag, u.seq);
                let wire = crate::msg::EAGER_HEADER_BYTES + u.data.len();
                let src_node = u.src;
                let cost = self.inner.rails[0].params().memcpy_cost(u.data.len());
                *out.borrow_mut() = Some(u.data);
                self.credit_freed(&mut st, src_node, wire);
                self.inner.sim.obs().emit(
                    self.inner.sim.now(),
                    Some(own.0),
                    EventKind::EagerDeliver {
                        req: req.id(),
                        src: src_node.0,
                        tag: tag.0,
                        unexpected: true,
                    },
                );
                Some(cost)
            } else if let Some(u) = st.take_rts(src, tag) {
                // A rendezvous was waiting for us: answer it.
                let reg = self.inner.registry.register(tag.0 | 1 << 63, u.len);
                st.rdv_recvs.insert(
                    (u.src, u.rdv),
                    RdvRecv {
                        req: req.clone(),
                        out: Rc::clone(&out),
                        chunks: Vec::new(),
                        received: 0,
                    },
                );
                st.push_pack(own, u.src, PackKind::Cts { rdv: u.rdv });
                // Handshake answered late: boost-eligible from here on.
                self.inner
                    .marcel
                    .note_req_stage(req.id(), pm2_marcel::CommStage::Handshake);
                Some(reg)
            } else {
                st.post_recv(PostedRecv {
                    src,
                    tag,
                    req: req.clone(),
                    out: Rc::clone(&out),
                });
                None
            }
        };
        verify.lock_release("newmad.state");
        verify.set_node(vnode);
        match copy_cost {
            Some(cost) => {
                ctx.compute(cost).await;
                // Eager unexpected: completed by the copy itself.
                // Rendezvous: completes when the data lands.
                if out.borrow().is_some() {
                    req.complete(&self.inner.sim);
                }
                // Either way there may be new work (CTS or credit-return
                // packs queued above).
                self.notify_work(ctx);
            }
            None => {
                // Freshly posted: arm the background engine (polling
                // interest and, if configured, the blocking watcher).
                self.notify_work(ctx);
            }
        }
        RecvHandle { req, out }
    }

    /// Waits for a request from thread `ctx`, engine-dependently.
    pub async fn swait(&self, req: &PiomReq, ctx: &ThreadCtx) {
        match self.inner.cfg.engine {
            EngineKind::Pioman => {
                self.inner
                    .pioman
                    .as_ref()
                    // lint-allow: engine kind fixed at construction
                    .expect("pioman engine")
                    .wait(req, ctx)
                    .await;
            }
            EngineKind::Sequential => {
                // The original NewMadeleine: the calling thread drives all
                // progress, never yields its core, and serializes against
                // other threads through the library-wide mutex.
                loop {
                    if req.is_complete() {
                        self.inner.sim.verify().observe_complete(req.id());
                        return;
                    }
                    self.seq_acquire(ctx).await;
                    if req.is_complete() {
                        self.inner.sim.verify().observe_complete(req.id());
                        return;
                    }
                    let p = self.progress_unit();
                    if !p.cost.is_zero() {
                        self.seq_hold(p.cost);
                        ctx.compute(p.cost).await;
                    }
                    if req.is_complete() {
                        self.inner.sim.verify().observe_complete(req.id());
                        return;
                    }
                    if !p.did_work {
                        ctx.compute(self.inner.cfg.poll_pause).await;
                    }
                }
            }
        }
    }

    /// `swait` on a send handle.
    pub async fn swait_send(&self, h: &SendHandle, ctx: &ThreadCtx) {
        self.swait(&h.req, ctx).await;
    }

    /// Waits until any of `reqs` completes; returns its index.
    pub async fn swait_any(&self, reqs: &[PiomReq], ctx: &ThreadCtx) -> usize {
        match self.inner.cfg.engine {
            EngineKind::Pioman => {
                self.inner
                    .pioman
                    .as_ref()
                    // lint-allow: engine kind fixed at construction
                    .expect("pioman engine")
                    .wait_any(reqs, ctx)
                    .await
            }
            EngineKind::Sequential => loop {
                if let Some(i) = reqs.iter().position(PiomReq::is_complete) {
                    self.inner.sim.verify().observe_complete(reqs[i].id());
                    return i;
                }
                self.seq_acquire(ctx).await;
                let p = self.progress_unit();
                if !p.cost.is_zero() {
                    self.seq_hold(p.cost);
                    ctx.compute(p.cost).await;
                }
                if !p.did_work {
                    ctx.compute(self.inner.cfg.poll_pause).await;
                }
            },
        }
    }

    /// Blocking send: `isend` + `swait`.
    pub async fn send(&self, ctx: &ThreadCtx, dest: NodeId, tag: Tag, data: Vec<u8>) {
        let h = self.isend(ctx, dest, tag, data).await;
        self.swait_send(&h, ctx).await;
    }

    /// Non-destructive probe: the payload length of a matching message
    /// that has already arrived (eager) or been announced (rendezvous
    /// RTS), without consuming it.
    pub fn iprobe(&self, src: Option<NodeId>, tag: Tag) -> Option<usize> {
        let mut st = self.inner.state.borrow_mut();
        st.probe_unexpected(src, tag)
            .or_else(|| st.probe_rts(src, tag))
    }

    /// Drives the engine until every queued pack has been handed to the
    /// hardware (submissions drained). The calling thread does the work
    /// inline, like the original engine's flush.
    pub async fn flush_sends(&self, ctx: &ThreadCtx) {
        loop {
            if !self.pending().submissions {
                return;
            }
            self.seq_acquire(ctx).await;
            let p = self.progress_unit();
            if !p.cost.is_zero() {
                self.seq_hold(p.cost);
                ctx.compute(p.cost).await;
            } else if !p.did_work {
                ctx.yield_now().await;
            }
        }
    }

    /// `swait` on a receive handle; returns the payload.
    pub async fn swait_recv(&self, h: &RecvHandle, ctx: &ThreadCtx) -> Vec<u8> {
        self.swait(&h.req, ctx).await;
        // lint-allow: completion implies delivery on the receive path
        h.take_data().expect("completed receive carries data")
    }

    /// Convenience: blocking receive.
    pub async fn recv(&self, ctx: &ThreadCtx, src: Option<NodeId>, tag: Tag) -> Vec<u8> {
        let h = self.irecv(ctx, src, tag).await;
        self.swait_recv(&h, ctx).await
    }

    /// Spins until the sequential engine's library-wide mutex is free
    /// (no-op under the PIOMAN engine).
    async fn seq_acquire(&self, ctx: &ThreadCtx) {
        if self.inner.cfg.engine != EngineKind::Sequential {
            return;
        }
        loop {
            if self.inner.sim.now() >= self.inner.seq_lock_until.get() {
                return;
            }
            self.inner.state.borrow_mut().counters.seq_lock_contentions += 1;
            ctx.compute(self.inner.cfg.seq_lock_spin).await;
        }
    }

    /// Holds the library-wide mutex for `cost` starting now.
    fn seq_hold(&self, cost: SimDuration) {
        if self.inner.cfg.engine == EngineKind::Sequential {
            self.inner.seq_lock_until.set(self.inner.sim.now() + cost);
        }
    }

    fn notify_work(&self, ctx: &ThreadCtx) {
        if self.inner.cfg.engine == EngineKind::Pioman {
            if let Some(p) = &self.inner.pioman {
                p.notify_work(ctx.current_core());
            }
        }
    }

    pub(crate) fn trace(&self, f: impl FnOnce() -> String) {
        self.inner
            .sim
            .trace()
            .emit_with(self.inner.sim.now(), Category::Proto, f);
    }
}
