//! The optimizer/scheduler layer: deciding what goes on the wire next.
//!
//! "The scheduler is only activated when a NIC becomes idle in order to
//! feed it" (§3.1) — strategies operate on the list of waiting packs and
//! produce one wire submission at a time. They are pure policies: the
//! session charges the submission cost and performs the transfer.

use crate::msg::{EagerPart, Tag, WireMsg};
use pioman::PiomReq;
use pm2_topo::NodeId;
use std::collections::VecDeque;

/// A pack waiting in the send list (Figure 3's "waiting packs" layer).
#[derive(Debug)]
pub struct Pack {
    /// Destination node.
    pub dest: NodeId,
    /// Session-wide enqueue rank (monotonically increasing). The session
    /// keeps one pack list per transport; this stamp lets the PIOMAN
    /// driver registry replay the global FIFO submission order across
    /// those lists.
    pub seq: u64,
    /// What to send.
    pub kind: PackKind,
}

/// The payload of a pending pack.
#[derive(Debug)]
pub enum PackKind {
    /// An eager message; the request completes when the NIC has consumed
    /// the buffer.
    Eager {
        /// Eager payload and matching info.
        part: EagerPart,
        /// Send request to complete at egress.
        req: PiomReq,
    },
    /// A rendezvous request-to-send control frame.
    Rts {
        /// Matching tag.
        tag: Tag,
        /// Flow sequence number.
        seq: u32,
        /// Upcoming payload length.
        len: usize,
        /// Rendezvous id.
        rdv: u64,
    },
    /// A clear-to-send control frame.
    Cts {
        /// Rendezvous id being acknowledged.
        rdv: u64,
    },
    /// A flow-control credit return.
    Credit {
        /// Unexpected-pool bytes freed at the receiver.
        bytes: usize,
    },
    /// A pre-built wire frame re-queued by the reliability layer
    /// (retransmissions and acks). Strategies pass it through verbatim:
    /// it was already scheduled once and must not be re-aggregated.
    Wire {
        /// The frame to transmit as-is.
        msg: WireMsg,
    },
}

/// A unit of work produced by a strategy: one frame for one destination.
#[derive(Debug)]
pub struct Submission {
    /// Destination node.
    pub dest: NodeId,
    /// Frame to transmit.
    pub msg: WireMsg,
    /// Send requests completed when the NIC has consumed the frame.
    pub reqs: Vec<PiomReq>,
}

/// A packet-scheduling strategy over the waiting-packs list.
pub trait Strategy {
    /// Pops the next submission, or `None` if the list is empty.
    fn pop(&self, list: &mut VecDeque<Pack>) -> Option<Submission>;
    /// Human-readable name (reported in benchmark output).
    fn name(&self) -> &'static str;
}

fn single(pack: Pack) -> Submission {
    match pack.kind {
        PackKind::Eager { part, req } => Submission {
            dest: pack.dest,
            msg: WireMsg::Eager(part),
            reqs: vec![req],
        },
        PackKind::Rts { tag, seq, len, rdv } => Submission {
            dest: pack.dest,
            msg: WireMsg::Rts { tag, seq, len, rdv },
            reqs: Vec::new(),
        },
        PackKind::Cts { rdv } => Submission {
            dest: pack.dest,
            msg: WireMsg::Cts { rdv },
            reqs: Vec::new(),
        },
        PackKind::Credit { bytes } => Submission {
            dest: pack.dest,
            msg: WireMsg::Credit { bytes },
            reqs: Vec::new(),
        },
        PackKind::Wire { msg } => Submission {
            dest: pack.dest,
            msg,
            reqs: Vec::new(),
        },
    }
}

/// Submit packs strictly in application order, one frame per pack.
#[derive(Debug, Default, Clone, Copy)]
pub struct FifoStrategy;

impl Strategy for FifoStrategy {
    fn pop(&self, list: &mut VecDeque<Pack>) -> Option<Submission> {
        list.pop_front().map(single)
    }
    fn name(&self) -> &'static str {
        "fifo"
    }
}

/// Aggregate consecutive small eager messages to the same destination into
/// one frame (NewMadeleine's flagship optimization, [2]).
///
/// Saves per-frame submission and wire overheads at the cost of slightly
/// delaying the first message. Control frames and messages to other
/// destinations act as barriers only for themselves: the scan skips over
/// them without reordering non-aggregable traffic.
#[derive(Debug, Clone, Copy)]
pub struct AggregStrategy {
    /// Stop aggregating once the combined payload reaches this size.
    pub max_bytes: usize,
    /// Never fold more than this many messages into one frame.
    pub max_msgs: usize,
}

impl Default for AggregStrategy {
    fn default() -> Self {
        AggregStrategy {
            max_bytes: 8 << 10,
            max_msgs: 16,
        }
    }
}

impl Strategy for AggregStrategy {
    fn pop(&self, list: &mut VecDeque<Pack>) -> Option<Submission> {
        let first = list.pop_front()?;
        let (dest, mut parts, mut reqs) = match first.kind {
            PackKind::Eager { part, req } => (first.dest, vec![part], vec![req]),
            _ => return Some(single(first)),
        };
        let mut bytes: usize = parts[0].data.len();
        // Gather further eligible eager packs for the same destination.
        let mut i = 0;
        while i < list.len() && parts.len() < self.max_msgs {
            let eligible = matches!(
                &list[i],
                Pack { dest: d, kind: PackKind::Eager { part, .. }, .. }
                    if *d == dest && bytes + part.data.len() <= self.max_bytes
            );
            if eligible {
                // lint-allow: index bounded by the loop condition
                let pack = list.remove(i).expect("index in bounds");
                if let PackKind::Eager { part, req } = pack.kind {
                    bytes += part.data.len();
                    parts.push(part);
                    reqs.push(req);
                }
            } else {
                i += 1;
            }
        }
        if parts.len() == 1 {
            // lint-allow: length checked on the previous line
            let part = parts.pop().expect("one part");
            Some(Submission {
                dest,
                msg: WireMsg::Eager(part),
                reqs,
            })
        } else {
            Some(Submission {
                dest,
                msg: WireMsg::Packed(parts),
                reqs,
            })
        }
    }
    fn name(&self) -> &'static str {
        "aggreg"
    }
}

/// Submit the smallest eager message first (latency-oriented reordering).
///
/// Control frames keep absolute priority: rendezvous handshakes must not
/// starve behind bulk eager traffic.
#[derive(Debug, Default, Clone, Copy)]
pub struct ShortestFirstStrategy;

impl Strategy for ShortestFirstStrategy {
    fn pop(&self, list: &mut VecDeque<Pack>) -> Option<Submission> {
        if list.is_empty() {
            return None;
        }
        // Control frames first.
        if let Some(pos) = list
            .iter()
            .position(|p| !matches!(p.kind, PackKind::Eager { .. }))
        {
            // Only jump the queue if the control frame is not already first
            // and would otherwise wait behind eager data.
            if pos == 0 {
                return list.pop_front().map(single);
            }
            // lint-allow: position returned by the iterator just above
            let pack = list.remove(pos).expect("index in bounds");
            return Some(single(pack));
        }
        // All eager: pick the smallest payload.
        let (pos, _) = list
            .iter()
            .enumerate()
            .min_by_key(|(i, p)| {
                let len = match &p.kind {
                    PackKind::Eager { part, .. } => part.data.len(),
                    _ => usize::MAX,
                };
                (len, *i)
            })
            // lint-allow: emptiness rejected at function entry
            .expect("non-empty");
        // lint-allow: position returned by the iterator just above
        let pack = list.remove(pos).expect("index in bounds");
        Some(single(pack))
    }
    fn name(&self) -> &'static str {
        "shortest-first"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm2_sim::Sim;

    fn eager(dest: usize, tag: u64, len: usize, sim: &Sim) -> Pack {
        Pack {
            dest: NodeId(dest),
            seq: tag,
            kind: PackKind::Eager {
                part: EagerPart {
                    tag: Tag(tag),
                    seq: 0,
                    data: vec![tag as u8; len],
                },
                req: PiomReq::new(sim, "send"),
            },
        }
    }

    fn rts(dest: usize, sim: &Sim) -> Pack {
        let _ = sim;
        Pack {
            dest: NodeId(dest),
            seq: 0,
            kind: PackKind::Rts {
                tag: Tag(9),
                seq: 0,
                len: 1 << 20,
                rdv: 7,
            },
        }
    }

    #[test]
    fn fifo_preserves_order() {
        let sim = Sim::new(0);
        let mut list: VecDeque<Pack> = [eager(1, 1, 10, &sim), eager(1, 2, 10, &sim)].into();
        let s = FifoStrategy;
        let a = s.pop(&mut list).unwrap();
        let b = s.pop(&mut list).unwrap();
        assert!(s.pop(&mut list).is_none());
        match (a.msg, b.msg) {
            (WireMsg::Eager(p1), WireMsg::Eager(p2)) => {
                assert_eq!(p1.tag, Tag(1));
                assert_eq!(p2.tag, Tag(2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn aggreg_merges_same_destination() {
        let sim = Sim::new(0);
        let mut list: VecDeque<Pack> = [
            eager(1, 1, 100, &sim),
            eager(2, 2, 100, &sim), // other destination: skipped, not merged
            eager(1, 3, 100, &sim),
        ]
        .into();
        let s = AggregStrategy::default();
        let first = s.pop(&mut list).unwrap();
        match &first.msg {
            WireMsg::Packed(parts) => {
                assert_eq!(parts.len(), 2);
                assert_eq!(parts[0].tag, Tag(1));
                assert_eq!(parts[1].tag, Tag(3));
            }
            other => panic!("expected Packed, got {other:?}"),
        }
        assert_eq!(first.reqs.len(), 2);
        let second = s.pop(&mut list).unwrap();
        assert_eq!(second.dest, NodeId(2));
    }

    #[test]
    fn aggreg_respects_byte_limit() {
        let sim = Sim::new(0);
        let mut list: VecDeque<Pack> = [
            eager(1, 1, 6 << 10, &sim),
            eager(1, 2, 6 << 10, &sim), // 12K > default 8K limit
        ]
        .into();
        let s = AggregStrategy::default();
        let first = s.pop(&mut list).unwrap();
        assert!(matches!(first.msg, WireMsg::Eager(_)));
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn aggreg_passes_control_frames_through() {
        let sim = Sim::new(0);
        let mut list: VecDeque<Pack> = [rts(1, &sim), eager(1, 1, 10, &sim)].into();
        let s = AggregStrategy::default();
        assert!(matches!(s.pop(&mut list).unwrap().msg, WireMsg::Rts { .. }));
    }

    #[test]
    fn shortest_first_picks_smallest_and_prioritizes_control() {
        let sim = Sim::new(0);
        let mut list: VecDeque<Pack> =
            [eager(1, 1, 500, &sim), eager(1, 2, 50, &sim), rts(1, &sim)].into();
        let s = ShortestFirstStrategy;
        assert!(matches!(s.pop(&mut list).unwrap().msg, WireMsg::Rts { .. }));
        match s.pop(&mut list).unwrap().msg {
            WireMsg::Eager(p) => assert_eq!(p.tag, Tag(2)),
            other => panic!("unexpected {other:?}"),
        }
        match s.pop(&mut list).unwrap().msg {
            WireMsg::Eager(p) => assert_eq!(p.tag, Tag(1)),
            other => panic!("unexpected {other:?}"),
        }
    }
}
