//! Application-facing request handles returned by `isend`/`irecv`.

use pioman::PiomReq;
use std::cell::RefCell;
use std::rc::Rc;

/// Handle of an asynchronous send.
#[derive(Clone, Debug)]
pub struct SendHandle {
    pub(crate) req: PiomReq,
}

impl SendHandle {
    /// The underlying request.
    pub fn req(&self) -> &PiomReq {
        &self.req
    }
    /// True once the send buffer is reusable.
    pub fn is_complete(&self) -> bool {
        self.req.is_complete()
    }
}

/// Handle of an asynchronous receive.
#[derive(Clone, Debug)]
pub struct RecvHandle {
    pub(crate) req: PiomReq,
    pub(crate) out: Rc<RefCell<Option<Vec<u8>>>>,
}

impl RecvHandle {
    /// The underlying request.
    pub fn req(&self) -> &PiomReq {
        &self.req
    }
    /// True once the message is in the application buffer.
    pub fn is_complete(&self) -> bool {
        self.req.is_complete()
    }
    /// Takes the received payload (after completion).
    pub fn take_data(&self) -> Option<Vec<u8>> {
        self.out.borrow_mut().take()
    }
}
