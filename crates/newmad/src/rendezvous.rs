//! The rendezvous protocol (§2.3): RTS → match + register → CTS →
//! zero-copy data chunks over the rails (extracted from the session
//! monolith).

use crate::matching::UnexpectedRts;
use crate::msg::{Tag, WireMsg};
use crate::session::Session;
use crate::strategy::PackKind;
use pioman::PiomReq;
use pm2_marcel::CommStage;
use pm2_sim::obs::EventKind;
use pm2_sim::SimDuration;
use pm2_topo::NodeId;
use std::cell::RefCell;
use std::rc::Rc;

/// Sender-side record of an in-flight rendezvous (RTS sent, payload
/// parked until the CTS arrives).
pub(crate) struct RdvSend {
    pub(crate) dest: NodeId,
    pub(crate) tag: Tag,
    pub(crate) data: Option<Vec<u8>>,
    pub(crate) req: PiomReq,
    pub(crate) cts_received: bool,
}

/// Receiver-side record of an in-flight rendezvous (CTS sent, chunks
/// being assembled).
pub(crate) struct RdvRecv {
    pub(crate) req: PiomReq,
    pub(crate) out: Rc<RefCell<Option<Vec<u8>>>>,
    pub(crate) chunks: Vec<Option<Vec<u8>>>,
    pub(crate) received: u32,
}

impl Session {
    /// RTS arrival: if the receive is posted, register the buffer and
    /// queue the CTS; otherwise park the RTS.
    pub(crate) fn handle_rts(
        &self,
        src: NodeId,
        tag: Tag,
        seq: u32,
        len: usize,
        rdv: u64,
    ) -> SimDuration {
        let mut st = self.inner.state.borrow_mut();
        // A duplicate RTS (late-delivered copy of a handshake we already
        // answered or parked) must not spawn a second transfer.
        if st.rdv_recvs.contains_key(&(src, rdv)) || st.rts_parked(src, rdv) {
            st.counters.dup_suppressed += 1;
            return SimDuration::ZERO;
        }
        let matched = st.take_posted(src, tag);
        self.inner.sim.obs().emit(
            self.inner.sim.now(),
            Some(self.inner.node.0),
            EventKind::RtsRx {
                rdv,
                src: src.0,
                matched: matched.is_some(),
            },
        );
        match matched {
            Some(posted) => {
                let req_id = posted.req.id();
                st.note_delivery(src, tag, seq);
                st.rdv_recvs.insert(
                    (src, rdv),
                    RdvRecv {
                        req: posted.req,
                        out: posted.out,
                        chunks: Vec::new(),
                        received: 0,
                    },
                );
                st.push_pack(self.inner.node, src, PackKind::Cts { rdv });
                drop(st);
                // The receive's handshake is under way: a waiting thread
                // becomes boost-eligible for comm-aware scheduling.
                self.inner
                    .marcel
                    .note_req_stage(req_id, CommStage::Handshake);
                self.trace(|| format!("rts {tag} matched, CTS queued"));
                self.inner.registry.register(tag.0 | 1 << 63, len)
            }
            None => {
                st.park_rts(UnexpectedRts {
                    src,
                    tag,
                    seq,
                    len,
                    rdv,
                });
                SimDuration::ZERO
            }
        }
    }

    /// CTS arrival at the sender: register the send buffer and queue the
    /// zero-copy data chunks.
    pub(crate) fn handle_cts(&self, rdv: u64) -> SimDuration {
        let mut st = self.inner.state.borrow_mut();
        let Some(send) = st.rdv_sends.get_mut(&rdv) else {
            // Unknown rendezvous: a stale CTS (e.g. for an envelope we
            // abandoned after the retry budget). Ignore it gracefully —
            // under a lossy fabric this is survivable, not a bug.
            drop(st);
            self.trace(|| format!("stale CTS for rendezvous {rdv} ignored"));
            return SimDuration::ZERO;
        };
        if send.cts_received {
            // Duplicate CTS that slipped past the envelope window: the
            // transfer is already in flight, do not restart it.
            st.counters.dup_suppressed += 1;
            return SimDuration::ZERO;
        }
        send.cts_received = true;
        // lint-allow: cts_received guard above makes a second take impossible
        let data = send.data.take().expect("rendezvous payload present");
        let dest = send.dest;
        let tag = send.tag;
        let req = send.req.clone();
        st.rdv_sends.remove(&rdv);
        drop(st);
        self.inner.sim.obs().emit(
            self.inner.sim.now(),
            Some(self.inner.node.0),
            EventKind::CtsRx { rdv, req: req.id() },
        );
        // Payload about to move: the send is near completion.
        self.inner
            .marcel
            .note_req_stage(req.id(), CommStage::Transfer);

        let reg = self.inner.registry.register(tag.0, data.len());
        // Split over the rails (multirail distribution).
        let n_chunks = if self.inner.cfg.multirail && self.inner.rails.len() > 1 {
            self.inner.rails.len()
        } else {
            1
        };
        let chunk_size = data.len().div_ceil(n_chunks);
        let mut cost = reg;
        let mut last_egress = self.inner.sim.now();
        let chunks: Vec<Vec<u8>> = data.chunks(chunk_size.max(1)).map(<[u8]>::to_vec).collect();
        let total = chunks.len() as u32;
        for (i, chunk) in chunks.into_iter().enumerate() {
            let rail = &self.inner.rails[i % self.inner.rails.len()];
            cost += rail.params().dma_setup;
            self.inner.sim.obs().emit(
                self.inner.sim.now(),
                Some(self.inner.node.0),
                EventKind::DmaTx {
                    rdv,
                    dest: dest.0,
                    chunk: i as u32,
                    len: chunk.len(),
                },
            );
            let msg = WireMsg::RdvData {
                rdv,
                chunk: i as u32,
                chunks: total,
                data: chunk,
            };
            // Under the reliability layer each chunk travels in its own
            // envelope; the retained clone backs its retransmit timer.
            let (msg, rel) = if self.inner.reliability {
                let (msg, rel) = self.wrap_rel(dest, msg);
                (msg, Some(rel))
            } else {
                (msg, None)
            };
            let wire = msg.wire_bytes();
            let retained = rel.map(|_| msg.clone());
            // Each descriptor post takes CPU time before the DMA starts.
            let info = rail.tx_after(dest, wire, msg, cost);
            if let (Some(rel), Some(retained)) = (rel, retained) {
                self.track_rel(dest, rel, retained, info.arrival);
            }
            last_egress = last_egress.max(info.egress_end);
        }
        // The send completes when the NIC finishes reading the buffer.
        let sim2 = self.inner.sim.clone();
        self.inner
            .sim
            .schedule_at(last_egress, move |_| req.complete(&sim2));
        self.trace(|| format!("cts {rdv}: {total} chunk(s) queued to {dest}"));
        cost
    }

    /// Rendezvous data arrival: zero-copy into the application buffer.
    pub(crate) fn handle_rdv_data(
        &self,
        src: NodeId,
        rdv: u64,
        chunk: u32,
        chunks: u32,
        data: Vec<u8>,
    ) -> SimDuration {
        let mut st = self.inner.state.borrow_mut();
        let Some(recv) = st.rdv_recvs.get_mut(&(src, rdv)) else {
            // Data for a rendezvous we no longer track: a late retransmit
            // that raced the completing original. Safe to drop — the
            // payload was already assembled and delivered.
            drop(st);
            self.trace(|| format!("stale RdvData for rendezvous {rdv} ignored"));
            return SimDuration::ZERO;
        };
        if recv.chunks.is_empty() {
            recv.chunks.resize(chunks as usize, None);
        }
        if recv.chunks[chunk as usize].is_some() {
            // Duplicate chunk delivery (retransmit raced the ack).
            st.counters.dup_suppressed += 1;
            return SimDuration::ZERO;
        }
        self.inner.sim.obs().emit(
            self.inner.sim.now(),
            Some(self.inner.node.0),
            EventKind::DmaRx {
                rdv,
                src: src.0,
                chunk,
                len: data.len(),
            },
        );
        recv.chunks[chunk as usize] = Some(data);
        recv.received += 1;
        // Chunks are landing: the receive is near completion. (Marcel's
        // signal table is a separate cell, so noting while `st` is
        // borrowed is fine.)
        self.inner
            .marcel
            .note_req_stage(recv.req.id(), CommStage::Transfer);
        if recv.received == chunks {
            // lint-allow: the entry was borrowed mutably just above
            let recv = st.rdv_recvs.remove(&(src, rdv)).expect("present");
            st.counters.rdv_completed += 1;
            drop(st);
            let mut assembled = Vec::new();
            for c in recv.chunks {
                // lint-allow: received == chunks ⇒ every slot filled
                assembled.extend_from_slice(&c.expect("all chunks received"));
            }
            *recv.out.borrow_mut() = Some(assembled);
            self.inner.sim.obs().emit(
                self.inner.sim.now(),
                Some(self.inner.node.0),
                EventKind::RdvComplete {
                    rdv,
                    req: recv.req.id(),
                    src: src.0,
                },
            );
            recv.req.complete(&self.inner.sim);
            self.trace(|| format!("rdv {rdv} from {src} complete"));
        }
        SimDuration::ZERO
    }
}
