//! The ack/retransmit reliability layer for lossy fabrics.
//!
//! The paper's engine assumes a reliable Myrinet/MX fabric; this module is
//! what lets the same protocol stack survive an *unreliable* one (the
//! [`FaultPlan`](pm2_fabric::FaultPlan) injection modes). The design folds
//! reliability into the progression engine, as production engines do:
//!
//! * every inter-node frame — eager data, RTS, CTS, credit returns and
//!   rendezvous chunks alike — is wrapped in a [`WireMsg::Rel`] envelope
//!   carrying a per-(sender, destination) sequence number;
//! * the receiver acks every envelope (fresh or duplicate) and suppresses
//!   duplicates through a [`SeqWindow`](crate::matching::SeqWindow) before
//!   they can reach matching, so delivery stays exactly-once;
//! * the sender keeps a clone of each unacked envelope and retransmits it
//!   on a timer, spacing retries by [`pm2_sync::exp_factor`] exponential
//!   backoff, until the ack arrives or the retry budget
//!   ([`SessionConfig::max_retries`](crate::SessionConfig::max_retries))
//!   is exhausted;
//! * retransmissions re-enter the normal submission path as
//!   [`PackKind::Wire`] packs, so they are scheduled, charged and counted
//!   like any other frame, under either engine.
//!
//! The rendezvous handshake needs no dedicated retry state machine on top
//! of this: a lost RTS or CTS is just a lost envelope, re-issued by the
//! same timer (counted separately in
//! [`NmCounters::rts_reissues`](crate::NmCounters::rts_reissues)), and a
//! duplicated CTS dies in the receive window before it could restart the
//! transfer. Acks themselves are never wrapped — a lost ack is recovered
//! by the data retransmit, which the receiver re-acks.
//!
//! With the layer disabled (the default on fault-free fabrics) none of
//! this code runs and the wire format is byte-identical to the original.

use crate::matching::NmState;
use crate::msg::WireMsg;
use crate::session::Session;
use crate::strategy::PackKind;
use pioman::{PiomReq, ReqError};
use pm2_sim::obs::EventKind;
use pm2_sim::{SimDuration, SimTime, TimerHandle};
use pm2_topo::NodeId;
use std::rc::Rc;

/// Sender-side record of one unacknowledged envelope.
pub(crate) struct RelPending {
    /// The wrapped frame, kept for retransmission.
    pub(crate) msg: WireMsg,
    /// Retransmissions performed so far.
    pub(crate) attempts: u32,
    /// The pending retransmit timer (cancelled by the ack).
    pub(crate) timer: TimerHandle,
}

impl Session {
    /// Wraps `msg` in a reliability envelope bound for `dest`, allocating
    /// the next sequence number of that flow. The caller must transmit
    /// the returned frame and then [`Session::track_rel`] it with the
    /// frame's nominal arrival time.
    pub(crate) fn wrap_rel(&self, dest: NodeId, msg: WireMsg) -> (WireMsg, u64) {
        let mut st = self.inner.state.borrow_mut();
        let next = st.rel_next_tx.entry(dest).or_insert(0);
        let rel = *next;
        *next += 1;
        (
            WireMsg::Rel {
                rel,
                inner: Box::new(msg),
            },
            rel,
        )
    }

    /// Registers a transmitted envelope for retransmission: the first
    /// timeout fires one base RTO after the frame's nominal `arrival`, so
    /// queueing delays on the egress don't cause spurious retries.
    pub(crate) fn track_rel(&self, dest: NodeId, rel: u64, msg: WireMsg, arrival: SimTime) {
        let fire_at = arrival + self.rel_rto(&msg);
        let timer = self.schedule_rel_timeout(dest, rel, fire_at);
        self.inner.state.borrow_mut().rel_pending.insert(
            (dest, rel),
            RelPending {
                msg,
                attempts: 0,
                timer,
            },
        );
    }

    /// Base retransmit timeout for one envelope: the configured floor
    /// plus a round trip of the frame's own wire time.
    fn rel_rto(&self, msg: &WireMsg) -> SimDuration {
        let wire = self.inner.rails[0].params().wire_time(msg.wire_bytes());
        self.inner.cfg.retransmit_timeout + wire + wire
    }

    fn schedule_rel_timeout(&self, dest: NodeId, rel: u64, at: SimTime) -> TimerHandle {
        let weak = Rc::downgrade(&self.inner);
        self.inner.sim.schedule_at(at, move |_| {
            if let Some(inner) = weak.upgrade() {
                Session { inner }.rel_timeout(dest, rel);
            }
        })
    }

    /// Ack timeout: re-queue the envelope (or abandon it once the retry
    /// budget is spent) and re-arm the timer with exponential backoff.
    fn rel_timeout(&self, dest: NodeId, rel: u64) {
        let own = self.inner.node;
        let retransmit = {
            let mut st = self.inner.state.borrow_mut();
            let Some(p) = st.rel_pending.get_mut(&(dest, rel)) else {
                return; // acked between fire and dispatch
            };
            p.attempts += 1;
            if p.attempts > self.inner.cfg.max_retries {
                let p = st
                    .rel_pending
                    .remove(&(dest, rel))
                    // lint-allow: key held by the get_mut above, same borrow
                    .expect("pending present");
                st.counters.retries_exhausted += 1;
                self.inner.sim.obs().emit(
                    self.inner.sim.now(),
                    Some(own.0),
                    EventKind::RetryExhausted { rel, dest: dest.0 },
                );
                let failed = self.rel_abandon(&mut st, dest, &p.msg);
                drop(st);
                if let Some(req) = failed {
                    // The rail is presumed dead for this flow: surface a
                    // typed completion error so `swait` wakes instead of
                    // spinning forever on a request that can never finish.
                    req.fail(&self.inner.sim, ReqError::RetriesExhausted);
                    self.trace(|| format!("rel {rel} to {dest} exhausted, request failed"));
                }
                false
            } else {
                let attempts = p.attempts;
                let msg = p.msg.clone();
                let rto = self.rel_rto(&msg);
                let delay = SimDuration::from_nanos(
                    rto.as_nanos()
                        .saturating_mul(pm2_sync::exp_factor(attempts, 6)),
                );
                st.counters.retransmits += 1;
                self.inner.sim.obs().emit(
                    self.inner.sim.now(),
                    Some(own.0),
                    EventKind::Retransmit {
                        rel,
                        dest: dest.0,
                        attempt: attempts,
                    },
                );
                if let WireMsg::Rel { inner, .. } = &msg {
                    if matches!(**inner, WireMsg::Rts { .. } | WireMsg::Cts { .. }) {
                        st.counters.rts_reissues += 1;
                    }
                }
                st.push_pack(own, dest, PackKind::Wire { msg });
                drop(st);
                let timer = self.schedule_rel_timeout(dest, rel, self.inner.sim.now() + delay);
                let mut st = self.inner.state.borrow_mut();
                if let Some(p) = st.rel_pending.get_mut(&(dest, rel)) {
                    p.timer = timer;
                } else {
                    timer.cancel();
                }
                true
            }
        };
        if retransmit {
            self.trace(|| format!("retransmit rel {rel} to {dest}"));
            // Nudge the engine the same way a frame arrival would: the
            // retransmit pack must not wait for the next app call.
            if let Some(p) = &self.inner.pioman {
                p.notify_work(None);
            }
            self.inner.marcel.kick_all_idle();
        }
    }

    /// Maps an abandoned envelope to the local request still waiting on
    /// it, cleaning up the protocol state that request owned. Returns the
    /// request to fail (after the state borrow is released).
    ///
    /// Eager data, rendezvous chunks and credit returns have no local
    /// waiter — the sender's request completes at NIC egress — so their
    /// exhaustion only shows up in the counters (honest limit: the peer's
    /// receive stalls until its own timeout machinery gives up).
    fn rel_abandon(&self, st: &mut NmState, dest: NodeId, msg: &WireMsg) -> Option<PiomReq> {
        let WireMsg::Rel { inner, .. } = msg else {
            return None; // only envelopes are tracked
        };
        match &**inner {
            WireMsg::Rts { rdv, .. } => st.rdv_sends.remove(rdv).map(|s| s.req),
            WireMsg::Cts { rdv } => st.rdv_recvs.remove(&(dest, *rdv)).map(|r| r.req),
            WireMsg::RmaPut { op, .. }
            | WireMsg::RmaPutData { op, .. }
            | WireMsg::RmaGet { op, .. }
            | WireMsg::RmaAcc { op, .. } => {
                if st.rma_ops.get(op).is_some_and(|o| !o.req.is_complete()) {
                    let entry = st.rma_ops.remove(op)?;
                    st.rma_inflight -= 1;
                    st.rma_get_chunks.remove(op);
                    Some(entry.req)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Envelope arrival: ack it (always — a duplicate means our previous
    /// ack was lost) and dispatch the inner frame if it is fresh.
    pub(crate) fn handle_rel(&self, src: NodeId, rel: u64, inner: WireMsg) -> SimDuration {
        let own = self.inner.node;
        let fresh = {
            let mut st = self.inner.state.borrow_mut();
            let fresh = st.rel_rx.entry(src).or_default().insert(rel);
            st.push_pack(
                own,
                src,
                PackKind::Wire {
                    msg: WireMsg::Ack { rel },
                },
            );
            st.counters.acks_sent += 1;
            if !fresh {
                st.counters.dup_suppressed += 1;
                self.inner.sim.obs().emit(
                    self.inner.sim.now(),
                    Some(own.0),
                    EventKind::DupSuppressed { rel, src: src.0 },
                );
            }
            fresh
        };
        if fresh {
            self.handle_wire(src, inner)
        } else {
            self.trace(|| format!("dup rel {rel} from {src} suppressed"));
            SimDuration::ZERO
        }
    }

    /// Ack arrival: retire the pending envelope and cancel its timer.
    pub(crate) fn handle_ack(&self, src: NodeId, rel: u64) -> SimDuration {
        let mut st = self.inner.state.borrow_mut();
        if let Some(p) = st.rel_pending.remove(&(src, rel)) {
            p.timer.cancel();
        }
        // A late ack for an abandoned envelope is silently ignored.
        SimDuration::ZERO
    }
}
