//! One-sided (RMA) operations: matching-free window access with
//! passive-target completion.
//!
//! The two-sided paths (`eager`, `rendezvous`) require the target to post
//! a receive; this module implements the complementary one-sided model:
//! a node exposes a *window* of memory once, and remote origins then
//! `put`/`get`/`accumulate` against it without the target ever calling
//! into the library again. Every mutation happens inside the target's
//! `handle_wire` dispatch — i.e. on whichever core PIOMAN's progression
//! happens to run (an idle core, the timer, the blocking-call watcher, or
//! a dedicated progress thread) — which is exactly the paper's
//! "progress-for-all" property applied to one-sided traffic.
//!
//! Wire protocol, by op size:
//!
//! * small puts and accumulates travel as single eager-class frames
//!   ([`WireMsg::RmaPut`]/[`WireMsg::RmaAcc`]);
//! * large puts are chunked into [`WireMsg::RmaPutData`] DMA frames —
//!   rendezvous-style, but with *no RTS/CTS handshake*: the window was
//!   registered at creation, so chunks flow immediately;
//! * every op is answered by the target ([`WireMsg::RmaAck`], or
//!   [`WireMsg::RmaGetReply`] carrying the data), and that answer is what
//!   completes the origin's request.
//!
//! Reliability rides for free: RMA frames enter the same submission path
//! as everything else, so on lossy fabrics they are wrapped in
//! [`WireMsg::Rel`] envelopes, retransmitted on timeout, and — crucially —
//! duplicate-suppressed *before* they reach `handle_wire`. A window is
//! therefore mutated at most once per op (exactly-once accumulate), no
//! matter how many times the frame was retransmitted.

use crate::matching::NmState;
use crate::msg::WireMsg;
use crate::session::Session;
use crate::strategy::PackKind;
use pioman::PiomReq;
use pm2_marcel::{CommStage, ThreadCtx};
use pm2_sim::obs::EventKind;
use pm2_sim::SimDuration;
use pm2_topo::NodeId;

/// Registry-id namespace for window registrations, disjoint from the
/// rendezvous namespaces (`tag` and `tag | 1<<63`).
const RMA_WIN_REG_BASE: u64 = 1 << 62;

/// Chunk size of large puts and get replies (each chunk is one DMA
/// descriptor). Public so pm2-model's conformance layer can derive the
/// expected chunk counts from the same constant the wire code uses.
pub const RMA_CHUNK: usize = 64 << 10;

/// The kind of one-sided operation, for staging and events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmaOpKind {
    /// Store bytes into the target window.
    Put,
    /// Read bytes from the target window.
    Get,
    /// Byte-wise wrapping-add into the target window.
    Acc,
}

/// An op staged by the application but not yet injected into the pack
/// lists (the per-thread injection endpoint does that).
pub(crate) enum StagedOp {
    Put {
        win: u64,
        offset: usize,
        data: Vec<u8>,
    },
    Get {
        win: u64,
        offset: usize,
        len: usize,
    },
    Acc {
        win: u64,
        offset: usize,
        data: Vec<u8>,
    },
}

/// Origin-side record of one one-sided op.
pub(crate) struct RmaOp {
    pub(crate) target: NodeId,
    pub(crate) req: PiomReq,
    /// Frames not yet queued (taken by [`Session::rma_inject`]).
    pub(crate) staged: Option<StagedOp>,
    /// A completed get's payload, until the application takes it.
    pub(crate) result: Option<Vec<u8>>,
}

/// Target-side assembly state of one chunked put.
pub(crate) struct RmaChunks {
    pub(crate) seen: Vec<bool>,
    pub(crate) received: u32,
}

/// Origin-side assembly state of one chunked get reply. The occupied
/// slots double as the duplicate-suppression bitmap, exactly like the put
/// path's [`RmaChunks::seen`].
pub(crate) struct RmaGetAssembly {
    pub(crate) parts: Vec<Option<Vec<u8>>>,
    pub(crate) received: u32,
}

impl Session {
    // ----- windows --------------------------------------------------------

    /// Exposes `len` bytes (zero-initialised) as window `win` on this
    /// node, registering the memory with the NIC once so one-sided ops
    /// need no per-op handshake. Returns the registration cost for the
    /// caller to charge.
    pub fn rma_window_create(&self, win: u64, len: usize) -> SimDuration {
        let reg = self.inner.registry.register(win | RMA_WIN_REG_BASE, len);
        let verify = self.inner.sim.verify();
        let vnode = verify.set_node(Some(self.inner.node.0));
        verify.lock_acquire("newmad.state");
        {
            let mut st = self.inner.state.borrow_mut();
            let prev = st.rma_windows.insert(win, vec![0; len]);
            assert!(prev.is_none(), "window {win} already exists");
        }
        verify.lock_release("newmad.state");
        verify.set_node(vnode);
        reg
    }

    /// Reads `len` bytes at `offset` from local window `win` (test and
    /// target-side verification helper; free of simulated cost).
    pub fn rma_window_read(&self, win: u64, offset: usize, len: usize) -> Vec<u8> {
        let st = self.inner.state.borrow();
        // lint-allow: local test/verification helper, caller owns the window
        let w = st.rma_windows.get(&win).expect("window exists");
        w[offset..offset + len].to_vec()
    }

    // ----- origin: staging ------------------------------------------------

    /// Stages a one-sided put of `data` into `(target, win)` at `offset`;
    /// returns the op id. Self-target ops apply immediately; remote ops
    /// wait for [`Session::rma_inject`] (the injection endpoint calls it).
    pub fn rma_stage_put(&self, target: NodeId, win: u64, offset: usize, data: Vec<u8>) -> u64 {
        self.rma_stage(target, RmaOpKind::Put, win, offset, data.len(), Some(data))
    }

    /// Stages a one-sided read of `len` bytes from `(target, win)` at
    /// `offset`; the payload is retrieved with [`Session::rma_take_result`]
    /// after the op completes.
    pub fn rma_stage_get(&self, target: NodeId, win: u64, offset: usize, len: usize) -> u64 {
        self.rma_stage(target, RmaOpKind::Get, win, offset, len, None)
    }

    /// Stages a one-sided byte-wise wrapping-add of `data` into
    /// `(target, win)` at `offset` (`WrapAdd8`).
    pub fn rma_stage_acc(&self, target: NodeId, win: u64, offset: usize, data: Vec<u8>) -> u64 {
        self.rma_stage(target, RmaOpKind::Acc, win, offset, data.len(), Some(data))
    }

    fn rma_stage(
        &self,
        target: NodeId,
        kind: RmaOpKind,
        win: u64,
        offset: usize,
        len: usize,
        data: Option<Vec<u8>>,
    ) -> u64 {
        let own = self.inner.node;
        let req = PiomReq::new(&self.inner.sim, "rma");
        let verify = self.inner.sim.verify();
        let vnode = verify.set_node(Some(own.0));
        verify.lock_acquire("newmad.state");
        let op = {
            let mut st = self.inner.state.borrow_mut();
            let op = st.next_rma_op;
            st.next_rma_op += 1;
            match kind {
                RmaOpKind::Put => st.counters.rma_puts += 1,
                RmaOpKind::Get => st.counters.rma_gets += 1,
                RmaOpKind::Acc => st.counters.rma_accs += 1,
            }
            let obs = self.inner.sim.obs();
            obs.emit(
                self.inner.sim.now(),
                Some(own.0),
                EventKind::RmaIssue {
                    op,
                    dest: target.0,
                    win,
                    bytes: len,
                },
            );
            if target == own {
                // Self-target: a plain store through shared memory — apply
                // now, no wire traffic, completion immediate.
                let result = Self::rma_apply_local(&mut st, kind, win, offset, len, data);
                obs.emit(
                    self.inner.sim.now(),
                    Some(own.0),
                    EventKind::RmaApply {
                        op,
                        src: own.0,
                        win,
                        bytes: len,
                    },
                );
                st.rma_ops.insert(
                    op,
                    RmaOp {
                        target,
                        req: req.clone(),
                        staged: None,
                        result,
                    },
                );
            } else {
                let staged = match kind {
                    RmaOpKind::Put => StagedOp::Put {
                        win,
                        offset,
                        // lint-allow: staging invariant, caller passed data
                        data: data.expect("put carries data"),
                    },
                    RmaOpKind::Get => StagedOp::Get { win, offset, len },
                    RmaOpKind::Acc => StagedOp::Acc {
                        win,
                        offset,
                        // lint-allow: staging invariant, caller passed data
                        data: data.expect("accumulate carries data"),
                    },
                };
                st.rma_ops.insert(
                    op,
                    RmaOp {
                        target,
                        req: req.clone(),
                        staged: Some(staged),
                        result: None,
                    },
                );
                st.rma_inflight += 1;
            }
            op
        };
        verify.lock_release("newmad.state");
        verify.set_node(vnode);
        if target == own {
            req.complete(&self.inner.sim);
        }
        op
    }

    fn rma_apply_local(
        st: &mut NmState,
        kind: RmaOpKind,
        win: u64,
        offset: usize,
        len: usize,
        data: Option<Vec<u8>>,
    ) -> Option<Vec<u8>> {
        // lint-allow: self-target op, the local application owns the window
        let w = st.rma_windows.get_mut(&win).expect("window exists");
        let result = match kind {
            RmaOpKind::Put => {
                // lint-allow: staging invariant, caller passed data
                let data = data.expect("put carries data");
                w[offset..offset + data.len()].copy_from_slice(&data);
                None
            }
            RmaOpKind::Get => Some(w[offset..offset + len].to_vec()),
            RmaOpKind::Acc => {
                // lint-allow: staging invariant, caller passed data
                let data = data.expect("accumulate carries data");
                for (wb, db) in w[offset..offset + data.len()].iter_mut().zip(&data) {
                    *wb = wb.wrapping_add(*db);
                }
                None
            }
        };
        st.counters.rma_applied += 1;
        result
    }

    // ----- origin: injection and completion -------------------------------

    /// Queues op `op`'s frames onto the network pack lists (called by the
    /// per-thread injection endpoint under PIOMAN progression). Idempotent
    /// once the frames are queued. Returns the descriptor-build cost.
    pub fn rma_inject(&self, op: u64) -> SimDuration {
        let own = self.inner.node;
        let verify = self.inner.sim.verify();
        let vnode = verify.set_node(Some(own.0));
        verify.lock_acquire("newmad.state");
        let injected = {
            let mut st = self.inner.state.borrow_mut();
            match st.rma_ops.get_mut(&op).and_then(|o| {
                let t = o.target;
                let r = o.req.id();
                o.staged.take().map(|s| (t, r, s))
            }) {
                None => None,
                Some((target, req_id, staged)) => {
                    match staged {
                        StagedOp::Put { win, offset, data } => {
                            if data.len() <= self.inner.cfg.rdv_threshold {
                                st.push_pack(
                                    own,
                                    target,
                                    PackKind::Wire {
                                        msg: WireMsg::RmaPut {
                                            win,
                                            offset,
                                            op,
                                            data,
                                        },
                                    },
                                );
                            } else {
                                // Rendezvous-style DMA, minus the handshake.
                                let pieces: Vec<Vec<u8>> =
                                    data.chunks(RMA_CHUNK).map(<[u8]>::to_vec).collect();
                                let total = pieces.len() as u32;
                                for (i, piece) in pieces.into_iter().enumerate() {
                                    st.push_pack(
                                        own,
                                        target,
                                        PackKind::Wire {
                                            msg: WireMsg::RmaPutData {
                                                win,
                                                offset,
                                                op,
                                                chunk: i as u32,
                                                chunks: total,
                                                data: piece,
                                            },
                                        },
                                    );
                                }
                            }
                        }
                        StagedOp::Get { win, offset, len } => {
                            st.push_pack(
                                own,
                                target,
                                PackKind::Wire {
                                    msg: WireMsg::RmaGet {
                                        win,
                                        offset,
                                        len,
                                        op,
                                    },
                                },
                            );
                        }
                        StagedOp::Acc { win, offset, data } => {
                            st.push_pack(
                                own,
                                target,
                                PackKind::Wire {
                                    msg: WireMsg::RmaAcc {
                                        win,
                                        offset,
                                        op,
                                        data,
                                    },
                                },
                            );
                        }
                    }
                    Some(req_id)
                }
            }
        };
        verify.lock_release("newmad.state");
        verify.set_node(vnode);
        match injected {
            Some(req_id) => {
                // Frames queued: only the remote apply + ack remain.
                self.inner
                    .marcel
                    .note_req_stage(req_id, CommStage::RmaDrain);
                self.trace(|| format!("rma op {op} injected"));
                self.inner.cfg.request_registration
            }
            None => SimDuration::ZERO,
        }
    }

    /// The request backing op `op`, while the op is still tracked.
    pub fn rma_op_req(&self, op: u64) -> Option<PiomReq> {
        self.inner
            .state
            .borrow()
            .rma_ops
            .get(&op)
            .map(|o| o.req.clone())
    }

    /// Takes a completed get's payload, retiring the op entry.
    pub fn rma_take_result(&self, op: u64) -> Option<Vec<u8>> {
        let mut st = self.inner.state.borrow_mut();
        let entry = st.rma_ops.get_mut(&op)?;
        let result = entry.result.take();
        if result.is_some() {
            st.rma_ops.remove(&op);
        }
        result
    }

    /// Ops issued to remote targets and not yet acked.
    pub fn rma_inflight(&self) -> usize {
        self.inner.state.borrow().rma_inflight
    }

    /// Waits for op `op` from thread `ctx`, engine-dependently. Marks the
    /// flushing thread for comm-aware boosting while it waits.
    pub async fn rma_wait(&self, ctx: &ThreadCtx, op: u64) {
        let Some(req) = self.rma_op_req(op) else {
            return; // already retired
        };
        self.inner
            .marcel
            .note_req_stage(req.id(), CommStage::RmaFlush);
        self.swait(&req, ctx).await;
        self.inner.marcel.note_req_done(req.id());
        // Retire result-less entries (self-target put/acc; remote ones
        // were already removed by their ack).
        let mut st = self.inner.state.borrow_mut();
        if st
            .rma_ops
            .get(&op)
            .is_some_and(|o| o.result.is_none() && o.staged.is_none())
        {
            st.rma_ops.remove(&op);
        }
    }

    /// Origin-side ack arrival: the put/accumulate was applied.
    pub(crate) fn handle_rma_ack(&self, src: NodeId, op: u64) -> SimDuration {
        let completed = {
            let mut st = self.inner.state.borrow_mut();
            match st.rma_ops.remove(&op) {
                Some(entry) => {
                    st.rma_inflight -= 1;
                    Some(entry.req)
                }
                // Ack for an op we abandoned (retry budget exhausted on
                // some frame): survivable under a lossy fabric.
                None => None,
            }
        };
        if let Some(req) = completed {
            self.inner.sim.obs().emit(
                self.inner.sim.now(),
                Some(self.inner.node.0),
                EventKind::RmaAckRx { op, src: src.0 },
            );
            req.complete(&self.inner.sim);
            self.trace(|| format!("rma op {op} acked by {src}"));
        }
        SimDuration::ZERO
    }

    /// Origin-side get reply: copy out and complete.
    pub(crate) fn handle_rma_get_reply(&self, src: NodeId, op: u64, data: Vec<u8>) -> SimDuration {
        let len = data.len();
        let completed = {
            let mut st = self.inner.state.borrow_mut();
            match st.rma_ops.get_mut(&op) {
                Some(entry) if entry.result.is_none() && !entry.req.is_complete() => {
                    entry.result = Some(data);
                    let req = entry.req.clone();
                    st.rma_inflight -= 1;
                    Some(req)
                }
                _ => None, // stale or duplicate reply
            }
        };
        match completed {
            Some(req) => {
                self.inner.sim.obs().emit(
                    self.inner.sim.now(),
                    Some(self.inner.node.0),
                    EventKind::RmaAckRx { op, src: src.0 },
                );
                req.complete(&self.inner.sim);
                self.inner.rails[0].params().memcpy_cost(len)
            }
            None => SimDuration::ZERO,
        }
    }

    /// Origin-side chunked get-reply arrival: assemble; once the last
    /// chunk lands, store the result and complete — the mirror image of
    /// the target's [`Session::handle_rma_put_chunk`].
    pub(crate) fn handle_rma_get_data(
        &self,
        src: NodeId,
        op: u64,
        chunk: u32,
        chunks: u32,
        data: Vec<u8>,
    ) -> SimDuration {
        let len = data.len();
        let completed = {
            let mut st = self.inner.state.borrow_mut();
            let live = st
                .rma_ops
                .get(&op)
                .is_some_and(|o| o.result.is_none() && !o.req.is_complete());
            if !live {
                // Stale or abandoned op: drop the chunk and any partial
                // assembly so nothing leaks.
                st.rma_get_chunks.remove(&op);
                None
            } else {
                let entry = st
                    .rma_get_chunks
                    .entry(op)
                    .or_insert_with(|| RmaGetAssembly {
                        parts: vec![None; chunks as usize],
                        received: 0,
                    });
                if entry.parts[chunk as usize].is_some() {
                    // Duplicate chunk that slipped past the envelope window.
                    st.counters.dup_suppressed += 1;
                    None
                } else {
                    entry.parts[chunk as usize] = Some(data);
                    entry.received += 1;
                    if entry.received == chunks {
                        // lint-allow: entry was just inserted or found above
                        let assembly = st.rma_get_chunks.remove(&op).expect("assembly present");
                        let mut whole = Vec::new();
                        for part in assembly.parts {
                            // lint-allow: received == chunks ⇒ every slot filled
                            whole.extend_from_slice(&part.expect("chunk present"));
                        }
                        // lint-allow: liveness of the entry checked above, same borrow
                        let entry = st.rma_ops.get_mut(&op).expect("op present");
                        entry.result = Some(whole);
                        let req = entry.req.clone();
                        st.rma_inflight -= 1;
                        Some(req)
                    } else {
                        None
                    }
                }
            }
        };
        if let Some(req) = completed {
            self.inner.sim.obs().emit(
                self.inner.sim.now(),
                Some(self.inner.node.0),
                EventKind::RmaAckRx { op, src: src.0 },
            );
            req.complete(&self.inner.sim);
            self.trace(|| format!("rma get {op} assembled from {src}"));
        }
        self.inner.rails[0].params().memcpy_cost(len)
    }

    // ----- target: matching-free application ------------------------------

    /// Records and traces a one-sided frame addressed to a window this
    /// node does not expose. Dropping it (rather than panicking) keeps a
    /// misbehaving or stale peer from taking the target down; the origin's
    /// retry budget eventually surfaces the failure on its side.
    fn rma_bad_frame(&self, st: &mut NmState, src: NodeId, win: u64, what: &'static str) {
        st.counters.rma_bad_frames += 1;
        self.trace(|| format!("{what} from {src} to unknown window {win} dropped"));
    }

    /// Small put arrival at the target: store into the window and ack.
    /// Runs entirely inside progression — the target application never
    /// calls into the library for this (passive target).
    pub(crate) fn handle_rma_put(
        &self,
        src: NodeId,
        win: u64,
        offset: usize,
        op: u64,
        data: Vec<u8>,
    ) -> SimDuration {
        let own = self.inner.node;
        let len = data.len();
        let verify = self.inner.sim.verify();
        let vnode = verify.set_node(Some(own.0));
        verify.lock_acquire("newmad.state");
        let applied = {
            let mut st = self.inner.state.borrow_mut();
            match st.rma_windows.get_mut(&win) {
                Some(w) => {
                    w[offset..offset + len].copy_from_slice(&data);
                    st.counters.rma_applied += 1;
                    st.counters.rma_acks_tx += 1;
                    st.push_pack(
                        own,
                        src,
                        PackKind::Wire {
                            msg: WireMsg::RmaAck { op },
                        },
                    );
                    true
                }
                None => {
                    self.rma_bad_frame(&mut st, src, win, "put");
                    false
                }
            }
        };
        verify.lock_release("newmad.state");
        verify.set_node(vnode);
        if !applied {
            return SimDuration::ZERO;
        }
        self.inner.sim.obs().emit(
            self.inner.sim.now(),
            Some(own.0),
            EventKind::RmaApply {
                op,
                src: src.0,
                win,
                bytes: len,
            },
        );
        self.inner.rails[0].params().memcpy_cost(len)
    }

    /// Chunked-put data arrival: assemble into the window; ack once the
    /// last chunk lands.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn handle_rma_put_chunk(
        &self,
        src: NodeId,
        win: u64,
        offset: usize,
        op: u64,
        chunk: u32,
        chunks: u32,
        data: Vec<u8>,
    ) -> SimDuration {
        let own = self.inner.node;
        let len = data.len();
        let verify = self.inner.sim.verify();
        let vnode = verify.set_node(Some(own.0));
        verify.lock_acquire("newmad.state");
        let applied = {
            let mut st = self.inner.state.borrow_mut();
            if !st.rma_windows.contains_key(&win) {
                self.rma_bad_frame(&mut st, src, win, "put chunk");
                false
            } else {
                let entry = st.rma_chunks.entry((src, op)).or_insert_with(|| RmaChunks {
                    seen: vec![false; chunks as usize],
                    received: 0,
                });
                if entry.seen[chunk as usize] {
                    // Duplicate chunk that slipped past the envelope window.
                    st.counters.dup_suppressed += 1;
                    false
                } else {
                    entry.seen[chunk as usize] = true;
                    entry.received += 1;
                    let done = entry.received == chunks;
                    // lint-allow: window presence checked above, same borrow
                    let w = st.rma_windows.get_mut(&win).expect("put to unknown window");
                    let at = offset + chunk as usize * RMA_CHUNK;
                    w[at..at + len].copy_from_slice(&data);
                    if done {
                        st.rma_chunks.remove(&(src, op));
                        st.counters.rma_applied += 1;
                        st.counters.rma_acks_tx += 1;
                        st.push_pack(
                            own,
                            src,
                            PackKind::Wire {
                                msg: WireMsg::RmaAck { op },
                            },
                        );
                    }
                    true
                }
            }
        };
        verify.lock_release("newmad.state");
        verify.set_node(vnode);
        if !applied {
            return SimDuration::ZERO;
        }
        self.inner.sim.obs().emit(
            self.inner.sim.now(),
            Some(own.0),
            EventKind::RmaApply {
                op,
                src: src.0,
                win,
                bytes: len,
            },
        );
        self.inner.rails[0].params().memcpy_cost(len)
    }

    /// Get arrival at the target: read the window and queue the reply.
    /// Large reads are chunked into [`WireMsg::RmaGetData`] DMA frames,
    /// mirroring the large-put path in the opposite direction; small ones
    /// travel as a single [`WireMsg::RmaGetReply`].
    pub(crate) fn handle_rma_get(
        &self,
        src: NodeId,
        win: u64,
        offset: usize,
        len: usize,
        op: u64,
    ) -> SimDuration {
        let own = self.inner.node;
        let verify = self.inner.sim.verify();
        let vnode = verify.set_node(Some(own.0));
        verify.lock_acquire("newmad.state");
        let served = {
            let mut st = self.inner.state.borrow_mut();
            match st.rma_windows.get(&win) {
                Some(w) => {
                    let data = w[offset..offset + len].to_vec();
                    st.counters.rma_applied += 1;
                    st.counters.rma_acks_tx += 1;
                    if len <= self.inner.cfg.rdv_threshold {
                        st.push_pack(
                            own,
                            src,
                            PackKind::Wire {
                                msg: WireMsg::RmaGetReply { op, data },
                            },
                        );
                    } else {
                        // Rendezvous-style DMA reply, minus the handshake
                        // (same shape as `rma_inject`'s large-put path).
                        let pieces: Vec<Vec<u8>> =
                            data.chunks(RMA_CHUNK).map(<[u8]>::to_vec).collect();
                        let total = pieces.len() as u32;
                        for (i, piece) in pieces.into_iter().enumerate() {
                            st.push_pack(
                                own,
                                src,
                                PackKind::Wire {
                                    msg: WireMsg::RmaGetData {
                                        op,
                                        chunk: i as u32,
                                        chunks: total,
                                        data: piece,
                                    },
                                },
                            );
                        }
                    }
                    true
                }
                None => {
                    self.rma_bad_frame(&mut st, src, win, "get");
                    false
                }
            }
        };
        verify.lock_release("newmad.state");
        verify.set_node(vnode);
        if !served {
            return SimDuration::ZERO;
        }
        self.inner.sim.obs().emit(
            self.inner.sim.now(),
            Some(own.0),
            EventKind::RmaApply {
                op,
                src: src.0,
                win,
                bytes: len,
            },
        );
        self.inner.rails[0].params().memcpy_cost(len)
    }

    /// Accumulate arrival at the target: byte-wise wrapping add, then ack.
    /// The reliability layer's duplicate suppression upstream guarantees
    /// this runs at most once per op — exactly-once accumulate even under
    /// retransmits.
    pub(crate) fn handle_rma_acc(
        &self,
        src: NodeId,
        win: u64,
        offset: usize,
        op: u64,
        data: Vec<u8>,
    ) -> SimDuration {
        let own = self.inner.node;
        let len = data.len();
        let verify = self.inner.sim.verify();
        let vnode = verify.set_node(Some(own.0));
        verify.lock_acquire("newmad.state");
        let applied = {
            let mut st = self.inner.state.borrow_mut();
            match st.rma_windows.get_mut(&win) {
                Some(w) => {
                    for (wb, db) in w[offset..offset + len].iter_mut().zip(&data) {
                        *wb = wb.wrapping_add(*db);
                    }
                    st.counters.rma_applied += 1;
                    st.counters.rma_acks_tx += 1;
                    st.push_pack(
                        own,
                        src,
                        PackKind::Wire {
                            msg: WireMsg::RmaAck { op },
                        },
                    );
                    true
                }
                None => {
                    self.rma_bad_frame(&mut st, src, win, "accumulate");
                    false
                }
            }
        };
        verify.lock_release("newmad.state");
        verify.set_node(vnode);
        if !applied {
            return SimDuration::ZERO;
        }
        self.inner.sim.obs().emit(
            self.inner.sim.now(),
            Some(own.0),
            EventKind::RmaApply {
                op,
                src: src.0,
                win,
                bytes: len,
            },
        );
        self.inner.rails[0].params().memcpy_cost(len)
    }
}
