//! NewMadeleine: the communication library of the PM2 suite.
//!
//! NewMadeleine has the 3-layer architecture of Figure 3: the application
//! enqueues *packs* into a list and returns immediately; an
//! optimizer/scheduler (the [`Strategy`] layer: FIFO, aggregation,
//! shortest-first) decides what actually goes on the wire when a NIC is
//! ready; per-network drivers (the MX-like NIC of `pm2-fabric`, the
//! intra-node shared-memory channel) move the bytes.
//!
//! Two protocols are implemented, mirroring MX:
//!
//! * **eager** for messages up to the rendezvous threshold (32 kB): the
//!   submission (PIO or copy-into-registered-memory + DMA post) costs host
//!   CPU — this is the cost §2.2 offloads; unexpected messages land in a
//!   library pool and are copied out when the receive is posted, expected
//!   messages are delivered zero-copy;
//! * **rendezvous** above the threshold (§2.3): RTS → (match + register
//!   buffer) → CTS → zero-copy data transfer. Every arrow requires host
//!   *reactivity* — the handshake only advances when somebody polls — which
//!   is exactly what PIOMAN guarantees in the background.
//!
//! The crate contains **both engines** compared in the paper's evaluation:
//!
//! * [`EngineKind::Sequential`] — the original NewMadeleine: progress
//!   happens only inside library calls, on the calling thread
//!   (registration in `isend`, everything else in `swait`);
//! * [`EngineKind::Pioman`] — the multithreaded engine: `isend` only
//!   registers the request and notifies PIOMAN; submission, polling and
//!   rendezvous progression run on idle cores, at timer ticks, or from the
//!   blocking-call watcher.
//!
//! # Sharded progression
//!
//! Under the PIOMAN engine the session registers **one progression driver
//! per transport** with the server's driver registry: one per NIC rail and
//! one for the shared-memory channel. Each driver exposes its own pending
//! state and hardware trigger, so the registry polls only the transports
//! that actually have work, multirail rails progress independently, and
//! the blocking-call watcher arms the union of the per-rail interrupts.
//! Waiting packs live in per-transport lists; a session-wide enqueue rank
//! ([`Pack::seq`]) lets the registry replay the global FIFO submission
//! order across those lists, so FIFO and aggregation behave exactly as
//! they did with a single list. The one intentional deviation: the
//! shortest-first strategy reorders only *within* a transport, so mixed
//! intra/inter-node traffic is no longer globally shortest-first.
//!
//! Internally the crate splits the protocol machinery by concern:
//! `matching` (posted/unexpected state and the pack lists), `eager`
//! (delivery, unexpected pool, credit flow control), `rendezvous`
//! (RTS/CTS/data handshake), and `progress` (the per-transport drivers
//! and the submission engine); `session` keeps the public API, with the
//! tuning knobs in `config` and the request handles in `handles`.

#![warn(missing_docs)]

mod config;
mod eager;
mod handles;
mod matching;
mod msg;
mod progress;
mod reliability;
mod rendezvous;
mod rma;
mod session;
mod strategy;

#[cfg(test)]
mod tests;

pub use config::{EngineKind, NmCounters, OffloadPolicy, SessionConfig};
pub use handles::{RecvHandle, SendHandle};
pub use matching::SeqWindow;
pub use msg::{EagerPart, ShmMsg, Tag, WireMsg, EAGER_HEADER_BYTES, RDV_HEADER_BYTES};
pub use rma::{RmaOpKind, RMA_CHUNK};
pub use session::{Session, SessionDebugState};
pub use strategy::{
    AggregStrategy, FifoStrategy, Pack, ShortestFirstStrategy, Strategy, Submission,
};
