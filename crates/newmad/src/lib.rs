//! NewMadeleine: the communication library of the PM2 suite.
//!
//! NewMadeleine has the 3-layer architecture of Figure 3: the application
//! enqueues *packs* into a list and returns immediately; an
//! optimizer/scheduler (the [`Strategy`] layer: FIFO, aggregation,
//! shortest-first) decides what actually goes on the wire when a NIC is
//! ready; per-network drivers (the MX-like NIC of `pm2-fabric`, the
//! intra-node shared-memory channel) move the bytes.
//!
//! Two protocols are implemented, mirroring MX:
//!
//! * **eager** for messages up to the rendezvous threshold (32 kB): the
//!   submission (PIO or copy-into-registered-memory + DMA post) costs host
//!   CPU — this is the cost §2.2 offloads; unexpected messages land in a
//!   library pool and are copied out when the receive is posted, expected
//!   messages are delivered zero-copy;
//! * **rendezvous** above the threshold (§2.3): RTS → (match + register
//!   buffer) → CTS → zero-copy data transfer. Every arrow requires host
//!   *reactivity* — the handshake only advances when somebody polls — which
//!   is exactly what PIOMAN guarantees in the background.
//!
//! The crate contains **both engines** compared in the paper's evaluation:
//!
//! * [`EngineKind::Sequential`] — the original NewMadeleine: progress
//!   happens only inside library calls, on the calling thread
//!   (registration in `isend`, everything else in `swait`);
//! * [`EngineKind::Pioman`] — the multithreaded engine: `isend` only
//!   registers the request and notifies PIOMAN; submission, polling and
//!   rendezvous progression run on idle cores, at timer ticks, or from the
//!   blocking-call watcher.

#![warn(missing_docs)]

mod msg;
mod session;
mod strategy;

#[cfg(test)]
mod tests;

pub use msg::{EagerPart, ShmMsg, Tag, WireMsg, EAGER_HEADER_BYTES, RDV_HEADER_BYTES};
pub use session::{
    EngineKind, NmCounters, OffloadPolicy, RecvHandle, SendHandle, Session, SessionConfig,
};
pub use strategy::{AggregStrategy, FifoStrategy, Pack, ShortestFirstStrategy, Strategy, Submission};
