//! The eager protocol's receive side: delivery, the unexpected pool, and
//! credit-based flow control (extracted from the session monolith).

use crate::matching::{NmState, UnexpectedMsg};
use crate::msg::{EagerPart, ShmMsg};
use crate::session::Session;
use crate::strategy::PackKind;
use pm2_sim::obs::EventKind;
use pm2_sim::SimDuration;
use pm2_topo::NodeId;

impl Session {
    /// Records that `wire_bytes` of a peer's unexpected-pool allowance
    /// were freed; returns credits in batches of a quarter pool.
    pub(crate) fn credit_freed(&self, st: &mut NmState, src: NodeId, wire_bytes: usize) {
        if src == self.inner.node {
            return;
        }
        let owed = st.credit_owed.entry(src).or_insert(0);
        *owed += wire_bytes;
        let batch = (self.inner.cfg.credit_bytes_per_peer / 4).max(1);
        if *owed >= batch {
            let bytes = std::mem::take(owed);
            st.push_pack(self.inner.node, src, PackKind::Credit { bytes });
            st.counters.credits_returned += 1;
        }
    }

    /// Eager arrival: deliver to a posted receive (zero copy — the NIC
    /// DMA'd straight to the application buffer) or park as unexpected.
    pub(crate) fn deliver_eager(&self, src: NodeId, part: EagerPart) -> SimDuration {
        let mut st = self.inner.state.borrow_mut();
        match st.take_posted(src, part.tag) {
            Some(posted) => {
                st.note_delivery(src, part.tag, part.seq);
                let wire = crate::msg::EAGER_HEADER_BYTES + part.data.len();
                self.credit_freed(&mut st, src, wire);
                drop(st);
                *posted.out.borrow_mut() = Some(part.data);
                self.inner.sim.obs().emit(
                    self.inner.sim.now(),
                    Some(self.inner.node.0),
                    EventKind::EagerDeliver {
                        req: posted.req.id(),
                        src: src.0,
                        tag: part.tag.0,
                        unexpected: false,
                    },
                );
                posted.req.complete(&self.inner.sim);
                self.trace(|| format!("eager {} from {} matched", part.tag, src));
                SimDuration::ZERO
            }
            None => {
                st.park_unexpected(UnexpectedMsg {
                    src,
                    tag: part.tag,
                    seq: part.seq,
                    data: part.data,
                });
                SimDuration::ZERO
            }
        }
    }

    /// Intra-node message: deliver (copy-out cost) or park as unexpected.
    pub(crate) fn handle_shm(&self, msg: ShmMsg) -> SimDuration {
        let own = self.inner.node;
        let mut st = self.inner.state.borrow_mut();
        match st.take_posted(own, msg.tag) {
            Some(posted) => {
                st.note_delivery(own, msg.tag, msg.seq);
                drop(st);
                let cost = self.inner.shm.copy_cost(msg.data.len());
                *posted.out.borrow_mut() = Some(msg.data);
                self.inner.sim.obs().emit(
                    self.inner.sim.now(),
                    Some(own.0),
                    EventKind::EagerDeliver {
                        req: posted.req.id(),
                        src: own.0,
                        tag: msg.tag.0,
                        unexpected: false,
                    },
                );
                posted.req.complete(&self.inner.sim);
                cost
            }
            None => {
                st.park_unexpected(UnexpectedMsg {
                    src: own,
                    tag: msg.tag,
                    seq: msg.seq,
                    data: msg.data,
                });
                SimDuration::ZERO
            }
        }
    }
}
