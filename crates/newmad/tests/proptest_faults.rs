//! Randomized reliability tests: random fault plans crossed with random
//! message mixes still deliver every message exactly once, byte-identical,
//! with no request leaked. Cases come from the kernel's seeded RNG, so
//! every run replays identically — a failing case is reproduced by its
//! printed case number alone.
//!
//! Fault windows close before a late fault-free flush exchange. That is
//! deliberate: the sequential engine can only submit retransmissions from
//! inside the library, so the flush is what guarantees convergence (see
//! tests/faults.rs for the engine caveat); rate faults stay free to hit
//! the whole main phase, including retransmitted frames.

use pioman::{Pioman, PiomanConfig};
use pm2_fabric::{Fabric, FabricParams, FaultPlan, ShmChannel};
use pm2_marcel::{Marcel, MarcelConfig, Priority};
use pm2_newmad::{EngineKind, FifoStrategy, Session, SessionConfig, ShmMsg, Tag, WireMsg};
use pm2_sim::rng::Xoshiro256;
use pm2_sim::{Sim, SimDuration, SimTime};
use pm2_topo::{NodeId, Topology};
use std::cell::Cell;
use std::rc::Rc;

struct World {
    sim: Sim,
    marcels: Vec<Marcel>,
    sessions: Vec<Session>,
    #[allow(dead_code)]
    fabrics: Vec<Rc<Fabric<WireMsg>>>,
}

fn build_world(engine: EngineKind, fault: FaultPlan) -> World {
    let sim = Sim::new(42);
    let topo = Rc::new(Topology::new(2, 1, 8));
    let mut params = FabricParams::myri10g();
    params.fault = fault;
    let fabrics = vec![Fabric::new(sim.clone(), Rc::clone(&topo), params.clone())];
    let mut marcels = Vec::new();
    let mut sessions = Vec::new();
    for n in 0..2 {
        let marcel = Marcel::new(
            sim.clone(),
            Rc::clone(&topo),
            NodeId(n),
            MarcelConfig::default(),
        );
        let pioman = match engine {
            EngineKind::Pioman => Some(Pioman::new(&marcel, PiomanConfig::default())),
            EngineKind::Sequential => None,
        };
        let rails = fabrics.iter().map(|f| f.nic(NodeId(n))).collect();
        let shm: Rc<ShmChannel<ShmMsg>> =
            ShmChannel::new(sim.clone(), NodeId(n), FabricParams::myri10g());
        let session = Session::new(
            &marcel,
            rails,
            shm,
            Rc::new(FifoStrategy),
            pioman,
            SessionConfig {
                engine,
                ..SessionConfig::default()
            },
        );
        marcels.push(marcel);
        sessions.push(session);
    }
    World {
        sim,
        marcels,
        sessions,
        fabrics,
    }
}

/// Rate faults confined to the main phase; the flush exchange afterwards
/// is fault-free.
const WINDOW_END_US: u64 = 1_500;
const FLUSH_PAUSE_US: u64 = 3_000;

fn gen_plan(rng: &mut Xoshiro256) -> FaultPlan {
    FaultPlan {
        seed: rng.gen_below(u32::MAX as u64),
        drop_rate: (10 + rng.gen_below(90)) as f64 / 1000.0, // 1%..10%
        dup_rate: rng.gen_below(80) as f64 / 1000.0,         // 0..8%
        delay_rate: rng.gen_below(80) as f64 / 1000.0,
        corrupt_rate: rng.gen_below(40) as f64 / 1000.0, // 0..4%
        delay: SimDuration::from_micros(5 + rng.gen_below(45)),
        window: Some((SimTime::ZERO, SimTime::from_micros(WINDOW_END_US))),
        ..FaultPlan::default()
    }
}

/// Sizes spanning the PIO, eager and rendezvous regimes.
fn gen_lens(rng: &mut Xoshiro256) -> Vec<usize> {
    let n = 1 + rng.gen_below(7) as usize;
    (0..n)
        .map(|_| match rng.gen_below(3) {
            0 => rng.gen_range(16, 128),
            1 => rng.gen_range(128, 32 << 10),
            _ => rng.gen_range(32 << 10, 128 << 10),
        } as usize)
        .collect()
}

fn payload(i: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|j| (i as u8).wrapping_mul(53) ^ (j as u8))
        .collect()
}

fn run_case(case: usize, engine: EngineKind, plan: FaultPlan, lens: Vec<usize>) {
    let world = build_world(engine, plan);
    let delivered = Rc::new(Cell::new(0usize));
    {
        let s = world.sessions[0].clone();
        let lens = lens.clone();
        world.marcels[0].spawn("tx", Priority::Normal, None, move |ctx| async move {
            for (i, len) in lens.iter().enumerate() {
                s.send(&ctx, NodeId(1), Tag(i as u64), payload(i, *len))
                    .await;
            }
            ctx.compute(SimDuration::from_micros(FLUSH_PAUSE_US)).await;
            s.send(&ctx, NodeId(1), Tag(9000), payload(90, 64)).await;
            let pong = s.recv(&ctx, Some(NodeId(1)), Tag(9001)).await;
            assert_eq!(pong, payload(91, 64));
        });
    }
    {
        let s = world.sessions[1].clone();
        let lens = lens.clone();
        let delivered = Rc::clone(&delivered);
        world.marcels[1].spawn("rx", Priority::Normal, None, move |ctx| async move {
            for (i, len) in lens.iter().enumerate() {
                let data = s.recv(&ctx, Some(NodeId(0)), Tag(i as u64)).await;
                assert_eq!(data, payload(i, *len), "case {case}: message {i} bytes");
                delivered.set(delivered.get() + 1);
            }
            let ping = s.recv(&ctx, Some(NodeId(0)), Tag(9000)).await;
            assert_eq!(ping, payload(90, 64));
            s.send(&ctx, NodeId(0), Tag(9001), payload(91, 64)).await;
        });
    }
    let end = world
        .sim
        .run_bounded(SimTime::from_secs(60))
        .unwrap_or_else(|d| panic!("case {case} ({engine:?}): wedged at the {d} deadline"));
    assert_eq!(
        delivered.get(),
        lens.len(),
        "case {case} ({engine:?}): lost messages (end {end})"
    );
    for node in 0..2 {
        let st = world.sessions[node].debug_state();
        if engine == EngineKind::Pioman {
            assert!(
                st.is_clean(),
                "case {case}: node {node} leaked state: {st:?}"
            );
        } else {
            assert_eq!(
                (st.posted, st.unexpected, st.rdv_sends, st.rdv_recvs),
                (0, 0, 0, 0),
                "case {case}: node {node} leaked a request: {st:?}"
            );
        }
    }
}

#[test]
fn random_fault_plans_preserve_exactly_once_delivery() {
    let mut rng = Xoshiro256::new(0xfa417);
    for case in 0..16 {
        let plan = gen_plan(&mut rng);
        let lens = gen_lens(&mut rng);
        for engine in [EngineKind::Pioman, EngineKind::Sequential] {
            run_case(case, engine, plan.clone(), lens.clone());
        }
    }
}
