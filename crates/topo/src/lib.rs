//! Hierarchical machine topology: cluster → node → socket → core.
//!
//! Marcel "was carefully designed to … efficiently exploit hierarchical
//! architectures" (§3.1). The scheduler and PIOMAN consult the topology to
//! place tasklets near the requesting thread (same socket first), and the
//! fabric uses it to decide between the shared-memory channel (same node)
//! and the NIC (different nodes).
//!
//! The paper's testbed is described by [`Topology::paper_testbed`]:
//! 2 nodes × 2 sockets × 4 cores (dual quad-core Xeon).

#![warn(missing_docs)]

use std::fmt;

/// Index of a node (machine) in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Index of a socket within its node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SocketId {
    /// Owning node.
    pub node: NodeId,
    /// Socket index within the node.
    pub socket: usize,
}

/// Global index of a core in the cluster.
///
/// Cores are numbered densely across the whole cluster so that they can be
/// used as array indices; [`Topology`] converts between global ids and
/// (node, socket, local core) coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Relative distance between two cores, ordered near → far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Distance {
    /// The same core.
    Same,
    /// Different cores sharing a socket (shared cache).
    SameSocket,
    /// Same node, different sockets (coherent memory, no shared cache).
    SameNode,
    /// Different nodes (only reachable through the network).
    Remote,
}

/// A regular cluster topology.
///
/// # Example
/// ```
/// use pm2_topo::{CoreId, Distance, Topology};
/// let t = Topology::paper_testbed(); // 2 nodes x 2 sockets x 4 cores
/// assert_eq!(t.total_cores(), 16);
/// assert_eq!(t.distance(CoreId(0), CoreId(1)), Distance::SameSocket);
/// assert_eq!(t.distance(CoreId(0), CoreId(9)), Distance::Remote);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    nodes: usize,
    sockets_per_node: usize,
    cores_per_socket: usize,
}

impl Topology {
    /// Builds a regular topology.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(nodes: usize, sockets_per_node: usize, cores_per_socket: usize) -> Self {
        assert!(
            nodes > 0 && sockets_per_node > 0 && cores_per_socket > 0,
            "topology dimensions must be positive"
        );
        Topology {
            nodes,
            sockets_per_node,
            cores_per_socket,
        }
    }

    /// The paper's testbed: two dual quad-core Xeon boxes.
    pub fn paper_testbed() -> Self {
        Topology::new(2, 2, 4)
    }

    /// A single-node machine with `cores` cores on one socket.
    pub fn single_node(cores: usize) -> Self {
        Topology::new(1, 1, cores)
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Sockets per node.
    pub fn sockets_per_node(&self) -> usize {
        self.sockets_per_node
    }

    /// Cores per socket.
    pub fn cores_per_socket(&self) -> usize {
        self.cores_per_socket
    }

    /// Cores per node.
    pub fn cores_per_node(&self) -> usize {
        self.sockets_per_node * self.cores_per_socket
    }

    /// Total cores in the cluster.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node()
    }

    /// Node that owns `core`.
    ///
    /// # Panics
    /// Panics if `core` is out of range.
    pub fn node_of(&self, core: CoreId) -> NodeId {
        assert!(core.0 < self.total_cores(), "core {core} out of range");
        NodeId(core.0 / self.cores_per_node())
    }

    /// Socket that owns `core`.
    pub fn socket_of(&self, core: CoreId) -> SocketId {
        let node = self.node_of(core);
        let local = core.0 % self.cores_per_node();
        SocketId {
            node,
            socket: local / self.cores_per_socket,
        }
    }

    /// Core-local index within its node (0 .. cores_per_node).
    pub fn local_index(&self, core: CoreId) -> usize {
        assert!(core.0 < self.total_cores(), "core {core} out of range");
        core.0 % self.cores_per_node()
    }

    /// Global id of the `local`-th core of `node`.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn core_on(&self, node: NodeId, local: usize) -> CoreId {
        assert!(node.0 < self.nodes, "node {node} out of range");
        assert!(
            local < self.cores_per_node(),
            "local core {local} out of range"
        );
        CoreId(node.0 * self.cores_per_node() + local)
    }

    /// Iterates over all cores of `node`.
    pub fn cores_of(&self, node: NodeId) -> impl Iterator<Item = CoreId> + '_ {
        let base = node.0 * self.cores_per_node();
        (base..base + self.cores_per_node()).map(CoreId)
    }

    /// Iterates over all cores in the cluster.
    pub fn all_cores(&self) -> impl Iterator<Item = CoreId> {
        (0..self.total_cores()).map(CoreId)
    }

    /// Iterates over all nodes.
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes).map(NodeId)
    }

    /// Distance classification between two cores.
    pub fn distance(&self, a: CoreId, b: CoreId) -> Distance {
        if a == b {
            Distance::Same
        } else if self.socket_of(a) == self.socket_of(b) {
            Distance::SameSocket
        } else if self.node_of(a) == self.node_of(b) {
            Distance::SameNode
        } else {
            Distance::Remote
        }
    }

    /// Cores of `origin`'s node ordered by distance from `origin` (nearest
    /// first), excluding `origin` itself. Used to pick where a tasklet
    /// should run: prefer a core sharing the requester's cache.
    pub fn neighbours_by_distance(&self, origin: CoreId) -> Vec<CoreId> {
        let node = self.node_of(origin);
        let mut cores: Vec<CoreId> = self.cores_of(node).filter(|&c| c != origin).collect();
        cores.sort_by_key(|&c| (self.distance(origin, c), c.0));
        cores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let t = Topology::paper_testbed();
        assert_eq!(t.nodes(), 2);
        assert_eq!(t.cores_per_node(), 8);
        assert_eq!(t.total_cores(), 16);
    }

    #[test]
    fn coordinates_roundtrip() {
        let t = Topology::paper_testbed();
        for core in t.all_cores() {
            let node = t.node_of(core);
            let local = t.local_index(core);
            assert_eq!(t.core_on(node, local), core);
        }
    }

    #[test]
    fn socket_layout() {
        let t = Topology::paper_testbed();
        // Node 0: cores 0-3 on socket 0, 4-7 on socket 1.
        assert_eq!(t.socket_of(CoreId(0)).socket, 0);
        assert_eq!(t.socket_of(CoreId(3)).socket, 0);
        assert_eq!(t.socket_of(CoreId(4)).socket, 1);
        // Node 1 starts at core 8.
        assert_eq!(t.node_of(CoreId(8)), NodeId(1));
        assert_eq!(t.socket_of(CoreId(8)).socket, 0);
    }

    #[test]
    fn distances_are_ordered() {
        let t = Topology::paper_testbed();
        assert_eq!(t.distance(CoreId(0), CoreId(0)), Distance::Same);
        assert_eq!(t.distance(CoreId(0), CoreId(1)), Distance::SameSocket);
        assert_eq!(t.distance(CoreId(0), CoreId(5)), Distance::SameNode);
        assert_eq!(t.distance(CoreId(0), CoreId(9)), Distance::Remote);
        assert!(Distance::Same < Distance::SameSocket);
        assert!(Distance::SameSocket < Distance::SameNode);
        assert!(Distance::SameNode < Distance::Remote);
    }

    #[test]
    fn neighbours_sorted_nearest_first() {
        let t = Topology::paper_testbed();
        let n = t.neighbours_by_distance(CoreId(1));
        assert_eq!(n.len(), 7); // other cores of node 0 only
                                // First neighbours share socket 0.
        assert_eq!(t.socket_of(n[0]).socket, 0);
        assert_eq!(t.socket_of(n[1]).socket, 0);
        assert_eq!(t.socket_of(n[2]).socket, 0);
        assert_eq!(t.socket_of(n[3]).socket, 1);
        assert!(n.iter().all(|&c| t.node_of(c) == NodeId(0)));
    }

    #[test]
    fn cores_of_node_are_contiguous() {
        let t = Topology::new(3, 1, 2);
        let cores: Vec<_> = t.cores_of(NodeId(1)).map(|c| c.0).collect();
        assert_eq!(cores, vec![2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_core_panics() {
        Topology::single_node(2).node_of(CoreId(5));
    }
}
