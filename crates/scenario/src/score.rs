//! SLO scoring: turning the pm2-obs latency histograms into a pass/fail
//! verdict and a JSON fragment for `BENCH_scenarios.json`.

use crate::spec::{ScenarioSpec, SloSpec};
use pm2_mpi::Cluster;
use pm2_sim::SimTime;

/// Everything a scenario run produced, scored against its SLO.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Spec name.
    pub name: &'static str,
    /// Marcel policy the run used.
    pub policy: String,
    /// Fault-plan seed (meaningless when the spec is clean).
    pub fault_seed: u64,
    /// Final virtual time, µs.
    pub end_us: f64,
    /// Latency samples scored.
    pub samples: u64,
    /// Median latency, µs.
    pub p50_us: f64,
    /// 99th-percentile latency, µs.
    pub p99_us: f64,
    /// 99.9th-percentile latency, µs.
    pub p999_us: f64,
    /// True when every enabled SLO line held.
    pub slo_pass: bool,
    /// Human-readable description of each violated line.
    pub violations: Vec<String>,
    /// Message/frame conservation held (see the runner).
    pub counters_balanced: bool,
    /// Comm-signal wait brackets still open after quiescence (must be 0).
    pub waits_leaked: usize,
}

/// Scores the cluster's latency histogram under `spec.slo`.
pub(crate) fn score(
    spec: &ScenarioSpec,
    policy: &str,
    fault_seed: u64,
    cluster: &Cluster,
    end: SimTime,
    counters_balanced: bool,
    waits_leaked: usize,
) -> ScenarioOutcome {
    let label = spec.workload.latency_label();
    let (samples, p50_ns, p99_ns, p999_ns) = cluster
        .sim()
        .obs()
        .latency_snapshot()
        .into_iter()
        .find(|(l, ..)| *l == label)
        .map(|(_, count, p50, p99, p999)| (count, p50, p99, p999))
        .unwrap_or((0, 0.0, 0.0, 0.0));
    let (p50_us, p99_us, p999_us) = (p50_ns / 1e3, p99_ns / 1e3, p999_ns / 1e3);

    let mut violations = Vec::new();
    for (line, got, limit) in [
        ("p50", p50_us, spec.slo.p50_us),
        ("p99", p99_us, spec.slo.p99_us),
        ("p999", p999_us, spec.slo.p999_us),
    ] {
        if limit != SloSpec::NONE && got > limit {
            violations.push(format!("{line} {got:.1}us > {limit:.1}us"));
        }
    }
    if samples == 0 {
        violations.push("no latency samples recorded".into());
    }

    ScenarioOutcome {
        name: spec.name,
        policy: policy.to_string(),
        fault_seed,
        end_us: end.as_micros_f64(),
        samples,
        p50_us,
        p99_us,
        p999_us,
        slo_pass: violations.is_empty(),
        violations,
        counters_balanced,
        waits_leaked,
    }
}

impl ScenarioOutcome {
    /// The per-policy JSON object embedded in `BENCH_scenarios.json`.
    /// Formatting is fixed-precision so identical runs serialize to
    /// identical bytes (the determinism test relies on this).
    pub fn to_json(&self) -> String {
        let violations = self
            .violations
            .iter()
            .map(|v| format!("\"{v}\""))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"samples\": {}, \"p50_us\": {:.3}, \"p99_us\": {:.3}, \
             \"p999_us\": {:.3}, \"end_us\": {:.3}, \"slo_pass\": {}, \
             \"counters_balanced\": {}, \"violations\": [{}]}}",
            self.samples,
            self.p50_us,
            self.p99_us,
            self.p999_us,
            self.end_us,
            self.slo_pass,
            self.counters_balanced,
            violations
        )
    }
}
