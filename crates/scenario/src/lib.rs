//! pm2-scenario: service-traffic scenarios with SLO percentile scoring.
//!
//! The paper evaluates the engine on symmetric microbenchmarks (fig. 5
//! ping-pong, fig. 6 stencil). This crate adds the workload class the
//! ROADMAP north-star actually cares about: a communication *service* —
//! many client streams per node with bursty/heavy-tailed arrivals, mixed
//! eager/rendezvous sizes and fan-in incast hot-spots — plus two app
//! kernels (halo-exchange stencil, allreduce-dominated training step)
//! that reuse the pm2-coll engine.
//!
//! Scenarios are declared as data ([`ScenarioSpec`]) and scored from the
//! pm2-obs latency histograms as p50/p99/p999 SLOs with pass/fail
//! verdicts ([`ScenarioOutcome`]). Runs are deterministic per
//! `(spec.seed, policy, fault seed)`: the same triple serializes to the
//! same bytes, so `BENCH_scenarios.json` diffs track the service-latency
//! trajectory PR-over-PR exactly like `BENCH_coll.json`.
//!
//! The suite runs under the PR-2 lossy-fabric fault matrix (the fault
//! seed is a runner argument swept by `ci.sh`) and across all four PR-6
//! Marcel policies (`hier`/`fifo`/`vruntime`/`comm`).

mod runner;
mod score;
mod spec;

pub use runner::run_scenario;
pub use score::ScenarioOutcome;
pub use spec::{ArrivalLaw, ScenarioSpec, SizeMix, SloSpec, TrafficPattern, Workload, MIN_PAYLOAD};

use pm2_sim::SimTime;

/// The four comparable Marcel policies every sweep iterates.
pub const POLICIES: [&str; 4] = ["hier", "fifo", "vruntime", "comm"];

/// Wedge guard shared by the suite; the slowest full-size scenario ends
/// well under a virtual second.
const DEADLINE: SimTime = SimTime::from_secs(60);

/// The committed scenario suite. `smoke` shrinks ranks/streams/volume for
/// the CI lane while keeping every law, pattern and verdict path alive —
/// including the overload spec, which must fail its SLO at either size.
///
/// SLO thresholds are calibrated on the committed `BENCH_scenarios.json`
/// with ≥ 2× headroom over the worst policy × fault-seed combination, so
/// verdict flips signal real latency regressions, not noise.
pub fn builtin_suite(smoke: bool) -> Vec<ScenarioSpec> {
    let svc = |streams: usize, msgs: usize| {
        if smoke {
            (streams.min(8), msgs.min(2))
        } else {
            (streams, msgs)
        }
    };
    let ranks = |r: usize| if smoke { r.min(4) } else { r };
    let mut suite = Vec::new();

    // Nominal service load: uniform peers, memoryless arrivals, mostly
    // eager traffic with an occasional rendezvous payload, 1% frame loss.
    let (streams, msgs) = svc(64, 4);
    suite.push(ScenarioSpec {
        name: "svc_uniform_poisson",
        ranks: ranks(4),
        seed: 0xA11CE,
        workload: Workload::Service {
            streams_per_rank: streams,
            msgs_per_stream: msgs,
            arrival: ArrivalLaw::Poisson { mean_gap_us: 50.0 },
            sizes: SizeMix {
                eager_frac: 0.9,
                eager: (64, 8 << 10),
                rdv: (48 << 10, 96 << 10),
            },
            pattern: TrafficPattern::Uniform,
        },
        fault_loss: 0.01,
        slo: SloSpec {
            p50_us: 1_000.0,
            p99_us: 4_000.0,
            p999_us: 6_000.0,
        },
        deadline: DEADLINE,
    });

    // Fan-in hot-spot under heavy-tailed (Pareto) arrivals: every remote
    // stream converges on rank 0, bursts arrive back-to-back.
    let (streams, msgs) = svc(32, 4);
    suite.push(ScenarioSpec {
        name: "svc_incast_pareto",
        ranks: ranks(8),
        seed: 0xB0B0,
        workload: Workload::Service {
            streams_per_rank: streams,
            msgs_per_stream: msgs,
            arrival: ArrivalLaw::Pareto {
                scale_us: 5.0,
                alpha: 1.5,
                cap_us: 500.0,
            },
            sizes: SizeMix {
                eager_frac: 0.95,
                eager: (64, 4 << 10),
                rdv: (48 << 10, 64 << 10),
            },
            pattern: TrafficPattern::Incast { hot: 0 },
        },
        fault_loss: 0.01,
        slo: SloSpec {
            p50_us: 1_200.0,
            p99_us: 2_200.0,
            p999_us: 2_500.0,
        },
        deadline: DEADLINE,
    });

    // Rendezvous-heavy mix on a clean fabric: the large-message service
    // point (no faults, so this also pins the fault-free trajectory).
    let (streams, msgs) = svc(32, 4);
    suite.push(ScenarioSpec {
        name: "svc_heavy_mix",
        ranks: ranks(4),
        seed: 0xCAFE,
        workload: Workload::Service {
            streams_per_rank: streams,
            msgs_per_stream: msgs,
            arrival: ArrivalLaw::Poisson { mean_gap_us: 30.0 },
            sizes: SizeMix {
                eager_frac: 0.6,
                eager: (256, 16 << 10),
                rdv: (48 << 10, 128 << 10),
            },
            pattern: TrafficPattern::Uniform,
        },
        fault_loss: 0.0,
        slo: SloSpec {
            p50_us: 1_500.0,
            p99_us: 5_500.0,
            p999_us: 6_000.0,
        },
        deadline: DEADLINE,
    });

    // Halo-exchange ring: per-iteration time of the fig. 6 communication
    // shape, scored as an SLO instead of a mean.
    suite.push(ScenarioSpec {
        name: "stencil_halo",
        ranks: ranks(8),
        seed: 0xDECAF,
        workload: Workload::Stencil {
            iters: if smoke { 5 } else { 20 },
            halo_bytes: 16 << 10,
            compute_us: 20,
        },
        fault_loss: 0.01,
        slo: SloSpec {
            p50_us: 800.0,
            p99_us: 3_000.0,
            p999_us: 5_000.0,
        },
        deadline: DEADLINE,
    });

    // Allreduce-dominated training step over pm2-coll.
    suite.push(ScenarioSpec {
        name: "train_allreduce",
        ranks: ranks(8),
        seed: 0xF00D,
        workload: Workload::AllreduceStep {
            steps: if smoke { 3 } else { 10 },
            grad_bytes: 256 << 10,
            compute_us: 50,
        },
        fault_loss: 0.0,
        slo: SloSpec {
            p50_us: 1_600.0,
            p99_us: 1_900.0,
            p999_us: 2_000.0,
        },
        deadline: DEADLINE,
    });

    // One-sided incast: put-heavy traffic with accumulate contention
    // converging on rank 0's window while rank 0 spins in pure compute —
    // the passive-target path under load (and under 1% frame loss, so
    // exactly-once accumulate is exercised by every sweep).
    suite.push(ScenarioSpec {
        name: "rma_incast_mix",
        ranks: ranks(8),
        seed: 0x17A6E7,
        workload: Workload::RmaMix {
            ops_per_rank: if smoke { 8 } else { 48 },
            put_bytes: (256, 48 << 10),
            acc_frac: 0.3,
            flush_every: 8,
        },
        fault_loss: 0.01,
        slo: SloSpec {
            p50_us: 300.0,
            p99_us: 800.0,
            p999_us: 1_200.0,
        },
        deadline: DEADLINE,
    });

    // Deliberate overload: unpaced rendezvous incast into one rank. The
    // SLO is set where a healthy *nominal* service would sit, so this
    // spec must FAIL — it proves the harness can detect regressions
    // rather than rubber-stamp every run.
    let (streams, msgs) = svc(32, 2);
    suite.push(ScenarioSpec {
        name: "svc_overload_incast",
        ranks: ranks(8),
        seed: 0xBAD,
        workload: Workload::Service {
            streams_per_rank: streams,
            msgs_per_stream: msgs,
            arrival: ArrivalLaw::Closed,
            sizes: SizeMix::rdv_only(64 << 10, 64 << 10),
            pattern: TrafficPattern::Incast { hot: 0 },
        },
        fault_loss: 0.0,
        slo: SloSpec {
            p50_us: 100.0,
            p99_us: 250.0,
            p999_us: 500.0,
        },
        deadline: DEADLINE,
    });

    suite
}

/// Specs that must pass their SLO (everything except the overload probe).
pub fn nominal_suite(smoke: bool) -> Vec<ScenarioSpec> {
    builtin_suite(smoke)
        .into_iter()
        .filter(|s| s.name != "svc_overload_incast")
        .collect()
}

/// The deliberate-overload spec (must fail its SLO).
pub fn overload_spec(smoke: bool) -> ScenarioSpec {
    builtin_suite(smoke)
        .into_iter()
        .find(|s| s.name == "svc_overload_incast")
        .expect("suite always carries the overload probe")
}
