//! Scenario declarations: everything a run needs, as plain data.
//!
//! A [`ScenarioSpec`] describes a service-traffic experiment the way
//! `BENCH_coll.json` describes a collective sweep point: ranks, client
//! streams, the stochastic laws their traffic follows, the fault plan and
//! the latency SLO the run is scored against. Specs are pure data so the
//! suite in [`crate::builtin_suite`] can be iterated by the sweep bin,
//! the CI smoke lane and the determinism tests without code changes.

use pm2_sim::rng::Xoshiro256;
use pm2_sim::{SimDuration, SimTime};

/// Inter-arrival law of a client stream.
///
/// Both laws are sampled from the stream's own [`Xoshiro256`] (seeded from
/// the spec seed and the stream id), never from the simulation RNG, so
/// traffic shape is independent of protocol timing.
#[derive(Debug, Clone)]
pub enum ArrivalLaw {
    /// Memoryless arrivals: exponential gaps with the given mean.
    Poisson {
        /// Mean inter-arrival gap in microseconds.
        mean_gap_us: f64,
    },
    /// Heavy-tailed (Pareto) gaps: bursts of back-to-back messages
    /// separated by occasional long silences. Sampled by inverse CDF,
    /// `gap = scale / u^(1/alpha)`, clamped to `cap_us`.
    Pareto {
        /// Minimum gap (the Pareto scale `x_m`), microseconds.
        scale_us: f64,
        /// Tail index; smaller = heavier tail. Must be > 0.
        alpha: f64,
        /// Upper clamp so a single sample cannot stall a stream forever.
        cap_us: f64,
    },
    /// No pacing at all: every message is posted as soon as the previous
    /// one completes. The overload specs use this.
    Closed,
}

impl ArrivalLaw {
    /// Draws the next inter-arrival gap.
    pub fn sample(&self, rng: &mut Xoshiro256) -> SimDuration {
        match self {
            ArrivalLaw::Poisson { mean_gap_us } => {
                SimDuration::from_micros_f64(rng.gen_exp(*mean_gap_us))
            }
            ArrivalLaw::Pareto {
                scale_us,
                alpha,
                cap_us,
            } => {
                // gen_f64 is in [0, 1); shift to (0, 1] so the inverse CDF
                // never divides by zero.
                let u = 1.0 - rng.gen_f64();
                let gap = scale_us / u.powf(1.0 / alpha);
                SimDuration::from_micros_f64(gap.min(*cap_us))
            }
            ArrivalLaw::Closed => SimDuration::ZERO,
        }
    }

    /// `(lo, hi)` bound every sample respects, in microseconds (inclusive,
    /// after rounding to nanoseconds). The law-bounds property test holds
    /// each law to its own advertisement.
    pub fn bounds_us(&self) -> (f64, f64) {
        match self {
            ArrivalLaw::Poisson { .. } => (0.0, f64::INFINITY),
            ArrivalLaw::Pareto {
                scale_us, cap_us, ..
            } => (*scale_us, *cap_us),
            ArrivalLaw::Closed => (0.0, 0.0),
        }
    }
}

/// Bimodal message-size law: a coin decides eager vs rendezvous, then the
/// size is uniform within the chosen band.
#[derive(Debug, Clone)]
pub struct SizeMix {
    /// Probability a message is eager-sized.
    pub eager_frac: f64,
    /// Inclusive eager band in bytes; keep `hi` under the rendezvous
    /// threshold (32 KiB on the paper testbed).
    pub eager: (usize, usize),
    /// Inclusive rendezvous band in bytes; keep `lo` at or above the
    /// threshold.
    pub rdv: (usize, usize),
}

/// Every payload starts with the 8-byte send timestamp the receiver
/// subtracts to score delivery latency, so no sample may be shorter.
pub const MIN_PAYLOAD: usize = 8;

impl SizeMix {
    /// Eager-only mix within `(lo, hi)`.
    pub fn eager_only(lo: usize, hi: usize) -> SizeMix {
        SizeMix {
            eager_frac: 1.0,
            eager: (lo, hi),
            rdv: (hi, hi),
        }
    }

    /// Rendezvous-only mix within `(lo, hi)`.
    pub fn rdv_only(lo: usize, hi: usize) -> SizeMix {
        SizeMix {
            eager_frac: 0.0,
            eager: (lo, lo),
            rdv: (lo, hi),
        }
    }

    /// Draws the next payload length.
    pub fn sample(&self, rng: &mut Xoshiro256) -> usize {
        let (lo, hi) = if rng.gen_bool(self.eager_frac) {
            self.eager
        } else {
            self.rdv
        };
        let len = if hi > lo {
            lo + rng.gen_below((hi - lo + 1) as u64) as usize
        } else {
            lo
        };
        len.max(MIN_PAYLOAD)
    }
}

/// Who each client stream talks to.
#[derive(Debug, Clone, Copy)]
pub enum TrafficPattern {
    /// Every stream picks a uniformly random peer rank (never its own).
    Uniform,
    /// Fan-in hot-spot: every stream targets `hot`; streams originating on
    /// `hot` fall back to uniform so no stream talks to itself.
    Incast {
        /// The rank all remote streams converge on.
        hot: usize,
    },
}

impl TrafficPattern {
    /// Destination rank for a stream on `src` (drawn from the setup RNG,
    /// once per stream at install time).
    pub fn dest(&self, src: usize, ranks: usize, rng: &mut Xoshiro256) -> usize {
        debug_assert!(ranks >= 2, "traffic needs a peer");
        let uniform = |rng: &mut Xoshiro256| {
            let d = rng.gen_below((ranks - 1) as u64) as usize;
            if d >= src {
                d + 1
            } else {
                d
            }
        };
        match self {
            TrafficPattern::Uniform => uniform(rng),
            TrafficPattern::Incast { hot } => {
                if src == *hot {
                    uniform(rng)
                } else {
                    *hot
                }
            }
        }
    }
}

/// What the ranks actually run.
#[derive(Debug, Clone)]
pub enum Workload {
    /// The service proper: `streams_per_rank` independent client streams
    /// per rank, each sending `msgs_per_stream` timestamped messages to
    /// its pattern-chosen destination, paced by `arrival` and sized by
    /// `sizes`. Latency is scored on the receive side (post-to-delivery,
    /// label `"svc"`).
    Service {
        /// Client streams installed on every rank.
        streams_per_rank: usize,
        /// Messages each stream sends before retiring.
        msgs_per_stream: usize,
        /// Inter-arrival law.
        arrival: ArrivalLaw,
        /// Payload-size law.
        sizes: SizeMix,
        /// Destination-choice law.
        pattern: TrafficPattern,
    },
    /// Halo-exchange ring: each rank swaps `halo_bytes` with both ring
    /// neighbours every iteration after `compute_us` of local work.
    /// Latency is the full iteration time (label `"kernel"`).
    Stencil {
        /// Iterations per rank.
        iters: usize,
        /// Halo payload per neighbour, bytes.
        halo_bytes: usize,
        /// Local compute per iteration, microseconds.
        compute_us: u64,
    },
    /// Allreduce-dominated training step: `compute_us` of gradient work
    /// then a byte-wise sum allreduce of `grad_bytes`, `steps` times.
    /// Latency is the full step time (label `"kernel"`).
    AllreduceStep {
        /// Training steps per rank.
        steps: usize,
        /// Gradient payload, bytes.
        grad_bytes: usize,
        /// Per-step compute, microseconds.
        compute_us: u64,
    },
    /// One-sided incast: every rank except rank 0 issues `ops_per_rank`
    /// RMA ops against a window exposed by rank 0 — puts into a private
    /// region (put-heavy), accumulates into a shared 64-byte counter
    /// region (contention) — flushing every `flush_every` ops. Rank 0 is
    /// an *in-scenario passive target*: it spins in pure compute and
    /// never calls into the library after exposing the window, so every
    /// apply runs inside stolen progression. Latency is per-op
    /// stage-to-completion (label `"rma"`, fed by the request layer).
    RmaMix {
        /// One-sided ops issued by each non-hot rank.
        ops_per_rank: usize,
        /// Inclusive put-size band, bytes; sizes above the rendezvous
        /// threshold take the chunked DMA path.
        put_bytes: (usize, usize),
        /// Probability an op is an accumulate instead of a put.
        acc_frac: f64,
        /// Ops between flushes (the final partial batch is also flushed).
        flush_every: usize,
    },
}

impl Workload {
    /// Label the workload records its latency samples under.
    pub fn latency_label(&self) -> &'static str {
        match self {
            Workload::Service { .. } => "svc",
            Workload::Stencil { .. } | Workload::AllreduceStep { .. } => "kernel",
            Workload::RmaMix { .. } => "rma",
        }
    }
}

/// Latency SLO the scenario is scored against, in microseconds. A
/// percentile passes when it is at or under its threshold;
/// [`SloSpec::NONE`] disables a line.
#[derive(Debug, Clone, Copy)]
pub struct SloSpec {
    /// Median threshold, µs.
    pub p50_us: f64,
    /// 99th-percentile threshold, µs.
    pub p99_us: f64,
    /// 99.9th-percentile threshold, µs.
    pub p999_us: f64,
}

impl SloSpec {
    /// Sentinel disabling a percentile line.
    pub const NONE: f64 = f64::INFINITY;
}

/// One complete scenario: build recipe, workload, faults and SLO.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Stable name, used as the JSON key and in test messages.
    pub name: &'static str,
    /// Ranks (= simulated nodes).
    pub ranks: usize,
    /// Simulation seed; same seed and policy ⇒ byte-identical report.
    pub seed: u64,
    /// What the ranks run.
    pub workload: Workload,
    /// Uniform frame-loss rate of the lossy-fabric plan; `0.0` keeps the
    /// fabric clean (and the reliability layer off). The fault *seed*
    /// comes from the runner so `ci.sh` can sweep its matrix.
    pub fault_loss: f64,
    /// Latency SLO scored from the pm2-obs histograms.
    pub slo: SloSpec,
    /// Wedge guard passed to [`pm2_mpi::Cluster::run_deadline`].
    pub deadline: SimTime,
}

impl ScenarioSpec {
    /// Messages the workload must deliver for the run to count.
    pub fn expected_deliveries(&self) -> u64 {
        match &self.workload {
            Workload::Service {
                streams_per_rank,
                msgs_per_stream,
                ..
            } => (self.ranks * streams_per_rank * msgs_per_stream) as u64,
            // Two halos per rank per iteration.
            Workload::Stencil { iters, .. } => (self.ranks * iters * 2) as u64,
            Workload::AllreduceStep { steps, .. } => (self.ranks * steps) as u64,
            // The passive hot rank issues nothing.
            Workload::RmaMix { ops_per_rank, .. } => ((self.ranks - 1) * ops_per_rank) as u64,
        }
    }
}
