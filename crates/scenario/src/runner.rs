//! Building a cluster from a [`ScenarioSpec`], driving the workload and
//! collecting the scored outcome.

use crate::score::{score, ScenarioOutcome};
use crate::spec::{ScenarioSpec, Workload, MIN_PAYLOAD};
use pm2_coll::ReduceOp;
use pm2_fabric::FaultPlan;
use pm2_mpi::{Cluster, ClusterConfig, Comm};
use pm2_newmad::{EngineKind, Tag};
use pm2_sim::rng::Xoshiro256;
use pm2_topo::NodeId;
use std::cell::Cell;
use std::rc::Rc;

/// Stream-setup RNG salt (destination choices, independent of traffic).
const SETUP_SALT: u64 = 0x5EED_5CEA_AA77_0001;
/// Per-stream traffic RNG salt.
const STREAM_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Tag bases keeping the stencil's two directions apart. Service streams
/// use their global stream id as the tag, so kernel tags live far above
/// any realistic stream count (and far below `RESERVED_TAG_BASE`).
const STENCIL_RIGHT_BASE: u64 = 1 << 32;
const STENCIL_LEFT_BASE: u64 = (1 << 32) + (1 << 16);

/// Window id of the RMA-incast workload's single hot window.
const RMA_WIN: u64 = 7;
/// Bytes at the front of the hot window shared by every origin's
/// accumulates (the contention region; 8 slots of 8 bytes).
const RMA_ACC_REGION: usize = 64;

/// Runs `spec` under the named Marcel policy and fault seed, asserting the
/// structural invariants (every message delivered exactly once, message
/// counters balanced, no leaked comm-signal wait brackets) and returning
/// the SLO-scored outcome.
///
/// # Panics
/// Panics when the run wedges past the spec deadline or loses/duplicates
/// a delivery — scenario runs are experiments, but delivery is not up for
/// negotiation.
pub fn run_scenario(spec: &ScenarioSpec, policy: &str, fault_seed: u64) -> ScenarioOutcome {
    let mut cfg = ClusterConfig {
        nodes: spec.ranks,
        seed: spec.seed,
        ..ClusterConfig::paper_testbed(EngineKind::Pioman)
    }
    .with_sched_policy(policy);
    if spec.fault_loss > 0.0 {
        cfg.fabric.fault = FaultPlan::loss(fault_seed, spec.fault_loss);
    }
    let cluster = Cluster::build(cfg);
    cluster.sim().obs().set_enabled(true);

    let delivered = Rc::new(Cell::new(0u64));
    install(&cluster, spec, &delivered);
    let end = cluster.run_deadline(spec.deadline);

    let expected = spec.expected_deliveries();
    assert_eq!(
        delivered.get(),
        expected,
        "scenario {}: deliveries lost or duplicated",
        spec.name
    );

    // Message balance (the PR-2 invariant): retransmissions re-enter the
    // wire as raw packs, so application sends and first transmissions
    // agree exactly however many frames the fault plan destroyed.
    let mut counters_balanced = true;
    for node in 0..spec.ranks {
        let c = cluster.session(node).counters();
        if c.eager_msgs_tx + c.rdv_started != c.sends {
            counters_balanced = false;
        }
    }
    // Frame balance, fabric-global: every transmitted frame meets exactly
    // one fate (delivered, dropped, CRC-discarded), duplication adds one.
    let mut tx = 0u64;
    let mut rx_or_lost = 0u64;
    let mut dup = 0u64;
    for node in 0..spec.ranks {
        let n = cluster.nic_counters(node, 0);
        tx += n.tx_frames;
        rx_or_lost += n.rx_frames + n.faults_dropped + n.faults_corrupted;
        dup += n.faults_duplicated;
    }
    if rx_or_lost != tx + dup {
        counters_balanced = false;
    }

    // Comm-signal hygiene: a quiesced scheduler has no open wait bracket
    // and never let its bounded table grow past the cap.
    let mut waits_leaked = 0;
    for node in 0..spec.ranks {
        waits_leaked += cluster.marcel(node).comm_waiting();
        assert!(
            cluster.marcel(node).comm_tracked() <= pm2_marcel::MAX_TRACKED_REQS,
            "scenario {}: comm-signal table over cap on node {node}",
            spec.name
        );
    }

    score(
        spec,
        policy,
        fault_seed,
        &cluster,
        end,
        counters_balanced,
        waits_leaked,
    )
}

fn install(cluster: &Cluster, spec: &ScenarioSpec, delivered: &Rc<Cell<u64>>) {
    match &spec.workload {
        Workload::Service {
            streams_per_rank,
            msgs_per_stream,
            arrival,
            sizes,
            pattern,
        } => {
            let mut setup = Xoshiro256::new(spec.seed ^ SETUP_SALT);
            for src in 0..spec.ranks {
                for s in 0..*streams_per_rank {
                    let id = src * streams_per_rank + s;
                    let dest = pattern.dest(src, spec.ranks, &mut setup);
                    let tag = Tag(id as u64);
                    let msgs = *msgs_per_stream;
                    {
                        let sess = cluster.session(src).clone();
                        let arrival = arrival.clone();
                        let sizes = sizes.clone();
                        let seed = spec.seed;
                        cluster.spawn_on(src, format!("svc-tx{id}"), move |ctx| async move {
                            let mut rng =
                                Xoshiro256::new(seed ^ (id as u64 + 1).wrapping_mul(STREAM_SALT));
                            for _ in 0..msgs {
                                let gap = arrival.sample(&mut rng);
                                if !gap.is_zero() {
                                    ctx.compute(gap).await;
                                }
                                let len = sizes.sample(&mut rng);
                                let mut data = vec![0u8; len];
                                let t0 = ctx.marcel().sim().now().as_nanos();
                                data[..MIN_PAYLOAD].copy_from_slice(&t0.to_le_bytes());
                                sess.send(&ctx, NodeId(dest), tag, data).await;
                            }
                        });
                    }
                    {
                        let sess = cluster.session(dest).clone();
                        let delivered = Rc::clone(delivered);
                        cluster.spawn_on(dest, format!("svc-rx{id}"), move |ctx| async move {
                            for _ in 0..msgs {
                                let data = sess.recv(&ctx, Some(NodeId(src)), tag).await;
                                let t0 =
                                    u64::from_le_bytes(data[..MIN_PAYLOAD].try_into().unwrap());
                                let sim = ctx.marcel().sim();
                                sim.obs().record_latency("svc", sim.now().as_nanos() - t0);
                                delivered.set(delivered.get() + 1);
                            }
                        });
                    }
                }
            }
        }
        Workload::Stencil {
            iters,
            halo_bytes,
            compute_us,
        } => {
            for rank in 0..spec.ranks {
                let left = (rank + spec.ranks - 1) % spec.ranks;
                let right = (rank + 1) % spec.ranks;
                let sess = cluster.session(rank).clone();
                let delivered = Rc::clone(delivered);
                let (iters, halo, compute) = (*iters, *halo_bytes, *compute_us);
                cluster.spawn_on(rank, format!("stencil{rank}"), move |ctx| async move {
                    for _ in 0..iters {
                        let sim = ctx.marcel().sim().clone();
                        let t0 = sim.now().as_nanos();
                        ctx.compute(pm2_sim::SimDuration::from_micros(compute))
                            .await;
                        let hr = sess
                            .isend(
                                &ctx,
                                NodeId(right),
                                Tag(STENCIL_RIGHT_BASE + rank as u64),
                                vec![rank as u8; halo.max(MIN_PAYLOAD)],
                            )
                            .await;
                        let hl = sess
                            .isend(
                                &ctx,
                                NodeId(left),
                                Tag(STENCIL_LEFT_BASE + rank as u64),
                                vec![rank as u8; halo.max(MIN_PAYLOAD)],
                            )
                            .await;
                        let from_left = sess
                            .recv(
                                &ctx,
                                Some(NodeId(left)),
                                Tag(STENCIL_RIGHT_BASE + left as u64),
                            )
                            .await;
                        let from_right = sess
                            .recv(
                                &ctx,
                                Some(NodeId(right)),
                                Tag(STENCIL_LEFT_BASE + right as u64),
                            )
                            .await;
                        assert_eq!(from_left[0] as usize, left);
                        assert_eq!(from_right[0] as usize, right);
                        sess.swait_send(&hr, &ctx).await;
                        sess.swait_send(&hl, &ctx).await;
                        sim.obs()
                            .record_latency("kernel", sim.now().as_nanos() - t0);
                        delivered.set(delivered.get() + 2);
                    }
                });
            }
        }
        Workload::AllreduceStep {
            steps,
            grad_bytes,
            compute_us,
        } => {
            for (rank, comm) in Comm::world(cluster).into_iter().enumerate() {
                let delivered = Rc::clone(delivered);
                let (steps, grad, compute) = (*steps, *grad_bytes, *compute_us);
                cluster.spawn_on(rank, format!("train{rank}"), move |ctx| async move {
                    for _ in 0..steps {
                        let sim = ctx.marcel().sim().clone();
                        let t0 = sim.now().as_nanos();
                        ctx.compute(pm2_sim::SimDuration::from_micros(compute))
                            .await;
                        let out = comm
                            .allreduce(&ctx, vec![1u8; grad], ReduceOp::WrapAdd8)
                            .await;
                        assert_eq!(out.len(), grad);
                        sim.obs()
                            .record_latency("kernel", sim.now().as_nanos() - t0);
                        delivered.set(delivered.get() + 1);
                    }
                });
            }
        }
        Workload::RmaMix {
            ops_per_rank,
            put_bytes,
            acc_frac,
            flush_every,
        } => {
            let hot = 0usize;
            let (lo, hi) = *put_bytes;
            // Window layout on the hot rank: a shared 64-byte accumulate
            // region, then one private put region per origin rank.
            let win_len = RMA_ACC_REGION + (spec.ranks - 1) * hi;
            {
                let rma = cluster.rma(hot).clone();
                cluster.spawn_on(hot, "rma-target", move |ctx| async move {
                    rma.window_create(&ctx, RMA_WIN, win_len).await;
                    // Passive target: pure compute from here on — every
                    // incoming op is applied by stolen progression.
                    ctx.compute(pm2_sim::SimDuration::from_millis(5)).await;
                });
            }
            for src in 1..spec.ranks {
                let rma = cluster.rma(src).clone();
                let delivered = Rc::clone(delivered);
                let (ops, acc_frac, flush_every, seed) =
                    (*ops_per_rank, *acc_frac, *flush_every, spec.seed);
                cluster.spawn_on(src, format!("rma-origin{src}"), move |ctx| async move {
                    let mut rng =
                        Xoshiro256::new(seed ^ (src as u64 + 1).wrapping_mul(STREAM_SALT));
                    // Let the target's t=0 window registration land first.
                    ctx.compute(pm2_sim::SimDuration::from_micros(5)).await;
                    let win = rma.window(RMA_WIN);
                    let base = RMA_ACC_REGION + (src - 1) * hi;
                    let mut batch = 0u64;
                    for i in 0..ops {
                        if rng.gen_bool(acc_frac) {
                            // Contended slot shared by every origin.
                            let slot = (i % (RMA_ACC_REGION / 8)) * 8;
                            win.accumulate(&ctx, NodeId(hot), slot, vec![1u8; 8]);
                        } else {
                            let len = lo + rng.gen_below((hi - lo + 1) as u64) as usize;
                            win.put(&ctx, NodeId(hot), base, vec![src as u8; len]);
                        }
                        batch += 1;
                        if (i + 1) % flush_every == 0 {
                            win.flush(&ctx).await;
                            delivered.set(delivered.get() + batch);
                            batch = 0;
                        }
                    }
                    win.flush(&ctx).await;
                    delivered.set(delivered.get() + batch);
                });
            }
        }
    }
}
