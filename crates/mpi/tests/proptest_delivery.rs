//! Randomized end-to-end tests: generated message mixes are delivered
//! intact (no loss, no duplication, no corruption) under every engine and
//! strategy combination, crossing the eager/rendezvous boundary. Cases
//! come from the kernel's seeded RNG, so every run replays identically.

use pm2_mpi::{Cluster, ClusterConfig, StrategyKind};
use pm2_newmad::{EngineKind, Tag};
use pm2_sim::rng::Xoshiro256;
use pm2_sim::SimDuration;
use pm2_topo::NodeId;
use std::cell::RefCell;
use std::rc::Rc;

/// One message of the generated workload.
#[derive(Debug, Clone)]
struct Msg {
    len: usize,
    delay_us: u64,
}

/// Sizes spanning the PIO, eager and rendezvous regimes.
fn gen_msgs(rng: &mut Xoshiro256) -> Vec<Msg> {
    let n = 1 + rng.gen_below(11) as usize;
    (0..n)
        .map(|_| {
            let len = match rng.gen_below(3) {
                0 => rng.gen_range(16, 128),
                1 => rng.gen_range(128, 32 << 10),
                _ => rng.gen_range(32 << 10, 128 << 10),
            } as usize;
            Msg {
                len,
                delay_us: rng.gen_below(30),
            }
        })
        .collect()
}

fn payload(i: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|j| (i as u8).wrapping_mul(37) ^ (j as u8))
        .collect()
}

fn run_mix(engine: EngineKind, strategy: StrategyKind, seed: u64, msgs: &[Msg]) -> Vec<Vec<u8>> {
    let cluster = Cluster::build(ClusterConfig {
        engine,
        strategy,
        seed,
        ..ClusterConfig::paper_testbed(engine)
    });
    let msgs2 = msgs.to_vec();
    {
        let s = cluster.session(0).clone();
        cluster.spawn_on(0, "tx", move |ctx| async move {
            let mut handles = Vec::new();
            for (i, m) in msgs2.iter().enumerate() {
                ctx.compute(SimDuration::from_micros(m.delay_us)).await;
                handles.push(
                    s.isend(&ctx, NodeId(1), Tag(i as u64), payload(i, m.len))
                        .await,
                );
            }
            for h in &handles {
                s.swait_send(h, &ctx).await;
            }
        });
    }
    let got: Rc<RefCell<Vec<Vec<u8>>>> = Rc::new(RefCell::new(vec![Vec::new(); msgs.len()]));
    {
        let s = cluster.session(1).clone();
        let got = Rc::clone(&got);
        let n = msgs.len();
        cluster.spawn_on(1, "rx", move |ctx| async move {
            // Receive in reverse tag order to exercise the unexpected
            // queue and out-of-order posting.
            for i in (0..n).rev() {
                let v = s.recv(&ctx, Some(NodeId(0)), Tag(i as u64)).await;
                got.borrow_mut()[i] = v;
            }
        });
    }
    cluster.run();
    Rc::try_unwrap(got).expect("sole owner").into_inner()
}

/// All engines and strategies deliver every byte of every message.
#[test]
fn delivery_is_exact() {
    for case in 0..12u64 {
        let mut rng = Xoshiro256::new(case);
        let ms = gen_msgs(&mut rng);
        let seed = rng.gen_below(1000);
        for engine in [EngineKind::Pioman, EngineKind::Sequential] {
            for strategy in [StrategyKind::Fifo, StrategyKind::Aggreg] {
                let got = run_mix(engine, strategy, seed, &ms);
                for (i, m) in ms.iter().enumerate() {
                    assert_eq!(
                        got[i].len(),
                        m.len,
                        "msg {i} length ({engine:?}/{strategy:?}, case {case})"
                    );
                    assert_eq!(&got[i], &payload(i, m.len), "msg {i} corrupted");
                }
            }
        }
    }
}

/// The two engines deliver identical data (they may differ in timing
/// only), and runs are deterministic per seed.
#[test]
fn engines_agree_and_runs_repeat() {
    for case in 0..6u64 {
        let mut rng = Xoshiro256::new(1000 + case);
        let ms = gen_msgs(&mut rng);
        let seed = rng.gen_below(1000);
        let a = run_mix(EngineKind::Pioman, StrategyKind::Fifo, seed, &ms);
        let b = run_mix(EngineKind::Sequential, StrategyKind::Fifo, seed, &ms);
        assert_eq!(&a, &b, "case {case}");
        let a2 = run_mix(EngineKind::Pioman, StrategyKind::Fifo, seed, &ms);
        assert_eq!(a, a2, "case {case}");
    }
}
