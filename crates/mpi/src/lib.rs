//! Mini-MPI facade and cluster harness.
//!
//! Builds the full simulated stack — topology, fabric rails, one Marcel +
//! PIOMAN + NewMadeleine session per node — from a single
//! [`ClusterConfig`], and exposes the hybrid programming model the paper
//! targets: **one MPI process per node, several threads per process**
//! (§4.3: "This program launches one MPI process per node of a cluster.
//! Each process creates threads that compute a part of the matrix").
//!
//! Ranks map 1:1 to nodes. Threads of the same rank communicate through
//! the node's shared-memory channel, threads of different ranks through
//! the simulated NIC — both behind the same `isend`/`recv` API.
//!
//! The [`workloads`] module contains the paper's benchmark programs
//! (Figure 4's overlap loop and Figure 7/8's convolution-style stencil),
//! shared by the examples and by the reproduction binaries in `pm2-bench`.

#![warn(missing_docs)]

mod cluster;
mod comm;
pub mod workloads;

pub use cluster::{Cluster, ClusterConfig, StrategyKind};
pub use comm::{Comm, IAllreduce, IAllreduceSum, IBarrier, IBcast, RESERVED_TAG_BASE};
pub use pm2_marcel::SchedPolicyKind;
pub use pm2_rma::{RmaEngine, RmaHandle, Window};
