//! Building the whole simulated stack from one configuration.

use pioman::{Pioman, PiomanConfig};
use pm2_coll::CollTuning;
use pm2_fabric::{Fabric, FabricParams, ShmChannel};
use pm2_marcel::{Marcel, MarcelConfig, Priority, ThreadCtx, ThreadId};
use pm2_newmad::{
    AggregStrategy, EngineKind, FifoStrategy, OffloadPolicy, Session, SessionConfig, ShmMsg,
    ShortestFirstStrategy, Strategy, WireMsg,
};
use pm2_rma::RmaEngine;
use pm2_sim::{MetricsRegistry, Sim, SimTime};
use pm2_topo::{NodeId, Topology};
use std::future::Future;
use std::rc::Rc;

/// Which packet-scheduling strategy the sessions use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StrategyKind {
    /// Strict FIFO (one frame per pack).
    #[default]
    Fifo,
    /// Aggregation of small messages ([2]'s optimization).
    Aggreg,
    /// Smallest-payload-first reordering.
    ShortestFirst,
}

impl StrategyKind {
    fn build(self) -> Rc<dyn Strategy> {
        match self {
            StrategyKind::Fifo => Rc::new(FifoStrategy),
            StrategyKind::Aggreg => Rc::new(AggregStrategy::default()),
            StrategyKind::ShortestFirst => Rc::new(ShortestFirstStrategy),
        }
    }
}

/// Everything needed to build a [`Cluster`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes (= MPI ranks).
    pub nodes: usize,
    /// Sockets per node.
    pub sockets_per_node: usize,
    /// Cores per socket.
    pub cores_per_socket: usize,
    /// Progression engine (the paper's comparison axis).
    pub engine: EngineKind,
    /// Independent network rails (NICs per node).
    pub rails: usize,
    /// Distribute traffic over all rails.
    pub multirail: bool,
    /// Packet-scheduling strategy.
    pub strategy: StrategyKind,
    /// RNG seed (runs are deterministic per seed).
    pub seed: u64,
    /// Interconnect cost model.
    pub fabric: FabricParams,
    /// Scheduler cost model.
    pub marcel: MarcelConfig,
    /// PIOMAN behaviour (ignored by the sequential engine).
    pub pioman: PiomanConfig,
    /// Rendezvous threshold (bytes).
    pub rdv_threshold: usize,
    /// Offload-or-inline policy for eager submissions (PIOMAN engine).
    pub offload_policy: OffloadPolicy,
    /// Per-peer unexpected-pool credits (flow control).
    pub credit_bytes_per_peer: usize,
    /// Collective-engine tuning (algorithm selection thresholds).
    pub coll: CollTuning,
}

impl ClusterConfig {
    /// Selects the Marcel scheduling policy by name (see
    /// [`pm2_marcel::SchedPolicyKind::from_name`] for accepted names).
    ///
    /// # Panics
    /// Panics on an unknown policy name.
    pub fn with_sched_policy(mut self, name: &str) -> Self {
        self.marcel.policy = pm2_marcel::SchedPolicyKind::from_name(name)
            .unwrap_or_else(|| panic!("unknown scheduling policy {name:?}"));
        self
    }

    /// The paper's testbed: 2 nodes × dual quad-core, MYRI-10G, with the
    /// given engine.
    pub fn paper_testbed(engine: EngineKind) -> Self {
        ClusterConfig {
            nodes: 2,
            sockets_per_node: 2,
            cores_per_socket: 4,
            engine,
            rails: 1,
            multirail: false,
            strategy: StrategyKind::Fifo,
            seed: 42,
            fabric: FabricParams::myri10g(),
            marcel: MarcelConfig::default(),
            pioman: PiomanConfig::default(),
            rdv_threshold: 32 << 10,
            offload_policy: OffloadPolicy::Always,
            credit_bytes_per_peer: 16 << 20,
            coll: CollTuning::default(),
        }
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig::paper_testbed(EngineKind::Pioman)
    }
}

/// A fully wired simulated cluster.
///
/// # Example
/// ```
/// use pm2_mpi::{Cluster, ClusterConfig};
/// use pm2_newmad::{EngineKind, Tag};
/// use pm2_topo::NodeId;
///
/// let cluster = Cluster::build(ClusterConfig::paper_testbed(EngineKind::Pioman));
/// let tx = cluster.session(0).clone();
/// cluster.spawn_on(0, "tx", move |ctx| async move {
///     tx.send(&ctx, NodeId(1), Tag(1), vec![7; 1024]).await;
/// });
/// let rx = cluster.session(1).clone();
/// cluster.spawn_on(1, "rx", move |ctx| async move {
///     assert_eq!(rx.recv(&ctx, Some(NodeId(0)), Tag(1)).await, vec![7; 1024]);
/// });
/// cluster.run();
/// ```
pub struct Cluster {
    sim: Sim,
    topo: Rc<Topology>,
    engine: EngineKind,
    /// Kept alive so the links persist (NICs hold weak fabric handles).
    #[allow(dead_code)]
    fabrics: Vec<Rc<Fabric<WireMsg>>>,
    marcels: Vec<Marcel>,
    piomans: Vec<Option<Pioman>>,
    sessions: Vec<Session>,
    rmas: Vec<RmaEngine>,
    coll: CollTuning,
}

impl Cluster {
    /// Builds the stack described by `cfg`.
    pub fn build(cfg: ClusterConfig) -> Cluster {
        assert!(cfg.rails >= 1, "need at least one rail");
        let sim = Sim::new(cfg.seed);
        let topo = Rc::new(Topology::new(
            cfg.nodes,
            cfg.sockets_per_node,
            cfg.cores_per_socket,
        ));
        let fabrics: Vec<Rc<Fabric<WireMsg>>> = (0..cfg.rails)
            .map(|_| Fabric::new(sim.clone(), Rc::clone(&topo), cfg.fabric.clone()))
            .collect();
        let mut marcels = Vec::new();
        let mut piomans = Vec::new();
        let mut sessions = Vec::new();
        for n in 0..cfg.nodes {
            let marcel = Marcel::new(sim.clone(), Rc::clone(&topo), NodeId(n), cfg.marcel.clone());
            let pioman = match cfg.engine {
                EngineKind::Pioman => Some(Pioman::new(&marcel, cfg.pioman.clone())),
                EngineKind::Sequential => None,
            };
            let rails = fabrics.iter().map(|f| f.nic(NodeId(n))).collect();
            let shm: Rc<ShmChannel<ShmMsg>> =
                ShmChannel::new(sim.clone(), NodeId(n), cfg.fabric.clone());
            let session = Session::new(
                &marcel,
                rails,
                shm,
                cfg.strategy.build(),
                pioman.clone(),
                SessionConfig {
                    engine: cfg.engine,
                    rdv_threshold: cfg.rdv_threshold,
                    multirail: cfg.multirail,
                    offload_policy: cfg.offload_policy,
                    credit_bytes_per_peer: cfg.credit_bytes_per_peer,
                    ..SessionConfig::default()
                },
            );
            marcels.push(marcel);
            piomans.push(pioman);
            sessions.push(session);
        }
        let rmas = sessions.iter().map(RmaEngine::new).collect();
        Cluster {
            sim,
            topo,
            engine: cfg.engine,
            fabrics,
            marcels,
            piomans,
            sessions,
            rmas,
            coll: cfg.coll,
        }
    }

    /// Collective-engine tuning this cluster was built with.
    pub fn coll_tuning(&self) -> &CollTuning {
        &self.coll
    }

    /// The simulation handle.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// The topology.
    pub fn topology(&self) -> &Rc<Topology> {
        &self.topo
    }

    /// Engine the cluster was built with.
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// Number of ranks (= nodes).
    pub fn ranks(&self) -> usize {
        self.sessions.len()
    }

    /// The scheduler of `node`.
    pub fn marcel(&self, node: usize) -> &Marcel {
        &self.marcels[node]
    }

    /// The PIOMAN server of `node` (None under the sequential engine).
    pub fn pioman(&self, node: usize) -> Option<&Pioman> {
        self.piomans[node].as_ref()
    }

    /// The session of `node`.
    pub fn session(&self, node: usize) -> &Session {
        &self.sessions[node]
    }

    /// The one-sided (RMA) engine of `node`: create windows with
    /// [`RmaEngine::window_create`] and issue `put`/`get`/`accumulate`
    /// against remote windows with passive-target completion.
    pub fn rma(&self, node: usize) -> &RmaEngine {
        &self.rmas[node]
    }

    /// Traffic and fault counters of `node`'s NIC on `rail` (the
    /// fault-scenario tests read injection tallies through this).
    pub fn nic_counters(&self, node: usize, rail: usize) -> pm2_fabric::NicCounters {
        self.fabrics[rail].nic(NodeId(node)).counters()
    }

    /// Registers this cluster's counter families with a pm2-obs
    /// [`MetricsRegistry`]: per-node NewMadeleine counters (`nm.node<i>`),
    /// PIOMAN progression stats (`pioman.node<i>`), per-NIC traffic and
    /// fault counters (`nic.node<i>.rail<r>`) and the request-latency
    /// histograms accumulated by the obs layer (`latency`). Providers pull
    /// live state, so one registration serves every later snapshot.
    pub fn register_metrics(&self, reg: &MetricsRegistry) {
        for n in 0..self.ranks() {
            let session = self.sessions[n].clone();
            reg.register(format!("nm.node{n}"), move || {
                let c = session.counters();
                vec![
                    ("sends".into(), c.sends as f64),
                    ("recvs".into(), c.recvs as f64),
                    ("eager_frames_tx".into(), c.eager_frames_tx as f64),
                    ("eager_msgs_tx".into(), c.eager_msgs_tx as f64),
                    ("unexpected".into(), c.unexpected as f64),
                    ("match_probes".into(), c.match_probes as f64),
                    ("rdv_started".into(), c.rdv_started as f64),
                    ("rdv_completed".into(), c.rdv_completed as f64),
                    ("shm_msgs".into(), c.shm_msgs as f64),
                    ("ooo_deliveries".into(), c.ooo_deliveries as f64),
                    ("seq_lock_contentions".into(), c.seq_lock_contentions as f64),
                    ("credit_fallbacks".into(), c.credit_fallbacks as f64),
                    ("credits_returned".into(), c.credits_returned as f64),
                    ("net_progress".into(), c.net_progress as f64),
                    ("shm_progress".into(), c.shm_progress as f64),
                    ("retransmits".into(), c.retransmits as f64),
                    ("rts_reissues".into(), c.rts_reissues as f64),
                    ("acks_sent".into(), c.acks_sent as f64),
                    ("dup_suppressed".into(), c.dup_suppressed as f64),
                    ("retries_exhausted".into(), c.retries_exhausted as f64),
                    ("rma_puts".into(), c.rma_puts as f64),
                    ("rma_gets".into(), c.rma_gets as f64),
                    ("rma_accs".into(), c.rma_accs as f64),
                    ("rma_applied".into(), c.rma_applied as f64),
                    ("rma_acks_tx".into(), c.rma_acks_tx as f64),
                ]
            });
            if let Some(pioman) = self.piomans[n].clone() {
                reg.register(format!("pioman.node{n}"), move || {
                    let s = pioman.stats();
                    vec![
                        ("inline_progress".into(), s.inline_progress as f64),
                        ("hook_progress".into(), s.hook_progress as f64),
                        ("tasklet_progress".into(), s.tasklet_progress as f64),
                        ("blocking_wakeups".into(), s.blocking_wakeups as f64),
                        ("lock_contentions".into(), s.lock_contentions as f64),
                        ("waits".into(), s.waits as f64),
                        ("max_submission_burst".into(), s.max_submission_burst as f64),
                        ("thread_progress".into(), s.thread_progress as f64),
                    ]
                });
            }
            let marcel = self.marcels[n].clone();
            reg.register(format!("sched.node{n}"), move || {
                let s = marcel.stats();
                let mut kv: Vec<(String, f64)> = vec![
                    ("dispatches".into(), s.dispatches as f64),
                    ("tasklet_runs".into(), s.tasklet_runs as f64),
                    ("tasklet_coalesced".into(), s.tasklet_coalesced as f64),
                    ("hook_sweeps".into(), s.hook_sweeps as f64),
                    ("compute_steals".into(), s.compute_steals as f64),
                    ("timer_ticks".into(), s.timer_ticks as f64),
                    ("local_dispatches".into(), s.local_dispatches as f64),
                    ("cross_socket_steals".into(), s.cross_socket_steals as f64),
                    ("pop_core".into(), s.pop_core as f64),
                    ("pop_local_socket".into(), s.pop_local_socket as f64),
                    ("pop_node".into(), s.pop_node as f64),
                    ("pop_steal".into(), s.pop_steal as f64),
                ];
                for (i, w) in marcel.hook_shard_work().iter().enumerate() {
                    kv.push((format!("hook_shard{i}_work"), *w as f64));
                }
                for (i, w) in marcel.tasklet_shard_work().iter().enumerate() {
                    kv.push((format!("tasklet_shard{i}_work"), *w as f64));
                }
                kv
            });
            for (r, fabric) in self.fabrics.iter().enumerate() {
                let nic = fabric.nic(NodeId(n));
                reg.register(format!("nic.node{n}.rail{r}"), move || {
                    let c = nic.counters();
                    vec![
                        ("tx_frames".into(), c.tx_frames as f64),
                        ("tx_bytes".into(), c.tx_bytes as f64),
                        ("rx_frames".into(), c.rx_frames as f64),
                        ("rx_bytes".into(), c.rx_bytes as f64),
                        ("polls".into(), c.polls as f64),
                        ("faults_dropped".into(), c.faults_dropped as f64),
                        ("faults_duplicated".into(), c.faults_duplicated as f64),
                        ("faults_delayed".into(), c.faults_delayed as f64),
                        ("faults_corrupted".into(), c.faults_corrupted as f64),
                        ("faults_stalled".into(), c.faults_stalled as f64),
                    ]
                });
            }
        }
        let sim = self.sim.clone();
        reg.register("latency", move || {
            sim.obs()
                .latency_snapshot()
                .into_iter()
                .flat_map(|(label, count, p50, p99, p999)| {
                    vec![
                        (format!("{label}.count"), count as f64),
                        (format!("{label}.p50_ns"), p50),
                        (format!("{label}.p99_ns"), p99),
                        (format!("{label}.p999_ns"), p999),
                    ]
                })
                .collect()
        });
    }

    /// Spawns a thread on `node` running `body`.
    pub fn spawn_on<F, Fut>(&self, node: usize, name: impl Into<String>, body: F) -> ThreadId
    where
        F: FnOnce(ThreadCtx) -> Fut + 'static,
        Fut: Future<Output = ()> + 'static,
    {
        self.marcels[node].spawn(name, Priority::Normal, None, body)
    }

    /// Runs the simulation to quiescence; returns the final virtual time.
    pub fn run(&self) -> SimTime {
        self.sim.run()
    }

    /// Runs to quiescence like [`Cluster::run`], but panics if the run
    /// has not converged by virtual time `deadline` — the CI-friendly way
    /// to execute workloads that *should* finish (a wedged protocol fails
    /// the test with a clear message instead of spinning forever).
    /// Cancelled timers past the deadline don't count as pending work
    /// (see [`Sim::run_bounded`]).
    pub fn run_deadline(&self, deadline: SimTime) -> SimTime {
        match self.sim.run_bounded(deadline) {
            Ok(end) => end,
            Err(_) => panic!(
                "simulation still busy at the {deadline} deadline: \
                 protocol wedged (live events pending at t={})",
                self.sim.now()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm2_newmad::Tag;
    use std::cell::RefCell;

    #[test]
    fn paper_testbed_builds_and_communicates() {
        let cluster = Cluster::build(ClusterConfig::default());
        assert_eq!(cluster.ranks(), 2);
        assert_eq!(cluster.topology().cores_per_node(), 8);
        let got = Rc::new(RefCell::new(Vec::new()));
        {
            let s = cluster.session(0).clone();
            cluster.spawn_on(0, "tx", move |ctx| async move {
                let h = s.isend(&ctx, NodeId(1), Tag(1), vec![1, 2, 3]).await;
                s.swait_send(&h, &ctx).await;
            });
        }
        {
            let s = cluster.session(1).clone();
            let got = Rc::clone(&got);
            cluster.spawn_on(1, "rx", move |ctx| async move {
                *got.borrow_mut() = s.recv(&ctx, Some(NodeId(0)), Tag(1)).await;
            });
        }
        cluster.run();
        assert_eq!(*got.borrow(), vec![1, 2, 3]);
    }

    #[test]
    fn sequential_engine_has_no_pioman() {
        let cluster = Cluster::build(ClusterConfig::paper_testbed(EngineKind::Sequential));
        assert!(cluster.pioman(0).is_none());
        assert_eq!(cluster.engine(), EngineKind::Sequential);
    }

    #[test]
    fn deterministic_across_builds() {
        fn run_once() -> u64 {
            let cluster = Cluster::build(ClusterConfig::default());
            let s = cluster.session(0).clone();
            cluster.spawn_on(0, "tx", move |ctx| async move {
                let h = s.isend(&ctx, NodeId(1), Tag(1), vec![7; 4096]).await;
                s.swait_send(&h, &ctx).await;
            });
            let s = cluster.session(1).clone();
            cluster.spawn_on(1, "rx", move |ctx| async move {
                let _ = s.recv(&ctx, Some(NodeId(0)), Tag(1)).await;
            });
            cluster.run().as_nanos()
        }
        assert_eq!(run_once(), run_once());
    }
}
