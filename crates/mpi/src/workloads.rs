//! The paper's benchmark programs, reusable by examples and benches.

use crate::cluster::{Cluster, ClusterConfig};
use pm2_newmad::{NmCounters, Tag};
use pm2_sim::stats::OnlineStats;
use pm2_sim::{SimDuration, SimTime};
use pm2_topo::NodeId;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// CI guard for every workload driver: no benchmark program here should
/// need anywhere near a minute of virtual time (the 16 MB rendezvous
/// takes ~15 ms), so a run still busy at this horizon is a wedged
/// protocol and fails loudly instead of spinning the host CPU forever.
const WORKLOAD_DEADLINE: SimTime = SimTime::from_secs(60);

/// Parameters of the Figure 4 overlap microbenchmark.
#[derive(Debug, Clone)]
pub struct OverlapParams {
    /// Message payload in bytes.
    pub msg_len: usize,
    /// Computation inserted between `isend`/`irecv` and `swait`.
    pub compute: SimDuration,
    /// Measured iterations.
    pub iters: usize,
    /// Discarded warm-up iterations.
    pub warmup: usize,
}

impl Default for OverlapParams {
    fn default() -> Self {
        OverlapParams {
            msg_len: 8 << 10,
            compute: SimDuration::from_micros(20),
            iters: 20,
            warmup: 3,
        }
    }
}

/// Result of the overlap benchmark: per-direction "sending time".
#[derive(Debug, Clone)]
pub struct OverlapResult {
    /// Statistics of the half-round time in µs (the paper's y-axis).
    pub half_round_us: OnlineStats,
    /// Sender-node session counters at the end.
    pub counters: NmCounters,
    /// Productive progress steps per driver shard on the sender node, in
    /// registration order (one entry per rail, then shared memory).
    pub driver_progress: Vec<u64>,
}

/// Runs the Figure 4 program on a fresh cluster built from `cfg`.
///
/// ```text
/// get_time(t1);  nm_isend(len);  compute();  nm_swait();  get_time(t2);
/// ```
///
/// Both sides run the loop symmetrically (node 0 sends first, then the
/// direction reverses), so a full round contains one sender-side pattern
/// and one receiver-side pattern per node; the reported value is the
/// half-round, "which roughly corresponds to half the latency" (§4.1)
/// plus whatever part of the computation was not overlapped.
pub fn run_overlap(cfg: ClusterConfig, p: &OverlapParams) -> OverlapResult {
    assert!(cfg.nodes >= 2, "overlap benchmark needs two nodes");
    let cluster = Cluster::build(cfg);
    let stats = Rc::new(RefCell::new(OnlineStats::new()));
    let total = p.iters + p.warmup;
    let (len, compute, warmup) = (p.msg_len, p.compute, p.warmup);

    {
        let s = cluster.session(0).clone();
        let stats = Rc::clone(&stats);
        cluster.spawn_on(0, "overlap-0", move |ctx| async move {
            for i in 0..total {
                let t1 = ctx.marcel().sim().now();
                // Outbound direction: we are the sender.
                let h = s
                    .isend(&ctx, NodeId(1), Tag(2 * i as u64), vec![0xa5; len])
                    .await;
                ctx.compute(compute).await;
                s.swait_send(&h, &ctx).await;
                // Return direction: we are the receiver.
                let hr = s.irecv(&ctx, Some(NodeId(1)), Tag(2 * i as u64 + 1)).await;
                ctx.compute(compute).await;
                let _ = s.swait_recv(&hr, &ctx).await;
                let t2 = ctx.marcel().sim().now();
                if i >= warmup {
                    stats
                        .borrow_mut()
                        .record(t2.saturating_since(t1).as_micros_f64() / 2.0);
                }
            }
        });
    }
    {
        let s = cluster.session(1).clone();
        cluster.spawn_on(1, "overlap-1", move |ctx| async move {
            for i in 0..total {
                let hr = s.irecv(&ctx, Some(NodeId(0)), Tag(2 * i as u64)).await;
                ctx.compute(compute).await;
                let _ = s.swait_recv(&hr, &ctx).await;
                let h = s
                    .isend(&ctx, NodeId(0), Tag(2 * i as u64 + 1), vec![0x5a; len])
                    .await;
                ctx.compute(compute).await;
                s.swait_send(&h, &ctx).await;
            }
        });
    }
    cluster.run_deadline(WORKLOAD_DEADLINE);
    OverlapResult {
        half_round_us: Rc::try_unwrap(stats).expect("sole owner").into_inner(),
        counters: cluster.session(0).counters(),
        driver_progress: cluster.session(0).driver_progress(),
    }
}

/// Result of the ping-pong benchmark at one message size.
#[derive(Debug, Clone)]
pub struct PingPongResult {
    /// Half-round-trip latency statistics (µs).
    pub latency_us: OnlineStats,
    /// Effective bandwidth in MB/s derived from the mean latency.
    pub bandwidth_mbs: f64,
    /// Productive progress steps per driver shard on rank 0, in
    /// registration order (one entry per rail, then shared memory).
    pub driver_progress: Vec<u64>,
}

/// Classic ping-pong: rank 0 sends, rank 1 echoes, half the round trip is
/// the latency. No computation — this produces the NetPIPE-style
/// latency/bandwidth curve used as the "no computation (reference)"
/// series and by the `bandwidth` reproduction binary.
pub fn run_pingpong(cfg: ClusterConfig, msg_len: usize, iters: usize) -> PingPongResult {
    assert!(cfg.nodes >= 2, "ping-pong needs two nodes");
    let cluster = Cluster::build(cfg);
    let stats = Rc::new(RefCell::new(OnlineStats::new()));
    let warmup = 2usize;
    {
        let s = cluster.session(0).clone();
        let stats = Rc::clone(&stats);
        cluster.spawn_on(0, "ping", move |ctx| async move {
            for i in 0..iters + warmup {
                let t1 = ctx.marcel().sim().now();
                let h = s
                    .isend(&ctx, NodeId(1), Tag(2 * i as u64), vec![0xaa; msg_len])
                    .await;
                s.swait_send(&h, &ctx).await;
                let _ = s.recv(&ctx, Some(NodeId(1)), Tag(2 * i as u64 + 1)).await;
                let t2 = ctx.marcel().sim().now();
                if i >= warmup {
                    stats
                        .borrow_mut()
                        .record(t2.saturating_since(t1).as_micros_f64() / 2.0);
                }
            }
        });
    }
    {
        let s = cluster.session(1).clone();
        cluster.spawn_on(1, "pong", move |ctx| async move {
            for i in 0..iters + warmup {
                let data = s.recv(&ctx, Some(NodeId(0)), Tag(2 * i as u64)).await;
                let h = s.isend(&ctx, NodeId(0), Tag(2 * i as u64 + 1), data).await;
                s.swait_send(&h, &ctx).await;
            }
        });
    }
    cluster.run_deadline(WORKLOAD_DEADLINE);
    let driver_progress = cluster.session(0).driver_progress();
    let latency_us = Rc::try_unwrap(stats).expect("sole owner").into_inner();
    let mean = latency_us.mean();
    let bandwidth_mbs = if mean > 0.0 {
        msg_len as f64 / mean // B/µs == MB/s
    } else {
        0.0
    };
    PingPongResult {
        latency_us,
        bandwidth_mbs,
        driver_progress,
    }
}

/// Parameters of the Figure 7/8 convolution-style meta-application.
#[derive(Debug, Clone)]
pub struct StencilParams {
    /// Thread-grid columns (split across the nodes, Figure 8).
    pub grid_cols: usize,
    /// Thread-grid rows.
    pub grid_rows: usize,
    /// Halo message payload per neighbour, in bytes (below the rendezvous
    /// threshold in the paper's Table 1 runs).
    pub halo_bytes: usize,
    /// Time to compute a domain frontier (before the sends).
    pub frontier_compute: SimDuration,
    /// Time to compute the domain interior (overlap window).
    pub interior_compute: SimDuration,
    /// Iterations of the convolution loop.
    pub iters: usize,
}

impl StencilParams {
    /// The paper's 4-thread configuration (2×2 grid over 2 nodes),
    /// calibrated so the sequential engine lands near Table 1's 441 µs.
    pub fn four_threads() -> Self {
        StencilParams {
            grid_cols: 2,
            grid_rows: 2,
            halo_bytes: 28 << 10,
            frontier_compute: SimDuration::from_micros(40),
            interior_compute: SimDuration::from_micros(150),
            iters: 2,
        }
    }

    /// The paper's 16-thread configuration (4×4 grid, Figure 8). The
    /// matrix is 4× bigger; with the halo capped by the eager threshold,
    /// the extra data volume is modelled as one more exchange round.
    pub fn sixteen_threads() -> Self {
        StencilParams {
            grid_cols: 4,
            grid_rows: 4,
            halo_bytes: 28 << 10,
            frontier_compute: SimDuration::from_micros(40),
            interior_compute: SimDuration::from_micros(150),
            iters: 3,
        }
    }

    /// Total threads.
    pub fn threads(&self) -> usize {
        self.grid_cols * self.grid_rows
    }
}

/// Result of the meta-application run.
#[derive(Debug, Clone)]
pub struct StencilResult {
    /// Wall time (µs) from start until the last thread finished.
    pub total_us: f64,
    /// Aggregated session counters over all nodes.
    pub counters: Vec<NmCounters>,
}

/// Runs the convolution meta-application (Figure 7 per-thread program,
/// Figure 8 thread layout) on a fresh cluster built from `cfg`.
///
/// Threads are laid out row-major on a `grid_rows × grid_cols` grid; the
/// grid columns are split evenly across the nodes, so vertical neighbours
/// communicate intra-node (shared memory) and horizontal neighbours across
/// the split communicate inter-node (NIC) — both kinds exist, as in §4.3.
pub fn run_stencil(cfg: ClusterConfig, p: &StencilParams) -> StencilResult {
    let nodes = cfg.nodes;
    assert!(p.grid_cols % nodes == 0, "columns must split evenly");
    let cluster = Cluster::build(cfg);
    let end_max = Rc::new(Cell::new(0u64));
    let nthreads = p.threads() as u64;
    let node_of_col = move |c: usize| c * nodes / p.grid_cols;

    for row in 0..p.grid_rows {
        for col in 0..p.grid_cols {
            let me = (row * p.grid_cols + col) as u64;
            let node = node_of_col(col);
            let session = cluster.session(node).clone();
            let end_max = Rc::clone(&end_max);
            let p = p.clone();
            let mut neighbours = Vec::new();
            if row > 0 {
                neighbours.push(((row - 1) * p.grid_cols + col, node_of_col(col)));
            }
            if row + 1 < p.grid_rows {
                neighbours.push(((row + 1) * p.grid_cols + col, node_of_col(col)));
            }
            if col > 0 {
                neighbours.push((row * p.grid_cols + col - 1, node_of_col(col - 1)));
            }
            if col + 1 < p.grid_cols {
                neighbours.push((row * p.grid_cols + col + 1, node_of_col(col + 1)));
            }
            cluster.spawn_on(node, format!("stencil-{me}"), move |ctx| async move {
                let tag = |iter: usize, from: u64, to: u64| {
                    Tag((iter as u64 * nthreads + from) * nthreads + to)
                };
                for iter in 0..p.iters {
                    // Figure 7: compute1(); isend; compute2(); swait; recv.
                    ctx.compute(p.frontier_compute).await;
                    let mut sends = Vec::new();
                    for &(nb, nb_node) in &neighbours {
                        let h = session
                            .isend(
                                &ctx,
                                NodeId(nb_node),
                                tag(iter, me, nb as u64),
                                vec![me as u8; p.halo_bytes],
                            )
                            .await;
                        sends.push(h);
                    }
                    ctx.compute(p.interior_compute).await;
                    for h in &sends {
                        session.swait_send(h, &ctx).await;
                    }
                    for &(nb, _) in &neighbours {
                        let data = session.recv(&ctx, None, tag(iter, nb as u64, me)).await;
                        debug_assert_eq!(data.len(), p.halo_bytes);
                        debug_assert!(data.iter().all(|&b| b == nb as u8));
                    }
                }
                let t = ctx.marcel().sim().now().as_nanos();
                end_max.set(end_max.get().max(t));
            });
        }
    }
    cluster.run_deadline(WORKLOAD_DEADLINE);
    StencilResult {
        total_us: end_max.get() as f64 / 1_000.0,
        counters: (0..cluster.ranks())
            .map(|n| cluster.session(n).counters())
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm2_newmad::EngineKind;

    #[test]
    fn overlap_pioman_hides_communication() {
        let p = OverlapParams {
            msg_len: 8 << 10,
            compute: SimDuration::from_micros(20),
            iters: 10,
            warmup: 2,
        };
        let pio = run_overlap(ClusterConfig::paper_testbed(EngineKind::Pioman), &p);
        let seq = run_overlap(ClusterConfig::paper_testbed(EngineKind::Sequential), &p);
        let pio_t = pio.half_round_us.mean();
        let seq_t = seq.half_round_us.mean();
        // 8 kB comm ≈ 11µs < 20µs compute: Pioman ≈ max ≈ 20-23µs,
        // sequential ≈ sum ≈ 30µs+.
        assert!(pio_t < 25.0, "pioman half-round {pio_t}µs");
        assert!(seq_t > pio_t + 4.0, "seq {seq_t} vs pioman {pio_t}");
    }

    #[test]
    fn overlap_reference_without_compute_is_comm_bound() {
        let p = OverlapParams {
            msg_len: 1 << 10,
            compute: SimDuration::ZERO,
            iters: 10,
            warmup: 2,
        };
        let r = run_overlap(ClusterConfig::paper_testbed(EngineKind::Pioman), &p);
        let t = r.half_round_us.mean();
        assert!(t > 2.0 && t < 12.0, "1K reference {t}µs");
    }

    #[test]
    fn pingpong_shards_progress_per_transport() {
        let cluster = Cluster::build(ClusterConfig::paper_testbed(EngineKind::Pioman));
        for node in 0..2 {
            let s = cluster.session(node).clone();
            let peer = NodeId(1 - node);
            cluster.spawn_on(node, "pp", move |ctx| async move {
                for i in 0..8u64 {
                    if ctx.marcel().node() == NodeId(0) {
                        s.send(&ctx, peer, Tag(2 * i), vec![0; 1 << 10]).await;
                        let _ = s.recv(&ctx, Some(peer), Tag(2 * i + 1)).await;
                    } else {
                        let _ = s.recv(&ctx, Some(peer), Tag(2 * i)).await;
                        s.send(&ctx, peer, Tag(2 * i + 1), vec![0; 1 << 10]).await;
                    }
                }
            });
        }
        cluster.run();
        let pioman = cluster.pioman(0).expect("pioman engine");
        // One driver per rail plus the shared-memory driver.
        assert_eq!(pioman.driver_count(), 2);
        // Pure inter-node traffic: all progress lands on the rail shard.
        let work = cluster.session(0).driver_progress();
        assert!(work[0] > 0, "rail shard idle: {work:?}");
        assert_eq!(work[1], 0, "shm shard should be idle: {work:?}");
        let c = cluster.session(0).counters();
        assert_eq!(c.net_progress, work[0]);
        assert_eq!(c.shm_progress, 0);
        // The submission burst valve never engages in a ping-pong.
        assert!(
            pioman.stats().max_submission_burst < 64,
            "burst {}",
            pioman.stats().max_submission_burst
        );
    }

    #[test]
    fn stencil_four_threads_offloading_beats_sequential() {
        let p = StencilParams::four_threads();
        let seq = run_stencil(ClusterConfig::paper_testbed(EngineKind::Sequential), &p);
        let pio = run_stencil(ClusterConfig::paper_testbed(EngineKind::Pioman), &p);
        assert!(
            pio.total_us < seq.total_us,
            "offloading {:.0}µs should beat no-offloading {:.0}µs",
            pio.total_us,
            seq.total_us
        );
        // Both intra-node and inter-node traffic happened.
        let c0 = &seq.counters[0];
        assert!(c0.shm_msgs > 0, "intra-node traffic expected");
        assert!(c0.eager_msgs_tx > 0, "inter-node traffic expected");
    }

    #[test]
    fn stencil_sixteen_threads_runs_and_overlaps() {
        let p = StencilParams {
            iters: 1,
            ..StencilParams::sixteen_threads()
        };
        let seq = run_stencil(ClusterConfig::paper_testbed(EngineKind::Sequential), &p);
        let pio = run_stencil(ClusterConfig::paper_testbed(EngineKind::Pioman), &p);
        assert!(pio.total_us < seq.total_us);
    }
}
