//! Rank-oriented communication: the mini-MPI facade.

use crate::cluster::Cluster;
use pm2_marcel::ThreadCtx;
use pm2_newmad::{RecvHandle, SendHandle, Session, Tag};
use pm2_topo::NodeId;
use std::cell::Cell;
use std::rc::Rc;

/// Reserved tag space for collectives; application tags must stay below.
pub const RESERVED_TAG_BASE: u64 = 1 << 60;
const BARRIER_TAG: u64 = RESERVED_TAG_BASE;
const REDUCE_TAG: u64 = RESERVED_TAG_BASE + (1 << 58);
const BCAST_TAG: u64 = RESERVED_TAG_BASE + (2 << 58);
const GATHER_TAG: u64 = RESERVED_TAG_BASE + (3 << 58);
const ALLTOALL_TAG: u64 = RESERVED_TAG_BASE + (1 << 57);

/// A per-rank communicator (one MPI process per node).
///
/// Clone one `Comm` per rank from [`Comm::world`]; collectives must be
/// called by exactly one thread per rank, in the same order on every rank
/// (the usual MPI contract).
#[derive(Clone)]
pub struct Comm {
    rank: usize,
    ranks: usize,
    session: Session,
    /// Collective generation counter (disambiguates successive barriers).
    generation: Rc<Cell<u64>>,
}

impl Comm {
    /// Builds one communicator per rank of `cluster`.
    pub fn world(cluster: &Cluster) -> Vec<Comm> {
        (0..cluster.ranks())
            .map(|rank| Comm {
                rank,
                ranks: cluster.ranks(),
                session: cluster.session(rank).clone(),
                generation: Rc::new(Cell::new(0)),
            })
            .collect()
    }

    /// This communicator's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.ranks
    }

    /// The underlying session.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Non-blocking send to `dest` rank.
    ///
    /// # Panics
    /// Panics if `tag` intrudes into the reserved collective space.
    pub async fn isend(&self, ctx: &ThreadCtx, dest: usize, tag: Tag, data: Vec<u8>) -> SendHandle {
        assert!(tag.0 < RESERVED_TAG_BASE, "tag {tag} is reserved");
        self.session.isend(ctx, NodeId(dest), tag, data).await
    }

    /// Non-blocking receive from `src` rank (`None`: any source).
    pub async fn irecv(&self, ctx: &ThreadCtx, src: Option<usize>, tag: Tag) -> RecvHandle {
        assert!(tag.0 < RESERVED_TAG_BASE, "tag {tag} is reserved");
        self.session.irecv(ctx, src.map(NodeId), tag).await
    }

    /// Blocking receive.
    pub async fn recv(&self, ctx: &ThreadCtx, src: Option<usize>, tag: Tag) -> Vec<u8> {
        let h = self.irecv(ctx, src, tag).await;
        self.session.swait_recv(&h, ctx).await
    }

    /// Waits on a send handle.
    pub async fn wait_send(&self, h: &SendHandle, ctx: &ThreadCtx) {
        self.session.swait_send(h, ctx).await;
    }

    /// Waits on a receive handle and returns the payload.
    pub async fn wait_recv(&self, h: &RecvHandle, ctx: &ThreadCtx) -> Vec<u8> {
        self.session.swait_recv(h, ctx).await
    }

    fn next_generation(&self) -> u64 {
        let g = self.generation.get();
        self.generation.set(g + 1);
        g
    }

    /// Flat barrier: gather-to-0 then release.
    pub async fn barrier(&self, ctx: &ThreadCtx) {
        let gen = self.next_generation();
        let tag = Tag(BARRIER_TAG + gen % (1 << 20));
        if self.rank == 0 {
            for _ in 1..self.ranks {
                let h = self.session.irecv(ctx, None, tag).await;
                self.session.swait_recv(&h, ctx).await;
            }
            for r in 1..self.ranks {
                let h = self.session.isend(ctx, NodeId(r), tag, vec![0]).await;
                self.session.swait_send(&h, ctx).await;
            }
        } else {
            let h = self.session.isend(ctx, NodeId(0), tag, vec![0]).await;
            self.session.swait_send(&h, ctx).await;
            let h = self.session.irecv(ctx, Some(NodeId(0)), tag).await;
            self.session.swait_recv(&h, ctx).await;
        }
    }

    /// Broadcast from `root`: the root's `data` reaches every rank.
    ///
    /// Binomial-tree distribution (log₂ rounds).
    pub async fn bcast(&self, ctx: &ThreadCtx, root: usize, mut data: Vec<u8>) -> Vec<u8> {
        let gen = self.next_generation();
        let tag = Tag(BCAST_TAG + gen % (1 << 20));
        // Re-number ranks so the root is virtual rank 0.
        let vrank = (self.rank + self.ranks - root) % self.ranks;
        let mut mask = 1usize;
        // Receive phase: wait for our parent in the binomial tree.
        while mask < self.ranks {
            if vrank & mask != 0 {
                let parent = (vrank - mask + root) % self.ranks;
                let h = self.session.irecv(ctx, Some(NodeId(parent)), tag).await;
                data = self.session.swait_recv(&h, ctx).await;
                break;
            }
            mask <<= 1;
        }
        // Send phase: fan out to our children.
        mask >>= 1;
        while mask > 0 {
            if vrank + mask < self.ranks {
                let child = (vrank + mask + root) % self.ranks;
                let h = self
                    .session
                    .isend(ctx, NodeId(child), tag, data.clone())
                    .await;
                self.session.swait_send(&h, ctx).await;
            }
            mask >>= 1;
        }
        data
    }

    /// Gather to `root`: returns `Some(vec-of-per-rank-buffers)` on the
    /// root, `None` elsewhere.
    pub async fn gather(
        &self,
        ctx: &ThreadCtx,
        root: usize,
        data: Vec<u8>,
    ) -> Option<Vec<Vec<u8>>> {
        let gen = self.next_generation();
        if self.rank == root {
            let mut out: Vec<Vec<u8>> = vec![Vec::new(); self.ranks];
            out[root] = data;
            for (r, slot) in out.iter_mut().enumerate() {
                if r == root {
                    continue;
                }
                let tag = Tag(GATHER_TAG + (gen % (1 << 16)) * 64 + r as u64);
                let h = self.session.irecv(ctx, Some(NodeId(r)), tag).await;
                *slot = self.session.swait_recv(&h, ctx).await;
            }
            Some(out)
        } else {
            let tag = Tag(GATHER_TAG + (gen % (1 << 16)) * 64 + self.rank as u64);
            let h = self.session.isend(ctx, NodeId(root), tag, data).await;
            self.session.swait_send(&h, ctx).await;
            None
        }
    }

    /// All-to-all personalized exchange: `data[r]` goes to rank `r`;
    /// returns the buffers received from each rank (own slot passed
    /// through).
    ///
    /// # Panics
    /// Panics if `data.len() != self.size()`.
    pub async fn alltoall(&self, ctx: &ThreadCtx, mut data: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        assert_eq!(data.len(), self.ranks, "alltoall needs one buffer per rank");
        let gen = self.next_generation();
        let tag_for = |from: usize, to: usize| {
            Tag(ALLTOALL_TAG + ((gen % (1 << 12)) * 4096 + (from * 64 + to) as u64))
        };
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); self.ranks];
        out[self.rank] = std::mem::take(&mut data[self.rank]);
        // Post all receives first, then all sends, then drain.
        let mut recvs = Vec::new();
        for r in 0..self.ranks {
            if r == self.rank {
                continue;
            }
            recvs.push((
                r,
                self.session
                    .irecv(ctx, Some(NodeId(r)), tag_for(r, self.rank))
                    .await,
            ));
        }
        let mut sends = Vec::new();
        for (r, buf) in data.into_iter().enumerate() {
            if r == self.rank {
                continue;
            }
            sends.push(
                self.session
                    .isend(ctx, NodeId(r), tag_for(self.rank, r), buf)
                    .await,
            );
        }
        for h in &sends {
            self.session.swait_send(h, ctx).await;
        }
        for (r, h) in recvs {
            out[r] = self.session.swait_recv(&h, ctx).await;
        }
        out
    }

    /// Sum-allreduce of a u64 (gather to rank 0, broadcast the total).
    pub async fn allreduce_sum(&self, ctx: &ThreadCtx, value: u64) -> u64 {
        let gen = self.next_generation();
        let tag = Tag(REDUCE_TAG + gen % (1 << 20));
        let btag = Tag(BCAST_TAG + gen % (1 << 20));
        if self.rank == 0 {
            let mut total = value;
            for _ in 1..self.ranks {
                let h = self.session.irecv(ctx, None, tag).await;
                let v = self.session.swait_recv(&h, ctx).await;
                total += u64::from_le_bytes(v.try_into().expect("8-byte payload"));
            }
            for r in 1..self.ranks {
                let h = self
                    .session
                    .isend(ctx, NodeId(r), btag, total.to_le_bytes().to_vec())
                    .await;
                self.session.swait_send(&h, ctx).await;
            }
            total
        } else {
            let h = self
                .session
                .isend(ctx, NodeId(0), tag, value.to_le_bytes().to_vec())
                .await;
            self.session.swait_send(&h, ctx).await;
            let h = self.session.irecv(ctx, Some(NodeId(0)), btag).await;
            let v = self.session.swait_recv(&h, ctx).await;
            u64::from_le_bytes(v.try_into().expect("8-byte payload"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use std::cell::RefCell;

    #[test]
    fn barrier_synchronizes_ranks() {
        let cluster = Cluster::build(ClusterConfig::default());
        let comms = Comm::world(&cluster);
        let log = Rc::new(RefCell::new(Vec::new()));
        for (rank, comm) in comms.into_iter().enumerate() {
            let log = Rc::clone(&log);
            cluster.spawn_on(rank, format!("rank{rank}"), move |ctx| async move {
                // Rank 1 works 50µs before the barrier; both must leave
                // the barrier only after that.
                if comm.rank() == 1 {
                    ctx.compute(pm2_sim::SimDuration::from_micros(50)).await;
                }
                log.borrow_mut().push(format!("enter{}", comm.rank()));
                comm.barrier(&ctx).await;
                let t = ctx.marcel().sim().now().as_micros();
                assert!(t >= 50, "left barrier at {t}µs");
                log.borrow_mut().push(format!("exit{}", comm.rank()));
            });
        }
        cluster.run();
        assert_eq!(log.borrow().len(), 4);
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let cluster = Cluster::build(ClusterConfig {
            nodes: 3,
            ..ClusterConfig::default()
        });
        let comms = Comm::world(&cluster);
        let results = Rc::new(RefCell::new(Vec::new()));
        for (rank, comm) in comms.into_iter().enumerate() {
            let results = Rc::clone(&results);
            cluster.spawn_on(rank, format!("rank{rank}"), move |ctx| async move {
                let total = comm
                    .allreduce_sum(&ctx, (comm.rank() as u64 + 1) * 10)
                    .await;
                results.borrow_mut().push(total);
            });
        }
        cluster.run();
        assert_eq!(*results.borrow(), vec![60, 60, 60]);
    }

    #[test]
    fn repeated_barriers_do_not_cross_talk() {
        let cluster = Cluster::build(ClusterConfig::default());
        let comms = Comm::world(&cluster);
        let counter = Rc::new(Cell::new(0u32));
        for (rank, comm) in comms.into_iter().enumerate() {
            let counter = Rc::clone(&counter);
            cluster.spawn_on(rank, format!("rank{rank}"), move |ctx| async move {
                for i in 0..5 {
                    if comm.rank() == 0 {
                        ctx.compute(pm2_sim::SimDuration::from_micros(i * 3 + 1))
                            .await;
                    }
                    comm.barrier(&ctx).await;
                    counter.set(counter.get() + 1);
                }
            });
        }
        cluster.run();
        assert_eq!(counter.get(), 10);
    }

    #[test]
    fn bcast_reaches_all_ranks_from_any_root() {
        for root in 0..3 {
            let cluster = Cluster::build(ClusterConfig {
                nodes: 3,
                ..ClusterConfig::default()
            });
            let comms = Comm::world(&cluster);
            let got = Rc::new(RefCell::new(vec![Vec::new(); 3]));
            for (rank, comm) in comms.into_iter().enumerate() {
                let got = Rc::clone(&got);
                cluster.spawn_on(rank, format!("r{rank}"), move |ctx| async move {
                    let data = if comm.rank() == root {
                        vec![root as u8; 1000]
                    } else {
                        Vec::new()
                    };
                    let out = comm.bcast(&ctx, root, data).await;
                    got.borrow_mut()[comm.rank()] = out;
                });
            }
            cluster.run();
            for r in 0..3 {
                assert_eq!(
                    got.borrow()[r],
                    vec![root as u8; 1000],
                    "root {root} rank {r}"
                );
            }
        }
    }

    #[test]
    fn gather_collects_per_rank_buffers() {
        let cluster = Cluster::build(ClusterConfig {
            nodes: 4,
            ..ClusterConfig::default()
        });
        let comms = Comm::world(&cluster);
        let result = Rc::new(RefCell::new(None));
        for (rank, comm) in comms.into_iter().enumerate() {
            let result = Rc::clone(&result);
            cluster.spawn_on(rank, format!("r{rank}"), move |ctx| async move {
                let out = comm
                    .gather(&ctx, 1, vec![comm.rank() as u8; 10 + comm.rank()])
                    .await;
                if comm.rank() == 1 {
                    *result.borrow_mut() = out;
                } else {
                    assert!(out.is_none());
                }
            });
        }
        cluster.run();
        let r = result.borrow();
        let bufs = r.as_ref().expect("root collected");
        for (rank, buf) in bufs.iter().enumerate() {
            assert_eq!(buf, &vec![rank as u8; 10 + rank]);
        }
    }

    #[test]
    fn alltoall_exchanges_everything() {
        let cluster = Cluster::build(ClusterConfig {
            nodes: 3,
            ..ClusterConfig::default()
        });
        let comms = Comm::world(&cluster);
        let got = Rc::new(RefCell::new(vec![Vec::new(); 3]));
        for (rank, comm) in comms.into_iter().enumerate() {
            let got = Rc::clone(&got);
            cluster.spawn_on(rank, format!("r{rank}"), move |ctx| async move {
                let me = comm.rank();
                let outbound: Vec<Vec<u8>> = (0..comm.size())
                    .map(|to| vec![(me * 10 + to) as u8; 64])
                    .collect();
                let inbound = comm.alltoall(&ctx, outbound).await;
                got.borrow_mut()[me] = inbound
                    .iter()
                    .map(|b| b.first().copied().unwrap_or(255))
                    .collect();
            });
        }
        cluster.run();
        for me in 0..3 {
            let expected: Vec<u8> = (0..3).map(|from| (from * 10 + me) as u8).collect();
            assert_eq!(got.borrow()[me], expected, "rank {me}");
        }
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn reserved_tags_rejected() {
        let cluster = Cluster::build(ClusterConfig::default());
        let comms = Comm::world(&cluster);
        let comm = comms[0].clone();
        cluster.spawn_on(0, "bad", move |ctx| async move {
            let _ = comm.isend(&ctx, 1, Tag(RESERVED_TAG_BASE), vec![]).await;
        });
        cluster.run();
    }
}
