//! Rank-oriented communication: the mini-MPI facade.
//!
//! Point-to-point calls go straight to the session; collectives delegate
//! to the [`pm2_coll`] engine, which plans each one as a DAG of
//! point-to-point steps (binomial tree, ring, recursive doubling or the
//! flat reference shape — auto-selected by payload size and rank count,
//! see [`CollTuning`](pm2_coll::CollTuning)) and drives it through
//! PIOMAN progression. Every blocking collective has a nonblocking `i*`
//! twin returning a handle, so communication overlaps application
//! compute.

use crate::cluster::Cluster;
use pm2_coll::{AlgoKind, CollCounters, CollEngine, CollHandle, CollKind, ReduceOp};
use pm2_marcel::ThreadCtx;
use pm2_newmad::{RecvHandle, SendHandle, Session, Tag};
use pm2_topo::NodeId;

pub use pm2_coll::RESERVED_TAG_BASE;

/// A per-rank communicator (one MPI process per node).
///
/// Clone one `Comm` per rank from [`Comm::world`]; collectives must be
/// called by exactly one thread per rank, in the same order on every rank
/// (the usual MPI contract — the collective tag generations rely on it).
///
/// Reduction-style collectives additionally require the payload length to
/// be identical on every rank (the auto-selector and the ring
/// segmentation key on it). [`Comm::gather`] tolerates ragged lengths,
/// but then contributions must stay in the same selection size class —
/// or force one algorithm via
/// [`CollTuning::force`](pm2_coll::CollTuning::force).
#[derive(Clone)]
pub struct Comm {
    rank: usize,
    ranks: usize,
    session: Session,
    engine: CollEngine,
}

impl Comm {
    /// Builds one communicator per rank of `cluster`.
    pub fn world(cluster: &Cluster) -> Vec<Comm> {
        (0..cluster.ranks())
            .map(|rank| Comm {
                rank,
                ranks: cluster.ranks(),
                session: cluster.session(rank).clone(),
                engine: CollEngine::new(
                    cluster.session(rank).clone(),
                    rank,
                    cluster.ranks(),
                    cluster.coll_tuning().clone(),
                ),
            })
            .collect()
    }

    /// This communicator's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.ranks
    }

    /// The underlying session.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The collective engine (algorithm selection, counters).
    pub fn coll_engine(&self) -> &CollEngine {
        &self.engine
    }

    /// Snapshot of this rank's collective counters (steps, chunks, bytes,
    /// overlap time).
    pub fn coll_counters(&self) -> CollCounters {
        self.engine.counters()
    }

    /// Registers this rank's collective counters with a pm2-obs
    /// [`MetricsRegistry`](pm2_sim::MetricsRegistry) as group
    /// `coll.rank<r>`, completing the unified snapshot started by
    /// [`Cluster::register_metrics`].
    pub fn register_metrics(&self, reg: &pm2_sim::MetricsRegistry) {
        let engine = self.engine.clone();
        reg.register(format!("coll.rank{}", self.rank), move || {
            let c = engine.counters();
            vec![
                ("collectives".into(), c.collectives as f64),
                ("nonblocking".into(), c.nonblocking as f64),
                ("steps".into(), c.steps as f64),
                ("sends".into(), c.sends as f64),
                ("recvs".into(), c.recvs as f64),
                ("chunks".into(), c.chunks as f64),
                ("bytes_sent".into(), c.bytes_sent as f64),
                ("bytes_recv".into(), c.bytes_recv as f64),
                ("overlap_ns".into(), c.overlap_ns as f64),
            ]
        });
    }

    /// Non-blocking send to `dest` rank.
    ///
    /// # Panics
    /// Panics if `tag` intrudes into the reserved collective space.
    pub async fn isend(&self, ctx: &ThreadCtx, dest: usize, tag: Tag, data: Vec<u8>) -> SendHandle {
        pm2_coll::tags::assert_app_tag(tag);
        self.session.isend(ctx, NodeId(dest), tag, data).await
    }

    /// Non-blocking receive from `src` rank (`None`: any source).
    pub async fn irecv(&self, ctx: &ThreadCtx, src: Option<usize>, tag: Tag) -> RecvHandle {
        pm2_coll::tags::assert_app_tag(tag);
        self.session.irecv(ctx, src.map(NodeId), tag).await
    }

    /// Blocking receive.
    pub async fn recv(&self, ctx: &ThreadCtx, src: Option<usize>, tag: Tag) -> Vec<u8> {
        let h = self.irecv(ctx, src, tag).await;
        self.session.swait_recv(&h, ctx).await
    }

    /// Waits on a send handle.
    pub async fn wait_send(&self, h: &SendHandle, ctx: &ThreadCtx) {
        self.session.swait_send(h, ctx).await;
    }

    /// Waits on a receive handle and returns the payload.
    pub async fn wait_recv(&self, h: &RecvHandle, ctx: &ThreadCtx) -> Vec<u8> {
        self.session.swait_recv(h, ctx).await
    }

    // ------------------------------------------------------ collectives --

    /// Barrier (auto-selected algorithm; dissemination by default).
    pub async fn barrier(&self, ctx: &ThreadCtx) {
        self.barrier_with(ctx, None).await;
    }

    /// Barrier through a forced algorithm (`None`: auto-select).
    pub async fn barrier_with(&self, ctx: &ThreadCtx, algo: Option<AlgoKind>) {
        self.engine
            .coll(ctx, CollKind::Barrier, 0, Vec::new(), algo)
            .await;
    }

    /// Nonblocking barrier.
    pub fn ibarrier(&self, ctx: &ThreadCtx) -> IBarrier {
        IBarrier(
            self.engine
                .icoll(ctx, CollKind::Barrier, 0, Vec::new(), None),
        )
    }

    /// Broadcast from `root`: the root's `data` reaches every rank
    /// (binomial tree by default; non-roots may pass an empty buffer).
    pub async fn bcast(&self, ctx: &ThreadCtx, root: usize, data: Vec<u8>) -> Vec<u8> {
        self.bcast_with(ctx, root, data, None).await
    }

    /// Broadcast through a forced algorithm (`None`: auto-select).
    pub async fn bcast_with(
        &self,
        ctx: &ThreadCtx,
        root: usize,
        data: Vec<u8>,
        algo: Option<AlgoKind>,
    ) -> Vec<u8> {
        let len = data.len();
        let mut bufs = self
            .engine
            .coll(ctx, CollKind::Bcast { root }, len, vec![data], algo)
            .await;
        bufs.swap_remove(0)
    }

    /// Nonblocking broadcast from `root`.
    pub fn ibcast(&self, ctx: &ThreadCtx, root: usize, data: Vec<u8>) -> IBcast {
        let len = data.len();
        IBcast(
            self.engine
                .icoll(ctx, CollKind::Bcast { root }, len, vec![data], None),
        )
    }

    /// Reduce to `root` under `op`: returns `Some(result)` on the root,
    /// `None` elsewhere. `data` must be the same length on every rank.
    pub async fn reduce(
        &self,
        ctx: &ThreadCtx,
        root: usize,
        data: Vec<u8>,
        op: ReduceOp,
    ) -> Option<Vec<u8>> {
        let len = data.len();
        let mut bufs = self
            .engine
            .coll(ctx, CollKind::Reduce { root, op }, len, vec![data], None)
            .await;
        (self.rank == root).then(|| bufs.swap_remove(0))
    }

    /// Allreduce under `op`: every rank ends with the element-wise
    /// reduction of all contributions. `data` must be the same length on
    /// every rank. Small payloads go through recursive doubling, large
    /// ones through the chunk-pipelined ring.
    pub async fn allreduce(&self, ctx: &ThreadCtx, data: Vec<u8>, op: ReduceOp) -> Vec<u8> {
        self.allreduce_with(ctx, data, op, None).await
    }

    /// Allreduce through a forced algorithm (`None`: auto-select).
    pub async fn allreduce_with(
        &self,
        ctx: &ThreadCtx,
        data: Vec<u8>,
        op: ReduceOp,
        algo: Option<AlgoKind>,
    ) -> Vec<u8> {
        let len = data.len();
        let mut bufs = self
            .engine
            .coll(ctx, CollKind::Allreduce { op }, len, vec![data], algo)
            .await;
        bufs.swap_remove(0)
    }

    /// Nonblocking allreduce under `op`.
    pub fn iallreduce(&self, ctx: &ThreadCtx, data: Vec<u8>, op: ReduceOp) -> IAllreduce {
        let len = data.len();
        IAllreduce(
            self.engine
                .icoll(ctx, CollKind::Allreduce { op }, len, vec![data], None),
        )
    }

    /// Sum-allreduce of a u64.
    pub async fn allreduce_sum(&self, ctx: &ThreadCtx, value: u64) -> u64 {
        let out = self
            .allreduce(ctx, value.to_le_bytes().to_vec(), ReduceOp::SumU64)
            .await;
        u64::from_le_bytes(out.try_into().expect("8-byte payload"))
    }

    /// Nonblocking sum-allreduce of a u64.
    pub fn iallreduce_sum(&self, ctx: &ThreadCtx, value: u64) -> IAllreduceSum {
        IAllreduceSum(self.iallreduce(ctx, value.to_le_bytes().to_vec(), ReduceOp::SumU64))
    }

    /// Gather to `root`: returns `Some(vec-of-per-rank-buffers)` on the
    /// root, `None` elsewhere.
    pub async fn gather(
        &self,
        ctx: &ThreadCtx,
        root: usize,
        data: Vec<u8>,
    ) -> Option<Vec<Vec<u8>>> {
        self.gather_with(ctx, root, data, None).await
    }

    /// Gather through a forced algorithm (`None`: auto-select).
    pub async fn gather_with(
        &self,
        ctx: &ThreadCtx,
        root: usize,
        data: Vec<u8>,
        algo: Option<AlgoKind>,
    ) -> Option<Vec<Vec<u8>>> {
        let len = data.len();
        let mut bufs = vec![Vec::new(); self.ranks];
        bufs[self.rank] = data;
        let out = self
            .engine
            .coll(ctx, CollKind::Gather { root }, len, bufs, algo)
            .await;
        (self.rank == root).then_some(out)
    }

    /// All-to-all personalized exchange: `data[r]` goes to rank `r`;
    /// returns the buffers received from each rank (own slot passed
    /// through).
    ///
    /// # Panics
    /// Panics if `data.len() != self.size()`.
    pub async fn alltoall(&self, ctx: &ThreadCtx, mut data: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        assert_eq!(data.len(), self.ranks, "alltoall needs one buffer per rank");
        let len = data.iter().map(Vec::len).max().unwrap_or(0);
        let own = std::mem::take(&mut data[self.rank]);
        data.extend(std::iter::repeat_with(Vec::new).take(self.ranks));
        let mut bufs = self
            .engine
            .coll(ctx, CollKind::Alltoall, len, data, None)
            .await;
        let mut out = bufs.split_off(self.ranks);
        out[self.rank] = own;
        out
    }
}

/// Handle of a nonblocking [`Comm::ibarrier`].
pub struct IBarrier(CollHandle);

impl IBarrier {
    /// True once every rank has entered the barrier.
    pub fn is_complete(&self) -> bool {
        self.0.is_complete()
    }

    /// Waits for the barrier to complete.
    pub async fn wait(&self, ctx: &ThreadCtx) {
        self.0.wait(ctx).await;
    }
}

/// Handle of a nonblocking [`Comm::ibcast`].
pub struct IBcast(CollHandle);

impl IBcast {
    /// True once the broadcast payload has arrived.
    pub fn is_complete(&self) -> bool {
        self.0.is_complete()
    }

    /// Waits and returns the broadcast payload.
    pub async fn wait(&self, ctx: &ThreadCtx) -> Vec<u8> {
        self.0.wait(ctx).await.swap_remove(0)
    }
}

/// Handle of a nonblocking [`Comm::iallreduce`].
pub struct IAllreduce(CollHandle);

impl IAllreduce {
    /// True once the reduced buffer is ready.
    pub fn is_complete(&self) -> bool {
        self.0.is_complete()
    }

    /// Waits and returns the reduced buffer.
    pub async fn wait(&self, ctx: &ThreadCtx) -> Vec<u8> {
        self.0.wait(ctx).await.swap_remove(0)
    }
}

/// Handle of a nonblocking [`Comm::iallreduce_sum`].
pub struct IAllreduceSum(IAllreduce);

impl IAllreduceSum {
    /// True once the sum is ready.
    pub fn is_complete(&self) -> bool {
        self.0.is_complete()
    }

    /// Waits and returns the sum.
    pub async fn wait(&self, ctx: &ThreadCtx) -> u64 {
        let out = self.0.wait(ctx).await;
        u64::from_le_bytes(out.try_into().expect("8-byte payload"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use std::cell::{Cell, RefCell};
    use std::rc::Rc;

    #[test]
    fn barrier_synchronizes_ranks() {
        let cluster = Cluster::build(ClusterConfig::default());
        let comms = Comm::world(&cluster);
        let log = Rc::new(RefCell::new(Vec::new()));
        for (rank, comm) in comms.into_iter().enumerate() {
            let log = Rc::clone(&log);
            cluster.spawn_on(rank, format!("rank{rank}"), move |ctx| async move {
                // Rank 1 works 50µs before the barrier; both must leave
                // the barrier only after that.
                if comm.rank() == 1 {
                    ctx.compute(pm2_sim::SimDuration::from_micros(50)).await;
                }
                log.borrow_mut().push(format!("enter{}", comm.rank()));
                comm.barrier(&ctx).await;
                let t = ctx.marcel().sim().now().as_micros();
                assert!(t >= 50, "left barrier at {t}µs");
                log.borrow_mut().push(format!("exit{}", comm.rank()));
            });
        }
        cluster.run();
        assert_eq!(log.borrow().len(), 4);
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let cluster = Cluster::build(ClusterConfig {
            nodes: 3,
            ..ClusterConfig::default()
        });
        let comms = Comm::world(&cluster);
        let results = Rc::new(RefCell::new(Vec::new()));
        for (rank, comm) in comms.into_iter().enumerate() {
            let results = Rc::clone(&results);
            cluster.spawn_on(rank, format!("rank{rank}"), move |ctx| async move {
                let total = comm
                    .allreduce_sum(&ctx, (comm.rank() as u64 + 1) * 10)
                    .await;
                results.borrow_mut().push(total);
            });
        }
        cluster.run();
        assert_eq!(*results.borrow(), vec![60, 60, 60]);
    }

    #[test]
    fn repeated_barriers_do_not_cross_talk() {
        let cluster = Cluster::build(ClusterConfig::default());
        let comms = Comm::world(&cluster);
        let counter = Rc::new(Cell::new(0u32));
        for (rank, comm) in comms.into_iter().enumerate() {
            let counter = Rc::clone(&counter);
            cluster.spawn_on(rank, format!("rank{rank}"), move |ctx| async move {
                for i in 0..5 {
                    if comm.rank() == 0 {
                        ctx.compute(pm2_sim::SimDuration::from_micros(i * 3 + 1))
                            .await;
                    }
                    comm.barrier(&ctx).await;
                    counter.set(counter.get() + 1);
                }
            });
        }
        cluster.run();
        assert_eq!(counter.get(), 10);
    }

    #[test]
    fn bcast_reaches_all_ranks_from_any_root() {
        for root in 0..3 {
            let cluster = Cluster::build(ClusterConfig {
                nodes: 3,
                ..ClusterConfig::default()
            });
            let comms = Comm::world(&cluster);
            let got = Rc::new(RefCell::new(vec![Vec::new(); 3]));
            for (rank, comm) in comms.into_iter().enumerate() {
                let got = Rc::clone(&got);
                cluster.spawn_on(rank, format!("r{rank}"), move |ctx| async move {
                    let data = if comm.rank() == root {
                        vec![root as u8; 1000]
                    } else {
                        Vec::new()
                    };
                    let out = comm.bcast(&ctx, root, data).await;
                    got.borrow_mut()[comm.rank()] = out;
                });
            }
            cluster.run();
            for r in 0..3 {
                assert_eq!(
                    got.borrow()[r],
                    vec![root as u8; 1000],
                    "root {root} rank {r}"
                );
            }
        }
    }

    #[test]
    fn gather_collects_per_rank_buffers() {
        let cluster = Cluster::build(ClusterConfig {
            nodes: 4,
            ..ClusterConfig::default()
        });
        let comms = Comm::world(&cluster);
        let result = Rc::new(RefCell::new(None));
        for (rank, comm) in comms.into_iter().enumerate() {
            let result = Rc::clone(&result);
            cluster.spawn_on(rank, format!("r{rank}"), move |ctx| async move {
                let out = comm
                    .gather(&ctx, 1, vec![comm.rank() as u8; 10 + comm.rank()])
                    .await;
                if comm.rank() == 1 {
                    *result.borrow_mut() = out;
                } else {
                    assert!(out.is_none());
                }
            });
        }
        cluster.run();
        let r = result.borrow();
        let bufs = r.as_ref().expect("root collected");
        for (rank, buf) in bufs.iter().enumerate() {
            assert_eq!(buf, &vec![rank as u8; 10 + rank]);
        }
    }

    #[test]
    fn alltoall_exchanges_everything() {
        let cluster = Cluster::build(ClusterConfig {
            nodes: 3,
            ..ClusterConfig::default()
        });
        let comms = Comm::world(&cluster);
        let got = Rc::new(RefCell::new(vec![Vec::new(); 3]));
        for (rank, comm) in comms.into_iter().enumerate() {
            let got = Rc::clone(&got);
            cluster.spawn_on(rank, format!("r{rank}"), move |ctx| async move {
                let me = comm.rank();
                let outbound: Vec<Vec<u8>> = (0..comm.size())
                    .map(|to| vec![(me * 10 + to) as u8; 64])
                    .collect();
                let inbound = comm.alltoall(&ctx, outbound).await;
                got.borrow_mut()[me] = inbound
                    .iter()
                    .map(|b| b.first().copied().unwrap_or(255))
                    .collect();
            });
        }
        cluster.run();
        for me in 0..3 {
            let expected: Vec<u8> = (0..3).map(|from| (from * 10 + me) as u8).collect();
            assert_eq!(got.borrow()[me], expected, "rank {me}");
        }
    }

    #[test]
    fn reduce_delivers_only_at_root() {
        let cluster = Cluster::build(ClusterConfig {
            nodes: 4,
            ..ClusterConfig::default()
        });
        let comms = Comm::world(&cluster);
        let result = Rc::new(RefCell::new(None));
        for (rank, comm) in comms.into_iter().enumerate() {
            let result = Rc::clone(&result);
            cluster.spawn_on(rank, format!("r{rank}"), move |ctx| async move {
                let mine = (comm.rank() as u64 + 1).to_le_bytes().to_vec();
                let out = comm.reduce(&ctx, 2, mine, ReduceOp::SumU64).await;
                if comm.rank() == 2 {
                    *result.borrow_mut() = out;
                } else {
                    assert!(out.is_none());
                }
            });
        }
        cluster.run();
        let r = result.borrow();
        let total = u64::from_le_bytes(r.as_ref().expect("root").clone().try_into().unwrap());
        assert_eq!(total, 1 + 2 + 3 + 4);
    }

    #[test]
    fn nonblocking_allreduce_overlaps_compute() {
        let cluster = Cluster::build(ClusterConfig {
            nodes: 2,
            ..ClusterConfig::default()
        });
        let comms = Comm::world(&cluster);
        let results = Rc::new(RefCell::new(Vec::new()));
        for (rank, comm) in comms.into_iter().enumerate() {
            let results = Rc::clone(&results);
            cluster.spawn_on(rank, format!("r{rank}"), move |ctx| async move {
                let h = comm.iallreduce_sum(&ctx, comm.rank() as u64 + 1);
                // Compute while the collective progresses in background.
                ctx.compute(pm2_sim::SimDuration::from_micros(200)).await;
                let total = h.wait(&ctx).await;
                results.borrow_mut().push(total);
            });
        }
        cluster.run();
        assert_eq!(*results.borrow(), vec![3, 3]);
        // The post-to-wait window must have been accounted as overlap.
    }

    #[test]
    fn coll_counters_accumulate() {
        let cluster = Cluster::build(ClusterConfig {
            nodes: 4,
            ..ClusterConfig::default()
        });
        let comms = Comm::world(&cluster);
        let comm0 = comms[0].clone();
        for (rank, comm) in comms.into_iter().enumerate() {
            cluster.spawn_on(rank, format!("r{rank}"), move |ctx| async move {
                comm.barrier(&ctx).await;
                comm.allreduce_sum(&ctx, 1).await;
            });
        }
        cluster.run();
        let c = comm0.coll_counters();
        assert_eq!(c.collectives, 2);
        assert!(c.sends > 0 && c.recvs > 0 && c.steps == c.sends + c.recvs);
        assert!(c.bytes_sent > 0);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn reserved_tags_rejected() {
        let cluster = Cluster::build(ClusterConfig::default());
        let comms = Comm::world(&cluster);
        let comm = comms[0].clone();
        cluster.spawn_on(0, "bad", move |ctx| async move {
            let _ = comm.isend(&ctx, 1, Tag(RESERVED_TAG_BASE), vec![]).await;
        });
        cluster.run();
    }
}
