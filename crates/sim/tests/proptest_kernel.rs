//! Property-based tests of the DES kernel: temporal ordering,
//! determinism, slab/model equivalence, RNG bounds.

use pm2_sim::{Sim, SimDuration, Slab};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    /// Events always fire in non-decreasing time order, with ties broken
    /// by insertion order.
    #[test]
    fn events_fire_in_time_order(delays in prop::collection::vec(0u64..10_000, 1..200)) {
        let sim = Sim::new(0);
        let log: Rc<RefCell<Vec<(u64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, &d) in delays.iter().enumerate() {
            let log = Rc::clone(&log);
            sim.schedule_in(SimDuration::from_nanos(d), move |s| {
                log.borrow_mut().push((s.now().as_nanos(), i));
            });
        }
        sim.run();
        let log = log.borrow();
        prop_assert_eq!(log.len(), delays.len());
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "tie not broken by insertion order");
            }
        }
        for (at, i) in log.iter() {
            prop_assert_eq!(*at, delays[*i]);
        }
    }

    /// The same seed and the same program produce the identical event
    /// trace, including through RNG-dependent decisions.
    #[test]
    fn runs_are_deterministic(seed in any::<u64>(), n in 1usize..50) {
        fn run(seed: u64, n: usize) -> Vec<u64> {
            let sim = Sim::new(seed);
            let out = Rc::new(RefCell::new(Vec::new()));
            for _ in 0..n {
                let d = sim.with_rng(|r| r.gen_range(1, 1_000));
                let out = Rc::clone(&out);
                let sim2 = sim.clone();
                sim.spawn(async move {
                    sim2.sleep(SimDuration::from_nanos(d)).await;
                    out.borrow_mut().push(sim2.now().as_nanos());
                });
            }
            sim.run();
            Rc::try_unwrap(out).unwrap().into_inner()
        }
        prop_assert_eq!(run(seed, n), run(seed, n));
    }

    /// Sleeping tasks accumulate exactly the requested virtual time.
    #[test]
    fn sleep_durations_accumulate(durs in prop::collection::vec(0u64..5_000, 1..40)) {
        let sim = Sim::new(0);
        let total: u64 = durs.iter().sum();
        let sim2 = sim.clone();
        let end = Rc::new(RefCell::new(0u64));
        let end2 = Rc::clone(&end);
        sim.spawn(async move {
            for d in durs {
                sim2.sleep(SimDuration::from_nanos(d)).await;
            }
            *end2.borrow_mut() = sim2.now().as_nanos();
        });
        sim.run();
        prop_assert_eq!(*end.borrow(), total);
    }

    /// The slab agrees with a HashMap model under arbitrary operations.
    #[test]
    fn slab_matches_model(ops in prop::collection::vec((any::<bool>(), 0usize..64), 0..300)) {
        let mut slab = Slab::new();
        let mut model = std::collections::HashMap::new();
        let mut keys: Vec<usize> = Vec::new();
        for (insert, x) in ops {
            if insert || keys.is_empty() {
                let k = slab.insert(x);
                prop_assert!(model.insert(k, x).is_none(), "key reused while occupied");
                keys.push(k);
            } else {
                let k = keys.remove(x % keys.len());
                prop_assert_eq!(slab.remove(k), model.remove(&k));
            }
            prop_assert_eq!(slab.len(), model.len());
        }
        for (k, v) in &model {
            prop_assert_eq!(slab.get(*k), Some(v));
        }
    }

    /// RNG ranges are respected for arbitrary bounds.
    #[test]
    fn rng_ranges_hold(seed in any::<u64>(), lo in 0u64..1000, width in 1u64..1000) {
        let mut rng = pm2_sim::rng::Xoshiro256::new(seed);
        for _ in 0..100 {
            let v = rng.gen_range(lo, lo + width);
            prop_assert!(v >= lo && v < lo + width);
        }
    }

    /// Histogram percentiles are monotone in p.
    #[test]
    fn histogram_percentiles_monotone(samples in prop::collection::vec(0.0f64..100.0, 1..200)) {
        let mut h = pm2_sim::stats::Histogram::new(1.0, 128);
        for s in &samples {
            h.record(*s);
        }
        let mut last = 0.0;
        for p in [1.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = h.percentile(p);
            prop_assert!(v >= last, "percentile({p}) = {v} < {last}");
            last = v;
        }
    }
}
