//! Randomized tests of the DES kernel: temporal ordering, determinism,
//! slab/model equivalence, RNG bounds. Cases are generated with the
//! kernel's own seeded RNG, so every run replays identically.

use pm2_sim::rng::Xoshiro256;
use pm2_sim::{Sim, SimDuration, Slab};
use std::cell::RefCell;
use std::rc::Rc;

/// Events always fire in non-decreasing time order, with ties broken by
/// insertion order.
#[test]
fn events_fire_in_time_order() {
    for seed in 0..32u64 {
        let mut rng = Xoshiro256::new(seed);
        let n = 1 + rng.gen_below(199) as usize;
        let delays: Vec<u64> = (0..n).map(|_| rng.gen_below(10_000)).collect();
        let sim = Sim::new(0);
        let log: Rc<RefCell<Vec<(u64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, &d) in delays.iter().enumerate() {
            let log = Rc::clone(&log);
            sim.schedule_in(SimDuration::from_nanos(d), move |s| {
                log.borrow_mut().push((s.now().as_nanos(), i));
            });
        }
        sim.run();
        let log = log.borrow();
        assert_eq!(log.len(), delays.len());
        for w in log.windows(2) {
            assert!(w[0].0 <= w[1].0, "time went backwards (seed {seed})");
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "tie not broken by insertion order");
            }
        }
        for (at, i) in log.iter() {
            assert_eq!(*at, delays[*i]);
        }
    }
}

/// The same seed and the same program produce the identical event trace,
/// including through RNG-dependent decisions.
#[test]
fn runs_are_deterministic() {
    fn run(seed: u64, n: usize) -> Vec<u64> {
        let sim = Sim::new(seed);
        let out = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..n {
            let d = sim.with_rng(|r| r.gen_range(1, 1_000));
            let out = Rc::clone(&out);
            let sim2 = sim.clone();
            sim.spawn(async move {
                sim2.sleep(SimDuration::from_nanos(d)).await;
                out.borrow_mut().push(sim2.now().as_nanos());
            });
        }
        sim.run();
        Rc::try_unwrap(out).unwrap().into_inner()
    }
    for seed in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX] {
        for n in [1usize, 7, 49] {
            assert_eq!(run(seed, n), run(seed, n), "seed {seed}, n {n}");
        }
    }
}

/// Sleeping tasks accumulate exactly the requested virtual time.
#[test]
fn sleep_durations_accumulate() {
    for seed in 0..16u64 {
        let mut rng = Xoshiro256::new(seed);
        let n = 1 + rng.gen_below(39) as usize;
        let durs: Vec<u64> = (0..n).map(|_| rng.gen_below(5_000)).collect();
        let sim = Sim::new(0);
        let total: u64 = durs.iter().sum();
        let sim2 = sim.clone();
        let end = Rc::new(RefCell::new(0u64));
        let end2 = Rc::clone(&end);
        sim.spawn(async move {
            for d in durs {
                sim2.sleep(SimDuration::from_nanos(d)).await;
            }
            *end2.borrow_mut() = sim2.now().as_nanos();
        });
        sim.run();
        assert_eq!(*end.borrow(), total, "seed {seed}");
    }
}

/// The slab agrees with a HashMap model under arbitrary operations.
#[test]
fn slab_matches_model() {
    for seed in 0..32u64 {
        let mut rng = Xoshiro256::new(seed);
        let n = rng.gen_below(300) as usize;
        let mut slab = Slab::new();
        let mut model = std::collections::HashMap::new();
        let mut keys: Vec<usize> = Vec::new();
        for _ in 0..n {
            let insert = rng.gen_below(2) == 0;
            let x = rng.gen_below(64) as usize;
            if insert || keys.is_empty() {
                let k = slab.insert(x);
                assert!(model.insert(k, x).is_none(), "key reused while occupied");
                keys.push(k);
            } else {
                let k = keys.remove(x % keys.len());
                assert_eq!(slab.remove(k), model.remove(&k));
            }
            assert_eq!(slab.len(), model.len());
        }
        for (k, v) in &model {
            assert_eq!(slab.get(*k), Some(v));
        }
    }
}

/// RNG ranges are respected for arbitrary bounds.
#[test]
fn rng_ranges_hold() {
    let mut meta = Xoshiro256::new(7);
    for _ in 0..32 {
        let seed = meta.next_u64();
        let lo = meta.gen_below(1000);
        let width = 1 + meta.gen_below(999);
        let mut rng = Xoshiro256::new(seed);
        for _ in 0..100 {
            let v = rng.gen_range(lo, lo + width);
            assert!(v >= lo && v < lo + width);
        }
    }
}

/// Histogram percentiles are monotone in p.
#[test]
fn histogram_percentiles_monotone() {
    for seed in 0..16u64 {
        let mut rng = Xoshiro256::new(seed);
        let n = 1 + rng.gen_below(199) as usize;
        let mut h = pm2_sim::stats::Histogram::new(1.0, 128);
        for _ in 0..n {
            h.record(rng.gen_below(100_000) as f64 / 1000.0);
        }
        let mut last = 0.0;
        for p in [1.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = h.percentile(p);
            assert!(v >= last, "percentile({p}) = {v} < {last} (seed {seed})");
            last = v;
        }
    }
}
