//! Deterministic pseudo-random numbers (xoshiro256**).
//!
//! The simulator must be reproducible bit-for-bit, so it carries its own
//! small PRNG rather than depending on ambient entropy. xoshiro256** is the
//! standard all-purpose generator of the xoshiro family: fast (a handful of
//! arithmetic ops), 256-bit state, passes BigCrush.

/// xoshiro256** generator.
///
/// # Example
/// ```
/// use pm2_sim::rng::Xoshiro256;
/// let mut a = Xoshiro256::new(7);
/// let mut b = Xoshiro256::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// assert!(a.gen_below(10) < 10);
/// ```
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds the generator; the seed is expanded with SplitMix64 so that
    /// small or zero seeds still yield well-mixed state.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64 { state: seed };
        Xoshiro256 {
            s: [sm.next(), sm.next(), sm.next(), sm.next()],
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
    ///
    /// # Panics
    /// Panics if `bound` is 0.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below(0)");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        lo + self.gen_below(hi - lo)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Exponentially distributed value with the given mean (for Poisson
    /// arrival workloads in the benchmark generators).
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        let u = loop {
            let u = self.gen_f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Xoshiro256::new(123);
        let mut b = Xoshiro256::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256::new(1);
        let mut b = Xoshiro256::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_seed_is_well_mixed() {
        let mut r = Xoshiro256::new(0);
        let vals: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert!(vals.iter().any(|&v| v != 0));
    }

    #[test]
    fn gen_below_is_in_bounds_and_covers() {
        let mut r = Xoshiro256::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = Xoshiro256::new(9);
        for _ in 0..1000 {
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Xoshiro256::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_exp_positive_with_roughly_right_mean() {
        let mut r = Xoshiro256::new(13);
        let n = 20_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| r.gen_exp(mean)).sum();
        let observed = sum / n as f64;
        assert!((observed - mean).abs() < 0.3, "observed mean {observed}");
    }

    #[test]
    #[should_panic(expected = "gen_below(0)")]
    fn gen_below_zero_panics() {
        Xoshiro256::new(1).gen_below(0);
    }
}
