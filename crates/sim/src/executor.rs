//! Task storage and waker plumbing for the single-threaded executor.

use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Wake, Waker};

/// Identifier of a simulated activity (an async block owned by the sim).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub(crate) usize);

impl TaskId {
    /// Raw slab index (diagnostics only).
    pub fn index(self) -> usize {
        self.0
    }
}

/// A stored task: boxed future plus bookkeeping.
pub(crate) struct TaskSlot {
    /// Taken out while being polled to avoid aliasing the slab borrow.
    pub(crate) future: Option<Pin<Box<dyn Future<Output = ()>>>>,
    /// Debug label.
    pub(crate) name: Option<String>,
}

/// Wake-ups posted by [`Waker`]s; drained by the run loop.
///
/// Wakers must be `Send + Sync` by signature even though this simulator is
/// single-threaded, so the wake list sits behind a std `Mutex` (uncontended
/// in practice).
#[derive(Default)]
pub(crate) struct WakeList {
    pending: Mutex<Vec<usize>>,
}

impl WakeList {
    pub(crate) fn post(&self, id: usize) {
        self.pending.lock().expect("wake list poisoned").push(id);
    }

    /// Moves all pending wake-ups into `out`, preserving post order and
    /// keeping both buffers' capacity (no steady-state allocation).
    pub(crate) fn drain_into(&self, out: &mut Vec<usize>) {
        out.append(&mut self.pending.lock().expect("wake list poisoned"));
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.pending.lock().expect("wake list poisoned").is_empty()
    }
}

struct TaskWaker {
    id: usize,
    wakes: Arc<WakeList>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.wakes.post(self.id);
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.wakes.post(self.id);
    }
}

/// Builds a waker that re-queues `id` on the shared wake list.
pub(crate) fn waker_for(id: usize, wakes: &Arc<WakeList>) -> Waker {
    Waker::from(Arc::new(TaskWaker {
        id,
        wakes: Arc::clone(wakes),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_list_accumulates_and_drains() {
        let wl = Arc::new(WakeList::default());
        assert!(wl.is_empty());
        let w1 = waker_for(3, &wl);
        let w2 = waker_for(5, &wl);
        w1.wake_by_ref();
        w2.wake();
        w1.wake();
        let mut out = vec![9];
        wl.drain_into(&mut out);
        assert_eq!(out, vec![9, 3, 5, 3], "appends in post order");
        assert!(wl.is_empty());
    }
}
