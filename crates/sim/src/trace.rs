//! Lightweight event tracing for debugging simulations.

use crate::SimTime;
use std::cell::RefCell;
use std::collections::VecDeque;

/// Category of a trace record; used for filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Thread scheduler decisions (dispatch, block, wake).
    Sched,
    /// Tasklet lifecycle.
    Tasklet,
    /// PIOMAN event manager.
    Pioman,
    /// NewMadeleine protocol steps.
    Proto,
    /// NIC / link / DMA activity.
    Hw,
    /// Application-level markers.
    App,
}

/// One trace record.
#[derive(Debug, Clone)]
pub struct Record {
    /// Virtual time of the record.
    pub at: SimTime,
    /// Subsystem that emitted it.
    pub category: Category,
    /// Human-readable message.
    pub message: String,
}

/// A bounded ring of trace records, disabled by default (zero cost beyond a
/// branch).
pub struct Trace {
    inner: RefCell<TraceInner>,
}

struct TraceInner {
    enabled: bool,
    capacity: usize,
    records: VecDeque<Record>,
}

impl Trace {
    /// Creates a disabled trace with the default capacity (64 Ki records).
    pub fn new() -> Self {
        Trace {
            inner: RefCell::new(TraceInner {
                enabled: false,
                capacity: 65_536,
                records: VecDeque::new(),
            }),
        }
    }

    /// Enables or disables recording.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.borrow_mut().enabled = enabled;
    }

    /// True if recording.
    pub fn is_enabled(&self) -> bool {
        self.inner.borrow().enabled
    }

    /// Caps the ring at `capacity` records (oldest evicted first).
    pub fn set_capacity(&self, capacity: usize) {
        let mut inner = self.inner.borrow_mut();
        inner.capacity = capacity;
        while inner.records.len() > capacity {
            inner.records.pop_front();
        }
    }

    /// Appends a record if enabled. `message` is only evaluated lazily by
    /// callers using [`Trace::emit_with`].
    ///
    /// A capacity of zero records nothing. If the ring is at or above
    /// capacity (possible after [`Trace::set_capacity`] shrank it), the
    /// oldest records are drained until the new record fits the bound.
    pub fn emit(&self, at: SimTime, category: Category, message: impl Into<String>) {
        let mut inner = self.inner.borrow_mut();
        if !inner.enabled || inner.capacity == 0 {
            return;
        }
        while inner.records.len() >= inner.capacity {
            inner.records.pop_front();
        }
        inner.records.push_back(Record {
            at,
            category,
            message: message.into(),
        });
    }

    /// Appends a record built lazily (skips the closure when disabled).
    pub fn emit_with(&self, at: SimTime, category: Category, f: impl FnOnce() -> String) {
        if self.is_enabled() {
            self.emit(at, category, f());
        }
    }

    /// Snapshot of all records.
    pub fn records(&self) -> Vec<Record> {
        self.inner.borrow().records.iter().cloned().collect()
    }

    /// Snapshot filtered to one category.
    pub fn records_in(&self, category: Category) -> Vec<Record> {
        self.inner
            .borrow()
            .records
            .iter()
            .filter(|r| r.category == category)
            .cloned()
            .collect()
    }

    /// Clears all records.
    pub fn clear(&self) {
        self.inner.borrow_mut().records.clear();
    }

    /// Renders the trace as text, one record per line.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for r in self.inner.borrow().records.iter() {
            let _ = writeln!(
                out,
                "[{:>12}] {:?}: {}",
                r.at.to_string(),
                r.category,
                r.message
            );
        }
        out
    }
}

impl Default for Trace {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let t = Trace::new();
        t.emit(SimTime::ZERO, Category::App, "x");
        assert!(t.records().is_empty());
    }

    #[test]
    fn enabled_trace_records_and_filters() {
        let t = Trace::new();
        t.set_enabled(true);
        t.emit(SimTime::from_micros(1), Category::App, "a");
        t.emit(SimTime::from_micros(2), Category::Hw, "b");
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.records_in(Category::Hw).len(), 1);
        assert!(t.render().contains("Hw: b"));
        t.clear();
        assert!(t.records().is_empty());
    }

    #[test]
    fn ring_evicts_oldest() {
        let t = Trace::new();
        t.set_enabled(true);
        t.set_capacity(2);
        for i in 0..5 {
            t.emit(SimTime::from_micros(i), Category::App, format!("m{i}"));
        }
        let rs = t.records();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].message, "m3");
        assert_eq!(rs[1].message, "m4");
    }

    #[test]
    fn zero_capacity_ring_stays_empty() {
        let t = Trace::new();
        t.set_enabled(true);
        t.set_capacity(0);
        for i in 0..4 {
            t.emit(SimTime::from_micros(i), Category::App, format!("m{i}"));
        }
        assert!(t.records().is_empty());
    }

    #[test]
    fn shrink_while_full_keeps_bound() {
        let t = Trace::new();
        t.set_enabled(true);
        t.set_capacity(4);
        for i in 0..4 {
            t.emit(SimTime::from_micros(i), Category::App, format!("m{i}"));
        }
        // Shrink below the live length, then keep emitting: the ring must
        // never exceed the new bound again, including the bound of zero.
        t.set_capacity(2);
        for i in 4..8 {
            t.emit(SimTime::from_micros(i), Category::App, format!("m{i}"));
        }
        let rs = t.records();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].message, "m6");
        assert_eq!(rs[1].message, "m7");
        t.set_capacity(0);
        for i in 8..12 {
            t.emit(SimTime::from_micros(i), Category::App, format!("m{i}"));
        }
        assert!(t.records().is_empty());
    }

    #[test]
    fn emit_with_is_lazy() {
        let t = Trace::new();
        let mut called = false;
        t.emit_with(SimTime::ZERO, Category::App, || {
            called = true;
            String::new()
        });
        assert!(!called);
    }
}
