//! Virtual time: nanosecond instants and durations.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation's virtual clock, in nanoseconds since start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Builds an instant from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Builds an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Builds an instant from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Microseconds since the epoch, fractional.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time elapsed since `earlier`; saturates at zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a duration from fractional microseconds (rounds to ns).
    pub fn from_micros_f64(us: f64) -> Self {
        SimDuration((us * 1_000.0).round().max(0.0) as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Microseconds, fractional.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        self.0 -= other.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}µs", self.as_micros_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}µs", self.as_micros_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}µs", self.as_micros_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}µs", self.as_micros_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_micros_f64(1.5).as_nanos(), 1_500);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(10) + SimDuration::from_micros(5);
        assert_eq!(t.as_micros(), 15);
        assert_eq!((t - SimTime::from_micros(5)).as_micros(), 10);
        assert_eq!((SimDuration::from_micros(4) * 3).as_micros(), 12);
        assert_eq!((SimDuration::from_micros(9) / 3).as_micros(), 3);
    }

    #[test]
    fn saturating_behaviour() {
        let early = SimTime::from_micros(1);
        let late = SimTime::from_micros(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early).as_micros(), 1);
        assert_eq!(
            SimDuration::from_micros(1).saturating_sub(SimDuration::from_micros(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_in_microseconds() {
        assert_eq!(format!("{}", SimTime::from_nanos(1500)), "1.500µs");
        assert_eq!(format!("{}", SimDuration::from_micros(20)), "20.000µs");
    }
}
