//! Measurement accumulators for the benchmark harness.

use std::fmt;

/// Streaming mean/variance/min/max (Welford's algorithm).
///
/// # Example
/// ```
/// use pm2_sim::stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// s.record(1.0);
/// s.record(3.0);
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (NaN if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest sample (NaN if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n;
        self.m2 += other.m2 + delta * delta * (self.n as f64) * (other.n as f64) / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.n,
            self.mean(),
            self.stddev(),
            self.min(),
            self.max()
        )
    }
}

/// Fixed-resolution histogram with percentile queries and an optional
/// geometric tail.
///
/// Buckets are linear at `resolution` width over the primary span. With
/// [`Histogram::new`] values beyond `resolution * buckets` land in the
/// overflow bucket and are clamped in percentile answers; with
/// [`Histogram::with_geometric_tail`] a run of geometrically widening
/// buckets extends the span first, so overload tails keep resolving
/// (coarsely) instead of saturating at the linear edge.
#[derive(Debug, Clone)]
pub struct Histogram {
    resolution: f64,
    counts: Vec<u64>,
    /// Ascending upper edges of the geometric tail buckets; empty for a
    /// purely linear histogram.
    tail_edges: Vec<f64>,
    tail: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` bins of width `resolution`.
    ///
    /// # Panics
    /// Panics if `resolution <= 0` or `buckets == 0`.
    pub fn new(resolution: f64, buckets: usize) -> Self {
        assert!(resolution > 0.0 && buckets > 0);
        Histogram {
            resolution,
            counts: vec![0; buckets],
            tail_edges: Vec::new(),
            tail: Vec::new(),
            overflow: 0,
            total: 0,
        }
    }

    /// Like [`Histogram::new`], plus `tail_buckets` geometric buckets past
    /// the linear span: tail bucket `i` has upper edge
    /// `resolution * buckets * growth^(i+1)`. Samples inside the linear
    /// span behave exactly as in a linear histogram; samples past it land
    /// in the first tail bucket whose edge covers them, and only samples
    /// past the last tail edge overflow (clamping to that edge).
    ///
    /// # Panics
    /// Panics if `resolution <= 0`, `buckets == 0`, `tail_buckets == 0`
    /// or `growth <= 1`.
    pub fn with_geometric_tail(
        resolution: f64,
        buckets: usize,
        tail_buckets: usize,
        growth: f64,
    ) -> Self {
        assert!(tail_buckets > 0 && growth > 1.0);
        let mut h = Histogram::new(resolution, buckets);
        let mut edge = resolution * buckets as f64;
        for _ in 0..tail_buckets {
            edge *= growth;
            h.tail_edges.push(edge);
        }
        h.tail = vec![0; tail_buckets];
        h
    }

    /// Largest value the histogram resolves before clamping (the upper
    /// edge of its final bucket, linear or tail).
    pub fn span(&self) -> f64 {
        match self.tail_edges.last() {
            Some(&e) => e,
            None => self.resolution * self.counts.len() as f64,
        }
    }

    /// Records one (non-negative) sample.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        let x = x.max(0.0);
        let idx = (x / self.resolution) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            let t = self.tail_edges.partition_point(|&e| e < x);
            if t < self.tail.len() {
                self.tail[t] += 1;
            } else {
                self.overflow += 1;
            }
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Value at percentile `p`, answered at the **upper edge** of the
    /// bucket holding the `ceil(p/100 * count)`-th smallest sample — a
    /// conservative (never under-reporting) estimate at `resolution`
    /// granularity.
    ///
    /// Edge conventions:
    /// - an empty histogram answers `0.0` for every `p`;
    /// - `p` is clamped into `[0, 100]`, so out-of-range queries behave
    ///   like the nearest valid percentile;
    /// - `p <= 0` answers `0.0`, the infimum of the (non-negative) sample
    ///   domain, rather than the edge of the first populated bucket;
    /// - overflow samples clamp to the histogram's [`Histogram::span`]
    ///   (the top linear edge, or the last tail edge when a geometric
    ///   tail is configured).
    pub fn percentile(&self, p: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 100.0);
        if p <= 0.0 {
            return 0.0;
        }
        let target = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return (i + 1) as f64 * self.resolution;
            }
        }
        for (i, &c) in self.tail.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.tail_edges[i];
            }
        }
        self.span()
    }

    /// Median shortcut (bucket-upper-edge convention of
    /// [`Histogram::percentile`]).
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// 99th-percentile shortcut (bucket-upper-edge convention of
    /// [`Histogram::percentile`]).
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// 99.9th-percentile shortcut (bucket-upper-edge convention of
    /// [`Histogram::percentile`]) — the tail the service-scenario SLOs
    /// are scored on.
    pub fn p999(&self) -> f64 {
        self.percentile(99.9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_mean_and_variance() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-9);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-9);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i * 7 % 13) as f64).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for (i, &x) in xs.iter().enumerate() {
            if i % 2 == 0 {
                a.record(x)
            } else {
                b.record(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new(1.0, 100);
        for i in 1..=100 {
            h.record(i as f64 - 0.5);
        }
        assert_eq!(h.count(), 100);
        assert!((h.p50() - 50.0).abs() < 1.01);
        assert!((h.p99() - 99.0).abs() < 1.01);
        assert!((h.percentile(100.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_overflow_clamps() {
        let mut h = Histogram::new(1.0, 10);
        h.record(1e9);
        assert_eq!(h.percentile(100.0), 10.0);
    }

    #[test]
    fn p999_separates_the_tail_p99_misses() {
        // 999 fast samples and one straggler: p99 stays at the bulk edge
        // while p999 reaches the straggler's bucket.
        let mut h = Histogram::new(1.0, 100);
        for _ in 0..999 {
            h.record(0.5);
        }
        h.record(80.5);
        assert_eq!(h.p99(), 1.0);
        assert_eq!(h.p999(), 81.0);
    }

    #[test]
    fn p999_edge_cases_mirror_percentile_conventions() {
        // Empty: 0, like every other percentile.
        let empty = Histogram::new(1.0, 10);
        assert_eq!(empty.p999(), 0.0);
        // Single sample: the one bucket's upper edge.
        let mut one = Histogram::new(1.0, 10);
        one.record(2.5);
        assert_eq!(one.p999(), 3.0);
        assert_eq!(one.p999(), one.percentile(100.0));
        // Overflow: clamps to the top bucket edge.
        let mut over = Histogram::new(1.0, 10);
        over.record(1e9);
        assert_eq!(over.p999(), 10.0);
    }

    #[test]
    fn empty_histogram_percentiles_are_zero() {
        let h = Histogram::new(1.0, 10);
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.0), 0.0);
        assert_eq!(h.percentile(50.0), 0.0);
        assert_eq!(h.percentile(100.0), 0.0);
    }

    #[test]
    fn percentile_zero_is_zero() {
        let mut h = Histogram::new(1.0, 10);
        h.record(2.5);
        // p = 0 asks for the infimum of the distribution; by the bucket
        // lower-bound convention that is 0, never a populated bucket edge.
        assert_eq!(h.percentile(0.0), 0.0);
        assert_eq!(h.percentile(-25.0), 0.0);
    }

    #[test]
    fn out_of_range_percentile_clamps_to_100() {
        let mut h = Histogram::new(1.0, 10);
        h.record(2.5);
        h.record(3.5);
        assert_eq!(h.percentile(150.0), h.percentile(100.0));
        assert_eq!(h.percentile(150.0), 4.0);
    }

    #[test]
    fn geometric_tail_matches_linear_inside_the_linear_span() {
        // Same samples, same answers: the tail only changes what happens
        // past the linear edge.
        let mut lin = Histogram::new(1.0, 100);
        let mut geo = Histogram::with_geometric_tail(1.0, 100, 16, 2.0);
        for i in 1..=100 {
            lin.record(i as f64 - 0.5);
            geo.record(i as f64 - 0.5);
        }
        for p in [0.0, 50.0, 99.0, 99.9, 100.0] {
            assert_eq!(lin.percentile(p), geo.percentile(p));
        }
    }

    #[test]
    fn geometric_tail_resolves_past_the_linear_clamp() {
        // Linear span is 10; a sample at 70 saturates the linear
        // histogram but lands in a resolving tail bucket (edges
        // 20, 40, 80, 160).
        let mut lin = Histogram::new(1.0, 10);
        let mut geo = Histogram::with_geometric_tail(1.0, 10, 4, 2.0);
        lin.record(70.0);
        geo.record(70.0);
        assert_eq!(lin.percentile(100.0), 10.0, "old clamp behaviour");
        assert_eq!(geo.percentile(100.0), 80.0, "tail bucket upper edge");
        assert_eq!(geo.span(), 160.0);
    }

    #[test]
    fn geometric_tail_overflow_clamps_to_last_edge() {
        let mut geo = Histogram::with_geometric_tail(1.0, 10, 4, 2.0);
        geo.record(1e9);
        assert_eq!(geo.percentile(100.0), 160.0);
        assert_eq!(geo.p999(), 160.0);
    }

    #[test]
    fn geometric_tail_keeps_percentile_edge_conventions() {
        // Empty / p<=0 / clamp-to-100 behave exactly like the linear
        // histogram (PR-4/PR-7 conventions).
        let empty = Histogram::with_geometric_tail(1.0, 10, 4, 2.0);
        assert_eq!(empty.percentile(50.0), 0.0);
        let mut h = Histogram::with_geometric_tail(1.0, 10, 4, 2.0);
        h.record(15.0); // first tail bucket (edge 20)
        assert_eq!(h.percentile(0.0), 0.0);
        assert_eq!(h.percentile(-3.0), 0.0);
        assert_eq!(h.percentile(150.0), h.percentile(100.0));
        assert_eq!(h.percentile(100.0), 20.0);
    }

    #[test]
    fn p999_separates_tail_bucket_stragglers() {
        // Bulk in the linear span, one straggler deep in the tail: p99
        // answers the bulk edge, p999 reaches the straggler's tail edge.
        let mut h = Histogram::with_geometric_tail(1.0, 10, 4, 2.0);
        for _ in 0..999 {
            h.record(0.5);
        }
        h.record(100.0);
        assert_eq!(h.p99(), 1.0);
        assert_eq!(h.p999(), 160.0);
    }
}
