//! An async counting semaphore for simulated activities.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// A counting semaphore with FIFO hand-off.
///
/// Models bounded hardware resources in workloads: NIC descriptor slots,
/// bounded unexpected-message pools, credit-based flow control. Permits
/// are released through an RAII [`SemPermit`].
///
/// # Example
/// ```
/// use pm2_sim::Semaphore;
/// let slots = Semaphore::new(1);
/// let held = slots.try_acquire().unwrap();
/// assert!(slots.try_acquire().is_none()); // descriptor ring full
/// drop(held);
/// assert_eq!(slots.available(), 1);
/// ```
#[derive(Clone)]
pub struct Semaphore {
    state: Rc<RefCell<SemState>>,
}

struct SemState {
    permits: usize,
    waiters: VecDeque<Waker>,
}

impl Semaphore {
    /// Creates a semaphore with `permits` initial permits.
    pub fn new(permits: usize) -> Self {
        Semaphore {
            state: Rc::new(RefCell::new(SemState {
                permits,
                waiters: VecDeque::new(),
            })),
        }
    }

    /// Available permits right now.
    pub fn available(&self) -> usize {
        self.state.borrow().permits
    }

    /// Attempts to take a permit without waiting.
    pub fn try_acquire(&self) -> Option<SemPermit> {
        let mut st = self.state.borrow_mut();
        if st.permits > 0 {
            st.permits -= 1;
            Some(SemPermit {
                state: Rc::clone(&self.state),
            })
        } else {
            None
        }
    }

    /// Awaits a permit.
    pub fn acquire(&self) -> AcquireFut {
        AcquireFut {
            state: Rc::clone(&self.state),
        }
    }

    /// Adds a permit out of thin air (capacity grows).
    pub fn release_extra(&self) {
        release(&self.state);
    }
}

fn release(state: &Rc<RefCell<SemState>>) {
    let waker = {
        let mut st = state.borrow_mut();
        st.permits += 1;
        st.waiters.pop_front()
    };
    if let Some(w) = waker {
        w.wake();
    }
}

/// RAII permit: returned to the semaphore on drop.
pub struct SemPermit {
    state: Rc<RefCell<SemState>>,
}

impl Drop for SemPermit {
    fn drop(&mut self) {
        release(&self.state);
    }
}

/// Future returned by [`Semaphore::acquire`].
pub struct AcquireFut {
    state: Rc<RefCell<SemState>>,
}

impl Future for AcquireFut {
    type Output = SemPermit;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<SemPermit> {
        let mut st = self.state.borrow_mut();
        if st.permits > 0 {
            st.permits -= 1;
            Poll::Ready(SemPermit {
                state: Rc::clone(&self.state),
            })
        } else {
            if !st.waiters.iter().any(|w| w.will_wake(cx.waker())) {
                st.waiters.push_back(cx.waker().clone());
            }
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sim, SimDuration};
    use std::cell::Cell;

    #[test]
    fn caps_concurrency() {
        let sim = Sim::new(0);
        let sem = Semaphore::new(2);
        let peak = Rc::new(Cell::new(0usize));
        let active = Rc::new(Cell::new(0usize));
        for _ in 0..6 {
            let sem = sem.clone();
            let peak = Rc::clone(&peak);
            let active = Rc::clone(&active);
            let sim2 = sim.clone();
            sim.spawn(async move {
                let _permit = sem.acquire().await;
                active.set(active.get() + 1);
                peak.set(peak.get().max(active.get()));
                sim2.sleep(SimDuration::from_micros(5)).await;
                active.set(active.get() - 1);
            });
        }
        sim.run();
        assert_eq!(peak.get(), 2, "at most two holders at once");
        assert_eq!(sem.available(), 2);
        // 6 tasks, 2 at a time, 5µs each → 15µs.
        assert_eq!(sim.now().as_micros(), 15);
    }

    #[test]
    fn try_acquire_fails_when_exhausted() {
        let sem = Semaphore::new(1);
        let p = sem.try_acquire().expect("first permit");
        assert!(sem.try_acquire().is_none());
        drop(p);
        assert!(sem.try_acquire().is_some());
    }

    #[test]
    fn release_extra_grows_capacity() {
        let sem = Semaphore::new(0);
        assert!(sem.try_acquire().is_none());
        sem.release_extra();
        assert!(sem.try_acquire().is_some());
    }

    #[test]
    fn fifo_handoff() {
        let sim = Sim::new(0);
        let sem = Semaphore::new(1);
        let order = Rc::new(RefCell::new(Vec::new()));
        let _held = sem.try_acquire().expect("initial");
        for i in 0..3 {
            let sem = sem.clone();
            let order = Rc::clone(&order);
            let sim2 = sim.clone();
            sim.spawn(async move {
                // Stagger arrival so the wait order is deterministic.
                sim2.sleep(SimDuration::from_nanos(i + 1)).await;
                let _p = sem.acquire().await;
                order.borrow_mut().push(i);
            });
        }
        let sem2 = sem.clone();
        sim.schedule_in(SimDuration::from_micros(1), move |_| {
            sem2.release_extra(); // stand-in for dropping _held inside the sim
        });
        sim.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2]);
    }
}
