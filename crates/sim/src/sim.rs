//! The simulation facade: clock, calendar event queue and run loop.

use crate::equeue::{Due, EventAction, EventQueue};
use crate::executor::{waker_for, TaskId, TaskSlot, WakeList};
use crate::obs::Obs;
use crate::rng::Xoshiro256;
use crate::slab::Slab;
use crate::trace::Trace;
use crate::verify::Verify;
use crate::{SimDuration, SimTime};
use std::cell::{Cell, RefCell};
use std::future::Future;
use std::pin::Pin;
use std::rc::{Rc, Weak};
use std::sync::Arc;
use std::task::{Context, Poll};

/// Handle to the simulation; cheap to clone (reference-counted).
///
/// All state is interior-mutable and single-threaded; futures spawned on
/// the sim capture clones of this handle.
#[derive(Clone)]
pub struct Sim {
    inner: Rc<Inner>,
}

struct Inner {
    clock: Cell<SimTime>,
    seq: Cell<u64>,
    events: RefCell<EventQueue>,
    tasks: RefCell<Slab<TaskSlot>>,
    wakes: Arc<WakeList>,
    spawned: RefCell<Vec<usize>>,
    /// Reusable microtask batch buffer (see [`Sim::drain_microtasks`]).
    drain_scratch: Cell<Vec<usize>>,
    rng: RefCell<Xoshiro256>,
    trace: Trace,
    obs: Obs,
    verify: Verify,
    executed_events: Cell<u64>,
    polls: Cell<u64>,
}

/// Cancellation handle for a scheduled event (see [`Sim::schedule_in`]).
///
/// Cancellation reclaims the event slot *eagerly*: the closure and its
/// captures are dropped at `cancel()` time, not when the deadline would
/// have popped — a retransmit timer cancelled by an ack costs 24 bytes of
/// tombstone key until the next lazy purge, nothing more.
#[derive(Clone, Debug)]
pub struct TimerHandle {
    queue: Weak<Inner>,
    slot: u32,
    gen: u32,
    cancelled: Cell<bool>,
}

impl TimerHandle {
    /// Cancels the event and frees its closure; a no-op if it already
    /// fired (the slot generation no longer matches) or was cancelled.
    pub fn cancel(&self) {
        if self.cancelled.replace(true) {
            return;
        }
        if let Some(inner) = self.queue.upgrade() {
            let action = inner.events.borrow_mut().cancel(self.slot, self.gen);
            // Drop the reclaimed closure outside the queue borrow: its
            // captures' Drop impls may re-enter the sim.
            drop(action);
        }
    }

    /// True if [`TimerHandle::cancel`] was called through this handle (or
    /// a clone taken after the cancel).
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.get()
    }
}

impl Sim {
    /// Creates a simulation at t = 0 with a seeded RNG.
    pub fn new(seed: u64) -> Sim {
        Sim {
            inner: Rc::new(Inner {
                clock: Cell::new(SimTime::ZERO),
                seq: Cell::new(0),
                events: RefCell::new(EventQueue::new()),
                tasks: RefCell::new(Slab::new()),
                wakes: Arc::new(WakeList::default()),
                spawned: RefCell::new(Vec::new()),
                drain_scratch: Cell::new(Vec::new()),
                rng: RefCell::new(Xoshiro256::new(seed)),
                trace: Trace::new(),
                obs: Obs::new(),
                verify: Verify::new(),
                executed_events: Cell::new(0),
                polls: Cell::new(0),
            }),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.clock.get()
    }

    /// The simulation-wide trace ring.
    pub fn trace(&self) -> &Trace {
        &self.inner.trace
    }

    /// The simulation-wide structured-observability recorder (pm2-obs).
    pub fn obs(&self) -> &Obs {
        &self.inner.obs
    }

    /// The simulation-wide lock-order / happens-before analyzer
    /// (pm2-verify). Disabled by default; see [`crate::verify`].
    pub fn verify(&self) -> &Verify {
        &self.inner.verify
    }

    /// Draws from the simulation RNG.
    pub fn with_rng<R>(&self, f: impl FnOnce(&mut Xoshiro256) -> R) -> R {
        f(&mut self.inner.rng.borrow_mut())
    }

    /// Number of events executed so far (diagnostics).
    pub fn executed_events(&self) -> u64 {
        self.inner.executed_events.get()
    }

    /// Number of task polls performed so far (diagnostics).
    pub fn polls(&self) -> u64 {
        self.inner.polls.get()
    }

    /// Number of live (not yet completed) tasks.
    pub fn live_tasks(&self) -> usize {
        self.inner.tasks.borrow().len()
    }

    /// Number of live (scheduled, not fired, not cancelled) events.
    pub fn pending_events(&self) -> usize {
        self.inner.events.borrow().live_len()
    }

    /// Total keys resident in the event queue: live events plus
    /// not-yet-purged cancellation tombstones. The lazy purge keeps this
    /// O(live); exposed so tests can pin the cancellation-leak fix.
    pub fn event_queue_keys(&self) -> usize {
        self.inner.events.borrow().key_count()
    }

    // ----- events -------------------------------------------------------

    /// Schedules `action` to run `delay` from now. Returns a cancel handle.
    pub fn schedule_in<F>(&self, delay: SimDuration, action: F) -> TimerHandle
    where
        F: FnOnce(&Sim) + 'static,
    {
        self.schedule_at(self.now() + delay, action)
    }

    /// Schedules `action` at absolute time `at` (clamped to now if past).
    pub fn schedule_at<F>(&self, at: SimTime, action: F) -> TimerHandle
    where
        F: FnOnce(&Sim) + 'static,
    {
        let at = at.max(self.now());
        let seq = self.inner.seq.get();
        self.inner.seq.set(seq + 1);
        let (slot, gen) = self
            .inner
            .events
            .borrow_mut()
            .insert(at, seq, EventAction::new(action));
        TimerHandle {
            queue: Rc::downgrade(&self.inner),
            slot,
            gen,
            cancelled: Cell::new(false),
        }
    }

    // ----- tasks --------------------------------------------------------

    /// Spawns a simulated activity; it is first polled when the run loop
    /// next reaches a scheduling point (at the current virtual time).
    pub fn spawn<F>(&self, fut: F) -> TaskId
    where
        F: Future<Output = ()> + 'static,
    {
        self.spawn_named(None, fut)
    }

    /// Spawns with a debug label.
    pub fn spawn_named<F>(&self, name: Option<String>, fut: F) -> TaskId
    where
        F: Future<Output = ()> + 'static,
    {
        let id = self.inner.tasks.borrow_mut().insert(TaskSlot {
            future: Some(Box::pin(fut)),
            name,
        });
        self.inner.spawned.borrow_mut().push(id);
        TaskId(id)
    }

    /// Requests that `task` be polled at the current time (idempotent-ish;
    /// extra polls are harmless for well-formed futures).
    pub fn wake_task(&self, task: TaskId) {
        self.inner.wakes.post(task.0);
    }

    fn poll_task(&self, id: usize) {
        let fut = match self.inner.tasks.borrow_mut().get_mut(id) {
            Some(slot) => slot.future.take(),
            None => return, // already completed
        };
        let Some(mut fut) = fut else {
            return; // re-entrant wake while polling; the outer poll handles it
        };
        self.inner.polls.set(self.inner.polls.get() + 1);
        let waker = waker_for(id, &self.inner.wakes);
        let mut cx = Context::from_waker(&waker);
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                self.inner.tasks.borrow_mut().remove(id);
            }
            Poll::Pending => {
                if let Some(slot) = self.inner.tasks.borrow_mut().get_mut(id) {
                    slot.future = Some(fut);
                }
            }
        }
    }

    /// Polls newly spawned tasks and drains posted wake-ups until
    /// quiescent. The batch buffer is recycled across calls so the
    /// steady-state drain allocates nothing.
    fn drain_microtasks(&self) {
        let mut batch = self.inner.drain_scratch.take();
        loop {
            batch.clear();
            batch.append(&mut self.inner.spawned.borrow_mut());
            self.inner.wakes.drain_into(&mut batch);
            if batch.is_empty() {
                break;
            }
            for &id in &batch {
                self.poll_task(id);
            }
        }
        self.inner.drain_scratch.set(batch);
    }

    // ----- run loop -----------------------------------------------------

    /// Runs until the event heap is exhausted; returns the final time.
    pub fn run(&self) -> SimTime {
        self.run_until(SimTime::MAX)
    }

    /// Runs until virtual time would exceed `limit`; events at exactly
    /// `limit` are executed. Returns the time reached.
    ///
    /// Cancelled events never fire, never count as executed and never
    /// advance the clock — the queue reclaims them at `cancel()` time.
    pub fn run_until(&self, limit: SimTime) -> SimTime {
        loop {
            self.drain_microtasks();
            // Bind the pop result so the queue borrow ends before the
            // action runs (actions re-enter the sim to schedule).
            let due = self.inner.events.borrow_mut().pop_due(limit);
            match due {
                Due::Ready(at, action) => {
                    debug_assert!(at >= self.now(), "time went backwards");
                    self.inner.clock.set(at);
                    self.inner
                        .executed_events
                        .set(self.inner.executed_events.get() + 1);
                    action.invoke(self);
                }
                Due::Later | Due::Empty => {
                    // Nothing left inside the horizon; advance the clock
                    // to a finite horizon before stopping.
                    if limit != SimTime::MAX {
                        self.inner.clock.set(limit);
                    }
                    return self.now();
                }
            }
        }
    }

    /// Advances virtual time by `d`, executing everything in between.
    pub fn run_for(&self, d: SimDuration) -> SimTime {
        self.run_until(self.now() + d)
    }

    /// Runs to quiescence like [`Sim::run`], but treats `deadline` as a
    /// wedge detector: `Ok(end)` if the event heap drained with the clock
    /// at `end ≤ deadline`, `Err(deadline)` if live events remained
    /// beyond it (a protocol that stopped converging — e.g. a retransmit
    /// loop that never wins). Unlike [`Sim::run_until`] the clock is
    /// *not* clamped to the deadline on success, so timing assertions
    /// keep seeing the real quiescence time; on `Err` the remaining
    /// events are untouched and a subsequent `run` would resume them.
    ///
    /// Cancelled stragglers past the deadline (e.g. already-acked
    /// retransmit timers) don't count as pending, so a clean protocol
    /// with long-dated dead timers still reports `Ok`. Symmetrically,
    /// cancellation tombstones are never counted as productive work: a
    /// cancel storm cannot mask a livelock, because only live events
    /// reach the execute step (pinned by a regression test below).
    pub fn run_bounded(&self, deadline: SimTime) -> Result<SimTime, SimTime> {
        loop {
            self.drain_microtasks();
            // pop_due skips dead keys, so tombstones neither read as
            // pending work nor advance the clock. Bind the result so the
            // queue borrow ends before the action runs.
            let due = self.inner.events.borrow_mut().pop_due(deadline);
            match due {
                Due::Ready(at, action) => {
                    debug_assert!(at >= self.now(), "time went backwards");
                    self.inner.clock.set(at);
                    self.inner
                        .executed_events
                        .set(self.inner.executed_events.get() + 1);
                    action.invoke(self);
                }
                Due::Later => return Err(deadline),
                Due::Empty => return Ok(self.now()),
            }
        }
    }

    // ----- futures ------------------------------------------------------

    /// A future that completes `d` of virtual time from now.
    pub fn sleep(&self, d: SimDuration) -> Sleep {
        Sleep {
            sim: self.clone(),
            deadline: self.now() + d,
            scheduled: false,
        }
    }

    /// A future that yields once: re-polled at the current virtual time
    /// after other due activities have run.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { yielded: false }
    }

    /// Debug label of a task, if it is alive and was named.
    pub fn task_name(&self, task: TaskId) -> Option<String> {
        self.inner
            .tasks
            .borrow()
            .get(task.0)
            .and_then(|s| s.name.clone())
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now())
            .field("live_tasks", &self.live_tasks())
            .field("pending_events", &self.pending_events())
            .finish()
    }
}

/// Future returned by [`Sim::sleep`].
pub struct Sleep {
    sim: Sim,
    deadline: SimTime,
    scheduled: bool,
}

impl Future for Sleep {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.sim.now() >= self.deadline {
            return Poll::Ready(());
        }
        if !self.scheduled {
            self.scheduled = true;
            let waker = cx.waker().clone();
            self.sim.schedule_at(self.deadline, move |_| waker.wake());
        }
        Poll::Pending
    }
}

/// Future returned by [`Sim::yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell as StdRefCell;

    #[test]
    fn clock_starts_at_zero_and_advances() {
        let sim = Sim::new(0);
        assert_eq!(sim.now(), SimTime::ZERO);
        sim.schedule_in(SimDuration::from_micros(10), |_| {});
        assert_eq!(sim.run().as_micros(), 10);
    }

    #[test]
    fn events_fire_in_time_then_insertion_order() {
        let sim = Sim::new(0);
        let log = Rc::new(StdRefCell::new(Vec::new()));
        for (delay, tag) in [(5u64, 'b'), (1, 'a'), (5, 'c')] {
            let log = Rc::clone(&log);
            sim.schedule_in(SimDuration::from_micros(delay), move |_| {
                log.borrow_mut().push(tag);
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec!['a', 'b', 'c']);
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let sim = Sim::new(0);
        let hit = Rc::new(Cell::new(false));
        let h = {
            let hit = Rc::clone(&hit);
            sim.schedule_in(SimDuration::from_micros(1), move |_| hit.set(true))
        };
        h.cancel();
        assert!(h.is_cancelled());
        sim.run();
        assert!(!hit.get());
        assert_eq!(sim.executed_events(), 0);
    }

    #[test]
    fn cancel_frees_closure_captures_eagerly() {
        // Regression (pre-fix: cancel only flipped a flag and the boxed
        // closure sat in the heap until its deadline popped — an acked
        // retransmit timer held its frame alive for the whole timeout).
        let sim = Sim::new(0);
        let payload = Rc::new(vec![0u8; 4096]);
        let h = {
            let payload = Rc::clone(&payload);
            sim.schedule_in(SimDuration::from_secs(30), move |_| drop(payload))
        };
        assert_eq!(Rc::strong_count(&payload), 2);
        h.cancel();
        assert_eq!(
            Rc::strong_count(&payload),
            1,
            "cancel must reclaim the closure and its captures eagerly, \
             not at the (far-future) deadline"
        );
    }

    #[test]
    fn cancel_storm_keeps_queue_occupancy_bounded() {
        // Regression (pre-fix: every cancelled entry stayed resident, so
        // occupancy grew with cancels, not with live timers).
        let sim = Sim::new(0);
        let live: Vec<_> = (0..16)
            .map(|_| sim.schedule_in(SimDuration::from_secs(60), |_| {}))
            .collect();
        for _ in 0..10_000 {
            let h = sim.schedule_in(SimDuration::from_millis(1), |_| {});
            h.cancel();
            assert!(
                sim.event_queue_keys() <= 16 + 65,
                "queue occupancy {} is not O(live timers)",
                sim.event_queue_keys()
            );
        }
        assert_eq!(sim.pending_events(), 16);
        drop(live);
    }

    #[test]
    fn run_bounded_cancel_storm_does_not_mask_livelock() {
        // Tombstones must not count as productive work: a wedged live
        // chain past the deadline still trips Err even when thousands of
        // cancelled timers sit in front of it, and none of the dead
        // entries show up in executed_events.
        let sim = Sim::new(0);
        for i in 0..1000u64 {
            let h = sim.schedule_in(SimDuration::from_micros(i + 1), |_| {});
            h.cancel();
        }
        sim.schedule_in(SimDuration::from_micros(50), |_| {});
        sim.schedule_in(SimDuration::from_secs(10), |_| {}); // beyond deadline
        let err = sim.run_bounded(SimTime::from_micros(100));
        assert_eq!(err, Err(SimTime::from_micros(100)));
        assert_eq!(
            sim.executed_events(),
            1,
            "only the one live in-deadline event is productive work"
        );
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let sim = Sim::new(0);
        let hit = Rc::new(Cell::new(0u32));
        for us in [5u64, 15] {
            let hit = Rc::clone(&hit);
            sim.schedule_in(SimDuration::from_micros(us), move |_| {
                hit.set(hit.get() + 1)
            });
        }
        sim.run_until(SimTime::from_micros(10));
        assert_eq!(hit.get(), 1);
        assert_eq!(sim.now().as_micros(), 10);
        sim.run();
        assert_eq!(hit.get(), 2);
    }

    #[test]
    fn run_bounded_reports_quiescence_time() {
        let sim = Sim::new(0);
        sim.schedule_in(SimDuration::from_micros(5), |_| {});
        let end = sim
            .run_bounded(SimTime::from_micros(100))
            .expect("quiesces");
        // The clock stops at the last event, not at the deadline.
        assert_eq!(end.as_micros(), 5);
        assert_eq!(sim.now().as_micros(), 5);
    }

    #[test]
    fn run_bounded_detects_wedged_event_chains() {
        // A self-perpetuating timer chain (like a retransmit loop whose
        // ack never comes) must trip the deadline instead of hanging.
        fn rearm(sim: &Sim) {
            sim.schedule_in(SimDuration::from_micros(10), rearm);
        }
        let sim = Sim::new(0);
        rearm(&sim);
        let err = sim.run_bounded(SimTime::from_micros(100));
        assert_eq!(err, Err(SimTime::from_micros(100)));
        // The pending chain survives: a later run resumes it.
        assert!(sim.now().as_micros() <= 100);
    }

    #[test]
    fn run_bounded_ignores_cancelled_stragglers() {
        let sim = Sim::new(0);
        sim.schedule_in(SimDuration::from_micros(5), |_| {});
        // A long-dated timer that gets cancelled (an acked retransmit)
        // must not read as a wedge, nor advance the clock.
        let h = sim.schedule_in(SimDuration::from_secs(30), |_| {});
        h.cancel();
        let end = sim.run_bounded(SimTime::from_micros(100)).expect("clean");
        assert_eq!(end.as_micros(), 5);
        assert_eq!(sim.now().as_micros(), 5);
    }

    #[test]
    fn sleep_advances_task_time() {
        let sim = Sim::new(0);
        let sim2 = sim.clone();
        let done = Rc::new(Cell::new(0u64));
        let done2 = Rc::clone(&done);
        sim.spawn(async move {
            sim2.sleep(SimDuration::from_micros(3)).await;
            sim2.sleep(SimDuration::from_micros(4)).await;
            done2.set(sim2.now().as_micros());
        });
        sim.run();
        assert_eq!(done.get(), 7);
        assert_eq!(sim.live_tasks(), 0);
    }

    #[test]
    fn zero_sleep_completes_immediately() {
        let sim = Sim::new(0);
        let sim2 = sim.clone();
        let done = Rc::new(Cell::new(false));
        let done2 = Rc::clone(&done);
        sim.spawn(async move {
            sim2.sleep(SimDuration::ZERO).await;
            done2.set(true);
        });
        sim.run();
        assert!(done.get());
    }

    #[test]
    fn yield_now_interleaves_tasks() {
        let sim = Sim::new(0);
        let log = Rc::new(StdRefCell::new(Vec::new()));
        for name in ["a", "b"] {
            let sim2 = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                for i in 0..2 {
                    log.borrow_mut().push(format!("{name}{i}"));
                    sim2.yield_now().await;
                }
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec!["a0", "b0", "a1", "b1"]);
    }

    #[test]
    fn tasks_spawning_tasks() {
        let sim = Sim::new(0);
        let sim2 = sim.clone();
        let count = Rc::new(Cell::new(0u32));
        let count2 = Rc::clone(&count);
        sim.spawn(async move {
            for _ in 0..3 {
                let sim3 = sim2.clone();
                let count3 = Rc::clone(&count2);
                sim2.spawn(async move {
                    sim3.sleep(SimDuration::from_micros(1)).await;
                    count3.set(count3.get() + 1);
                });
            }
        });
        sim.run();
        assert_eq!(count.get(), 3);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run_once() -> Vec<u64> {
            let sim = Sim::new(7);
            let out = Rc::new(StdRefCell::new(Vec::new()));
            for _ in 0..10 {
                let sim2 = sim.clone();
                let out2 = Rc::clone(&out);
                let delay = sim.with_rng(|r| r.gen_range(1, 100));
                sim.spawn(async move {
                    sim2.sleep(SimDuration::from_micros(delay)).await;
                    out2.borrow_mut().push(sim2.now().as_nanos());
                });
            }
            sim.run();
            Rc::try_unwrap(out).unwrap().into_inner()
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn named_tasks_expose_names() {
        let sim = Sim::new(0);
        let sim2 = sim.clone();
        let id = sim.spawn_named(Some("worker".into()), async move {
            sim2.sleep(SimDuration::from_micros(1)).await;
        });
        assert_eq!(sim.task_name(id).as_deref(), Some("worker"));
        sim.run();
        assert_eq!(sim.task_name(id), None);
    }
}
