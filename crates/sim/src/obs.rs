//! pm2-obs: structured observability — typed events, request timelines and
//! a metrics registry.
//!
//! The [`trace::Trace`](crate::trace::Trace) ring records free-form strings
//! for eyeballing; this module records *typed* events carrying the ids the
//! engine already tracks (request id, driver id, shard, tasklet id, rendezvous
//! id), so a run can be reconstructed programmatically: which call site
//! (inline / idle hook / tasklet) submitted each message to the NIC, when an
//! RTS met its CTS, how long a request waited end to end.
//!
//! Three pieces:
//!
//! * [`Obs`] — a bounded typed-event ring hung off every
//!   [`Sim`](crate::Sim) (see [`Sim::obs`](crate::Sim::obs)), plus the
//!   progression-site context and per-label latency histograms. Disabled by
//!   default; when disabled, emitting costs one branch and recording nothing.
//!   Enabling it never schedules simulation events or charges virtual time,
//!   so enabled and disabled runs are time-step identical.
//! * [`build_timelines`] — folds an event snapshot into per-request
//!   ([`ReqTimeline`]) and per-rendezvous ([`RdvTimeline`]) timelines:
//!   eager `posted → NIC submit → deliver → complete`, rendezvous
//!   `RTS → CTS → DMA → complete`.
//! * [`MetricsRegistry`] — one snapshot/export path over provider closures
//!   (engine counters, NIC fault counters, latency histograms), emitting
//!   deterministic JSON.

use crate::stats::Histogram;
use crate::SimTime;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

/// Which progression path was running when an event fired.
///
/// `App` is the default (application thread calling into the library);
/// PIOMAN sets the others for the duration of a locked progress pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Site {
    /// Application thread, outside any PIOMAN progress pass.
    #[default]
    App,
    /// Inline progress (polling wait or explicit kick).
    Inline,
    /// Idle-core hook progress.
    Hook,
    /// Offloaded tasklet progress.
    Tasklet,
}

impl Site {
    /// Lowercase name used in JSON exports.
    pub fn name(self) -> &'static str {
        match self {
            Site::App => "app",
            Site::Inline => "inline",
            Site::Hook => "hook",
            Site::Tasklet => "tasklet",
        }
    }
}

/// Typed payload of one observability event.
///
/// All fields are plain ids/sizes so construction is allocation-free;
/// `node` lives on the enclosing [`Event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A send was posted (`rdv` is the rendezvous id when the payload took
    /// the RTS/CTS path, `None` for eager).
    SendPosted {
        /// Request id.
        req: u64,
        /// Destination node index.
        dest: usize,
        /// Wire tag.
        tag: u64,
        /// Payload length in bytes.
        len: usize,
        /// Rendezvous id, if the rendezvous path was chosen.
        rdv: Option<u64>,
    },
    /// A receive was posted.
    RecvPosted {
        /// Request id.
        req: u64,
        /// Source filter, if any.
        src: Option<usize>,
        /// Wire tag.
        tag: u64,
    },
    /// A message was handed to a NIC rail.
    NicSubmit {
        /// Request id the submission progresses.
        req: u64,
        /// Destination node index.
        dest: usize,
        /// Wire bytes.
        bytes: usize,
        /// Progression site that performed the submit.
        site: Site,
    },
    /// A message was handed to the shared-memory transport.
    ShmSubmit {
        /// Request id the submission progresses.
        req: u64,
        /// Destination node index.
        dest: usize,
        /// Wire bytes.
        bytes: usize,
        /// Progression site that performed the submit.
        site: Site,
    },
    /// An eager payload reached its receive request.
    EagerDeliver {
        /// Receive-request id.
        req: u64,
        /// Source node index.
        src: usize,
        /// Wire tag.
        tag: u64,
        /// True if the payload arrived before the receive was posted.
        unexpected: bool,
    },
    /// Sender issued a rendezvous request-to-send.
    RtsTx {
        /// Sender-scoped rendezvous id.
        rdv: u64,
        /// Destination node index.
        dest: usize,
        /// Payload length in bytes.
        len: usize,
    },
    /// Receiver saw the RTS (`matched` = a receive was already posted).
    RtsRx {
        /// Sender-scoped rendezvous id.
        rdv: u64,
        /// Sender node index.
        src: usize,
        /// True if a matching receive was already posted.
        matched: bool,
    },
    /// Receiver issued the clear-to-send.
    CtsTx {
        /// Sender-scoped rendezvous id.
        rdv: u64,
        /// Sender node index the CTS travels to.
        dest: usize,
    },
    /// Sender saw the CTS and will start the data transfer.
    CtsRx {
        /// Sender-scoped rendezvous id.
        rdv: u64,
        /// Send-request id.
        req: u64,
    },
    /// Sender pushed one rendezvous data chunk onto the rail.
    DmaTx {
        /// Sender-scoped rendezvous id.
        rdv: u64,
        /// Destination node index.
        dest: usize,
        /// Chunk ordinal within the transfer.
        chunk: u32,
        /// Chunk length in bytes.
        len: usize,
    },
    /// Receiver absorbed one rendezvous data chunk.
    DmaRx {
        /// Sender-scoped rendezvous id.
        rdv: u64,
        /// Sender node index.
        src: usize,
        /// Chunk ordinal within the transfer.
        chunk: u32,
        /// Chunk length in bytes.
        len: usize,
    },
    /// The rendezvous transfer finished on the receiver.
    RdvComplete {
        /// Sender-scoped rendezvous id.
        rdv: u64,
        /// Receive-request id.
        req: u64,
        /// Sender node index.
        src: usize,
    },
    /// Reliability layer retransmitted an unacked envelope.
    Retransmit {
        /// Reliability sequence number.
        rel: u64,
        /// Destination node index.
        dest: usize,
        /// Retry ordinal (1 = first retransmit).
        attempt: u32,
    },
    /// Reliability layer suppressed a duplicate envelope.
    DupSuppressed {
        /// Reliability sequence number.
        rel: u64,
        /// Sender node index.
        src: usize,
    },
    /// Reliability layer abandoned an envelope after its retry budget ran
    /// out; any request waiting on that frame fails with a typed error.
    RetryExhausted {
        /// Reliability sequence number of the abandoned envelope.
        rel: u64,
        /// Destination node index of the abandoned envelope.
        dest: usize,
    },
    /// A PIOMAN request completed.
    ReqComplete {
        /// Request id.
        req: u64,
        /// Post-to-completion latency in virtual nanoseconds.
        latency_ns: u64,
    },
    /// One registered driver did work during a progress pass.
    DriverProgress {
        /// Driver id.
        driver: u64,
        /// Progression site of the pass.
        site: Site,
        /// Virtual-time cost charged, in nanoseconds.
        cost: u64,
    },
    /// A Marcel tasklet body ran.
    TaskletRun {
        /// Tasklet id.
        tasklet: u64,
        /// Core it ran on.
        core: usize,
        /// Shard it progressed, when it reported one.
        shard: Option<usize>,
        /// Virtual-time cost charged, in nanoseconds.
        cost: u64,
    },
    /// An idle hook reported work.
    HookWork {
        /// Core the hook ran on.
        core: usize,
        /// Shard it progressed, when it reported one.
        shard: Option<usize>,
        /// Virtual-time cost charged, in nanoseconds.
        cost: u64,
    },
    /// Origin issued a one-sided (RMA) operation onto the wire.
    RmaIssue {
        /// Origin-scoped RMA op id.
        op: u64,
        /// Target node index.
        dest: usize,
        /// Window id the op addresses.
        win: u64,
        /// Payload bytes moved (put/accumulate data out, get data back).
        bytes: usize,
    },
    /// Target applied a one-sided op (or one chunk of a large put) to its
    /// window — without the target ever calling into the library.
    RmaApply {
        /// Origin-scoped RMA op id.
        op: u64,
        /// Origin node index.
        src: usize,
        /// Window id the op addressed.
        win: u64,
        /// Bytes applied in this event.
        bytes: usize,
    },
    /// Origin saw the target's completion ack (or get reply) for an op.
    RmaAckRx {
        /// Origin-scoped RMA op id.
        op: u64,
        /// Target node index that acked.
        src: usize,
    },
    /// A collective DAG step was issued.
    CollStep {
        /// Issuing rank.
        rank: usize,
        /// Step index within the plan.
        step: usize,
        /// Planner-assigned flow id.
        flow: u64,
        /// Peer rank.
        peer: usize,
        /// True for a send step, false for a receive step.
        send: bool,
    },
}

/// One recorded observability event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Virtual time of the event.
    pub at: SimTime,
    /// Node the event was observed on, when attributable.
    pub node: Option<usize>,
    /// Typed payload.
    pub kind: EventKind,
}

struct ObsInner {
    events: VecDeque<Event>,
    latency: BTreeMap<&'static str, Histogram>,
}

/// Per-simulation observability state: typed-event ring, progression-site
/// context, request-id allocator and latency histograms.
///
/// Disabled by default. The request-id counter ticks whether or not
/// recording is enabled, so ids — and therefore every downstream decision —
/// are identical in enabled and disabled runs.
pub struct Obs {
    enabled: Cell<bool>,
    capacity: Cell<usize>,
    dropped: Cell<u64>,
    site: Cell<Site>,
    next_req: Cell<u64>,
    inner: RefCell<ObsInner>,
}

/// Latency-histogram resolution: 1 µs buckets.
const LATENCY_RESOLUTION_NS: f64 = 1_000.0;
/// Linear latency-histogram span: 8192 buckets ≈ 8 ms at 1 µs resolution.
const LATENCY_BUCKETS: usize = 8_192;
/// Geometric tail buckets past the linear span, so overload forensics keep
/// resolving instead of clamping at ~8 ms.
const LATENCY_TAIL_BUCKETS: usize = 64;
/// Tail bucket growth factor: 8.192 ms × 1.15⁶⁴ ≈ 63 s of span, past the
/// scenario suite's 60 s wedge deadline.
const LATENCY_TAIL_GROWTH: f64 = 1.15;

impl Obs {
    /// Creates a disabled recorder with the default capacity (256 Ki
    /// events).
    pub fn new() -> Obs {
        Obs {
            enabled: Cell::new(false),
            capacity: Cell::new(1 << 18),
            dropped: Cell::new(0),
            site: Cell::new(Site::App),
            next_req: Cell::new(0),
            inner: RefCell::new(ObsInner {
                events: VecDeque::new(),
                latency: BTreeMap::new(),
            }),
        }
    }

    /// Enables or disables recording.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.set(enabled);
    }

    /// True if recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled.get()
    }

    /// Caps the ring at `capacity` events (oldest evicted first, counted in
    /// [`Obs::dropped`]). A capacity of zero records nothing.
    pub fn set_capacity(&self, capacity: usize) {
        self.capacity.set(capacity);
        let mut inner = self.inner.borrow_mut();
        while inner.events.len() > capacity {
            inner.events.pop_front();
            self.dropped.set(self.dropped.get() + 1);
        }
    }

    /// Events evicted to keep the ring within capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Allocates the next request id. Ticks unconditionally so enabled and
    /// disabled runs see identical ids.
    pub fn next_req_id(&self) -> u64 {
        let id = self.next_req.get();
        self.next_req.set(id + 1);
        id
    }

    /// The progression site currently executing (set by PIOMAN around each
    /// locked progress pass).
    pub fn site(&self) -> Site {
        self.site.get()
    }

    /// Sets the progression-site context, returning the previous value for
    /// the caller to restore.
    pub fn set_site(&self, site: Site) -> Site {
        self.site.replace(site)
    }

    /// Records one event if enabled; a branch and nothing else when not.
    pub fn emit(&self, at: SimTime, node: Option<usize>, kind: EventKind) {
        if !self.enabled.get() {
            return;
        }
        let capacity = self.capacity.get();
        if capacity == 0 {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        while inner.events.len() >= capacity {
            inner.events.pop_front();
            self.dropped.set(self.dropped.get() + 1);
        }
        inner.events.push_back(Event { at, node, kind });
    }

    /// Records a latency sample under `label` if enabled.
    pub fn record_latency(&self, label: &'static str, ns: u64) {
        if !self.enabled.get() {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        inner
            .latency
            .entry(label)
            .or_insert_with(|| {
                Histogram::with_geometric_tail(
                    LATENCY_RESOLUTION_NS,
                    LATENCY_BUCKETS,
                    LATENCY_TAIL_BUCKETS,
                    LATENCY_TAIL_GROWTH,
                )
            })
            .record(ns as f64);
    }

    /// Snapshot of all recorded events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner.borrow().events.iter().copied().collect()
    }

    /// Per-label latency summary: `(label, count, p50_ns, p99_ns,
    /// p999_ns)`, sorted by label.
    pub fn latency_snapshot(&self) -> Vec<(&'static str, u64, f64, f64, f64)> {
        self.inner
            .borrow()
            .latency
            .iter()
            .map(|(label, h)| (*label, h.count(), h.p50(), h.p99(), h.p999()))
            .collect()
    }

    /// Clears recorded events and latency histograms (the request-id
    /// counter keeps running).
    pub fn clear(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.events.clear();
        inner.latency.clear();
        self.dropped.set(0);
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new()
    }
}

/// Which side of a point-to-point operation a request represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The sending side.
    Send,
    /// The receiving side.
    Recv,
}

impl Role {
    /// Lowercase name used in JSON exports.
    pub fn name(self) -> &'static str {
        match self {
            Role::Send => "send",
            Role::Recv => "recv",
        }
    }
}

/// Reconstructed lifetime of one posted request.
///
/// The eager path reads `posted_at → submit_at → delivered_at →
/// completed_at`; a rendezvous sender instead links to its
/// [`RdvTimeline`] through `rdv`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReqTimeline {
    /// Request id.
    pub req: u64,
    /// Node the request was posted on.
    pub node: Option<usize>,
    /// Send or receive side.
    pub role: Role,
    /// Peer node (destination for sends, source filter for receives).
    pub peer: Option<usize>,
    /// Wire tag.
    pub tag: u64,
    /// Payload length (sends only).
    pub len: Option<usize>,
    /// Rendezvous id, when the send took the RTS/CTS path.
    pub rdv: Option<u64>,
    /// When the request was posted.
    pub posted_at: SimTime,
    /// First NIC/shared-memory submission progressing this request.
    pub submit_at: Option<SimTime>,
    /// Progression site of that first submission.
    pub submit_site: Option<Site>,
    /// Eager delivery into this (receive) request.
    pub delivered_at: Option<SimTime>,
    /// True if the eager payload arrived before the receive was posted.
    pub unexpected: Option<bool>,
    /// Completion instant.
    pub completed_at: Option<SimTime>,
    /// Post-to-completion latency in nanoseconds.
    pub latency_ns: Option<u64>,
}

/// Reconstructed RTS → CTS → DMA → complete path of one rendezvous
/// transfer, keyed by `(sender, rdv)` (rendezvous ids are sender-scoped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RdvTimeline {
    /// Sender-scoped rendezvous id.
    pub rdv: u64,
    /// Sender node.
    pub sender: Option<usize>,
    /// Receiver node.
    pub receiver: Option<usize>,
    /// Payload length from the RTS.
    pub len: Option<usize>,
    /// RTS issued by the sender.
    pub rts_tx: Option<SimTime>,
    /// RTS observed by the receiver.
    pub rts_rx: Option<SimTime>,
    /// True if the receive was already posted when the RTS arrived.
    pub matched: Option<bool>,
    /// CTS issued by the receiver.
    pub cts_tx: Option<SimTime>,
    /// CTS observed by the sender.
    pub cts_rx: Option<SimTime>,
    /// Send-request id (learned at CTS receipt).
    pub send_req: Option<u64>,
    /// Receive-request id (learned at completion).
    pub recv_req: Option<u64>,
    /// Data chunks pushed by the sender.
    pub dma_chunks: u32,
    /// First data chunk leaving the sender.
    pub dma_first_tx: Option<SimTime>,
    /// Last data chunk absorbed by the receiver.
    pub dma_last_rx: Option<SimTime>,
    /// Transfer completion on the receiver.
    pub completed_at: Option<SimTime>,
}

/// Timelines reconstructed from an event snapshot.
#[derive(Debug, Clone, Default)]
pub struct Timelines {
    /// Per-request timelines, ordered by request id.
    pub reqs: Vec<ReqTimeline>,
    /// Per-rendezvous timelines, ordered by `(sender, rdv)`.
    pub rdvs: Vec<RdvTimeline>,
}

/// Folds an event snapshot (as returned by [`Obs::events`]) into
/// per-request and per-rendezvous timelines.
///
/// Only requests with a `SendPosted`/`RecvPosted` event get a
/// [`ReqTimeline`]; internal requests (RTS/CTS control messages and the
/// like) contribute to the rendezvous timelines instead. Rendezvous ids are
/// sender-scoped, so rendezvous records are keyed by `(sender, rdv)` —
/// receiver-side events recover the sender from their `src`/`dest` fields.
pub fn build_timelines(events: &[Event]) -> Timelines {
    let mut reqs: BTreeMap<u64, ReqTimeline> = BTreeMap::new();
    let mut rdvs: BTreeMap<(Option<usize>, u64), RdvTimeline> = BTreeMap::new();
    let mut completions: BTreeMap<u64, (SimTime, u64)> = BTreeMap::new();
    fn rdv_entry(
        rdvs: &mut BTreeMap<(Option<usize>, u64), RdvTimeline>,
        sender: Option<usize>,
        rdv: u64,
    ) -> &mut RdvTimeline {
        rdvs.entry((sender, rdv)).or_insert_with(|| RdvTimeline {
            rdv,
            sender,
            receiver: None,
            len: None,
            rts_tx: None,
            rts_rx: None,
            matched: None,
            cts_tx: None,
            cts_rx: None,
            send_req: None,
            recv_req: None,
            dma_chunks: 0,
            dma_first_tx: None,
            dma_last_rx: None,
            completed_at: None,
        })
    }
    for ev in events {
        match ev.kind {
            EventKind::SendPosted {
                req,
                dest,
                tag,
                len,
                rdv,
            } => {
                reqs.insert(
                    req,
                    ReqTimeline {
                        req,
                        node: ev.node,
                        role: Role::Send,
                        peer: Some(dest),
                        tag,
                        len: Some(len),
                        rdv,
                        posted_at: ev.at,
                        submit_at: None,
                        submit_site: None,
                        delivered_at: None,
                        unexpected: None,
                        completed_at: None,
                        latency_ns: None,
                    },
                );
            }
            EventKind::RecvPosted { req, src, tag } => {
                reqs.insert(
                    req,
                    ReqTimeline {
                        req,
                        node: ev.node,
                        role: Role::Recv,
                        peer: src,
                        tag,
                        len: None,
                        rdv: None,
                        posted_at: ev.at,
                        submit_at: None,
                        submit_site: None,
                        delivered_at: None,
                        unexpected: None,
                        completed_at: None,
                        latency_ns: None,
                    },
                );
            }
            EventKind::NicSubmit { req, site, .. } | EventKind::ShmSubmit { req, site, .. } => {
                if let Some(t) = reqs.get_mut(&req) {
                    if t.submit_at.is_none() {
                        t.submit_at = Some(ev.at);
                        t.submit_site = Some(site);
                    }
                }
            }
            EventKind::EagerDeliver {
                req, unexpected, ..
            } => {
                if let Some(t) = reqs.get_mut(&req) {
                    t.delivered_at = Some(ev.at);
                    t.unexpected = Some(unexpected);
                }
            }
            EventKind::ReqComplete { req, latency_ns } => {
                completions.insert(req, (ev.at, latency_ns));
            }
            EventKind::RtsTx { rdv, dest, len } => {
                let t = rdv_entry(&mut rdvs, ev.node, rdv);
                t.rts_tx = Some(ev.at);
                t.len = Some(len);
                t.receiver = Some(dest);
            }
            EventKind::RtsRx { rdv, src, matched } => {
                let t = rdv_entry(&mut rdvs, Some(src), rdv);
                t.rts_rx = Some(ev.at);
                t.matched = Some(matched);
                if t.receiver.is_none() {
                    t.receiver = ev.node;
                }
            }
            EventKind::CtsTx { rdv, dest } => {
                let t = rdv_entry(&mut rdvs, Some(dest), rdv);
                t.cts_tx = Some(ev.at);
            }
            EventKind::CtsRx { rdv, req } => {
                let t = rdv_entry(&mut rdvs, ev.node, rdv);
                t.cts_rx = Some(ev.at);
                t.send_req = Some(req);
            }
            EventKind::DmaTx { rdv, .. } => {
                let t = rdv_entry(&mut rdvs, ev.node, rdv);
                t.dma_chunks += 1;
                if t.dma_first_tx.is_none() {
                    t.dma_first_tx = Some(ev.at);
                }
            }
            EventKind::DmaRx { rdv, src, .. } => {
                let t = rdv_entry(&mut rdvs, Some(src), rdv);
                t.dma_last_rx = Some(ev.at);
            }
            EventKind::RdvComplete { rdv, req, src } => {
                let t = rdv_entry(&mut rdvs, Some(src), rdv);
                t.completed_at = Some(ev.at);
                t.recv_req = Some(req);
            }
            EventKind::Retransmit { .. }
            | EventKind::DupSuppressed { .. }
            | EventKind::RetryExhausted { .. }
            | EventKind::DriverProgress { .. }
            | EventKind::TaskletRun { .. }
            | EventKind::HookWork { .. }
            | EventKind::RmaIssue { .. }
            | EventKind::RmaApply { .. }
            | EventKind::RmaAckRx { .. }
            | EventKind::CollStep { .. } => {}
        }
    }
    for (req, (at, latency_ns)) in completions {
        if let Some(t) = reqs.get_mut(&req) {
            t.completed_at = Some(at);
            t.latency_ns = Some(latency_ns);
        }
    }
    Timelines {
        reqs: reqs.into_values().collect(),
        rdvs: rdvs.into_values().collect(),
    }
}

fn json_opt_u64(v: Option<u64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

fn json_opt_usize(v: Option<usize>) -> String {
    json_opt_u64(v.map(|v| v as u64))
}

fn json_opt_time(v: Option<SimTime>) -> String {
    json_opt_u64(v.map(SimTime::as_nanos))
}

fn json_opt_bool(v: Option<bool>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

impl Timelines {
    /// Serializes the timelines as deterministic JSON
    /// (`pm2-obs-timeline/v1`; all instants are virtual nanoseconds).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"pm2-obs-timeline/v1\",\n  \"reqs\": [");
        for (i, r) in self.reqs.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"req\": {}, \"node\": {}, \"role\": \"{}\", \"peer\": {}, \
                 \"tag\": {}, \"len\": {}, \"rdv\": {}, \"posted_at\": {}, \
                 \"submit_at\": {}, \"submit_site\": {}, \"delivered_at\": {}, \
                 \"unexpected\": {}, \"completed_at\": {}, \"latency_ns\": {}}}",
                if i == 0 { "" } else { "," },
                r.req,
                json_opt_usize(r.node),
                r.role.name(),
                json_opt_usize(r.peer),
                r.tag,
                json_opt_usize(r.len),
                json_opt_u64(r.rdv),
                r.posted_at.as_nanos(),
                json_opt_time(r.submit_at),
                match r.submit_site {
                    Some(s) => format!("\"{}\"", s.name()),
                    None => "null".to_string(),
                },
                json_opt_time(r.delivered_at),
                json_opt_bool(r.unexpected),
                json_opt_time(r.completed_at),
                json_opt_u64(r.latency_ns),
            );
        }
        out.push_str("\n  ],\n  \"rdvs\": [");
        for (i, r) in self.rdvs.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"rdv\": {}, \"sender\": {}, \"receiver\": {}, \"len\": {}, \
                 \"rts_tx\": {}, \"rts_rx\": {}, \"matched\": {}, \"cts_tx\": {}, \
                 \"cts_rx\": {}, \"send_req\": {}, \"recv_req\": {}, \"dma_chunks\": {}, \
                 \"dma_first_tx\": {}, \"dma_last_rx\": {}, \"completed_at\": {}}}",
                if i == 0 { "" } else { "," },
                r.rdv,
                json_opt_usize(r.sender),
                json_opt_usize(r.receiver),
                json_opt_usize(r.len),
                json_opt_time(r.rts_tx),
                json_opt_time(r.rts_rx),
                json_opt_bool(r.matched),
                json_opt_time(r.cts_tx),
                json_opt_time(r.cts_rx),
                json_opt_u64(r.send_req),
                json_opt_u64(r.recv_req),
                r.dma_chunks,
                json_opt_time(r.dma_first_tx),
                json_opt_time(r.dma_last_rx),
                json_opt_time(r.completed_at),
            );
        }
        out.push_str("\n  ]\n}");
        out
    }
}

type Provider = Box<dyn Fn() -> Vec<(String, f64)>>;

/// One snapshot/export path over every counter family in the stack.
///
/// Subsystems register named groups of metrics as provider closures
/// (`NmCounters` per node, NIC fault counters, collective counters, obs
/// latency histograms); [`MetricsRegistry::snapshot`] pulls them all at
/// once and [`MetricsRegistry::to_json`] emits deterministic JSON
/// (`pm2-obs-metrics/v1`).
#[derive(Default)]
pub struct MetricsRegistry {
    groups: RefCell<BTreeMap<String, Provider>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Registers (or replaces) the provider for `group`.
    pub fn register(
        &self,
        group: impl Into<String>,
        provider: impl Fn() -> Vec<(String, f64)> + 'static,
    ) {
        self.groups
            .borrow_mut()
            .insert(group.into(), Box::new(provider));
    }

    /// Pulls every provider; groups sorted by name, metrics within a group
    /// sorted by name.
    pub fn snapshot(&self) -> Vec<(String, Vec<(String, f64)>)> {
        self.groups
            .borrow()
            .iter()
            .map(|(name, provider)| {
                let mut metrics = provider();
                metrics.sort_by(|a, b| a.0.cmp(&b.0));
                (name.clone(), metrics)
            })
            .collect()
    }

    /// Serializes a snapshot as deterministic JSON (`pm2-obs-metrics/v1`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"pm2-obs-metrics/v1\",\n  \"groups\": {");
        for (gi, (group, metrics)) in self.snapshot().iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    \"{}\": {{",
                if gi == 0 { "" } else { "," },
                group
            );
            for (mi, (name, value)) in metrics.iter().enumerate() {
                let rendered = if value.fract() == 0.0 && value.abs() < 9e15 {
                    format!("{}", *value as i64)
                } else {
                    format!("{value}")
                };
                let _ = write!(
                    out,
                    "{}\"{}\": {}",
                    if mi == 0 { "" } else { ", " },
                    name,
                    rendered
                );
            }
            out.push('}');
        }
        out.push_str("\n  }\n}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_obs_records_nothing_but_ids_tick() {
        let obs = Obs::new();
        obs.emit(
            SimTime::ZERO,
            Some(0),
            EventKind::ReqComplete {
                req: 0,
                latency_ns: 1,
            },
        );
        obs.record_latency("x", 5);
        assert!(obs.events().is_empty());
        assert!(obs.latency_snapshot().is_empty());
        assert_eq!(obs.next_req_id(), 0);
        assert_eq!(obs.next_req_id(), 1);
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let obs = Obs::new();
        obs.set_enabled(true);
        obs.set_capacity(2);
        for i in 0..5 {
            obs.emit(
                SimTime::from_nanos(i),
                None,
                EventKind::ReqComplete {
                    req: i,
                    latency_ns: 0,
                },
            );
        }
        assert_eq!(obs.events().len(), 2);
        assert_eq!(obs.dropped(), 3);
        obs.set_capacity(0);
        assert!(obs.events().is_empty());
        obs.emit(
            SimTime::ZERO,
            None,
            EventKind::ReqComplete {
                req: 9,
                latency_ns: 0,
            },
        );
        assert!(obs.events().is_empty());
    }

    #[test]
    fn site_context_nests() {
        let obs = Obs::new();
        assert_eq!(obs.site(), Site::App);
        let prev = obs.set_site(Site::Tasklet);
        assert_eq!(prev, Site::App);
        assert_eq!(obs.site(), Site::Tasklet);
        obs.set_site(prev);
        assert_eq!(obs.site(), Site::App);
    }

    #[test]
    fn latency_histograms_accumulate() {
        let obs = Obs::new();
        obs.set_enabled(true);
        for ns in [1_000u64, 2_000, 3_000] {
            obs.record_latency("isend", ns);
        }
        let snap = obs.latency_snapshot();
        assert_eq!(snap.len(), 1);
        let (label, count, p50, p99, p999) = snap[0];
        assert_eq!(label, "isend");
        assert_eq!(count, 3);
        assert!(p50 > 0.0);
        // Three samples: every tail percentile answers the same bucket.
        assert_eq!(p99, p999);
    }

    #[test]
    fn latency_histogram_resolves_past_the_old_8ms_clamp() {
        let obs = Obs::new();
        obs.set_enabled(true);
        // 100 ms — far past the 8.192 ms linear span. The geometric tail
        // must answer a value at or above the sample, not clamp to 8.192 ms.
        obs.record_latency("svc", 100_000_000);
        let (_, _, _, _, p999) = obs.latency_snapshot()[0];
        assert!(p999 >= 100_000_000.0, "tail still clamps: p999 = {p999} ns");
        // And the tail is bounded: well under 10 minutes.
        assert!(p999 < 600_000_000_000.0);
    }

    #[test]
    fn eager_timeline_reconstructs() {
        let events = vec![
            Event {
                at: SimTime::from_nanos(10),
                node: Some(0),
                kind: EventKind::SendPosted {
                    req: 1,
                    dest: 1,
                    tag: 7,
                    len: 64,
                    rdv: None,
                },
            },
            Event {
                at: SimTime::from_nanos(11),
                node: Some(1),
                kind: EventKind::RecvPosted {
                    req: 2,
                    src: Some(0),
                    tag: 7,
                },
            },
            Event {
                at: SimTime::from_nanos(20),
                node: Some(0),
                kind: EventKind::NicSubmit {
                    req: 1,
                    dest: 1,
                    bytes: 80,
                    site: Site::Tasklet,
                },
            },
            Event {
                at: SimTime::from_nanos(30),
                node: Some(1),
                kind: EventKind::EagerDeliver {
                    req: 2,
                    src: 0,
                    tag: 7,
                    unexpected: false,
                },
            },
            Event {
                at: SimTime::from_nanos(25),
                node: Some(0),
                kind: EventKind::ReqComplete {
                    req: 1,
                    latency_ns: 15,
                },
            },
            Event {
                at: SimTime::from_nanos(30),
                node: Some(1),
                kind: EventKind::ReqComplete {
                    req: 2,
                    latency_ns: 19,
                },
            },
        ];
        let tl = build_timelines(&events);
        assert_eq!(tl.reqs.len(), 2);
        assert!(tl.rdvs.is_empty());
        let send = &tl.reqs[0];
        assert_eq!(send.role, Role::Send);
        assert_eq!(send.submit_site, Some(Site::Tasklet));
        assert_eq!(send.submit_at, Some(SimTime::from_nanos(20)));
        assert_eq!(send.completed_at, Some(SimTime::from_nanos(25)));
        assert_eq!(send.latency_ns, Some(15));
        let recv = &tl.reqs[1];
        assert_eq!(recv.role, Role::Recv);
        assert_eq!(recv.delivered_at, Some(SimTime::from_nanos(30)));
        assert_eq!(recv.unexpected, Some(false));
        let json = tl.to_json();
        assert!(json.contains("pm2-obs-timeline/v1"));
        assert!(json.contains("\"submit_site\": \"tasklet\""));
    }

    #[test]
    fn rdv_timeline_reconstructs() {
        let events = vec![
            Event {
                at: SimTime::from_nanos(10),
                node: Some(0),
                kind: EventKind::RtsTx {
                    rdv: 1,
                    dest: 1,
                    len: 1 << 16,
                },
            },
            Event {
                at: SimTime::from_nanos(20),
                node: Some(1),
                kind: EventKind::RtsRx {
                    rdv: 1,
                    src: 0,
                    matched: true,
                },
            },
            Event {
                at: SimTime::from_nanos(21),
                node: Some(1),
                kind: EventKind::CtsTx { rdv: 1, dest: 0 },
            },
            Event {
                at: SimTime::from_nanos(30),
                node: Some(0),
                kind: EventKind::CtsRx { rdv: 1, req: 5 },
            },
            Event {
                at: SimTime::from_nanos(31),
                node: Some(0),
                kind: EventKind::DmaTx {
                    rdv: 1,
                    dest: 1,
                    chunk: 0,
                    len: 1 << 15,
                },
            },
            Event {
                at: SimTime::from_nanos(32),
                node: Some(0),
                kind: EventKind::DmaTx {
                    rdv: 1,
                    dest: 1,
                    chunk: 1,
                    len: 1 << 15,
                },
            },
            Event {
                at: SimTime::from_nanos(40),
                node: Some(1),
                kind: EventKind::DmaRx {
                    rdv: 1,
                    src: 0,
                    chunk: 1,
                    len: 1 << 15,
                },
            },
            Event {
                at: SimTime::from_nanos(41),
                node: Some(1),
                kind: EventKind::RdvComplete {
                    rdv: 1,
                    req: 6,
                    src: 0,
                },
            },
        ];
        let tl = build_timelines(&events);
        assert_eq!(tl.rdvs.len(), 1);
        let r = &tl.rdvs[0];
        assert_eq!(r.sender, Some(0));
        assert_eq!(r.receiver, Some(1));
        assert_eq!(r.matched, Some(true));
        assert_eq!(r.dma_chunks, 2);
        assert_eq!(r.send_req, Some(5));
        assert_eq!(r.recv_req, Some(6));
        assert!(r.rts_tx.unwrap() < r.rts_rx.unwrap());
        assert!(r.cts_tx.unwrap() < r.cts_rx.unwrap());
        assert!(r.dma_first_tx.unwrap() < r.dma_last_rx.unwrap());
        assert!(tl.to_json().contains("\"dma_chunks\": 2"));
    }

    #[test]
    fn metrics_registry_exports_sorted_json() {
        let reg = MetricsRegistry::new();
        reg.register("nm.node1", || vec![("b".into(), 2.0), ("a".into(), 1.0)]);
        reg.register("nm.node0", || vec![("x".into(), 1.5)]);
        let snap = reg.snapshot();
        assert_eq!(snap[0].0, "nm.node0");
        assert_eq!(snap[1].1[0].0, "a");
        let json = reg.to_json();
        assert!(json.contains("pm2-obs-metrics/v1"));
        assert!(json.contains("\"a\": 1, \"b\": 2"));
        assert!(json.contains("\"x\": 1.5"));
    }
}
