//! One-shot completion primitives for simulated activities.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// A one-shot, multi-waiter event flag.
///
/// This is the simulated counterpart of a completion: PIOMAN fires the
/// trigger when a request completes; any number of activities awaiting
/// [`Trigger::wait`] resume at the same virtual instant.
///
/// # Example
/// ```
/// use pm2_sim::{Sim, SimDuration, Trigger};
/// let sim = Sim::new(0);
/// let done = Trigger::new();
/// let d2 = done.clone();
/// let sim2 = sim.clone();
/// sim.spawn(async move {
///     d2.wait().await;
///     assert_eq!(sim2.now().as_micros(), 5);
/// });
/// let d3 = done.clone();
/// sim.schedule_in(SimDuration::from_micros(5), move |_| d3.fire());
/// sim.run();
/// assert!(done.is_fired());
/// ```
#[derive(Clone, Default)]
pub struct Trigger {
    state: Rc<RefCell<TriggerState>>,
}

#[derive(Default)]
struct TriggerState {
    fired: bool,
    waiters: Vec<Waker>,
}

impl Trigger {
    /// Creates an unfired trigger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fires the trigger, waking all current and future waiters.
    /// Idempotent.
    pub fn fire(&self) {
        let waiters = {
            let mut st = self.state.borrow_mut();
            if st.fired {
                return;
            }
            st.fired = true;
            std::mem::take(&mut st.waiters)
        };
        for w in waiters {
            w.wake();
        }
    }

    /// True once [`Trigger::fire`] has been called.
    pub fn is_fired(&self) -> bool {
        self.state.borrow().fired
    }

    /// A future resolving when the trigger fires (immediately if already
    /// fired).
    pub fn wait(&self) -> TriggerWait {
        TriggerWait {
            state: Rc::clone(&self.state),
        }
    }
}

impl std::fmt::Debug for Trigger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trigger")
            .field("fired", &self.is_fired())
            .finish()
    }
}

/// Future returned by [`Trigger::wait`].
pub struct TriggerWait {
    state: Rc<RefCell<TriggerState>>,
}

impl Future for TriggerWait {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut st = self.state.borrow_mut();
        if st.fired {
            Poll::Ready(())
        } else {
            // Replace a stale clone of the same waker rather than pile up.
            if !st.waiters.iter().any(|w| w.will_wake(cx.waker())) {
                st.waiters.push(cx.waker().clone());
            }
            Poll::Pending
        }
    }
}

/// Sends the single value of a [`OneShot`] channel.
pub struct OneShotSender<T> {
    state: Rc<RefCell<OneShotState<T>>>,
}

/// A single-value, single-consumer rendezvous cell.
///
/// Used for request/acknowledgement pairs (e.g. the rendezvous CTS carries
/// the receiver's buffer descriptor back to the sender).
pub struct OneShot<T> {
    state: Rc<RefCell<OneShotState<T>>>,
}

struct OneShotState<T> {
    value: Option<T>,
    taken: bool,
    waiter: Option<Waker>,
}

impl<T> OneShot<T> {
    /// Creates the channel; returns (receiver, sender).
    pub fn new() -> (OneShot<T>, OneShotSender<T>) {
        let state = Rc::new(RefCell::new(OneShotState {
            value: None,
            taken: false,
            waiter: None,
        }));
        (
            OneShot {
                state: Rc::clone(&state),
            },
            OneShotSender { state },
        )
    }

    /// Awaits the value.
    ///
    /// # Panics (on await)
    /// Panics if awaited twice: the value can be received only once.
    pub fn recv(self) -> OneShotRecv<T> {
        OneShotRecv { state: self.state }
    }

    /// Non-blocking probe: takes the value if it has arrived.
    pub fn try_recv(&self) -> Option<T> {
        let mut st = self.state.borrow_mut();
        let v = st.value.take();
        if v.is_some() {
            st.taken = true;
        }
        v
    }
}

impl<T> OneShotSender<T> {
    /// Delivers the value and wakes the receiver.
    ///
    /// # Panics
    /// Panics if called twice.
    pub fn send(self, value: T) {
        let waker = {
            let mut st = self.state.borrow_mut();
            assert!(
                st.value.is_none() && !st.taken,
                "OneShotSender::send called twice"
            );
            st.value = Some(value);
            st.waiter.take()
        };
        if let Some(w) = waker {
            w.wake();
        }
    }
}

/// Future returned by [`OneShot::recv`].
pub struct OneShotRecv<T> {
    state: Rc<RefCell<OneShotState<T>>>,
}

impl<T> Future for OneShotRecv<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut st = self.state.borrow_mut();
        if let Some(v) = st.value.take() {
            st.taken = true;
            return Poll::Ready(v);
        }
        assert!(!st.taken, "OneShot value received twice");
        st.waiter = Some(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sim, SimDuration};
    use std::cell::Cell;

    #[test]
    fn trigger_releases_multiple_waiters_at_fire_time() {
        let sim = Sim::new(0);
        let trig = Trigger::new();
        let released = Rc::new(Cell::new(0u32));
        for _ in 0..3 {
            let t = trig.clone();
            let released = Rc::clone(&released);
            let sim2 = sim.clone();
            sim.spawn(async move {
                t.wait().await;
                assert_eq!(sim2.now().as_micros(), 9);
                released.set(released.get() + 1);
            });
        }
        let t2 = trig.clone();
        sim.schedule_in(SimDuration::from_micros(9), move |_| t2.fire());
        sim.run();
        assert_eq!(released.get(), 3);
        assert!(trig.is_fired());
    }

    #[test]
    fn waiting_on_fired_trigger_is_immediate() {
        let sim = Sim::new(0);
        let trig = Trigger::new();
        trig.fire();
        trig.fire(); // idempotent
        let done = Rc::new(Cell::new(false));
        let done2 = Rc::clone(&done);
        let t = trig.clone();
        sim.spawn(async move {
            t.wait().await;
            done2.set(true);
        });
        sim.run();
        assert!(done.get());
    }

    #[test]
    fn oneshot_delivers_value_across_time() {
        let sim = Sim::new(0);
        let (rx, tx) = OneShot::<u32>::new();
        let got = Rc::new(Cell::new(0u32));
        let got2 = Rc::clone(&got);
        sim.spawn(async move {
            got2.set(rx.recv().await);
        });
        sim.schedule_in(SimDuration::from_micros(2), move |_| tx.send(77));
        sim.run();
        assert_eq!(got.get(), 77);
    }

    #[test]
    fn oneshot_try_recv_probes() {
        let (rx, tx) = OneShot::<u8>::new();
        assert_eq!(rx.try_recv(), None);
        tx.send(5);
        assert_eq!(rx.try_recv(), Some(5));
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    #[should_panic(expected = "send called twice")]
    fn oneshot_double_send_panics() {
        let (_rx, tx) = OneShot::<u8>::new();
        let tx2 = OneShotSender {
            state: Rc::clone(&tx.state),
        };
        tx.send(1);
        tx2.send(2);
    }
}
