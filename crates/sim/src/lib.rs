//! Deterministic discrete-event simulation (DES) kernel with virtual time.
//!
//! The paper's experiments ran on two 8-core Xeon nodes with Myrinet
//! MYRI-10G NICs. Reproducing the *mechanisms* — idle-core offloading,
//! background rendezvous progression — requires a machine where cores can
//! actually be idle while others compute. This crate provides the substrate
//! on which `pm2-marcel` (scheduler), `pm2-fabric` (NICs/links) and the
//! engines are built:
//!
//! * a virtual clock in nanoseconds ([`SimTime`], [`SimDuration`]);
//! * a hierarchical calendar event queue with slab-recycled, inline-stored
//!   events — allocation-free on the steady-state hot path — whose pops
//!   remain stable (ties broken by insertion sequence, so runs are
//!   bit-for-bit reproducible);
//! * a single-threaded async executor: simulated activities are ordinary
//!   `async` blocks that suspend on virtual-time futures ([`Sim::sleep`],
//!   [`Trigger::wait`]) — this plays the role the ucontext stack switching
//!   plays in Marcel;
//! * a seeded xoshiro256** RNG ([`rng::Xoshiro256`]) for workload
//!   generation and jitter injection;
//! * measurement helpers ([`stats::OnlineStats`], [`stats::Histogram`]) and
//!   an event [`trace::Trace`] ring;
//! * pm2-obs ([`obs::Obs`]): typed span/event records, per-request timeline
//!   reconstruction and a [`obs::MetricsRegistry`] export path.
//!
//! # Example
//! ```
//! use pm2_sim::{Sim, SimDuration};
//!
//! let sim = Sim::new(42);
//! let sim2 = sim.clone();
//! sim.spawn(async move {
//!     sim2.sleep(SimDuration::from_micros(5)).await;
//!     assert_eq!(sim2.now().as_micros(), 5);
//! });
//! sim.run();
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod channel;
mod equeue;
mod executor;
pub mod obs;
pub mod rng;
mod sem;
mod sim;
mod slab;
pub mod stats;
mod time;
pub mod trace;
mod trigger;
pub mod verify;

pub use channel::SimChannel;
pub use executor::TaskId;
pub use obs::{EventKind, MetricsRegistry, Obs, Site};
pub use sem::{SemPermit, Semaphore};
pub use sim::{Sim, TimerHandle};
pub use slab::Slab;
pub use time::{SimDuration, SimTime};
pub use trigger::{OneShot, OneShotSender, Trigger};
pub use verify::{LockInversion, RaceFinding, Verify, VerifyReport};
