//! pm2-verify: a sim-level lock-order and happens-before analyzer.
//!
//! The deterministic simulation executes on one OS thread, so it can never
//! deadlock or tear data *at runtime* — but it faithfully models code that
//! is multithreaded in the real engine (PIOMAN progress passes racing
//! application threads). This module checks the two properties that a real
//! deployment of the modelled locking discipline would need:
//!
//! * **Lock ordering** — every simulated critical section is bracketed by
//!   [`Verify::lock_acquire`]/[`Verify::lock_release`] with a stable name
//!   (`"pioman.registry"`, `"newmad.state"`, `"coll.state"`). Acquiring L
//!   while holding H records the edge H → L; a cycle in that graph is a
//!   lock-order inversion — a latent ABBA deadlock in the multithreaded
//!   incarnation — reported by [`Verify::report`].
//! * **Happens-before on request state** — request completion state is
//!   written by whichever progression site detects the hardware event
//!   (inline / idle hook / tasklet, see [`Site`]) and read by waiting
//!   application threads. Each logical thread class (`(node, site)`) gets
//!   a vector clock; lock sections and the publish/acquire pair around the
//!   completion flag ([`Verify::hb_publish`] in `complete()`, mirroring a
//!   `Release` store; [`Verify::hb_acquire`] at the wait-side observation,
//!   mirroring the `Acquire` load) create the edges. A touch that is not
//!   ordered after the previous conflicting touch is reported as a race.
//!
//! Like [`Obs`](crate::obs::Obs), the analyzer is disabled by default,
//! costs one branch per call when disabled, and **never schedules events
//! or charges virtual time**, so enabled and disabled runs are
//! time-step identical (the baseline guard stays byte-identical).
//!
//! Honest limits: actors are *classes* of threads, not individual Marcel
//! threads — two application threads on the same node share a clock, so
//! races strictly between them are invisible; and only instrumented state
//! (request completion) is tracked, not arbitrary session fields.

use crate::obs::Site;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

/// Vector clock over dynamically-registered actors.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct VClock(Vec<u32>);

impl VClock {
    fn bump(&mut self, i: usize) {
        if self.0.len() <= i {
            self.0.resize(i + 1, 0);
        }
        self.0[i] += 1;
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a = (*a).max(*b);
        }
    }

    /// `self ≤ other` component-wise (self happens-before-or-equals other).
    fn le(&self, other: &VClock) -> bool {
        self.0
            .iter()
            .enumerate()
            .all(|(i, &a)| a <= other.0.get(i).copied().unwrap_or(0))
    }
}

/// A logical thread class: the node (when known) plus the progression site.
type Actor = (Option<usize>, &'static str);

fn actor_name(actor: Actor) -> String {
    match actor.0 {
        Some(n) => format!("node{}/{}", n, actor.1),
        None => actor.1.to_string(),
    }
}

/// One lock-order inversion: a cycle in the held-while-acquiring graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockInversion {
    /// The locks on the cycle, in edge order (last acquires the first).
    pub cycle: Vec<&'static str>,
    /// One witness per edge: which actor acquired `to` while holding
    /// `from`, and how often that edge was exercised.
    pub witnesses: Vec<String>,
}

/// One happens-before race on tracked request state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceFinding {
    /// Request id the conflicting touches refer to.
    pub req: u64,
    /// True if the unordered access was a write.
    pub write: bool,
    /// Actor performing the unordered access.
    pub actor: String,
    /// Actor of the prior conflicting access it is not ordered after.
    pub prior: String,
}

/// Everything the analyzer found. Empty on a clean run.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Lock-order inversions (latent ABBA deadlocks).
    pub lock_inversions: Vec<LockInversion>,
    /// Happens-before races on request state.
    pub races: Vec<RaceFinding>,
    /// Instrumentation protocol errors (e.g. unbalanced release).
    pub errors: Vec<String>,
}

impl VerifyReport {
    /// True when nothing was found.
    pub fn is_clean(&self) -> bool {
        self.lock_inversions.is_empty() && self.races.is_empty() && self.errors.is_empty()
    }

    /// Human-readable summary of every finding, one per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for inv in &self.lock_inversions {
            out.push_str(&format!(
                "lock-order inversion: cycle {:?}; witnesses: {}\n",
                inv.cycle,
                inv.witnesses.join("; ")
            ));
        }
        for race in &self.races {
            out.push_str(&format!(
                "happens-before race on req {}: {} by {} not ordered after {} by {}\n",
                race.req,
                if race.write { "write" } else { "read" },
                race.actor,
                if race.write { "access" } else { "write" },
                race.prior
            ));
        }
        for err in &self.errors {
            out.push_str(&format!("instrumentation error: {err}\n"));
        }
        out
    }
}

struct EdgeInfo {
    witness: String,
    count: u64,
}

struct ReqState {
    write: Option<(VClock, usize)>,
    reads: VClock,
    last_reader: Option<usize>,
}

#[derive(Default)]
struct Inner {
    /// Actor registry: identity → clock index.
    actors: BTreeMap<Actor, usize>,
    names: Vec<String>,
    clocks: Vec<VClock>,
    /// Stack of currently-held lock names (the sim is single-threaded, so
    /// critical sections nest globally).
    held: Vec<&'static str>,
    /// Release-clock per lock (models the mutex's synchronizes-with edge).
    lock_clocks: BTreeMap<&'static str, VClock>,
    /// Held-while-acquiring edges with a witness each.
    edges: BTreeMap<(&'static str, &'static str), EdgeInfo>,
    /// Publish clocks per request (models the completion flag's Release
    /// store / Acquire load pair).
    tokens: BTreeMap<u64, VClock>,
    reqs: BTreeMap<u64, ReqState>,
    races: Vec<RaceFinding>,
    errors: Vec<String>,
    acquires: u64,
    touches: u64,
}

impl Inner {
    fn actor_index(&mut self, actor: Actor) -> usize {
        if let Some(&i) = self.actors.get(&actor) {
            return i;
        }
        let i = self.clocks.len();
        self.actors.insert(actor, i);
        self.names.push(actor_name(actor));
        self.clocks.push(VClock::default());
        self.clocks[i].bump(i);
        i
    }
}

/// The analyzer hung off every [`Sim`](crate::Sim); see the module docs.
pub struct Verify {
    enabled: Cell<bool>,
    site: Cell<Site>,
    node: Cell<Option<usize>>,
    inner: RefCell<Inner>,
}

impl Verify {
    /// Creates a disabled analyzer.
    pub fn new() -> Verify {
        Verify {
            enabled: Cell::new(false),
            site: Cell::new(Site::App),
            node: Cell::new(None),
            inner: RefCell::new(Inner::default()),
        }
    }

    /// Enables or disables the analyzer.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.set(enabled);
    }

    /// True if recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled.get()
    }

    /// Sets the progression-site context (mirrors
    /// [`Obs::set_site`](crate::obs::Obs::set_site)); returns the previous
    /// value for the caller to restore.
    pub fn set_site(&self, site: Site) -> Site {
        self.site.replace(site)
    }

    /// Sets the node context for actor attribution; returns the previous
    /// value for the caller to restore.
    pub fn set_node(&self, node: Option<usize>) -> Option<usize> {
        self.node.replace(node)
    }

    fn current_actor(&self) -> Actor {
        (self.node.get(), self.site.get().name())
    }

    /// `(lock acquisitions, state touches)` recorded so far — used by
    /// tests to prove the analyzer actually saw traffic (a clean report
    /// over zero observations proves nothing).
    pub fn counts(&self) -> (u64, u64) {
        let inner = self.inner.borrow();
        (inner.acquires, inner.touches)
    }

    /// The held-while-acquiring edges recorded so far as
    /// `(held, acquired, times exercised)` — the analyzed lock graph.
    pub fn lock_edges(&self) -> Vec<(&'static str, &'static str, u64)> {
        self.inner
            .borrow()
            .edges
            .iter()
            .map(|((f, t), e)| (*f, *t, e.count))
            .collect()
    }

    // ----- lock tracking --------------------------------------------------

    /// Enter the named critical section: records held-while-acquiring
    /// edges and the mutex acquire happens-before edge.
    pub fn lock_acquire(&self, name: &'static str) {
        if !self.enabled.get() {
            return;
        }
        let actor = self.current_actor();
        let mut inner = self.inner.borrow_mut();
        inner.acquires += 1;
        let a = inner.actor_index(actor);
        for i in 0..inner.held.len() {
            let held = inner.held[i];
            if held == name {
                let msg = format!(
                    "reentrant acquire of {name:?} by {} (self-deadlock in a real mutex)",
                    actor_name(actor)
                );
                inner.errors.push(msg);
                continue;
            }
            let witness = format!("{} acquired {name:?} holding {held:?}", actor_name(actor));
            inner
                .edges
                .entry((held, name))
                .and_modify(|e| e.count += 1)
                .or_insert(EdgeInfo { witness, count: 1 });
        }
        if let Some(lc) = inner.lock_clocks.get(name).cloned() {
            inner.clocks[a].join(&lc);
        }
        inner.held.push(name);
    }

    /// Leave the named critical section: records the mutex release
    /// happens-before edge.
    pub fn lock_release(&self, name: &'static str) {
        if !self.enabled.get() {
            return;
        }
        let actor = self.current_actor();
        let mut inner = self.inner.borrow_mut();
        let a = inner.actor_index(actor);
        match inner.held.pop() {
            Some(top) if top == name => {}
            Some(top) => {
                let msg = format!("release of {name:?} while {top:?} is on top of the lock stack");
                inner.errors.push(msg);
                inner.held.push(top);
            }
            None => {
                let msg = format!("release of {name:?} with no lock held");
                inner.errors.push(msg);
            }
        }
        inner.clocks[a].bump(a);
        let clock = inner.clocks[a].clone();
        inner.lock_clocks.entry(name).or_default().join(&clock);
    }

    // ----- request-state happens-before tracking --------------------------

    /// A write touch of request `req`'s tracked state (its completion
    /// record): must be ordered after every prior touch.
    pub fn touch_write(&self, req: u64) {
        self.touch(req, true);
    }

    /// A read touch of request `req`'s tracked state: must be ordered
    /// after the prior write.
    pub fn touch_read(&self, req: u64) {
        self.touch(req, false);
    }

    fn touch(&self, req: u64, write: bool) {
        if !self.enabled.get() {
            return;
        }
        let actor = self.current_actor();
        let mut inner = self.inner.borrow_mut();
        inner.touches += 1;
        let a = inner.actor_index(actor);
        inner.clocks[a].bump(a);
        let clock = inner.clocks[a].clone();
        let st = inner.reqs.entry(req).or_insert(ReqState {
            write: None,
            reads: VClock::default(),
            last_reader: None,
        });
        let mut prior: Option<usize> = None;
        if let Some((wc, wa)) = &st.write {
            if !wc.le(&clock) {
                prior = Some(*wa);
            }
        }
        if write && prior.is_none() && !st.reads.le(&clock) {
            prior = st.last_reader;
        }
        if write {
            st.write = Some((clock.clone(), a));
            st.reads = clock;
            st.last_reader = None;
        } else {
            st.reads.join(&clock);
            st.last_reader = Some(a);
        }
        if let Some(p) = prior {
            let race = RaceFinding {
                req,
                write,
                actor: inner.names[a].clone(),
                prior: inner.names[p].clone(),
            };
            inner.races.push(race);
        }
    }

    /// Models the `Release` store of request `req`'s completion flag:
    /// joins the current actor's clock into the request's publish token.
    pub fn hb_publish(&self, req: u64) {
        if !self.enabled.get() {
            return;
        }
        let actor = self.current_actor();
        let mut inner = self.inner.borrow_mut();
        let a = inner.actor_index(actor);
        inner.clocks[a].bump(a);
        let clock = inner.clocks[a].clone();
        inner.tokens.entry(req).or_default().join(&clock);
    }

    /// Models the `Acquire` load that observed request `req` complete:
    /// joins the publish token into the current actor's clock.
    pub fn hb_acquire(&self, req: u64) {
        if !self.enabled.get() {
            return;
        }
        let actor = self.current_actor();
        let mut inner = self.inner.borrow_mut();
        let a = inner.actor_index(actor);
        if let Some(tc) = inner.tokens.get(&req).cloned() {
            inner.clocks[a].join(&tc);
        }
    }

    /// Wait-side observation of a completed request: the `Acquire` load
    /// plus a read touch of the completion record.
    pub fn observe_complete(&self, req: u64) {
        if !self.enabled.get() {
            return;
        }
        self.hb_acquire(req);
        self.touch_read(req);
    }

    // ----- reporting ------------------------------------------------------

    /// Builds the findings report: cycle-detects the lock graph and
    /// returns the recorded races and protocol errors.
    pub fn report(&self) -> VerifyReport {
        let inner = self.inner.borrow();
        let mut adj: BTreeMap<&'static str, Vec<&'static str>> = BTreeMap::new();
        for (from, to) in inner.edges.keys() {
            adj.entry(*from).or_default().push(*to);
        }
        let mut inversions = Vec::new();
        let mut seen_cycles: Vec<Vec<&'static str>> = Vec::new();
        // Iterative DFS from every node; a back edge onto the current path
        // yields a cycle. Graphs here are tiny (a handful of named locks).
        for &start in adj.keys() {
            let mut path: Vec<&'static str> = vec![start];
            let mut iters: Vec<usize> = vec![0];
            while let Some(level) = iters.last_mut() {
                let node = *path.last().expect("path tracks iters");
                let next = adj.get(node).and_then(|v| v.get(*level)).copied();
                *level += 1;
                match next {
                    Some(n) => {
                        if let Some(pos) = path.iter().position(|&p| p == n) {
                            let mut cycle: Vec<&'static str> = path[pos..].to_vec();
                            // Canonical rotation for dedup.
                            let min = cycle
                                .iter()
                                .enumerate()
                                .min_by_key(|(_, s)| **s)
                                .map(|(i, _)| i)
                                .unwrap_or(0);
                            cycle.rotate_left(min);
                            if !seen_cycles.contains(&cycle) {
                                seen_cycles.push(cycle.clone());
                                let witnesses = cycle
                                    .iter()
                                    .zip(cycle.iter().cycle().skip(1))
                                    .filter_map(|(f, t)| inner.edges.get(&(*f, *t)))
                                    .map(|e| format!("{} ({}x)", e.witness, e.count))
                                    .collect();
                                inversions.push(LockInversion { cycle, witnesses });
                            }
                        } else if !path.contains(&n) {
                            path.push(n);
                            iters.push(0);
                        }
                    }
                    None => {
                        path.pop();
                        iters.pop();
                    }
                }
            }
        }
        VerifyReport {
            lock_inversions: inversions,
            races: inner.races.clone(),
            errors: inner.errors.clone(),
        }
    }

    /// Panics with every finding if the run was not clean.
    ///
    /// # Panics
    /// On any lock-order inversion, happens-before race or
    /// instrumentation error.
    pub fn assert_clean(&self) {
        let report = self.report();
        assert!(
            report.is_clean(),
            "pm2-verify found concurrency-discipline violations:\n{}",
            report.render()
        );
    }
}

impl Default for Verify {
    fn default() -> Self {
        Verify::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let v = Verify::new();
        v.lock_acquire("a");
        v.lock_acquire("b");
        v.lock_release("a"); // would be unbalanced if recording
        v.touch_write(1);
        v.touch_read(1);
        assert_eq!(v.counts(), (0, 0));
        assert!(v.report().is_clean());
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let v = Verify::new();
        v.set_enabled(true);
        for _ in 0..3 {
            v.lock_acquire("registry");
            v.lock_acquire("state");
            v.lock_release("state");
            v.lock_release("registry");
        }
        let report = v.report();
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(v.counts().0, 6);
    }

    #[test]
    fn abba_inversion_is_found() {
        let v = Verify::new();
        v.set_enabled(true);
        v.lock_acquire("a");
        v.lock_acquire("b");
        v.lock_release("b");
        v.lock_release("a");
        // Later, the opposite order — never overlapping at runtime, but a
        // latent deadlock for real threads.
        v.lock_acquire("b");
        v.lock_acquire("a");
        v.lock_release("a");
        v.lock_release("b");
        let report = v.report();
        assert_eq!(report.lock_inversions.len(), 1);
        let cycle = &report.lock_inversions[0].cycle;
        assert_eq!(cycle.len(), 2);
        assert!(cycle.contains(&"a") && cycle.contains(&"b"));
        assert!(report.render().contains("lock-order inversion"));
    }

    #[test]
    fn three_lock_cycle_is_found_once() {
        let v = Verify::new();
        v.set_enabled(true);
        for (h, l) in [("a", "b"), ("b", "c"), ("c", "a")] {
            v.lock_acquire(h);
            v.lock_acquire(l);
            v.lock_release(l);
            v.lock_release(h);
        }
        let report = v.report();
        assert_eq!(report.lock_inversions.len(), 1);
        assert_eq!(report.lock_inversions[0].cycle.len(), 3);
    }

    #[test]
    fn unpublished_completion_read_races() {
        let v = Verify::new();
        v.set_enabled(true);
        // Writer: a tasklet progress pass completes the request but never
        // publishes (a missing Release store).
        v.set_site(Site::Tasklet);
        v.touch_write(7);
        // Reader: the application thread observes it with no ordering.
        v.set_site(Site::App);
        v.touch_read(7);
        let report = v.report();
        assert_eq!(report.races.len(), 1);
        assert_eq!(report.races[0].req, 7);
        assert!(!report.races[0].write);
        assert_eq!(report.races[0].prior, "tasklet");
    }

    #[test]
    fn publish_acquire_pair_orders_the_read() {
        let v = Verify::new();
        v.set_enabled(true);
        v.set_site(Site::Tasklet);
        v.touch_write(7);
        v.hb_publish(7);
        v.set_site(Site::App);
        v.observe_complete(7);
        let report = v.report();
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(v.counts().1, 2);
    }

    #[test]
    fn lock_sections_order_touches() {
        let v = Verify::new();
        v.set_enabled(true);
        // Writer completes under the registry lock…
        v.set_site(Site::Hook);
        v.lock_acquire("registry");
        v.touch_write(3);
        v.lock_release("registry");
        // …and the reader's own pass through the same lock orders it.
        v.set_site(Site::Inline);
        v.lock_acquire("registry");
        v.lock_release("registry");
        v.touch_read(3);
        let report = v.report();
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn write_after_unordered_read_races() {
        let v = Verify::new();
        v.set_enabled(true);
        v.set_site(Site::App);
        v.touch_write(1);
        v.hb_publish(1);
        v.set_site(Site::Hook);
        v.observe_complete(1);
        // A second write not ordered after the hook's read.
        v.set_site(Site::App);
        v.touch_write(1);
        let report = v.report();
        assert_eq!(report.races.len(), 1);
        assert!(report.races[0].write);
        assert_eq!(report.races[0].prior, "hook");
    }

    #[test]
    fn unbalanced_release_is_an_error() {
        let v = Verify::new();
        v.set_enabled(true);
        v.lock_release("ghost");
        v.lock_acquire("a");
        v.lock_acquire("b");
        v.lock_release("a");
        let report = v.report();
        assert_eq!(report.errors.len(), 2);
        assert!(report.render().contains("no lock held"));
    }

    #[test]
    fn reentrant_acquire_is_an_error() {
        let v = Verify::new();
        v.set_enabled(true);
        v.lock_acquire("m");
        v.lock_acquire("m");
        let report = v.report();
        assert!(!report.errors.is_empty());
        assert!(report.render().contains("reentrant"));
    }

    #[test]
    fn node_context_separates_actors() {
        let v = Verify::new();
        v.set_enabled(true);
        v.set_node(Some(0));
        v.touch_write(9);
        v.hb_publish(9);
        let prev = v.set_node(Some(1));
        assert_eq!(prev, Some(0));
        v.observe_complete(9);
        assert!(v.report().is_clean());
        // Same layout without the publish: now it races, proving the two
        // nodes really are distinct actors.
        let v2 = Verify::new();
        v2.set_enabled(true);
        v2.set_node(Some(0));
        v2.touch_write(9);
        v2.set_node(Some(1));
        v2.touch_read(9);
        assert_eq!(v2.report().races.len(), 1);
        assert!(v2.report().races[0].actor.contains("node1"));
    }
}
