//! An unbounded FIFO channel between simulated activities.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// An unbounded multi-producer multi-consumer channel for sim tasks.
///
/// Cloneable; `send` never blocks, `recv` suspends the awaiting activity
/// until a value arrives. Used by workload generators to hand work items
/// between simulated threads without inventing ad-hoc trigger protocols.
///
/// # Example
/// ```
/// use pm2_sim::{Sim, SimChannel};
/// let sim = Sim::new(0);
/// let ch = SimChannel::new();
/// let rx = ch.clone();
/// sim.spawn(async move {
///     assert_eq!(rx.recv().await, Some(42));
/// });
/// ch.send(42);
/// sim.run();
/// ```
pub struct SimChannel<T> {
    state: Rc<RefCell<ChanState<T>>>,
}

impl<T> Clone for SimChannel<T> {
    fn clone(&self) -> Self {
        SimChannel {
            state: Rc::clone(&self.state),
        }
    }
}

struct ChanState<T> {
    queue: VecDeque<T>,
    waiters: VecDeque<Waker>,
    closed: bool,
}

impl<T> SimChannel<T> {
    /// Creates an empty channel.
    pub fn new() -> Self {
        SimChannel {
            state: Rc::new(RefCell::new(ChanState {
                queue: VecDeque::new(),
                waiters: VecDeque::new(),
                closed: false,
            })),
        }
    }

    /// Enqueues a value, waking one waiting receiver.
    ///
    /// # Panics
    /// Panics if the channel is closed.
    pub fn send(&self, value: T) {
        let waker = {
            let mut st = self.state.borrow_mut();
            assert!(!st.closed, "send on closed SimChannel");
            st.queue.push_back(value);
            st.waiters.pop_front()
        };
        if let Some(w) = waker {
            w.wake();
        }
    }

    /// Closes the channel: pending `recv`s drain the queue, then resolve
    /// to `None`.
    pub fn close(&self) {
        let waiters = {
            let mut st = self.state.borrow_mut();
            st.closed = true;
            std::mem::take(&mut st.waiters)
        };
        for w in waiters {
            w.wake();
        }
    }

    /// Number of queued values.
    pub fn len(&self) -> usize {
        self.state.borrow().queue.len()
    }

    /// True if no values are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        self.state.borrow_mut().queue.pop_front()
    }

    /// Awaits the next value; `None` once the channel is closed and
    /// drained.
    pub fn recv(&self) -> RecvFut<T> {
        RecvFut {
            state: Rc::clone(&self.state),
        }
    }
}

impl<T> Default for SimChannel<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Future returned by [`SimChannel::recv`].
pub struct RecvFut<T> {
    state: Rc<RefCell<ChanState<T>>>,
}

impl<T> Future for RecvFut<T> {
    type Output = Option<T>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let mut st = self.state.borrow_mut();
        if let Some(v) = st.queue.pop_front() {
            return Poll::Ready(Some(v));
        }
        if st.closed {
            return Poll::Ready(None);
        }
        if !st.waiters.iter().any(|w| w.will_wake(cx.waker())) {
            st.waiters.push_back(cx.waker().clone());
        }
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sim, SimDuration};
    use std::cell::Cell;

    #[test]
    fn values_flow_in_order() {
        let sim = Sim::new(0);
        let ch = SimChannel::new();
        let got = Rc::new(RefCell::new(Vec::new()));
        {
            let ch = ch.clone();
            let got = Rc::clone(&got);
            sim.spawn(async move {
                while let Some(v) = ch.recv().await {
                    got.borrow_mut().push(v);
                }
            });
        }
        {
            let ch = ch.clone();
            let sim2 = sim.clone();
            sim.spawn(async move {
                for i in 0..5 {
                    ch.send(i);
                    sim2.sleep(SimDuration::from_micros(1)).await;
                }
                ch.close();
            });
        }
        sim.run();
        assert_eq!(*got.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn recv_waits_for_send() {
        let sim = Sim::new(0);
        let ch = SimChannel::new();
        let at = Rc::new(Cell::new(0u64));
        {
            let ch = ch.clone();
            let at = Rc::clone(&at);
            let sim2 = sim.clone();
            sim.spawn(async move {
                let v = ch.recv().await;
                assert_eq!(v, Some(9));
                at.set(sim2.now().as_micros());
            });
        }
        let ch2 = ch.clone();
        sim.schedule_in(SimDuration::from_micros(13), move |_| ch2.send(9));
        sim.run();
        assert_eq!(at.get(), 13);
    }

    #[test]
    fn close_releases_all_waiters() {
        let sim = Sim::new(0);
        let ch: SimChannel<u32> = SimChannel::new();
        let done = Rc::new(Cell::new(0u32));
        for _ in 0..3 {
            let ch = ch.clone();
            let done = Rc::clone(&done);
            sim.spawn(async move {
                assert_eq!(ch.recv().await, None);
                done.set(done.get() + 1);
            });
        }
        let ch2 = ch.clone();
        sim.schedule_in(SimDuration::from_micros(1), move |_| ch2.close());
        sim.run();
        assert_eq!(done.get(), 3);
    }

    #[test]
    fn try_recv_and_len() {
        let ch = SimChannel::new();
        assert!(ch.is_empty());
        ch.send(1);
        ch.send(2);
        assert_eq!(ch.len(), 2);
        assert_eq!(ch.try_recv(), Some(1));
        assert_eq!(ch.try_recv(), Some(2));
        assert_eq!(ch.try_recv(), None);
    }

    #[test]
    #[should_panic(expected = "closed")]
    fn send_after_close_panics() {
        let ch = SimChannel::new();
        ch.close();
        ch.send(1);
    }
}
