//! A minimal slab allocator: stable `usize` keys, O(1) insert/remove.

/// Vec-backed slab with a free list.
///
/// Used throughout the simulator for tasks, requests, timers and NIC
/// descriptors: insertion returns a small dense key that stays valid until
/// removal, without the hashing cost of a map.
///
/// # Example
/// ```
/// use pm2_sim::Slab;
/// let mut slab = Slab::new();
/// let k = slab.insert("req");
/// assert_eq!(slab.get(k), Some(&"req"));
/// assert_eq!(slab.remove(k), Some("req"));
/// ```
#[derive(Debug, Clone)]
pub struct Slab<T> {
    slots: Vec<Entry<T>>,
    free_head: Option<usize>,
    len: usize,
}

#[derive(Debug, Clone)]
enum Entry<T> {
    Occupied(T),
    Vacant { next_free: Option<usize> },
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free_head: None,
            len: 0,
        }
    }

    /// Creates an empty slab with space for `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(cap),
            free_head: None,
            len: 0,
        }
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a value, returning its key.
    pub fn insert(&mut self, value: T) -> usize {
        self.len += 1;
        match self.free_head {
            Some(idx) => {
                let next = match self.slots[idx] {
                    Entry::Vacant { next_free } => next_free,
                    Entry::Occupied(_) => unreachable!("free list points at occupied slot"),
                };
                self.free_head = next;
                self.slots[idx] = Entry::Occupied(value);
                idx
            }
            None => {
                self.slots.push(Entry::Occupied(value));
                self.slots.len() - 1
            }
        }
    }

    /// Removes and returns the value at `key`, if occupied.
    pub fn remove(&mut self, key: usize) -> Option<T> {
        match self.slots.get_mut(key) {
            Some(slot @ Entry::Occupied(_)) => {
                let old = std::mem::replace(
                    slot,
                    Entry::Vacant {
                        next_free: self.free_head,
                    },
                );
                self.free_head = Some(key);
                self.len -= 1;
                match old {
                    Entry::Occupied(v) => Some(v),
                    Entry::Vacant { .. } => unreachable!(),
                }
            }
            _ => None,
        }
    }

    /// Shared access to the value at `key`.
    pub fn get(&self, key: usize) -> Option<&T> {
        match self.slots.get(key) {
            Some(Entry::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// Mutable access to the value at `key`.
    pub fn get_mut(&mut self, key: usize) -> Option<&mut T> {
        match self.slots.get_mut(key) {
            Some(Entry::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// True if `key` refers to an occupied entry.
    pub fn contains(&self, key: usize) -> bool {
        matches!(self.slots.get(key), Some(Entry::Occupied(_)))
    }

    /// Iterates over `(key, &value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, e)| match e {
            Entry::Occupied(v) => Some((i, v)),
            Entry::Vacant { .. } => None,
        })
    }

    /// Collects the keys of all occupied entries.
    pub fn keys(&self) -> Vec<usize> {
        self.iter().map(|(k, _)| k).collect()
    }
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.remove(a), None);
        assert_eq!(s.get(b), Some(&"b"));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn keys_are_reused() {
        let mut s = Slab::new();
        let a = s.insert(1);
        s.remove(a);
        let b = s.insert(2);
        assert_eq!(a, b, "freed slot should be reused");
    }

    #[test]
    fn iter_skips_vacant() {
        let mut s = Slab::new();
        let a = s.insert(10);
        let _b = s.insert(20);
        let c = s.insert(30);
        s.remove(a);
        s.remove(c);
        let items: Vec<_> = s.iter().map(|(_, v)| *v).collect();
        assert_eq!(items, vec![20]);
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut s = Slab::new();
        let k = s.insert(5);
        *s.get_mut(k).unwrap() += 1;
        assert_eq!(s.get(k), Some(&6));
    }

    #[test]
    fn stress_interleaved_ops_preserve_contents() {
        let mut s = Slab::new();
        let mut live = std::collections::HashMap::new();
        let mut rng = crate::rng::Xoshiro256::new(99);
        for i in 0..10_000u64 {
            if rng.gen_bool(0.6) || live.is_empty() {
                let k = s.insert(i);
                live.insert(k, i);
            } else {
                let keys: Vec<_> = live.keys().copied().collect();
                let k = keys[rng.gen_below(keys.len() as u64) as usize];
                assert_eq!(s.remove(k), live.remove(&k));
            }
        }
        assert_eq!(s.len(), live.len());
        for (k, v) in &live {
            assert_eq!(s.get(*k), Some(v));
        }
    }
}
