//! Hierarchical calendar event queue with slab-recycled, allocation-free
//! event slots.
//!
//! The queue replaces the former single `BinaryHeap<Box<dyn FnOnce>>`
//! design with three tiers ordered by distance from the current bucket:
//!
//! * `near` — a small binary heap holding every key whose time bucket is
//!   at or before `cur_bucket`. Its minimum is always the global minimum.
//! * `wheel` — [`WHEEL_BUCKETS`] fixed-width buckets ([`BUCKET_NS`] ns
//!   each) covering the window `(cur_bucket, cur_bucket + WHEEL_BUCKETS)`.
//!   Inserts into the window are an O(1) push; a 256-bit occupancy bitmap
//!   finds the next non-empty bucket in a handful of word scans.
//! * `far` — an overflow heap for everything past the wheel horizon
//!   (~524 µs at the default width). When both `near` and the wheel are
//!   empty the window jumps to the far minimum and re-splits.
//!
//! FIFO tie-break preservation: keys order by `(time, seq)` exactly as
//! the old heap did. Two events with equal time always land in the same
//! bucket, travel through the same tier transitions together, and meet
//! again in `near`'s heap where `seq` decides — so the pop order is
//! bit-identical to the single-heap order, for every schedule pattern.
//!
//! Event payloads live in a [`Slab`] of [`EventSlot`]s that recycles
//! indices, with closures stored inline (up to [`ACTION_WORDS`] words)
//! so the steady-state schedule → fire → complete hot path performs no
//! heap allocation. Cancellation removes the slot (dropping the closure
//! and its captures eagerly) and leaves a 24-byte tombstone key that is
//! skipped lazily on pop and purged in bulk once tombstones outnumber
//! live events — queue occupancy stays O(live).

use crate::sim::Sim;
use crate::slab::Slab;
use crate::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::mem::{align_of, size_of, ManuallyDrop, MaybeUninit};

/// Inline closure storage size, in `usize` words (40 bytes on 64-bit —
/// protocol closures capture an `Rc` or two plus a few scalars; measured
/// over the fig5/bandwidth workloads, 99.97% fit in 24 bytes). Larger or
/// over-aligned closures fall back to a single boxed slot.
const ACTION_WORDS: usize = 5;

/// log2 of the wheel bucket width: 2^11 ns = 2.048 µs per bucket.
const BUCKET_SHIFT: u32 = 11;

/// Nanoseconds per wheel bucket (doc-visible mirror of [`BUCKET_SHIFT`]).
#[allow(dead_code)]
const BUCKET_NS: u64 = 1 << BUCKET_SHIFT;

/// Number of wheel buckets; the wheel horizon is
/// `WHEEL_BUCKETS << BUCKET_SHIFT` ≈ 524 µs.
const WHEEL_BUCKETS: usize = 256;

/// Words in the occupancy bitmap.
const WHEEL_WORDS: usize = WHEEL_BUCKETS / 64;

/// Bulk-purge tombstones only past this floor, so tiny queues never pay
/// the rebuild.
const PURGE_FLOOR: usize = 64;

fn bucket_of(at: SimTime) -> u64 {
    at.as_nanos() >> BUCKET_SHIFT
}

/// A scheduled action: a type-erased `FnOnce(&Sim)` stored inline when it
/// fits, boxed otherwise. Consumed by [`EventAction::invoke`]; dropping an
/// un-invoked action (the cancellation path) frees the captures eagerly.
pub(crate) struct EventAction {
    payload: MaybeUninit<[usize; ACTION_WORDS]>,
    call: unsafe fn(*mut (), &Sim),
    drop_in_place: unsafe fn(*mut ()),
}

unsafe fn invoke_inline<F: FnOnce(&Sim)>(p: *mut (), sim: &Sim) {
    // SAFETY: caller guarantees `p` holds a valid, owned `F`; the read
    // consumes it exactly once.
    let f = unsafe { (p as *mut F).read() };
    f(sim);
}

unsafe fn drop_inline<F>(p: *mut ()) {
    // SAFETY: caller guarantees `p` holds a valid, owned `F` that has not
    // been consumed.
    unsafe { std::ptr::drop_in_place(p as *mut F) }
}

unsafe fn invoke_boxed<F: FnOnce(&Sim)>(p: *mut (), sim: &Sim) {
    // SAFETY: caller guarantees the first payload word holds the raw
    // pointer produced by `Box::into_raw`; reconstructing the box
    // transfers ownership back exactly once.
    let b = unsafe { Box::from_raw((p as *mut *mut F).read()) };
    b(sim);
}

unsafe fn drop_boxed<F>(p: *mut ()) {
    // SAFETY: as in `invoke_boxed`; the box is dropped instead of called.
    let b = unsafe { Box::from_raw((p as *mut *mut F).read()) };
    drop(b);
}

impl EventAction {
    pub(crate) fn new<F>(f: F) -> EventAction
    where
        F: FnOnce(&Sim) + 'static,
    {
        let mut payload = MaybeUninit::<[usize; ACTION_WORDS]>::uninit();
        let base = payload.as_mut_ptr() as *mut ();
        if size_of::<F>() <= size_of::<[usize; ACTION_WORDS]>()
            && align_of::<F>() <= align_of::<[usize; ACTION_WORDS]>()
        {
            // SAFETY: `F` fits in the buffer and its alignment does not
            // exceed the buffer's; the value is moved in and owned by the
            // payload from here on.
            unsafe { (base as *mut F).write(f) };
            EventAction {
                payload,
                call: invoke_inline::<F>,
                drop_in_place: drop_inline::<F>,
            }
        } else {
            let raw = Box::into_raw(Box::new(f));
            // SAFETY: a thin raw pointer always fits in the first word.
            unsafe { (base as *mut *mut F).write(raw) };
            EventAction {
                payload,
                call: invoke_boxed::<F>,
                drop_in_place: drop_boxed::<F>,
            }
        }
    }

    pub(crate) fn invoke(self, sim: &Sim) {
        let mut this = ManuallyDrop::new(self);
        let base = this.payload.as_mut_ptr() as *mut ();
        // SAFETY: `call` consumes the payload exactly once; ManuallyDrop
        // keeps `Drop` from touching it again.
        unsafe { (this.call)(base, sim) }
    }
}

impl Drop for EventAction {
    fn drop(&mut self) {
        let base = self.payload.as_mut_ptr() as *mut ();
        // SAFETY: an `EventAction` reaching `Drop` was never invoked, so
        // the payload still owns the closure.
        unsafe { (self.drop_in_place)(base) }
    }
}

/// Queue key: 24 bytes, ordered by `(at, seq)` — `seq` is unique, so the
/// trailing `(slot, gen)` never influences ordering; they locate the
/// payload and validate it against recycled slots.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EventKey {
    at: SimTime,
    seq: u64,
    slot: u32,
    gen: u32,
}

/// Result of [`EventQueue::pop_due`].
pub(crate) enum Due {
    /// An event was due at or before the limit and has been popped.
    Ready(SimTime, EventAction),
    /// The earliest live event is past the limit.
    Later,
    /// No live events remain.
    Empty,
}

/// The calendar queue. See the module docs for the tier invariants.
pub(crate) struct EventQueue {
    /// Payloads, recycled by index. Generation counts live in `gens`.
    slots: Slab<EventAction>,
    /// Per-slot generation, bumped on every removal so stale keys for a
    /// recycled slot never validate.
    gens: Vec<u32>,
    near: BinaryHeap<Reverse<EventKey>>,
    wheel: Vec<Vec<EventKey>>,
    occupied: [u64; WHEEL_WORDS],
    far: BinaryHeap<Reverse<EventKey>>,
    /// All `near` keys have bucket ≤ `cur_bucket`; wheel keys fall in
    /// `(cur_bucket, cur_bucket + WHEEL_BUCKETS)`; `far` keys beyond.
    cur_bucket: u64,
    live: usize,
    dead_keys: usize,
}

impl EventQueue {
    pub(crate) fn new() -> EventQueue {
        EventQueue {
            slots: Slab::with_capacity(64),
            gens: Vec::with_capacity(64),
            near: BinaryHeap::with_capacity(64),
            wheel: (0..WHEEL_BUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; WHEEL_WORDS],
            far: BinaryHeap::new(),
            cur_bucket: 0,
            live: 0,
            dead_keys: 0,
        }
    }

    /// Live (scheduled, not fired, not cancelled) events.
    pub(crate) fn live_len(&self) -> usize {
        self.live
    }

    /// Total resident keys: live plus not-yet-purged tombstones. Bounded
    /// at O(live) by the lazy purge; exposed for occupancy tests.
    pub(crate) fn key_count(&self) -> usize {
        self.live + self.dead_keys
    }

    fn key_live(&self, k: &EventKey) -> bool {
        self.gens.get(k.slot as usize).copied() == Some(k.gen)
    }

    fn push_key(&mut self, key: EventKey) {
        let b = bucket_of(key.at);
        if b <= self.cur_bucket {
            self.near.push(Reverse(key));
        } else if b < self.cur_bucket + WHEEL_BUCKETS as u64 {
            let idx = (b as usize) % WHEEL_BUCKETS;
            self.wheel[idx].push(key);
            self.occupied[idx / 64] |= 1 << (idx % 64);
        } else {
            self.far.push(Reverse(key));
        }
    }

    /// Schedules `action` at `(at, seq)`; returns `(slot, gen)` for the
    /// cancellation handle.
    pub(crate) fn insert(&mut self, at: SimTime, seq: u64, action: EventAction) -> (u32, u32) {
        let slot = self.slots.insert(action);
        if slot == self.gens.len() {
            self.gens.push(0);
        }
        debug_assert!(slot < self.gens.len(), "slab grew by more than one");
        let gen = self.gens[slot];
        self.live += 1;
        self.push_key(EventKey {
            at,
            seq,
            slot: slot as u32,
            gen,
        });
        (slot as u32, gen)
    }

    /// Cancels `(slot, gen)`. Returns the reclaimed action (so the caller
    /// can drop it outside any queue borrow — closure drops may re-enter
    /// the sim); `None` if the event already fired or was cancelled.
    pub(crate) fn cancel(&mut self, slot: u32, gen: u32) -> Option<EventAction> {
        let s = slot as usize;
        if self.gens.get(s).copied() != Some(gen) {
            return None;
        }
        let action = self
            .slots
            .remove(s)
            .expect("current-generation key points at an occupied slot");
        self.gens[s] = gen.wrapping_add(1);
        self.live -= 1;
        self.dead_keys += 1;
        if self.dead_keys > PURGE_FLOOR && self.dead_keys > self.live {
            self.purge();
        }
        Some(action)
    }

    /// Time of the earliest live event, skimming tombstones off `near`.
    pub(crate) fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            self.prime();
            match self.near.peek() {
                None => return None,
                Some(Reverse(k)) if self.key_live(k) => return Some(k.at),
                Some(_) => {
                    self.near.pop();
                    self.dead_keys = self.dead_keys.saturating_sub(1);
                }
            }
        }
    }

    /// Pops the earliest live event.
    #[cfg(test)]
    pub(crate) fn pop_first(&mut self) -> Option<(SimTime, EventAction)> {
        match self.pop_due(SimTime::MAX) {
            Due::Ready(at, action) => Some((at, action)),
            Due::Later | Due::Empty => None,
        }
    }

    /// Pops the earliest live event if it is due at or before `limit` —
    /// one combined peek + pop, so the run loop pays the tombstone skim
    /// and tier refill once per event.
    pub(crate) fn pop_due(&mut self, limit: SimTime) -> Due {
        match self.peek_time() {
            Some(at) if at <= limit => {
                let Reverse(k) = self.near.pop().expect("peek_time saw a live key");
                debug_assert_eq!(k.at, at);
                let action = self
                    .slots
                    .remove(k.slot as usize)
                    .expect("live key points at an occupied slot");
                self.gens[k.slot as usize] = k.gen.wrapping_add(1);
                self.live -= 1;
                Due::Ready(at, action)
            }
            Some(_) => Due::Later,
            None => Due::Empty,
        }
    }

    /// Refills `near` from the wheel (next occupied bucket) or, once the
    /// whole wheel is empty, re-bases the window at the far minimum.
    ///
    /// Far keys were beyond the horizon *when inserted*; the window only
    /// marches forward, so step 1 pulls any that have since entered it
    /// before the wheel scan may advance `cur_bucket` past them.
    fn prime(&mut self) {
        while self.near.is_empty() {
            // 1. Migrate far keys now inside the window into near/wheel.
            let horizon = self.cur_bucket + WHEEL_BUCKETS as u64;
            let mut migrated = false;
            while let Some(&Reverse(k)) = self.far.peek() {
                if bucket_of(k.at) >= horizon {
                    break;
                }
                let Reverse(k) = self.far.pop().expect("just peeked");
                self.push_key(k);
                migrated = true;
            }
            if migrated {
                continue;
            }
            // 2. Advance to the next occupied wheel bucket — after step 1
            //    every remaining far key is ≥ horizon, hence later.
            if let Some(b) = self.next_wheel_bucket() {
                self.cur_bucket = b;
                let idx = (b as usize) % WHEEL_BUCKETS;
                self.occupied[idx / 64] &= !(1 << (idx % 64));
                let EventQueue { near, wheel, .. } = self;
                for k in wheel[idx].drain(..) {
                    near.push(Reverse(k));
                }
                continue;
            }
            // 3. Wheel empty too: jump the window to the far minimum
            //    (≥ horizon > cur_bucket, so the window stays monotone);
            //    the next iteration's step 1 migrates it in.
            let Some(&Reverse(k)) = self.far.peek() else {
                return;
            };
            self.cur_bucket = bucket_of(k.at);
        }
    }

    /// Smallest occupied wheel bucket strictly after `cur_bucket`, found
    /// by scanning the occupancy bitmap in rotated word order.
    fn next_wheel_bucket(&self) -> Option<u64> {
        let start = ((self.cur_bucket as usize) + 1) % WHEEL_BUCKETS;
        let (sw, sb) = (start / 64, start % 64);
        let m = self.occupied[sw] & (!0u64 << sb);
        if m != 0 {
            return Some(self.abs_bucket(sw * 64 + m.trailing_zeros() as usize));
        }
        for step in 1..WHEEL_WORDS {
            let w = (sw + step) % WHEEL_WORDS;
            let m = self.occupied[w];
            if m != 0 {
                return Some(self.abs_bucket(w * 64 + m.trailing_zeros() as usize));
            }
        }
        let m = self.occupied[sw] & !(!0u64 << sb);
        if m != 0 {
            return Some(self.abs_bucket(sw * 64 + m.trailing_zeros() as usize));
        }
        None
    }

    /// Maps a wheel index back to its absolute bucket within the window
    /// `(cur_bucket, cur_bucket + WHEEL_BUCKETS)`.
    fn abs_bucket(&self, idx: usize) -> u64 {
        let w = WHEEL_BUCKETS as u64;
        let start = (self.cur_bucket + 1) % w;
        let delta = (idx as u64 + w - start) % w;
        self.cur_bucket + 1 + delta
    }

    /// Drops every tombstone key from all tiers; O(resident keys),
    /// amortized O(1) per cancellation by the `dead > live` trigger.
    fn purge(&mut self) {
        let gens = &self.gens;
        let live = |k: &EventKey| gens.get(k.slot as usize).copied() == Some(k.gen);
        let mut v = std::mem::take(&mut self.near).into_vec();
        v.retain(|Reverse(k)| live(k));
        self.near = BinaryHeap::from(v);
        self.occupied = [0; WHEEL_WORDS];
        for (idx, bucket) in self.wheel.iter_mut().enumerate() {
            bucket.retain(&live);
            if !bucket.is_empty() {
                self.occupied[idx / 64] |= 1 << (idx % 64);
            }
        }
        let mut fv = std::mem::take(&mut self.far).into_vec();
        fv.retain(|Reverse(k)| live(k));
        self.far = BinaryHeap::from(fv);
        self.dead_keys = 0;
    }
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;
    use std::cell::Cell;
    use std::rc::Rc;

    fn noop() -> EventAction {
        EventAction::new(|_| {})
    }

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn action_inline_zst_invokes() {
        let sim = Sim::new(0);
        // A ZST closure must round-trip through the inline path.
        assert_eq!(size_of::<fn()>(), 8);
        let hit = Rc::new(Cell::new(false));
        let hit2 = Rc::clone(&hit);
        let a = EventAction::new(move |_| hit2.set(true));
        a.invoke(&sim);
        assert!(hit.get());
    }

    #[test]
    fn action_inline_small_capture_invokes() {
        let sim = Sim::new(0);
        let out = Rc::new(Cell::new(0u64));
        let out2 = Rc::clone(&out);
        let payload = [7u64; 8]; // 64 bytes: inline
        let a = EventAction::new(move |_| out2.set(payload.iter().sum()));
        a.invoke(&sim);
        assert_eq!(out.get(), 56);
    }

    #[test]
    fn action_boxed_large_capture_invokes() {
        let sim = Sim::new(0);
        let out = Rc::new(Cell::new(0u64));
        let out2 = Rc::clone(&out);
        let payload = [3u8; 200]; // 200 bytes: boxed fallback
        let a = EventAction::new(move |_| out2.set(payload.iter().map(|&b| b as u64).sum()));
        a.invoke(&sim);
        assert_eq!(out.get(), 600);
    }

    #[test]
    fn action_drop_without_invoke_frees_captures() {
        // Both storage paths must free captures when dropped un-invoked.
        let small = Rc::new(());
        let a = {
            let small = Rc::clone(&small);
            EventAction::new(move |_| drop(small))
        };
        assert_eq!(Rc::strong_count(&small), 2);
        drop(a);
        assert_eq!(Rc::strong_count(&small), 1);

        let large = Rc::new(());
        let a = {
            let large = Rc::clone(&large);
            let pad = [0u8; 200];
            EventAction::new(move |_| {
                let _ = pad;
                drop(large)
            })
        };
        assert_eq!(Rc::strong_count(&large), 2);
        drop(a);
        assert_eq!(Rc::strong_count(&large), 1);
    }

    #[test]
    fn pops_in_time_then_seq_order_across_tiers() {
        let mut q = EventQueue::new();
        // Same time in near, wheel and far territory; seq breaks ties.
        let times = [
            0u64,
            1,
            1,
            BUCKET_NS * 3,
            BUCKET_NS * 3,
            BUCKET_NS * (WHEEL_BUCKETS as u64 + 10),
            BUCKET_NS * (WHEEL_BUCKETS as u64 + 10) + 1,
        ];
        for (seq, &ns) in times.iter().enumerate() {
            q.insert(t(ns), seq as u64, noop());
        }
        let mut got = Vec::new();
        while let Some(time) = q.peek_time() {
            let (at, _) = q.pop_first().unwrap();
            assert_eq!(at, time);
            got.push(at.as_nanos());
        }
        let mut want = times.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn cancel_reclaims_slot_and_is_idempotent() {
        let mut q = EventQueue::new();
        let rc = Rc::new(());
        let (slot, gen) = {
            let rc = Rc::clone(&rc);
            q.insert(t(100), 0, EventAction::new(move |_| drop(rc)))
        };
        assert_eq!(Rc::strong_count(&rc), 2);
        let action = q.cancel(slot, gen);
        assert!(action.is_some());
        drop(action);
        assert_eq!(Rc::strong_count(&rc), 1, "captures freed at cancel");
        assert!(q.cancel(slot, gen).is_none(), "double cancel is a no-op");
        assert_eq!(q.live_len(), 0);
        assert!(q.pop_first().is_none());
    }

    #[test]
    fn stale_handle_never_cancels_recycled_slot() {
        let mut q = EventQueue::new();
        let (s1, g1) = q.insert(t(10), 0, noop());
        q.pop_first().unwrap();
        // The slab recycles the index for the next insert; the old
        // (slot, gen) must not be able to kill the new occupant.
        let (s2, g2) = q.insert(t(20), 1, noop());
        assert_eq!(s1, s2, "slot expected to recycle");
        assert_ne!(g1, g2);
        assert!(q.cancel(s1, g1).is_none());
        assert_eq!(q.live_len(), 1);
        assert!(q.cancel(s2, g2).is_some());
    }

    #[test]
    fn tombstones_stay_bounded_by_live() {
        let mut q = EventQueue::new();
        let mut keep = Vec::new();
        for i in 0..16u64 {
            keep.push(q.insert(t(1 << 40), i, noop()));
        }
        for i in 0..10_000u64 {
            let (s, g) = q.insert(t(1000 + i), 100 + i, noop());
            q.cancel(s, g);
            assert!(
                q.key_count() <= 16 + PURGE_FLOOR + 1,
                "occupancy {} not O(live) at iteration {i}",
                q.key_count()
            );
        }
        assert_eq!(q.live_len(), 16);
    }

    #[test]
    fn differential_fuzz_matches_reference_heap() {
        // Model-based check against a plain (time, seq) reference: random
        // schedules (spanning near/wheel/far and multiple window jumps),
        // random cancels, interleaved pops — the popped (time, seq)
        // stream, actions included, must match the model exactly.
        let sim = Sim::new(0);
        let fired: Rc<Cell<u64>> = Rc::new(Cell::new(u64::MAX));
        let tagged = |s: u64| {
            let fired = Rc::clone(&fired);
            EventAction::new(move |_| fired.set(s))
        };
        let mut rng = Xoshiro256::new(42);
        let mut q = EventQueue::new();
        let mut model: Vec<(u64, u64, (u32, u32))> = Vec::new(); // (ns, seq, handle)
        let mut seq = 0u64;
        let mut clock = 0u64;
        for _ in 0..30_000 {
            match rng.gen_below(10) {
                0..=5 => {
                    // Deltas up to ~16M ns: thousands of buckets, so the
                    // wheel wraps and the far tier both get exercised.
                    let span = 1u64 << rng.gen_range(1, 25);
                    let ns = clock + rng.gen_below(span);
                    let h = q.insert(t(ns), seq, tagged(seq));
                    model.push((ns, seq, h));
                    seq += 1;
                }
                6..=7 => {
                    if !model.is_empty() {
                        let i = rng.gen_below(model.len() as u64) as usize;
                        let (_, _, (s, g)) = model.swap_remove(i);
                        assert!(q.cancel(s, g).is_some());
                    }
                }
                _ => {
                    let want = model.iter().min_by_key(|&&(ns, s, _)| (ns, s)).copied();
                    match (q.pop_first(), want) {
                        (None, None) => {}
                        (Some((at, action)), Some((ns, s, _))) => {
                            assert_eq!(at.as_nanos(), ns);
                            action.invoke(&sim);
                            assert_eq!(fired.get(), s, "FIFO tie-break diverged");
                            let i = model.iter().position(|&(_, ms, _)| ms == s).unwrap();
                            model.swap_remove(i);
                            clock = ns;
                        }
                        (got, want) => panic!(
                            "queue/model diverge: got {:?}, want {:?}",
                            got.map(|(at, _)| at.as_nanos()),
                            want.map(|(ns, ..)| ns)
                        ),
                    }
                }
            }
            assert_eq!(q.live_len(), model.len());
        }
        // Drain and compare the full remaining (time, seq) order.
        let mut rest: Vec<(u64, u64)> = model.iter().map(|&(ns, s, _)| (ns, s)).collect();
        rest.sort_unstable();
        for (ns, s) in rest {
            let (at, action) = q.pop_first().expect("model has more events");
            assert_eq!(at.as_nanos(), ns);
            action.invoke(&sim);
            assert_eq!(fired.get(), s, "FIFO tie-break diverged in drain");
        }
        assert!(q.pop_first().is_none());
    }

    #[test]
    fn far_key_overtaken_by_window_still_pops_in_order() {
        // Regression: a key lands in `far` (beyond the horizon), then the
        // window marches forward through wheel activity until that key's
        // bucket is *inside* the window. The wheel scan must not advance
        // past it — it has to migrate in and pop before later wheel keys.
        let mut q = EventQueue::new();
        q.insert(t(0), 0, noop());
        assert_eq!(q.pop_first().unwrap().0, t(0));
        // Bucket 300: beyond the (0, 256) window → far tier.
        let far_ns = BUCKET_NS * 300;
        q.insert(t(far_ns), 1, noop());
        // Walk the window forward via a wheel key at bucket 100.
        q.insert(t(BUCKET_NS * 100), 2, noop());
        assert_eq!(q.pop_first().unwrap().0, t(BUCKET_NS * 100));
        // Window is now (100, 356): bucket 300 is inside it. A later
        // wheel key at bucket 310 must NOT pop before the far key.
        q.insert(t(BUCKET_NS * 310), 3, noop());
        assert_eq!(q.pop_first().unwrap().0, t(far_ns), "far key bypassed");
        assert_eq!(q.pop_first().unwrap().0, t(BUCKET_NS * 310));
        assert!(q.pop_first().is_none());
    }

    #[test]
    fn far_future_window_jumps_preserve_order() {
        let mut q = EventQueue::new();
        // Three clusters separated by many wheel horizons each.
        let horizon = BUCKET_NS * WHEEL_BUCKETS as u64;
        let mut want = Vec::new();
        for (i, base) in [0u64, horizon * 5, horizon * 1000].iter().enumerate() {
            for j in 0..10u64 {
                let ns = base + j * 17;
                q.insert(t(ns), (i as u64) * 100 + j, noop());
                want.push(ns);
            }
        }
        want.sort_unstable();
        let mut got = Vec::new();
        while let Some((at, _)) = q.pop_first() {
            got.push(at.as_nanos());
        }
        assert_eq!(got, want);
    }
}
