//! Collective-benchmark harness: times one (collective, algorithm,
//! ranks, payload) point on a fresh simulated cluster.
//!
//! All timing is virtual (simulator clock), so results are exact and
//! deterministic per seed: ranks synchronize with a barrier, rank 0
//! stamps the clock, every rank runs `iters` back-to-back collectives,
//! and the cost per operation is the stamped window divided by `iters`.

use pm2_coll::{AlgoKind, ReduceOp};
use pm2_mpi::{Cluster, ClusterConfig, Comm};
use pm2_sim::SimTime;
use std::cell::Cell;
use std::rc::Rc;

/// Which collective a [`run_coll`] point exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollOp {
    /// Allreduce under byte-wise wrapping addition.
    Allreduce,
    /// Broadcast from rank 0.
    Bcast,
}

/// One measured sweep point.
#[derive(Debug, Clone, Copy)]
pub struct CollPoint {
    /// Ranks in the cluster.
    pub ranks: usize,
    /// Payload bytes per rank.
    pub bytes: usize,
    /// Virtual microseconds per collective.
    pub us_per_op: f64,
    /// Application-payload throughput (MB/s; payload ÷ completion time).
    pub mbps: f64,
    /// DAG steps rank 0 executed per collective.
    pub steps: f64,
    /// Pipeline chunks rank 0 sent per collective.
    pub chunks: f64,
}

/// Times `iters` back-to-back collectives (after `warmup` untimed ones)
/// and returns the per-op cost at rank 0. `algo` forces one algorithm;
/// `None` exercises the auto-selector.
pub fn run_coll(
    op: CollOp,
    algo: Option<AlgoKind>,
    ranks: usize,
    bytes: usize,
    iters: usize,
    warmup: usize,
) -> CollPoint {
    let cluster = Cluster::build(ClusterConfig {
        nodes: ranks,
        ..ClusterConfig::default()
    });
    let comms = Comm::world(&cluster);
    let comm0 = comms[0].clone();
    let t0 = Rc::new(Cell::new(SimTime::ZERO));
    let t1 = Rc::new(Cell::new(SimTime::ZERO));
    let steps0 = Rc::new(Cell::new((0u64, 0u64)));
    for (rank, comm) in comms.into_iter().enumerate() {
        let (t0, t1) = (Rc::clone(&t0), Rc::clone(&t1));
        let steps0 = Rc::clone(&steps0);
        cluster.spawn_on(rank, format!("coll{rank}"), move |ctx| async move {
            let one = |i: usize| {
                let comm = comm.clone();
                let ctx = ctx.clone();
                async move {
                    let data = vec![(comm.rank() + i) as u8; bytes];
                    match op {
                        CollOp::Allreduce => {
                            comm.allreduce_with(&ctx, data, ReduceOp::WrapAdd8, algo)
                                .await;
                        }
                        CollOp::Bcast => {
                            let payload = if comm.rank() == 0 { data } else { Vec::new() };
                            comm.bcast_with(&ctx, 0, payload, algo).await;
                        }
                    }
                }
            };
            for i in 0..warmup {
                one(i).await;
            }
            comm.barrier(&ctx).await;
            let before = comm.coll_counters();
            if comm.rank() == 0 {
                t0.set(ctx.marcel().sim().now());
            }
            for i in 0..iters {
                one(warmup + i).await;
            }
            if comm.rank() == 0 {
                t1.set(ctx.marcel().sim().now());
                let after = comm.coll_counters();
                steps0.set((after.steps - before.steps, after.chunks - before.chunks));
            }
            comm.barrier(&ctx).await;
        });
    }
    cluster.run();
    drop(comm0);
    let window = t1.get().saturating_since(t0.get());
    let us_per_op = window.as_micros_f64() / iters as f64;
    let (steps, chunks) = steps0.get();
    CollPoint {
        ranks,
        bytes,
        us_per_op,
        mbps: if us_per_op > 0.0 {
            bytes as f64 / us_per_op
        } else {
            0.0
        },
        steps: steps as f64 / iters as f64,
        chunks: chunks as f64 / iters as f64,
    }
}
