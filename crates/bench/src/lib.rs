//! Shared infrastructure for the reproduction binaries and benches.
//!
//! Each binary regenerates one table or figure of the paper (see
//! `DESIGN.md` §4 for the experiment index):
//!
//! * `fig5` — small-message offloading (§4.1, Figure 5)
//! * `fig6` — rendezvous handshake progression (§4.2, Figure 6)
//! * `table1` — convolution meta-application (§4.3, Table 1)
//! * `abl_lock` — per-event spinlocks vs. library-wide mutex (§2.1)
//! * `abl_blocking` — idle-core polling vs. blocking syscalls (§2.3/[10])
//! * `abl_aggreg` — strategy layer: FIFO vs. aggregation (§3.1)
//! * `abl_adaptive` — offload-or-not policy (§5 future work)
//! * `abl_timer` — timer-tick cycle stealing when no core is idle (§3.1)
//!
//! Plain `harness = false` benches under `benches/` measure the host-side
//! performance of the native primitives (`pm2-sync`) and of the simulator
//! itself using [`bench`]; they are self-contained so the workspace builds
//! without any external crates.

#![warn(missing_docs)]

pub mod collbench;

use pm2_sim::SimDuration;
use std::time::Instant;

/// Runs `f` repeatedly and prints mean wall time per iteration.
///
/// A fixed-iteration measure-after-warmup loop: crude next to a real
/// statistics harness, but dependency-free and stable enough to compare
/// primitives against each other on one host.
pub fn bench(name: &str, iters: u64, mut f: impl FnMut()) {
    let warmup = (iters / 10).max(1);
    for _ in 0..warmup {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let total = start.elapsed();
    let per = total.as_nanos() as f64 / iters as f64;
    println!("{name:>40}  {per:>12.1} ns/iter   ({iters} iters)");
}

/// Pretty-prints one table row: label + f64 columns.
pub fn row(label: &str, cols: &[f64]) -> String {
    let mut s = format!("{label:>12} |");
    for c in cols {
        s.push_str(&format!(" {c:>10.2}"));
    }
    s
}

/// Pretty-prints a header row.
pub fn header(label: &str, cols: &[String]) -> String {
    let mut s = format!("{label:>12} |");
    for c in cols {
        s.push_str(&format!(" {c:>10}"));
    }
    let line = "-".repeat(s.len());
    format!("{s}\n{line}")
}

/// Formats a byte count like the paper's x-axes (1K, 32K, 512K).
pub fn fmt_size(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{}M", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{}K", bytes >> 10)
    } else {
        format!("{bytes}")
    }
}

/// Message sizes of Figure 5 (1K–32K, eager path).
pub fn fig5_sizes() -> Vec<usize> {
    (0..6).map(|i| 1 << (10 + i)).collect()
}

/// Message sizes of Figure 6 (8K–512K, crossing the rendezvous threshold).
pub fn fig6_sizes() -> Vec<usize> {
    (0..7).map(|i| 8 << (10 + i)).collect()
}

/// Computation time of the Figure 5 benchmark.
pub fn fig5_compute() -> SimDuration {
    SimDuration::from_micros(20)
}

/// Computation time of the Figure 6 benchmark.
pub fn fig6_compute() -> SimDuration {
    SimDuration::from_micros(100)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_paper_axes() {
        assert_eq!(fig5_sizes(), vec![1024, 2048, 4096, 8192, 16384, 32768]);
        assert_eq!(fig6_sizes().first(), Some(&8192));
        assert_eq!(fig6_sizes().last(), Some(&(512 << 10)));
    }

    #[test]
    fn size_formatting() {
        assert_eq!(fmt_size(512), "512");
        assert_eq!(fmt_size(2048), "2K");
        assert_eq!(fmt_size(1 << 20), "1M");
    }

    #[test]
    fn rows_align() {
        let h = header("size", &["a".into(), "b".into()]);
        let r = row("1K", &[1.0, 2.0]);
        assert!(h.lines().next().unwrap().len() == r.len());
    }
}
