//! Service-scenario sweep: every suite spec under every Marcel policy,
//! scored against its latency SLO. Emits `BENCH_scenarios.json` to
//! stdout.
//!
//! ```sh
//! cargo run --release -p pm2-bench --bin scenario_sweep > BENCH_scenarios.json
//! PM2_SCENARIO_SMOKE=1 ./target/release/scenario_sweep   # CI schema gate
//! PM2_FAULT_SEED=7 ./target/release/scenario_sweep       # fault-matrix point
//! ```

use pm2_scenario::{builtin_suite, run_scenario, SloSpec, Workload, POLICIES};

fn fault_seed() -> u64 {
    std::env::var("PM2_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn main() {
    let smoke = std::env::var("PM2_SCENARIO_SMOKE").is_ok();
    let seed = fault_seed();
    let suite = builtin_suite(smoke);

    let mut out = String::from("{\n  \"schema\": \"pm2-scenarios/v1\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"fault_seed\": {seed},\n"));
    out.push_str("  \"scenarios\": {\n");
    for (si, spec) in suite.iter().enumerate() {
        eprintln!("running scenario {}...", spec.name);
        let workload = match &spec.workload {
            Workload::Service { .. } => "service",
            Workload::Stencil { .. } => "stencil",
            Workload::AllreduceStep { .. } => "allreduce",
            Workload::RmaMix { .. } => "rma",
        };
        out.push_str(&format!("    \"{}\": {{\n", spec.name));
        out.push_str(&format!(
            "      \"ranks\": {}, \"workload\": \"{workload}\", \
             \"fault_loss\": {:.4},\n",
            spec.ranks, spec.fault_loss
        ));
        let slo_line = |v: f64| {
            if v == SloSpec::NONE {
                "null".to_string()
            } else {
                format!("{v:.1}")
            }
        };
        out.push_str(&format!(
            "      \"slo\": {{\"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}}},\n",
            slo_line(spec.slo.p50_us),
            slo_line(spec.slo.p99_us),
            slo_line(spec.slo.p999_us)
        ));
        out.push_str("      \"policies\": {\n");
        for (pi, policy) in POLICIES.iter().enumerate() {
            let o = run_scenario(spec, policy, seed);
            assert_eq!(
                o.waits_leaked, 0,
                "{}/{policy}: leaked wait brackets",
                o.name
            );
            out.push_str(&format!("        \"{policy}\": {}", o.to_json()));
            out.push_str(if pi + 1 < POLICIES.len() { ",\n" } else { "\n" });
        }
        out.push_str("      }\n    }");
        out.push_str(if si + 1 < suite.len() { ",\n" } else { "\n" });
    }
    out.push_str("  }\n}");
    println!("{out}");
}
