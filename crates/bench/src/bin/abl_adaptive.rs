//! Ablation: offload always / never / adaptively (§5 future work).
//!
//! Offloading a submission to an idle core costs a ≈2 µs cross-CPU
//! tasklet invocation (§4.1). For a 256-byte message whose submission
//! costs ≈0.7 µs, paying 2 µs to save 0.7 µs only makes sense if the
//! application would otherwise wait — i.e. when it computes. The paper
//! leaves "an adaptive strategy to choose whether to offload
//! communication or not" as future work; [`OffloadPolicy::Adaptive`]
//! implements it: offload only when an idle core exists and the
//! submission cost exceeds the invocation overhead.
//!
//! Two workloads: pure latency (no computation — offloading can only
//! hurt) and overlap (20 µs of computation — offloading pays off for
//! expensive submissions).

use pm2_bench::{fmt_size, header, row};
use pm2_mpi::workloads::{run_overlap, OverlapParams};
use pm2_mpi::ClusterConfig;
use pm2_newmad::{EngineKind, OffloadPolicy};
use pm2_sim::SimDuration;

fn run(policy: OffloadPolicy, msg_len: usize, compute: SimDuration) -> f64 {
    let cfg = ClusterConfig {
        offload_policy: policy,
        ..ClusterConfig::paper_testbed(EngineKind::Pioman)
    };
    run_overlap(
        cfg,
        &OverlapParams {
            msg_len,
            compute,
            iters: 20,
            warmup: 3,
        },
    )
    .half_round_us
    .mean()
}

fn main() {
    println!("Ablation — adaptive offloading (half-round sending time, µs)\n");
    for (wl, compute) in [
        ("latency (no compute)", SimDuration::ZERO),
        ("overlap (20µs compute)", SimDuration::from_micros(20)),
    ] {
        println!("{wl}:");
        println!(
            "{}",
            header(
                "size",
                &["always".into(), "never".into(), "adaptive".into()],
            )
        );
        for size in [256usize, 1 << 10, 8 << 10, 32 << 10] {
            let always = run(OffloadPolicy::Always, size, compute);
            let never = run(OffloadPolicy::Never, size, compute);
            let adaptive = run(OffloadPolicy::Adaptive, size, compute);
            println!("{}", row(&fmt_size(size), &[always, never, adaptive]));
        }
        println!();
    }
    println!("Observed: in the pure-latency loop the policies tie — `swait` runs");
    println!("right after `isend` and reclaims the submission inline before the");
    println!("offload tasklet's cross-CPU invocation (2µs) completes, so the");
    println!("offload machinery never hurts latency. With computation to hide");
    println!("behind, offloading (always) wins as soon as there is an idle core;");
    println!("adaptive inlines only the submissions cheaper than the invocation");
    println!("overhead and otherwise matches `always`.");
}
