//! Extension: the NetPIPE-style latency/bandwidth curve of the simulated
//! fabric, for both engines and for the multirail configuration.
//!
//! Not a figure of the paper, but the standard sanity check that the
//! eager→rendezvous transition behaves: latency stays flat in the PIO
//! regime, the rendezvous handshake adds a step at the 32K threshold, and
//! bandwidth converges to the wire rate (1250 MB/s per rail).

use pm2_bench::{fmt_size, header, row};
use pm2_mpi::workloads::run_pingpong;
use pm2_mpi::ClusterConfig;
use pm2_newmad::EngineKind;

fn main() {
    println!("Latency / bandwidth sweep (ping-pong, no computation)\n");
    println!(
        "{}",
        header(
            "size",
            &[
                "lat seq".into(),
                "lat pio".into(),
                "MB/s pio".into(),
                "MB/s 2rail".into(),
            ],
        )
    );
    let mut size = 64usize;
    let mut rail_work = [0u64; 2];
    while size <= 4 << 20 {
        let seq = run_pingpong(
            ClusterConfig::paper_testbed(EngineKind::Sequential),
            size,
            10,
        );
        let pio = run_pingpong(ClusterConfig::paper_testbed(EngineKind::Pioman), size, 10);
        let dual = run_pingpong(
            ClusterConfig {
                rails: 2,
                multirail: true,
                ..ClusterConfig::paper_testbed(EngineKind::Pioman)
            },
            size,
            10,
        );
        for (acc, w) in rail_work.iter_mut().zip(&dual.driver_progress) {
            *acc += w;
        }
        println!(
            "{}",
            row(
                &fmt_size(size),
                &[
                    seq.latency_us.mean(),
                    pio.latency_us.mean(),
                    pio.bandwidth_mbs,
                    dual.bandwidth_mbs,
                ],
            )
        );
        size *= 4;
    }
    println!("\nExpected: ~3-4µs small-message latency; a step at the 32K");
    println!("rendezvous threshold; asymptotic bandwidth ≈ wire rate (1250 MB/s),");
    println!("doubled by multirail.");
    println!(
        "Per-rail driver progress, 2rail runs (rank 0): rail0={} rail1={}",
        rail_work[0], rail_work[1]
    );
}
