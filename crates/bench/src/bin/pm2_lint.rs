//! pm2-lint: the repo's source-hygiene gate, promoted from the ci.sh
//! grep pipeline into a real scanner with testable rules.
//!
//! Rules:
//!
//! 1. **raw-sync** — `std::sync::atomic`, `std::sync::Mutex` and
//!    `UnsafeCell` may appear only inside `crates/sync/` (the pm2-sync
//!    primitives shim that the loom lane models). Justified exceptions
//!    carry `// sync-allow: <reason>` on the same line.
//!
//! 2. **protocol-panic** — `.unwrap()`, `.expect(`, `panic!`,
//!    `unreachable!`, `todo!` and `unimplemented!` are forbidden in
//!    non-test code of `crates/newmad/src` (the wire-protocol dispatch
//!    paths: a panic there is a remote-triggerable crash). Sites whose
//!    invariants make the panic genuinely unreachable carry
//!    `// lint-allow: <reason>` on the same or the preceding line.
//!
//! Exit status 1 when any finding survives, 0 otherwise — run from the
//! repository root (ci.sh does) or pass the root as the sole argument.

use std::path::{Path, PathBuf};

/// One rule finding: file, 1-based line, rule tag, offending snippet.
struct Finding {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    what: String,
}

/// Recursively collect `.rs` files under `dir` (sorted for stable output).
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Strip a trailing `// …` comment (naive: not string-literal aware, but
/// the patterns below never appear inside string literals in this tree).
fn code_of(line: &str) -> &str {
    match line.find("//") {
        Some(idx) => &line[..idx],
        None => line,
    }
}

/// The raw-sync rule: one line of any crate outside `crates/sync/`.
fn raw_sync_hit(line: &str) -> Option<&'static str> {
    if line.contains("sync-allow:") {
        return None;
    }
    let code = code_of(line);
    ["std::sync::atomic", "std::sync::Mutex", "UnsafeCell"]
        .into_iter()
        .find(|pat| code.contains(pat))
}

/// The protocol-panic rule: one line of newmad non-test code, given
/// whether the previous line carried a `lint-allow:` escape.
fn panic_hit(line: &str, prev_allows: bool) -> Option<&'static str> {
    if prev_allows || line.contains("lint-allow:") {
        return None;
    }
    let code = code_of(line);
    [
        ".unwrap()",
        ".expect(",
        "panic!",
        "unreachable!",
        "todo!",
        "unimplemented!",
    ]
    .into_iter()
    .find(|pat| code.contains(pat))
}

/// Scan one file with the raw-sync rule.
fn scan_raw_sync(path: &Path, src: &str, findings: &mut Vec<Finding>) {
    for (i, line) in src.lines().enumerate() {
        if let Some(pat) = raw_sync_hit(line) {
            findings.push(Finding {
                file: path.to_path_buf(),
                line: i + 1,
                rule: "raw-sync",
                what: format!(
                    "{pat} outside crates/sync (route through pm2-sync, \
                     or annotate '// sync-allow: <reason>')"
                ),
            });
        }
    }
}

/// Scan one newmad source file with the protocol-panic rule, skipping
/// `#[cfg(test)]` blocks by brace tracking.
fn scan_protocol_panics(path: &Path, src: &str, findings: &mut Vec<Finding>) {
    let mut in_test = false;
    let mut test_depth: i64 = 0;
    let mut test_entered = false;
    let mut prev_allows = false;
    for (i, line) in src.lines().enumerate() {
        let code = code_of(line);
        if in_test {
            // Track until the block opened after #[cfg(test)] closes.
            for c in code.chars() {
                match c {
                    '{' => {
                        test_depth += 1;
                        test_entered = true;
                    }
                    '}' => test_depth -= 1,
                    _ => {}
                }
            }
            if test_entered && test_depth <= 0 {
                in_test = false;
            }
            prev_allows = false;
            continue;
        }
        if code.contains("#[cfg(test)]") {
            in_test = true;
            test_depth = 0;
            test_entered = false;
            prev_allows = false;
            continue;
        }
        if let Some(pat) = panic_hit(line, prev_allows) {
            findings.push(Finding {
                file: path.to_path_buf(),
                line: i + 1,
                rule: "protocol-panic",
                what: format!(
                    "{pat} in a newmad protocol path (return a typed error, \
                     or annotate '// lint-allow: <reason>')"
                ),
            });
        }
        prev_allows = line.contains("lint-allow:");
    }
}

fn main() {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let crates = root.join("crates");
    if !crates.is_dir() {
        eprintln!(
            "pm2-lint: no crates/ under {} — run from the repo root",
            root.display()
        );
        std::process::exit(2);
    }
    let mut files = Vec::new();
    rust_files(&crates, &mut files);
    let mut findings = Vec::new();
    let sync_prefix = crates.join("sync");
    let newmad_prefix = crates.join("newmad").join("src");
    for path in &files {
        // The scanner's own pattern literals are not findings.
        if path.ends_with("bench/src/bin/pm2_lint.rs") {
            continue;
        }
        let Ok(src) = std::fs::read_to_string(path) else {
            continue;
        };
        if !path.starts_with(&sync_prefix) {
            scan_raw_sync(path, &src, &mut findings);
        }
        if path.starts_with(&newmad_prefix) {
            scan_protocol_panics(path, &src, &mut findings);
        }
    }
    for f in &findings {
        println!("{}:{}: [{}] {}", f.file.display(), f.line, f.rule, f.what);
    }
    if findings.is_empty() {
        println!("pm2-lint OK ({} files scanned)", files.len());
    } else {
        println!("pm2-lint: {} finding(s)", findings.len());
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_sync_flags_primitives_and_honors_escape() {
        assert!(raw_sync_hit("let m = std::sync::Mutex::new(());").is_some());
        assert!(raw_sync_hit("use std::sync::atomic::AtomicUsize;").is_some());
        assert!(raw_sync_hit("cell: UnsafeCell<T>,").is_some());
        assert!(
            raw_sync_hit("let m = std::sync::Mutex::new(()); // sync-allow: test rig").is_none()
        );
        assert!(raw_sync_hit("// std::sync::Mutex in a comment").is_none());
        assert!(raw_sync_hit("let x = 1;").is_none());
    }

    #[test]
    fn panic_rule_flags_macros_and_honors_escapes() {
        assert!(panic_hit("let v = map.get(&k).unwrap();", false).is_some());
        assert!(panic_hit("panic!(\"bad frame\");", false).is_some());
        assert!(panic_hit("x.expect(\"present\");", false).is_some());
        // Same-line and preceding-line escapes.
        assert!(panic_hit("x.unwrap() // lint-allow: guarded above", false).is_none());
        assert!(panic_hit("x.unwrap()", true).is_none());
        // Comment-only mentions don't count.
        assert!(panic_hit("// production would panic! here", false).is_none());
    }

    #[test]
    fn cfg_test_blocks_are_skipped() {
        let src = "fn a() {\n    x.unwrap();\n}\n#[cfg(test)]\nmod tests {\n    fn b() { y.unwrap(); }\n}\nfn c() { z.unwrap(); }\n";
        let mut findings = Vec::new();
        scan_protocol_panics(Path::new("m.rs"), src, &mut findings);
        let lines: Vec<usize> = findings.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![2, 8], "test-mod unwrap must be skipped");
    }
}
