//! Ablation: the strategy layer — FIFO vs. aggregation vs. reordering.
//!
//! NewMadeleine's optimizer (§3.1, [2]) can aggregate consecutive small
//! messages to the same destination into one frame, saving per-frame
//! submission and wire overheads. This benchmark sends bursts of small
//! messages and compares total delivery time and frames on the wire.

use pm2_bench::{fmt_size, header, row};
use pm2_mpi::{Cluster, ClusterConfig, StrategyKind};
use pm2_newmad::{EngineKind, Tag};
use pm2_sim::SimDuration;
use pm2_topo::NodeId;
use std::cell::Cell;
use std::rc::Rc;

const BURST: usize = 32;

fn run(strategy: StrategyKind, msg_len: usize) -> (f64, u64) {
    let cfg = ClusterConfig {
        strategy,
        ..ClusterConfig::paper_testbed(EngineKind::Pioman)
    };
    let cluster = Cluster::build(cfg);
    let end = Rc::new(Cell::new(0u64));
    {
        let s = cluster.session(0).clone();
        cluster.spawn_on(0, "tx", move |ctx| async move {
            let mut hs = Vec::new();
            for m in 0..BURST {
                hs.push(
                    s.isend(&ctx, NodeId(1), Tag(m as u64), vec![m as u8; msg_len])
                        .await,
                );
            }
            // One long computation: the burst is submitted in background.
            ctx.compute(SimDuration::from_micros(50)).await;
            for h in &hs {
                s.swait_send(h, &ctx).await;
            }
        });
    }
    {
        let s = cluster.session(1).clone();
        let end = Rc::clone(&end);
        cluster.spawn_on(1, "rx", move |ctx| async move {
            // Pre-post every receive (zero-copy delivery for all frames),
            // so the comparison isolates submission + wire effects.
            let mut hs = Vec::new();
            for m in 0..BURST {
                hs.push(s.irecv(&ctx, Some(NodeId(0)), Tag(m as u64)).await);
            }
            for h in &hs {
                let _ = s.swait_recv(h, &ctx).await;
            }
            end.set(ctx.marcel().sim().now().as_nanos());
        });
    }
    cluster.run();
    (
        end.get() as f64 / 1000.0,
        cluster.session(0).counters().eager_frames_tx,
    )
}

fn main() {
    println!("Ablation — packet-scheduling strategies ({BURST}-message bursts)");
    println!("Time until the receiver has all messages, and frames on the wire\n");
    for msg_len in [256usize, 1 << 10, 4 << 10] {
        println!("message size {}:", fmt_size(msg_len));
        println!(
            "{}",
            header("strategy", &["time (µs)".into(), "frames".into()])
        );
        for (name, strat) in [
            ("fifo", StrategyKind::Fifo),
            ("aggreg", StrategyKind::Aggreg),
            ("shortest", StrategyKind::ShortestFirst),
        ] {
            let (t, frames) = run(strat, msg_len);
            println!("{}", row(name, &[t, frames as f64]));
        }
        println!();
    }
    println!("Aggregation folds a burst into few frames: fewer submissions and");
    println!("fewer per-frame wire overheads — the gain shrinks as messages grow");
    println!("(the byte limit caps folding).");
}
