//! Ablation: NUMA placement of the progress tasklet.
//!
//! PIOMAN asks Marcel to run the submission tasklet on the idle core
//! *nearest* to the requesting thread (shared cache): the cross-CPU
//! notification costs ≈2 µs within a socket and more across sockets.
//! This benchmark pins the sender to core 0 and compares offload latency
//! when socket-0 neighbours are available vs. when they are kept busy, so
//! the tasklet must run on the remote socket.

use pm2_bench::{header, row};
use pm2_mpi::{Cluster, ClusterConfig};
use pm2_newmad::{EngineKind, Tag};
use pm2_sim::SimDuration;
use pm2_topo::NodeId;
use std::cell::Cell;
use std::rc::Rc;

const MSG: usize = 16 << 10;
const COMPUTE_US: u64 = 20;
const ITERS: usize = 20;

fn run(busy_local_socket: bool) -> f64 {
    let cluster = Cluster::build(ClusterConfig::paper_testbed(EngineKind::Pioman));
    let total = Rc::new(Cell::new(0f64));
    if busy_local_socket {
        // Occupy cores 1-3 (socket 0 of node 0): only socket 1 stays idle.
        for c in 1..4usize {
            let core = cluster.topology().core_on(pm2_topo::NodeId(0), c);
            cluster.marcel(0).spawn(
                format!("busy{c}"),
                pm2_marcel::Priority::Normal,
                Some(core),
                |ctx| async move {
                    ctx.compute(SimDuration::from_millis(10)).await;
                },
            );
        }
    }
    {
        let s = cluster.session(0).clone();
        let total = Rc::clone(&total);
        let core0 = cluster.topology().core_on(pm2_topo::NodeId(0), 0);
        cluster.marcel(0).spawn(
            "sender",
            pm2_marcel::Priority::Normal,
            Some(core0),
            move |ctx| async move {
                for i in 0..ITERS {
                    let t1 = ctx.marcel().sim().now();
                    let h = s.isend(&ctx, NodeId(1), Tag(i as u64), vec![1; MSG]).await;
                    ctx.compute(SimDuration::from_micros(COMPUTE_US)).await;
                    s.swait_send(&h, &ctx).await;
                    let t2 = ctx.marcel().sim().now();
                    total.set(total.get() + t2.saturating_since(t1).as_micros_f64());
                }
            },
        );
    }
    {
        let s = cluster.session(1).clone();
        cluster.spawn_on(1, "rx", move |ctx| async move {
            for i in 0..ITERS {
                let _ = s.recv(&ctx, Some(NodeId(0)), Tag(i as u64)).await;
            }
        });
    }
    cluster.run();
    total.get() / ITERS as f64
}

fn main() {
    println!("Ablation — NUMA placement of the offload tasklet");
    println!("16K isend + 20µs compute + swait, sender pinned to core 0\n");
    println!("{}", header("placement", &["sender time (µs)".into()]));
    let near = run(false);
    let far = run(true);
    println!("{}", row("same-socket", &[near]));
    println!("{}", row("cross-socket", &[far]));
    println!(
        "\nForcing the tasklet across the socket boundary adds {:.1}µs of\n\
         invocation latency (2µs shared-cache vs 3.2µs interconnect) —\n\
         why Marcel's kick-nearest-idle-core policy matters.",
        far - near
    );
}
