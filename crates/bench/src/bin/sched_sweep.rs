//! Scheduling-policy sweep: the paper's fig. 5 overlap loop and fig. 7/8
//! stencil under every Marcel policy, plus a loaded-core overlap point
//! and the dispatch-locality mix. Emits `BENCH_sched.json` to stdout.
//!
//! ```sh
//! cargo run --release -p pm2-bench --bin sched_sweep > BENCH_sched.json
//! PM2_SCHED_SMOKE=1 cargo run --release -p pm2-bench --bin sched_sweep  # CI
//! ```

use pm2_mpi::workloads::{run_overlap, run_stencil, OverlapParams, StencilParams};
use pm2_mpi::{Cluster, ClusterConfig};
use pm2_newmad::{EngineKind, Tag};
use pm2_sim::stats::OnlineStats;
use pm2_sim::{SimDuration, SimTime};
use pm2_topo::NodeId;
use std::cell::RefCell;
use std::rc::Rc;

const POLICIES: [&str; 4] = ["hier", "fifo", "vruntime", "comm"];

fn testbed(policy: &str) -> ClusterConfig {
    ClusterConfig::paper_testbed(EngineKind::Pioman).with_sched_policy(policy)
}

fn main() {
    let smoke = std::env::var("PM2_SCHED_SMOKE").is_ok();
    let (sizes, iters, warmup): (Vec<usize>, usize, usize) = if smoke {
        (vec![8 << 10], 4, 1)
    } else {
        (vec![1 << 10, 8 << 10, 32 << 10, 256 << 10], 20, 3)
    };
    let compute = SimDuration::from_micros(20);

    let mut out = String::from("{\n  \"schema\": \"pm2-sched-sweep/v1\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"policies\": {\n");
    for (pi, policy) in POLICIES.iter().enumerate() {
        eprintln!("sweeping policy {policy}...");
        out.push_str(&format!("    \"{policy}\": {{\n"));

        // Fig. 5: overlap latency and efficiency per message size. The
        // reference run (no compute) is measured under the same policy,
        // so efficiency compares a policy only against itself.
        out.push_str("      \"fig5\": [\n");
        for (si, &bytes) in sizes.iter().enumerate() {
            let reference = run_overlap(
                testbed(policy),
                &OverlapParams {
                    msg_len: bytes,
                    compute: SimDuration::ZERO,
                    iters,
                    warmup,
                },
            )
            .half_round_us
            .mean();
            let half_round = run_overlap(
                testbed(policy),
                &OverlapParams {
                    msg_len: bytes,
                    compute,
                    iters,
                    warmup,
                },
            )
            .half_round_us
            .mean();
            let ideal = reference.max(compute.as_micros_f64());
            let efficiency = if half_round > 0.0 {
                ideal / half_round
            } else {
                0.0
            };
            out.push_str(&format!(
                "        {{\"bytes\": {bytes}, \"reference_us\": {reference:.3}, \
                 \"half_round_us\": {half_round:.3}, \"overlap_efficiency\": {efficiency:.4}}}"
            ));
            out.push_str(if si + 1 < sizes.len() { ",\n" } else { "\n" });
        }
        out.push_str("      ],\n");

        // Loaded fig. 5 point: the communicating thread contends with
        // background compute, so the wakeup-to-dispatch delay is on the
        // measured path (this is where the policies separate).
        let (loaded_us, mix) = loaded_overlap(policy, iters, warmup);
        out.push_str(&format!("      \"fig5_loaded_us\": {loaded_us:.3},\n"));
        out.push_str(&format!(
            "      \"locality\": {{\"dispatches\": {}, \"pop_core\": {}, \
             \"pop_local_socket\": {}, \"pop_node\": {}, \"pop_steal\": {}}},\n",
            mix.dispatches, mix.pop_core, mix.pop_local_socket, mix.pop_node, mix.pop_steal
        ));

        // Fig. 7/8: stencil wall time.
        let grids: Vec<StencilParams> = if smoke {
            vec![StencilParams::four_threads()]
        } else {
            vec![
                StencilParams::four_threads(),
                StencilParams::sixteen_threads(),
            ]
        };
        out.push_str("      \"fig6\": [\n");
        for (gi, p) in grids.iter().enumerate() {
            let r = run_stencil(testbed(policy), p);
            out.push_str(&format!(
                "        {{\"threads\": {}, \"total_us\": {:.3}}}",
                p.threads(),
                r.total_us
            ));
            out.push_str(if gi + 1 < grids.len() { ",\n" } else { "\n" });
        }
        out.push_str("      ]\n");

        out.push_str("    }");
        out.push_str(if pi + 1 < POLICIES.len() { ",\n" } else { "\n" });
    }
    out.push_str("  }\n}\n");
    print!("{out}");
}

/// Dispatch-locality mix of node 0 at the end of the loaded run.
struct Mix {
    dispatches: u64,
    pop_core: u64,
    pop_local_socket: u64,
    pop_node: u64,
    pop_steal: u64,
}

/// The loaded overlap point of `tests/sched.rs`: fig. 5 loop with a 2 µs
/// compute slice on a 2-core node shared with background compute threads.
fn loaded_overlap(policy: &str, iters: usize, warmup: usize) -> (f64, Mix) {
    let cfg = ClusterConfig {
        sockets_per_node: 1,
        cores_per_socket: 2,
        ..testbed(policy)
    };
    let len = 8 << 10;
    let compute = SimDuration::from_micros(2);
    let cluster = Cluster::build(cfg);
    let stats = Rc::new(RefCell::new(OnlineStats::new()));
    let total = iters + warmup;
    for b in 0..3 {
        cluster.spawn_on(0, format!("bg-{b}"), move |ctx| async move {
            for _ in 0..400 {
                ctx.compute(SimDuration::from_micros(2)).await;
                ctx.yield_now().await;
            }
        });
    }
    {
        let s = cluster.session(0).clone();
        let stats = Rc::clone(&stats);
        cluster.spawn_on(0, "overlap-0", move |ctx| async move {
            for i in 0..total {
                let t1 = ctx.marcel().sim().now();
                let h = s
                    .isend(&ctx, NodeId(1), Tag(2 * i as u64), vec![0xa5; len])
                    .await;
                ctx.compute(compute).await;
                s.swait_send(&h, &ctx).await;
                let hr = s.irecv(&ctx, Some(NodeId(1)), Tag(2 * i as u64 + 1)).await;
                ctx.compute(compute).await;
                let _ = s.swait_recv(&hr, &ctx).await;
                let t2 = ctx.marcel().sim().now();
                if i >= warmup {
                    stats
                        .borrow_mut()
                        .record(t2.saturating_since(t1).as_micros_f64() / 2.0);
                }
            }
        });
    }
    {
        let s = cluster.session(1).clone();
        cluster.spawn_on(1, "overlap-1", move |ctx| async move {
            for i in 0..total {
                let hr = s.irecv(&ctx, Some(NodeId(0)), Tag(2 * i as u64)).await;
                ctx.compute(compute).await;
                let _ = s.swait_recv(&hr, &ctx).await;
                let h = s
                    .isend(&ctx, NodeId(0), Tag(2 * i as u64 + 1), vec![0x5a; len])
                    .await;
                ctx.compute(compute).await;
                s.swait_send(&h, &ctx).await;
            }
        });
    }
    cluster.run_deadline(SimTime::from_secs(60));
    let st = cluster.marcel(0).stats();
    let mix = Mix {
        dispatches: st.dispatches,
        pop_core: st.pop_core,
        pop_local_socket: st.pop_local_socket,
        pop_node: st.pop_node,
        pop_steal: st.pop_steal,
    };
    let stats = Rc::try_unwrap(stats).expect("sole owner").into_inner();
    (stats.mean(), mix)
}
