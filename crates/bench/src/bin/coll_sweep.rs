//! Collective sweep: allreduce and bcast across payload sizes, rank
//! counts and algorithms. Emits `BENCH_coll.json` to stdout.
//!
//! ```sh
//! cargo run --release -p pm2-bench --bin coll_sweep > BENCH_coll.json
//! PM2_COLL_SMOKE=1 cargo run --release -p pm2-bench --bin coll_sweep   # CI
//! ```

use pm2_bench::collbench::{run_coll, CollOp, CollPoint};
use pm2_coll::AlgoKind;

fn main() {
    let smoke = std::env::var("PM2_COLL_SMOKE").is_ok();
    let (sizes, ranks, iters, warmup): (Vec<usize>, Vec<usize>, usize, usize) = if smoke {
        (vec![1 << 10, 64 << 10], vec![2, 4], 2, 1)
    } else {
        (
            vec![256, 4 << 10, 32 << 10, 256 << 10, 1 << 20],
            vec![2, 4, 8],
            4,
            1,
        )
    };

    let series: Vec<(&str, CollOp, Option<AlgoKind>)> = vec![
        ("allreduce_flat", CollOp::Allreduce, Some(AlgoKind::Flat)),
        ("allreduce_auto", CollOp::Allreduce, None),
        ("allreduce_ring", CollOp::Allreduce, Some(AlgoKind::Ring)),
        ("allreduce_rd", CollOp::Allreduce, Some(AlgoKind::RecDouble)),
        ("bcast_flat", CollOp::Bcast, Some(AlgoKind::Flat)),
        ("bcast_tree", CollOp::Bcast, Some(AlgoKind::Tree)),
        ("bcast_auto", CollOp::Bcast, None),
    ];

    let mut out = String::from("{\n  \"schema\": \"pm2-coll-sweep/v1\",\n");
    out.push_str(&format!("  \"sizes\": {},\n", json_usize(&sizes)));
    out.push_str(&format!("  \"ranks\": {},\n", json_usize(&ranks)));
    out.push_str("  \"series\": {\n");
    for (si, (name, op, algo)) in series.iter().enumerate() {
        eprintln!("sweeping {name}...");
        let mut points = Vec::new();
        for &p in &ranks {
            for &bytes in &sizes {
                points.push(run_coll(*op, *algo, p, bytes, iters, warmup));
            }
        }
        out.push_str(&format!("    \"{name}\": [\n"));
        for (pi, pt) in points.iter().enumerate() {
            out.push_str(&point_json(pt));
            out.push_str(if pi + 1 < points.len() { ",\n" } else { "\n" });
        }
        out.push_str("    ]");
        out.push_str(if si + 1 < series.len() { ",\n" } else { "\n" });
    }
    out.push_str("  }\n}\n");
    print!("{out}");
}

fn json_usize(v: &[usize]) -> String {
    let items: Vec<String> = v.iter().map(|x| x.to_string()).collect();
    format!("[{}]", items.join(", "))
}

fn point_json(p: &CollPoint) -> String {
    format!(
        "      {{\"ranks\": {}, \"bytes\": {}, \"us_per_op\": {:.3}, \"mbps\": {:.3}, \"steps\": {:.2}, \"chunks\": {:.2}}}",
        p.ranks, p.bytes, p.us_per_op, p.mbps, p.steps, p.chunks
    )
}
