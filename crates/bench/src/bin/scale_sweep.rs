//! Simulator-throughput sweep: how fast the DES core itself executes as
//! the rank count grows. Everything the protocol suites measure rides on
//! `Sim`'s event queue, so a queue regression is a regression everywhere;
//! this sweep makes it as visible as a protocol regression. Emits
//! `BENCH_scale.json` to stdout.
//!
//! ```sh
//! cargo run --release -p pm2-bench --bin scale_sweep > BENCH_scale.json
//! PM2_SCALE_SMOKE=1 cargo run --release -p pm2-bench --bin scale_sweep  # CI
//! ```
//!
//! Each point builds a Pioman cluster of N single-socket dual-core nodes
//! and runs a dissemination barrier, a neighbour-ring eager exchange and
//! a closing barrier — O(N log N + N·iters) messages, so the 1024-rank
//! point stays tractable while still forcing the event queue through the
//! schedule → fire → complete hot path millions of times.

use pm2_fabric::FaultPlan;
use pm2_marcel::MarcelConfig;
use pm2_mpi::{Cluster, ClusterConfig, Comm};
use pm2_newmad::{EngineKind, Tag};
use pm2_sim::SimTime;
use std::time::Instant;

/// A scaled-down node so 1024 Marcel instances stay cheap: one socket,
/// two cores (one app thread + room for stolen progression).
fn scale_testbed(ranks: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_testbed(EngineKind::Pioman);
    cfg.nodes = ranks;
    cfg.sockets_per_node = 1;
    cfg.cores_per_socket = 2;
    cfg.fabric.fault = FaultPlan::default();
    cfg.marcel = MarcelConfig::default();
    cfg
}

struct Point {
    ranks: usize,
    iters: usize,
    events: u64,
    msgs: u64,
    wall_ms: f64,
    virt_ms: f64,
    events_per_sec: f64,
    wall_per_virt: f64,
    end_ns: u64,
}

/// Ring iterations per point, scaled inversely with the rank count so
/// every point executes enough events (~10^5) to amortize cluster
/// warm-up: a 16-rank point over 4 iterations finishes in ~2 ms, which
/// mostly measures allocator warm-up and scheduler noise, not the
/// steady-state event loop.
fn iters_for(ranks: usize) -> usize {
    (6400 / ranks).clamp(4, 400)
}

/// Best of `reps` runs of [`run_point_once`] by wall time: the small
/// points finish in a couple of milliseconds, so a single sample is
/// mostly scheduler noise.
fn run_point(ranks: usize, iters: usize, reps: usize) -> Point {
    (0..reps)
        .map(|_| run_point_once(ranks, iters))
        .min_by(|a, b| a.wall_ms.total_cmp(&b.wall_ms))
        .expect("at least one rep")
}

/// Barrier + `iters` rounds of a neighbour-ring eager exchange + barrier.
fn run_point_once(ranks: usize, iters: usize) -> Point {
    let cluster = Cluster::build(scale_testbed(ranks));
    let world = Comm::world(&cluster);
    for (rank, comm) in world.into_iter().enumerate() {
        cluster.spawn_on(rank, format!("rank{rank}"), move |ctx| async move {
            let n = comm.size();
            comm.barrier(&ctx).await;
            let right = (rank + 1) % n;
            let left = (rank + n - 1) % n;
            for it in 0..iters {
                let tag = Tag(1000 + it as u64);
                let h = comm.isend(&ctx, right, tag, vec![it as u8; 64]).await;
                let got = comm.recv(&ctx, Some(left), tag).await;
                assert_eq!(got.len(), 64);
                comm.wait_send(&h, &ctx).await;
            }
            comm.barrier(&ctx).await;
        });
    }
    let wall_start = Instant::now();
    let end = match cluster.sim().run_bounded(SimTime::from_secs(300)) {
        Ok(end) => end,
        Err(_) => panic!("{ranks}-rank sweep point wedged"),
    };
    let wall = wall_start.elapsed();
    let events = cluster.sim().executed_events();
    let msgs: u64 = (0..ranks)
        .map(|r| cluster.session(r).counters().sends)
        .sum();
    let wall_s = wall.as_secs_f64();
    let virt_s = end.as_nanos() as f64 / 1e9;
    Point {
        ranks,
        iters,
        events,
        msgs,
        wall_ms: wall_s * 1e3,
        virt_ms: virt_s * 1e3,
        events_per_sec: events as f64 / wall_s.max(1e-9),
        wall_per_virt: wall_s / virt_s.max(1e-12),
        end_ns: end.as_nanos(),
    }
}

fn main() {
    let smoke = std::env::var("PM2_SCALE_SMOKE").is_ok();
    let (rank_points, reps): (Vec<usize>, usize) = if smoke {
        (vec![16, 256], 1)
    } else {
        (vec![16, 64, 256, 1024], 5)
    };
    let fixed_iters: Option<usize> = std::env::var("PM2_SCALE_ITERS")
        .ok()
        .map(|v| v.parse().expect("PM2_SCALE_ITERS must be a count"));
    let mut out = String::from("{\n  \"schema\": \"pm2-scale/v1\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"reps\": {reps},\n"));
    out.push_str("  \"points\": [\n");
    for (i, &ranks) in rank_points.iter().enumerate() {
        let iters = fixed_iters.unwrap_or(if smoke { 2 } else { iters_for(ranks) });
        eprintln!("sweeping {ranks} ranks ({iters} ring iters)...");
        let p = run_point(ranks, iters, reps);
        out.push_str(&format!(
            "    {{\"ranks\": {}, \"ring_iters\": {}, \"events\": {}, \
             \"msgs\": {}, \"events_per_sec\": {:.0}, \"wall_ms\": {:.3}, \
             \"virt_ms\": {:.3}, \"wall_per_virt\": {:.4}, \"end_ns\": {}}}",
            p.ranks,
            p.iters,
            p.events,
            p.msgs,
            p.events_per_sec,
            p.wall_ms,
            p.virt_ms,
            p.wall_per_virt,
            p.end_ns
        ));
        out.push_str(if i + 1 < rank_points.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    print!("{out}");
}
