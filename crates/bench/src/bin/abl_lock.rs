//! Ablation: per-event spinlocks vs. a library-wide mutex (§2.1).
//!
//! The paper argues that an event-driven engine can protect each event
//! separately with light spinlocks, so "several threads can perform
//! different operations at the same time", where classical engines
//! serialize everything behind one mutex.
//!
//! Workload: intra-node, so the progress work is pure CPU (shared-memory
//! copies) with no wire to hide behind: 2 pairs of threads exchange 28 kB
//! halos while 4 idle cores run the progress engine. With per-event
//! spinlocks the idle cores copy concurrently; with the global mutex they
//! take turns.

use pioman::{LockModel, PiomanConfig};
use pm2_bench::{header, row};
use pm2_mpi::{Cluster, ClusterConfig};
use pm2_newmad::{EngineKind, Tag};
use pm2_sim::SimDuration;
use pm2_topo::NodeId;
use std::cell::Cell;
use std::rc::Rc;

const PAIRS: usize = 2;
const ITERS: usize = 40;
const MSG_LEN: usize = 28 << 10;

fn run(lock_model: LockModel) -> (f64, u64) {
    let cfg = ClusterConfig {
        nodes: 2, // node 1 unused; keeps the fabric layout of the testbed
        pioman: PiomanConfig {
            lock_model,
            ..PiomanConfig::default()
        },
        ..ClusterConfig::paper_testbed(EngineKind::Pioman)
    };
    let cluster = Cluster::build(cfg);
    let end = Rc::new(Cell::new(0u64));
    for p in 0..PAIRS {
        {
            let s = cluster.session(0).clone();
            let end = Rc::clone(&end);
            cluster.spawn_on(0, format!("tx{p}"), move |ctx| async move {
                for m in 0..ITERS {
                    let tag = Tag((p * ITERS + m) as u64);
                    let h = s.isend(&ctx, NodeId(0), tag, vec![0x11; MSG_LEN]).await;
                    ctx.compute(SimDuration::from_micros(12)).await;
                    s.swait_send(&h, &ctx).await;
                }
                end.set(end.get().max(ctx.marcel().sim().now().as_nanos()));
            });
        }
        {
            let s = cluster.session(0).clone();
            let end = Rc::clone(&end);
            cluster.spawn_on(0, format!("rx{p}"), move |ctx| async move {
                for m in 0..ITERS {
                    let tag = Tag((p * ITERS + m) as u64);
                    let h = s.irecv(&ctx, Some(NodeId(0)), tag).await;
                    ctx.compute(SimDuration::from_micros(12)).await;
                    let _ = s.swait_recv(&h, &ctx).await;
                }
                end.set(end.get().max(ctx.marcel().sim().now().as_nanos()));
            });
        }
    }
    cluster.run();
    let contentions = cluster
        .pioman(0)
        .expect("pioman engine")
        .stats()
        .lock_contentions;
    (end.get() as f64 / 1000.0, contentions)
}

fn main() {
    println!("Ablation — event protection: per-event spinlocks vs global mutex");
    println!(
        "Workload: {PAIRS} intra-node flows x {ITERS} x {}K messages, 8 cores\n",
        MSG_LEN >> 10
    );
    println!(
        "{}",
        header("model", &["time (µs)".into(), "contentions".into()])
    );
    let (spin_t, spin_c) = run(LockModel::PerEventSpinlock);
    let (mutex_t, mutex_c) = run(LockModel::GlobalMutex);
    println!("{}", row("spinlocks", &[spin_t, spin_c as f64]));
    println!("{}", row("globalmutex", &[mutex_t, mutex_c as f64]));
    println!(
        "\nGlobal mutex slowdown: {:.1}% (paper §2.1: light per-event locks let",
        (mutex_t - spin_t) / spin_t * 100.0
    );
    println!("several cores process different events concurrently).");
}
