//! Figure 6 reproduction: rendezvous handshake progression.
//!
//! Same Figure 4 program with 100 µs of computation and large messages
//! (8K–512K; above 32K the MX-like driver switches to the zero-copy
//! rendezvous protocol). Series:
//!
//! * **no RDV progression** — sequential engine: the RTS/CTS handshake
//!   only advances when the application re-enters the library, so the
//!   transfer starts after the computation: ≈ sum(comp, comm);
//! * **RDV progression** — PIOMAN engine: idle cores poll and answer the
//!   handshake in the background: ≈ max(comp, comm);
//! * **no computation (reference)** — the raw transfer time.

use pm2_bench::{fig6_compute, fig6_sizes, fmt_size, header, row};
use pm2_mpi::workloads::{run_overlap, OverlapParams};
use pm2_mpi::ClusterConfig;
use pm2_newmad::EngineKind;
use pm2_sim::SimDuration;

fn main() {
    println!("Figure 6 — Offloading of rendezvous progression (sending time, µs)");
    println!("Testbed: 2 nodes x 8 cores, MYRI-10G model, rendezvous above 32K\n");
    println!(
        "{}",
        header(
            "size",
            &["no-rdv-prog".into(), "rdv-prog".into(), "reference".into(),],
        )
    );
    for size in fig6_sizes() {
        let p = OverlapParams {
            msg_len: size,
            compute: fig6_compute(),
            iters: 15,
            warmup: 3,
        };
        let no_prog = run_overlap(ClusterConfig::paper_testbed(EngineKind::Sequential), &p)
            .half_round_us
            .mean();
        let prog = run_overlap(ClusterConfig::paper_testbed(EngineKind::Pioman), &p)
            .half_round_us
            .mean();
        let reference = run_overlap(
            ClusterConfig::paper_testbed(EngineKind::Pioman),
            &OverlapParams {
                msg_len: size,
                compute: SimDuration::ZERO,
                iters: 15,
                warmup: 3,
            },
        )
        .half_round_us
        .mean();
        println!("{}", row(&fmt_size(size), &[no_prog, prog, reference]));
    }
    println!("\nExpected shape (paper): no-rdv-prog ≈ reference + 100µs;");
    println!("rdv-prog ≈ max(reference, 100µs); crossover where comm ≈ 100µs (~128K).");
}
