//! pm2-obs timeline dump: the Figure 5 overlap loop, observed.
//!
//! Replays the fig5 program (`isend; compute; swait` symmetric on two
//! nodes, PIOMAN engine) with the structured-observability layer enabled,
//! at one eager size and one rendezvous size, plus a closing allreduce so
//! the collective counters move too. The run then reconstructs every
//! request and rendezvous timeline from the event ring, self-validates the
//! phase ordering (posted ≤ submit ≤ complete on the eager path,
//! RTS → CTS → DMA → complete on the rendezvous path) and prints one JSON
//! document combining the timelines with the unified metrics snapshot.
//!
//! Unlike the baseline-checked reproduction binaries this output carries
//! virtual timestamps, so CI validates it against the
//! `pm2-obs-dump/v1` schema rather than a golden file.

use pm2_mpi::workloads::OverlapParams;
use pm2_mpi::{Cluster, ClusterConfig, Comm};
use pm2_newmad::{EngineKind, Tag};
use pm2_sim::obs::{build_timelines, Role};
use pm2_sim::MetricsRegistry;
use pm2_topo::NodeId;
use std::process::ExitCode;

/// Eager-path payload (below the 32 KiB paper-testbed threshold).
const EAGER_LEN: usize = 8 << 10;
/// Rendezvous-path payload (above the threshold).
const RDV_LEN: usize = 64 << 10;
/// Iterations per size class.
const ITERS: usize = 3;

fn main() -> ExitCode {
    let cluster = Cluster::build(ClusterConfig::paper_testbed(EngineKind::Pioman));
    // Enable before any traffic so the very first request is observed.
    cluster.sim().obs().set_enabled(true);
    let reg = MetricsRegistry::new();
    cluster.register_metrics(&reg);
    let comms = Comm::world(&cluster);
    for comm in &comms {
        comm.register_metrics(&reg);
    }
    let p = OverlapParams::default();
    let compute = p.compute;

    // The fig5 loop body, replicated here rather than through
    // `run_overlap` (which builds its own cluster and would bypass the
    // enabled obs layer): node 0 sends on even tags, node 1 answers on
    // odd ones, both overlap the wait with compute.
    let sizes: Vec<usize> = [EAGER_LEN; ITERS]
        .into_iter()
        .chain([RDV_LEN; ITERS])
        .collect();
    {
        let s = cluster.session(0).clone();
        let comm = comms[0].clone();
        let sizes = sizes.clone();
        cluster.spawn_on(0, "obs-0", move |ctx| async move {
            for (i, len) in sizes.into_iter().enumerate() {
                let h = s
                    .isend(&ctx, NodeId(1), Tag(2 * i as u64), vec![0xa5; len])
                    .await;
                ctx.compute(compute).await;
                s.swait_send(&h, &ctx).await;
                let hr = s.irecv(&ctx, Some(NodeId(1)), Tag(2 * i as u64 + 1)).await;
                ctx.compute(compute).await;
                let _ = s.swait_recv(&hr, &ctx).await;
            }
            comm.allreduce_sum(&ctx, 1).await;
        });
    }
    {
        let s = cluster.session(1).clone();
        let comm = comms[1].clone();
        let sizes = sizes.clone();
        cluster.spawn_on(1, "obs-1", move |ctx| async move {
            for (i, len) in sizes.into_iter().enumerate() {
                let hr = s.irecv(&ctx, Some(NodeId(0)), Tag(2 * i as u64)).await;
                ctx.compute(compute).await;
                let _ = s.swait_recv(&hr, &ctx).await;
                let h = s
                    .isend(&ctx, NodeId(0), Tag(2 * i as u64 + 1), vec![0x5a; len])
                    .await;
                ctx.compute(compute).await;
                s.swait_send(&h, &ctx).await;
            }
            comm.allreduce_sum(&ctx, 1).await;
        });
    }
    cluster.run_deadline(pm2_sim::SimTime::from_secs(60));

    let events = cluster.sim().obs().events();
    let timelines = build_timelines(&events);
    let mut errors = Vec::new();

    // Eager sends: posted ≤ first submission ≤ completion, with a site.
    let eager_sends: Vec<_> = timelines
        .reqs
        .iter()
        .filter(|r| r.role == Role::Send && r.len == Some(EAGER_LEN) && r.rdv.is_none())
        .collect();
    if eager_sends.len() < 2 * ITERS {
        errors.push(format!(
            "expected {} eager send timelines, found {}",
            2 * ITERS,
            eager_sends.len()
        ));
    }
    for r in &eager_sends {
        let (Some(submit), Some(done)) = (r.submit_at, r.completed_at) else {
            errors.push(format!("eager send req {} missing submit/complete", r.req));
            continue;
        };
        if !(r.posted_at <= submit && submit <= done) {
            errors.push(format!("eager send req {} out of order", r.req));
        }
        if r.submit_site.is_none() {
            errors.push(format!("eager send req {} has no submission site", r.req));
        }
    }
    // Eager receives: a delivery instant and an expectedness verdict.
    if !timelines
        .reqs
        .iter()
        .any(|r| r.role == Role::Recv && r.delivered_at.is_some() && r.unexpected.is_some())
    {
        errors.push("no eager receive delivery observed".into());
    }
    // Rendezvous: the full RTS → CTS → DMA → complete handshake.
    let rdvs: Vec<_> = timelines
        .rdvs
        .iter()
        .filter(|v| v.len == Some(RDV_LEN))
        .collect();
    if rdvs.len() < 2 * ITERS {
        errors.push(format!(
            "expected {} rendezvous timelines, found {}",
            2 * ITERS,
            rdvs.len()
        ));
    }
    for v in &rdvs {
        let ordered = matches!(
            (v.rts_tx, v.rts_rx, v.cts_tx, v.cts_rx, v.completed_at),
            (Some(rts_tx), Some(rts_rx), Some(cts_tx), Some(cts_rx), Some(done))
                if rts_tx <= rts_rx && rts_rx <= cts_tx && cts_tx <= cts_rx && cts_rx <= done
        );
        if !ordered {
            errors.push(format!("rendezvous {:?}/{} out of order", v.sender, v.rdv));
        }
        if v.dma_chunks == 0 {
            errors.push(format!("rendezvous {:?}/{} moved no data", v.sender, v.rdv));
        }
    }

    if !errors.is_empty() {
        for e in &errors {
            eprintln!("obs_dump: {e}");
        }
        return ExitCode::FAILURE;
    }

    println!("{{");
    println!("  \"schema\": \"pm2-obs-dump/v1\",");
    println!("  \"events\": {},", events.len());
    println!("  \"dropped\": {},", cluster.sim().obs().dropped());
    println!("  \"timeline\": {},", timelines.to_json());
    println!("  \"metrics\": {}", reg.to_json());
    println!("}}");
    ExitCode::SUCCESS
}
