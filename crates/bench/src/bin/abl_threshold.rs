//! Ablation: where should the rendezvous threshold sit?
//!
//! MX uses 32K (§2.3). Below the threshold the eager path pays a
//! host-side copy but needs no handshake; above it the rendezvous is
//! zero-copy but needs reactivity for RTS/CTS. Sweeping the threshold
//! around the message size shows the trade-off and validates the MX
//! default under this cost model.

use pm2_bench::{fmt_size, header, row};
use pm2_mpi::workloads::run_pingpong;
use pm2_mpi::ClusterConfig;
use pm2_newmad::EngineKind;

fn main() {
    println!("Ablation — rendezvous threshold sweep (ping-pong latency, µs)\n");
    let thresholds: Vec<usize> = vec![8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10];
    println!(
        "{}",
        header(
            "msg size",
            &thresholds
                .iter()
                .map(|t| format!("thr {}", fmt_size(*t)))
                .collect::<Vec<_>>(),
        )
    );
    for size in [4 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10] {
        let lats: Vec<f64> = thresholds
            .iter()
            .map(|&t| {
                run_pingpong(
                    ClusterConfig {
                        rdv_threshold: t,
                        ..ClusterConfig::paper_testbed(EngineKind::Pioman)
                    },
                    size,
                    10,
                )
                .latency_us
                .mean()
            })
            .collect();
        println!("{}", row(&fmt_size(size), &lats));
    }
    println!("\nFor each message size, read across: eager (size ≤ threshold) pays");
    println!("the copy; rendezvous (size > threshold) pays the handshake. The");
    println!("crossover where the copy cost exceeds one round-trip of handshake");
    println!("sits near MX's 32K under this cost model.");
}
