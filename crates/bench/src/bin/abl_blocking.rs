//! Ablation: idle-core polling vs. blocking-syscall progression (§2.3).
//!
//! The authors' earlier work [10] guaranteed rendezvous progression with
//! "a blocking system call on a dedicated thread, but this method suffers
//! from a significant overhead". PIOMAN keeps it only as a fallback for
//! when no core is idle. This benchmark measures a rendezvous transfer
//! under three reactivity regimes:
//!
//! * idle-core polling (the paper's preferred mechanism),
//! * blocking call only (polling disabled),
//! * no background progression at all (handshake advances only in swait).

use pioman::PiomanConfig;
use pm2_bench::{header, row};
use pm2_mpi::workloads::{run_overlap, OverlapParams};
use pm2_mpi::ClusterConfig;
use pm2_newmad::EngineKind;

fn run(idle_poll: bool, blocking_call: bool, timer_poll: bool) -> f64 {
    let cfg = ClusterConfig {
        pioman: PiomanConfig {
            idle_poll,
            blocking_call,
            timer_poll,
            ..PiomanConfig::default()
        },
        ..ClusterConfig::paper_testbed(EngineKind::Pioman)
    };
    run_overlap(
        cfg,
        &OverlapParams {
            msg_len: 256 << 10, // rendezvous
            compute: pm2_bench::fig6_compute(),
            iters: 15,
            warmup: 3,
        },
    )
    .half_round_us
    .mean()
}

fn main() {
    println!("Ablation — rendezvous reactivity method (256K transfer, 100µs compute)");
    println!("Half-round sending time, µs\n");
    println!("{}", header("method", &["time (µs)".into()]));
    let polling = run(true, false, false);
    let blocking = run(false, true, false);
    let none = run(false, false, false);
    println!("{}", row("idle-poll", &[polling]));
    println!("{}", row("blocking", &[blocking]));
    println!("{}", row("wait-only", &[none]));
    println!(
        "\nBlocking-call overhead vs idle polling: +{:.1}µs ({:+.1}%)",
        blocking - polling,
        (blocking - polling) / polling * 100.0
    );
    println!("Without any background progression the handshake only advances");
    println!("inside swait: the transfer serializes after the computation.");
}
