//! Figure 5 reproduction: small-message submission offloading.
//!
//! Benchmark of Figure 4, eager path: `nm_isend(len); compute(20µs);
//! nm_swait()`, symmetric on both sides. Three series:
//!
//! * **no computation (reference)** — the raw half-round time;
//! * **no copy offloading** — the sequential engine with 20 µs compute:
//!   the submission happens inside `swait`, so the measured time is
//!   ≈ sum(communication, computation);
//! * **copy offloading** — the PIOMAN engine: the submission runs on an
//!   idle core during the computation, so the time is
//!   ≈ max(communication, computation) + ≈2 µs of tasklet overhead.

use pm2_bench::{fig5_compute, fig5_sizes, fmt_size, header, row};
use pm2_mpi::workloads::{run_overlap, OverlapParams};
use pm2_mpi::ClusterConfig;
use pm2_newmad::EngineKind;
use pm2_sim::SimDuration;

fn main() {
    println!("Figure 5 — Small messages offloading (sending time, µs)");
    println!("Testbed: 2 nodes x 8 cores, MYRI-10G model, eager protocol\n");
    println!(
        "{}",
        header(
            "size",
            &[
                "reference".into(),
                "no-offload".into(),
                "offload".into(),
                "overhead".into(),
            ],
        )
    );
    let mut shard_work: Vec<u64> = Vec::new();
    for size in fig5_sizes() {
        let reference = run_overlap(
            ClusterConfig::paper_testbed(EngineKind::Pioman),
            &OverlapParams {
                msg_len: size,
                compute: SimDuration::ZERO,
                iters: 20,
                warmup: 3,
            },
        )
        .half_round_us
        .mean();
        let p = OverlapParams {
            msg_len: size,
            compute: fig5_compute(),
            iters: 20,
            warmup: 3,
        };
        let no_offload = run_overlap(ClusterConfig::paper_testbed(EngineKind::Sequential), &p)
            .half_round_us
            .mean();
        let offloaded = run_overlap(ClusterConfig::paper_testbed(EngineKind::Pioman), &p);
        let offload = offloaded.half_round_us.mean();
        if shard_work.len() < offloaded.driver_progress.len() {
            shard_work.resize(offloaded.driver_progress.len(), 0);
        }
        for (acc, w) in shard_work.iter_mut().zip(&offloaded.driver_progress) {
            *acc += w;
        }
        // The overhead the paper measures where comm ≈ comp: offload time
        // minus the ideal max(comm, comp).
        let ideal = reference.max(fig5_compute().as_micros_f64());
        let overhead = offload - ideal;
        println!(
            "{}",
            row(&fmt_size(size), &[reference, no_offload, offload, overhead])
        );
    }
    println!("\nExpected shape (paper): no-offload ≈ reference + 20µs;");
    println!("offload ≈ max(reference, 20µs) + ~2µs tasklet overhead.");
    let shards: Vec<String> = shard_work
        .iter()
        .enumerate()
        .map(|(i, w)| {
            if i + 1 == shard_work.len() {
                format!("shm={w}")
            } else {
                format!("rail{i}={w}")
            }
        })
        .collect();
    println!(
        "Per-driver progress, offload runs (node 0): {}",
        shards.join(" ")
    );
}
