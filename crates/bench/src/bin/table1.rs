//! Table 1 reproduction: the convolution meta-application.
//!
//! One MPI process per node, threads computing matrix blocks (Figure 8
//! layout: grid columns split across the two nodes), each thread running
//! the Figure 7 loop: compute frontier → asynchronous halo sends →
//! compute interior → wait sends → receive neighbours' halos.
//!
//! Halo messages stay below the rendezvous threshold, so the measured
//! effect is the *copy offloading* (§4.3). The 16-thread configuration
//! works on a 4× bigger matrix; with the halo size capped by the eager
//! threshold, the extra data volume is modelled as additional exchange
//! rounds.

use pm2_bench::{header, row};
use pm2_mpi::workloads::{run_stencil, StencilParams};
use pm2_mpi::ClusterConfig;
use pm2_newmad::EngineKind;

fn params(threads: usize) -> StencilParams {
    match threads {
        4 => StencilParams::four_threads(),
        16 => StencilParams::sixteen_threads(),
        other => panic!("no calibration for {other} threads"),
    }
}

fn main() {
    println!("Table 1 — Impact of the number of threads on communication offloading");
    println!("Meta-application: convolution-style stencil, 2 nodes x 8 cores\n");
    println!(
        "{}",
        header("", &["4 threads".into(), "16 threads".into()],)
    );
    let mut seq_t = Vec::new();
    let mut pio_t = Vec::new();
    for threads in [4usize, 16] {
        let p = params(threads);
        let seq = run_stencil(ClusterConfig::paper_testbed(EngineKind::Sequential), &p);
        let pio = run_stencil(ClusterConfig::paper_testbed(EngineKind::Pioman), &p);
        seq_t.push(seq.total_us);
        pio_t.push(pio.total_us);
    }
    println!("{}", row("no-offload", &[seq_t[0], seq_t[1]]));
    println!("{}", row("offload", &[pio_t[0], pio_t[1]]));
    println!(
        "{}",
        row(
            "speedup %",
            &[
                (seq_t[0] - pio_t[0]) / seq_t[0] * 100.0,
                (seq_t[1] - pio_t[1]) / seq_t[1] * 100.0,
            ],
        )
    );
    println!("\nPaper reports: no-offload 441µs / 1183µs, offload 382µs / 1031µs,");
    println!("speedups 14% / 13% — idle cores absorb the halo submissions, and at");
    println!("16 threads PIOMAN fills the gaps left by threads blocked on receives.");
}
