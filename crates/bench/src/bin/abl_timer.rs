//! Ablation: timer-tick cycle stealing when no core is idle (§3.1).
//!
//! Marcel triggers PIOMAN on "CPU idleness, context switches, timer
//! interrupts". When *every* core is computing, only the timer (or a
//! blocking call) can make the rendezvous handshake progress. This
//! benchmark saturates all 8 cores of each node with computing threads
//! and runs a rendezvous transfer, comparing:
//!
//! * timer stealing enabled — the tick lets the progress tasklet steal
//!   cycles from a computing thread (reactivity bounded by the period);
//! * disabled — the handshake waits for the application's own `swait`.

use pioman::PiomanConfig;
use pm2_bench::{header, row};
use pm2_marcel::MarcelConfig;
use pm2_mpi::{Cluster, ClusterConfig};
use pm2_newmad::{EngineKind, Tag};
use pm2_sim::SimDuration;
use pm2_topo::NodeId;
use std::cell::Cell;
use std::rc::Rc;

const MSG: usize = 128 << 10; // rendezvous
const COMPUTE_US: u64 = 400;

fn run(timer_steal: bool, tick_us: u64) -> f64 {
    let cfg = ClusterConfig {
        marcel: MarcelConfig {
            timer_tick: Some(SimDuration::from_micros(tick_us)),
            timer_steals_from_compute: timer_steal,
            ..MarcelConfig::default()
        },
        pioman: PiomanConfig {
            idle_poll: true,
            timer_poll: true,
            blocking_call: false,
            ..PiomanConfig::default()
        },
        ..ClusterConfig::paper_testbed(EngineKind::Pioman)
    };
    let cluster = Cluster::build(cfg);
    let done = Rc::new(Cell::new(0u64));
    // Fill every core of both nodes with computation.
    for node in 0..2 {
        for t in 0..7 {
            cluster.spawn_on(node, format!("busy{node}-{t}"), move |ctx| async move {
                ctx.compute(SimDuration::from_micros(COMPUTE_US)).await;
            });
        }
    }
    {
        let s = cluster.session(0).clone();
        let done = Rc::clone(&done);
        cluster.spawn_on(0, "tx", move |ctx| async move {
            let h = s.isend(&ctx, NodeId(1), Tag(1), vec![1; MSG]).await;
            ctx.compute(SimDuration::from_micros(COMPUTE_US)).await;
            s.swait_send(&h, &ctx).await;
            done.set(ctx.marcel().sim().now().as_micros());
        });
    }
    {
        let s = cluster.session(1).clone();
        cluster.spawn_on(1, "rx", move |ctx| async move {
            let h = s.irecv(&ctx, Some(NodeId(0)), Tag(1)).await;
            ctx.compute(SimDuration::from_micros(COMPUTE_US)).await;
            let _ = s.swait_recv(&h, &ctx).await;
        });
    }
    cluster.run();
    done.get() as f64
}

fn main() {
    println!("Ablation — timer-tick stealing under full CPU occupancy");
    println!("128K rendezvous, all 16 cores computing 400µs; sender completion time\n");
    println!("{}", header("config", &["time (µs)".into()]));
    let no_steal = run(false, 100);
    let steal_100 = run(true, 100);
    let steal_25 = run(true, 25);
    println!("{}", row("no-steal", &[no_steal]));
    println!("{}", row("tick=100µs", &[steal_100]));
    println!("{}", row("tick=25µs", &[steal_25]));
    println!("\nWithout stealing, the handshake waits for swait (no overlap).");
    println!("With stealing, reactivity is bounded by the tick period: shorter");
    println!("ticks start the transfer earlier at the cost of intruding more on");
    println!("the computing threads (§3.1's polling/intrusiveness trade-off).");
}
