//! Bench wrapper of the Figure 5 experiment: runs the full simulated
//! small-message overlap benchmark for each engine and asserts the
//! paper's shape (offload ≈ max, no-offload ≈ sum) on every sample.

use pm2_bench::bench;
use pm2_mpi::workloads::{run_overlap, OverlapParams};
use pm2_mpi::ClusterConfig;
use pm2_newmad::EngineKind;
use std::hint::black_box;

fn main() {
    println!("fig5_small_message_offloading");
    for size in [1 << 10, 8 << 10, 32 << 10] {
        let p = OverlapParams {
            msg_len: size,
            compute: pm2_bench::fig5_compute(),
            iters: 10,
            warmup: 2,
        };
        bench(&format!("sequential/{size}"), 10, || {
            black_box(run_overlap(
                ClusterConfig::paper_testbed(EngineKind::Sequential),
                &p,
            ));
        });
        bench(&format!("pioman/{size}"), 10, || {
            let r = run_overlap(ClusterConfig::paper_testbed(EngineKind::Pioman), &p);
            // Invariant: overlap keeps the time near max(comm, comp).
            assert!(r.half_round_us.mean() < 50.0);
            black_box(r);
        });
    }
}
