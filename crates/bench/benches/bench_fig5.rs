//! Criterion wrapper of the Figure 5 experiment: runs the full simulated
//! small-message overlap benchmark for each engine and asserts the
//! paper's shape (offload ≈ max, no-offload ≈ sum) on every sample.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pm2_mpi::workloads::{run_overlap, OverlapParams};
use pm2_mpi::ClusterConfig;
use pm2_newmad::EngineKind;
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_small_message_offloading");
    g.sample_size(10);
    for size in [1 << 10, 8 << 10, 32 << 10] {
        let p = OverlapParams {
            msg_len: size,
            compute: pm2_bench::fig5_compute(),
            iters: 10,
            warmup: 2,
        };
        g.bench_with_input(
            BenchmarkId::new("sequential", size),
            &p,
            |b, p| {
                b.iter(|| {
                    black_box(run_overlap(
                        ClusterConfig::paper_testbed(EngineKind::Sequential),
                        p,
                    ))
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("pioman", size), &p, |b, p| {
            b.iter(|| {
                let r = run_overlap(ClusterConfig::paper_testbed(EngineKind::Pioman), p);
                // Invariant: overlap keeps the time near max(comm, comp).
                assert!(r.half_round_us.mean() < 50.0);
                black_box(r)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
