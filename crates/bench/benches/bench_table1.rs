//! Bench wrapper of the Table 1 experiment: the convolution
//! meta-application under both engines and both thread counts.

use pm2_bench::bench;
use pm2_mpi::workloads::{run_stencil, StencilParams};
use pm2_mpi::ClusterConfig;
use pm2_newmad::EngineKind;
use std::hint::black_box;

fn main() {
    println!("table1_meta_application");
    for (threads, params) in [
        (4usize, StencilParams::four_threads()),
        (16, StencilParams::sixteen_threads()),
    ] {
        for (name, engine) in [
            ("no_offload", EngineKind::Sequential),
            ("offload", EngineKind::Pioman),
        ] {
            bench(&format!("{name}/{threads}"), 10, || {
                black_box(run_stencil(ClusterConfig::paper_testbed(engine), &params));
            });
        }
    }
}
