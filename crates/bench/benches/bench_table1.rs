//! Criterion wrapper of the Table 1 experiment: the convolution
//! meta-application under both engines and both thread counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pm2_mpi::workloads::{run_stencil, StencilParams};
use pm2_mpi::ClusterConfig;
use pm2_newmad::EngineKind;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_meta_application");
    g.sample_size(10);
    for (threads, params) in [
        (4usize, StencilParams::four_threads()),
        (16, StencilParams::sixteen_threads()),
    ] {
        for (name, engine) in [
            ("no_offload", EngineKind::Sequential),
            ("offload", EngineKind::Pioman),
        ] {
            g.bench_with_input(
                BenchmarkId::new(name, threads),
                &params,
                |b, params| {
                    b.iter(|| {
                        black_box(run_stencil(ClusterConfig::paper_testbed(engine), params))
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
