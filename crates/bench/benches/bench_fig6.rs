//! Criterion wrapper of the Figure 6 experiment: rendezvous progression
//! under both engines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pm2_mpi::workloads::{run_overlap, OverlapParams};
use pm2_mpi::ClusterConfig;
use pm2_newmad::EngineKind;
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_rendezvous_progression");
    g.sample_size(10);
    for size in [64 << 10, 256 << 10] {
        let p = OverlapParams {
            msg_len: size,
            compute: pm2_bench::fig6_compute(),
            iters: 8,
            warmup: 2,
        };
        for (name, engine) in [
            ("sequential", EngineKind::Sequential),
            ("pioman", EngineKind::Pioman),
        ] {
            g.bench_with_input(BenchmarkId::new(name, size), &p, |b, p| {
                b.iter(|| {
                    black_box(run_overlap(ClusterConfig::paper_testbed(engine), p))
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
